//! Irregular-mesh load balancing — Section 5.2.2 end to end.
//!
//! Builds a power-law "irregular grid" matrix ("some grid points may
//! have many neighbours, while others have very few"), declares it
//! through the proposed `SPARSE_MATRIX` directive, and compares plain
//! BLOCK row distribution against
//! `REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1` on a full CG
//! solve: nnz imbalance, redistribution traffic, and simulated time.
//!
//! ```text
//! cargo run --release --example irregular_mesh
//! ```

use hpf::core::ext::{SparseFormat, SparseMatrixDirective};
use hpf::dist::partition;
use hpf::prelude::*;
use hpf::sparse::{gen, stats};

fn main() {
    let n = 2048;
    let a = gen::power_law_spd(n, 160, 0.9, 77);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let rs = stats::row_stats(&a);
    println!(
        "irregular matrix: n = {n}, nnz = {}, row nnz min/mean/max = {}/{:.1}/{} (imbalance {:.2})",
        a.nnz(),
        rs.min,
        rs.mean,
        rs.max,
        rs.imbalance
    );

    let np = 16;
    let stop = StopCriterion::RelativeResidual(1e-8);

    // --- plain BLOCK rows (what HPF-1 offers) ---
    let mut m_block = Machine::hypercube(np);
    let op_block = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let flops = op_block.flops_per_proc();
    let imb_block =
        *flops.iter().max().unwrap() as f64 * np as f64 / flops.iter().sum::<usize>() as f64;
    let (_, s_block) = cg_distributed(&mut m_block, &op_block, &b, stop, 10 * n).unwrap();
    println!("\nBLOCK(rows) distribution:");
    println!("  nnz imbalance:  {imb_block:.2}");
    println!(
        "  CG: {} iterations, simulated {:.2} ms",
        s_block.iterations,
        m_block.elapsed() * 1e3
    );

    // --- the paper's extension: SPARSE_MATRIX + balanced partitioner ---
    let mut sm = SparseMatrixDirective::new(SparseFormat::Csr, a.row_ptr(), np);
    println!("\nSPARSE_MATRIX (CSR) :: smA(row, col, a)");
    println!("  initial ATOM:BLOCK imbalance: {:.2}", sm.imbalance());
    let mut m_bal = Machine::hypercube(np);
    let moved = sm.redistribute_balanced(&mut m_bal);
    println!(
        "  REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1: moved {moved} words, imbalance -> {:.2}",
        sm.imbalance()
    );
    assert!(sm.trio_is_consistent(), "trio must stay co-located");

    // Row cuts from the partitioner drive the distributed operator.
    let weights: Vec<usize> = (0..n).map(|r| a.row_nnz(r)).collect();
    let cuts = partition::balanced_contiguous(&weights, np).expect("np > 0");
    let op_bal = RowwiseCsr::with_row_cuts(a.clone(), np, cuts);
    let flops_b = op_bal.flops_per_proc();
    let imb_bal =
        *flops_b.iter().max().unwrap() as f64 * np as f64 / flops_b.iter().sum::<usize>() as f64;
    let (x, s_bal) = cg_distributed(&mut m_bal, &op_bal, &b, stop, 10 * n).unwrap();
    println!("  nnz imbalance:  {imb_bal:.2}");
    println!(
        "  CG: {} iterations, simulated {:.2} ms (incl. redistribution)",
        s_bal.iterations,
        m_bal.elapsed() * 1e3
    );

    assert!(s_block.converged && s_bal.converged);
    assert!(imb_bal < imb_block, "partitioner must improve balance");

    // Verify both give the same answer.
    let r = {
        let ax = a.matvec(&x.to_global()).unwrap();
        let num: f64 = ax
            .iter()
            .zip(b.iter())
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        num / den
    };
    println!("\nfinal relative residual: {r:.2e}");
    println!(
        "compute-phase speedup from balancing: {:.2}x (total incl. comm: {:.2}x)",
        m_block.trace().compute_time() / m_bal.trace().compute_time(),
        m_block.elapsed() / m_bal.elapsed(),
    );
    println!("communication is layout-independent here, so the win shows in the");
    println!("compute phase — exactly where Section 5.2.2 locates the imbalance.");
}
