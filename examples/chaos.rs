//! Chaos drill: deterministic fault injection against the CG stack, at
//! every layer.
//!
//! 1. **Machine** — a seeded [`FaultPlan`] flips reduction bits, drops
//!    messages, slows a processor, and crashes one node, all keyed to
//!    the machine's op counter so the run replays identically.
//! 2. **Solver** — plain CG is corrupted by the plan; protected CG
//!    detects, rolls back to a checkpoint, and still converges.
//! 3. **Service** — a breakdown-prone job is healed by the retry /
//!    escalation chain, and the metrics counters record the whole story.
//!
//! The protected solve runs under full telemetry, and the run's
//! observability artifacts (event trace JSONL, convergence CSV, service
//! metrics JSON) land in `$HPF_OBS_DIR` (default `target/obs`) for
//! `trace-report` to analyse.
//!
//! ```text
//! cargo run --release --example chaos
//! cargo run --release -p hpf-bench --bin trace-report -- \
//!     --trace target/obs/trace.jsonl --metrics target/obs/metrics.json \
//!     --format summary --format perfetto --format prom
//! ```

use hpf::machine::{EventKind, FaultPlan, FaultRates};
use hpf::prelude::*;
use hpf::solvers::{cg_distributed_protected_with_observer, RecoveryConfig};
use hpf::sparse::gen;
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let np = 4;
    let a = gen::banded_spd(256, 3, 11);
    let n = a.n_rows();
    let (_x_true, b) = gen::rhs_for_known_solution(&a);
    let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let stop = StopCriterion::RelativeResidual(1e-9);
    println!("system: n = {n}, nnz = {}, NP = {np}\n", a.nnz());

    // --- 1. a seeded fault plan: pure data, perfectly replayable -----
    let plan = FaultPlan::random(42, np, 200, FaultRates::default()).with_crash(30, 2);
    println!(
        "fault plan (seed 42 + crash): {} faults scheduled",
        plan.len()
    );
    for f in plan.faults().iter().take(6) {
        println!("  op {:>3}  proc {}  {}", f.op, f.proc, f.kind.name());
    }
    if plan.len() > 6 {
        println!("  ... and {} more", plan.len() - 6);
    }

    // --- 2. plain CG vs protected CG under the same plan -------------
    let mut m = Machine::hypercube(np);
    m.set_fault_plan(plan.clone());
    match cg_distributed(&mut m, &op, &b, stop, 50 * n) {
        Ok((_, s)) if s.converged => println!("\nplain CG: converged (got lucky this seed)"),
        Ok((_, s)) => println!(
            "\nplain CG: stalled at residual {:.3e} without converging",
            s.residual_norm
        ),
        Err(e) => println!("\nplain CG: failed — {e}"),
    }

    let mut m = Machine::hypercube(np);
    m.set_tracing(true);
    m.set_fault_plan(plan.clone());
    let config = RecoveryConfig {
        max_rollbacks: 4 * plan.len().max(4),
        ..RecoveryConfig::default()
    };
    let mut log = ConvergenceLog::new();
    let (x, stats, rec) =
        cg_distributed_protected_with_observer(&mut m, &op, &b, stop, 50 * n, config, &mut log)
            .expect("protected CG must ride out the plan");
    assert!(stats.converged, "protected CG must converge");
    assert!(
        log.samples.len() >= stats.iterations,
        "telemetry must cover every iteration (replays included)"
    );
    println!(
        "protected CG: converged in {} iterations, residual {:.3e}",
        stats.iterations, stats.residual_norm
    );
    println!(
        "  injected {} faults ({} in trace), detected {}, rollbacks {}, \
         checkpoints {}, residual replacements {}",
        m.faults_injected(),
        m.trace().count(EventKind::Fault),
        rec.faults_detected,
        rec.rollbacks,
        rec.checkpoints,
        rec.residual_replacements,
    );
    let ax = a.matvec(&x.to_global()).unwrap();
    let res: f64 = ax
        .iter()
        .zip(&b)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!("  true relative residual: {:.3e}", res / bn);
    assert!(res / bn < 1e-8, "recovered solution must be genuine");

    // --- 3. the service heals a breakdown via escalation -------------
    let service = SolverService::start(ServiceConfig {
        workers: 2,
        np,
        ..ServiceConfig::default()
    });

    // An indefinite system CG cannot solve (p·Ap = 0 on step one).
    let coo = hpf::sparse::CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
    let hostile = Arc::new(hpf::sparse::CsrMatrix::from_coo(&coo));
    let resp = service
        .solve(SolveRequest::new(hostile, vec![1.0, 0.0]))
        .expect("escalation chain must answer the job");
    println!(
        "\nservice: CG breakdown healed by {} after {} attempts",
        resp.solver_used.name(),
        resp.attempts
    );

    // A faulty-but-SPD job: the protected solver absorbs the plan.
    let chaos_job = SolveRequest::new(Arc::new(a.clone()), b.clone()).fault_plan(
        FaultPlan::new()
            .with_crash(25, 1)
            .with_bit_flip(70, 2, 61, 3),
    );
    let resp = service.solve(chaos_job).expect("protected solve succeeds");
    let rec = resp.recovery.expect("recovery stats reported");
    println!(
        "service: fault-plan job recovered (detected {}, rollbacks {})",
        rec.faults_detected, rec.rollbacks
    );

    let metrics = service.shutdown();
    println!("\nservice metrics: {}", metrics.to_json());
    assert!(metrics.retries >= 1);
    assert!(metrics.escalations >= 1);
    assert!(metrics.faults_injected >= 1);

    // --- 4. leave the observability artifacts behind -----------------
    let dir = std::env::var("HPF_OBS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/obs"));
    std::fs::create_dir_all(&dir).expect("create obs dir");
    let rollback_marks = log.rollbacks.len();
    let samples = log.samples.len();
    std::fs::write(dir.join("trace.jsonl"), m.trace().to_jsonl()).expect("write trace");
    std::fs::write(dir.join("convergence.csv"), log.to_csv()).expect("write convergence");
    std::fs::write(dir.join("metrics.json"), metrics.to_json()).expect("write metrics");
    println!(
        "\nobservability: {} events, {samples} iteration samples, {rollback_marks} rollback marks",
        m.trace().events().len()
    );
    println!(
        "  wrote {0}/trace.jsonl, {0}/convergence.csv, {0}/metrics.json",
        dir.display()
    );
    println!(
        "  inspect with: trace-report --trace {}/trace.jsonl --format summary",
        dir.display()
    );
    println!("\nchaos drill complete: every fault detected, every job answered.");
}
