//! Language lab: a guided tour of the paper's Section 4/5 semantics.
//!
//! Demonstrates, with runnable checks rather than prose:
//!  1. FORALL's all-RHS-before-any-LHS rule and its rejection of
//!     accumulation;
//!  2. Bernstein's conditions deciding `INDEPENDENT` legality for the
//!     CSR vs CSC matvec loops;
//!  3. the proposed `PRIVATE ... WITH MERGE(+)` region making the CSC
//!     loop parallel;
//!  4. `ON PROCESSOR(f(i))` vs the inspector–executor machinery.
//!
//! ```text
//! cargo run --release --example language_lab
//! ```

use hpf::core::ext::{GatherSchedule, MergeOp, OnProcessor, PrivateRegion};
use hpf::core::forall::{
    bernstein_check, csc_matvec_footprint, csr_matvec_footprint, forall_assign,
};
use hpf::prelude::*;
use hpf::sparse::gen;

fn main() {
    // ------------------------------------------------------------------
    println!("1. FORALL semantics (all RHS evaluated before any LHS)");
    // q(i) = q(i+1): with Fortran-DO semantics this would smear q[3]
    // leftwards; FORALL must shift instead.
    let mut q = vec![1.0, 2.0, 3.0, 4.0];
    let old = q.clone();
    forall_assign(&mut q, 3, |k| k, |k| old[k + 1]).unwrap();
    println!("   q(i) = q(i+1)  ->  {q:?}  (shift, not fill)");
    assert_eq!(q, vec![2.0, 3.0, 4.0, 4.0]);

    let mut q2 = vec![0.0; 3];
    let verdict = forall_assign(&mut q2, 6, |k| k % 3, |_| 1.0);
    println!(
        "   accumulation q(k mod 3) = 1 over 6 iterations -> {}",
        verdict
            .as_ref()
            .map(|_| "accepted".to_string())
            .unwrap_or_else(|e| format!("REJECTED: {e}"))
    );
    assert!(verdict.is_err());

    // ------------------------------------------------------------------
    println!("\n2. Bernstein's conditions for INDEPENDENT");
    let a = gen::random_spd(64, 4, 5);
    let csc = CscMatrix::from_csr(&a);
    let csr_ok = bernstein_check(&csr_matvec_footprint(64));
    println!(
        "   CSR matvec FORALL over rows:      {}",
        if csr_ok.is_ok() {
            "independent (legal)"
        } else {
            "dependent"
        }
    );
    assert!(csr_ok.is_ok());
    match bernstein_check(&csc_matvec_footprint(csc.col_ptr(), csc.row_idx())) {
        Err(v) => println!("   CSC matvec loop over columns:     DEPENDENT — {v}"),
        Ok(()) => println!("   CSC matvec loop over columns:     independent (degenerate matrix)"),
    }

    // ------------------------------------------------------------------
    println!("\n3. PRIVATE q(n) WITH MERGE(+) parallelises the CSC loop");
    let x = vec![1.0; 64];
    let want = a.matvec(&x).unwrap();
    let mut machine = Machine::hypercube(8);
    let (got, stats) =
        PrivateRegion::csc_matvec(&mut machine, csc.col_ptr(), csc.row_idx(), csc.values(), &x);
    let max_err = got
        .iter()
        .zip(want.iter())
        .map(|(u, v)| (u - v).abs())
        .fold(0.0f64, f64::max);
    println!(
        "   merged q matches serial matvec: max err = {max_err:.2e}; \
         loop phase {:.1} us on 8 procs, merge {:.1} us, {} private words",
        stats.loop_time * 1e6,
        stats.merge_time * 1e6,
        stats.private_storage_words
    );
    assert!(max_err < 1e-12);

    // A MERGE(MAX) region, showing the general reduction form.
    let region = PrivateRegion::new(1, OnProcessor::cyclic(8), MergeOp::Max);
    let (mx, _) = region.run(
        &mut machine,
        100,
        |_| 1,
        |j, acc| {
            acc[0] = acc[0].max((j as f64 * 37.0) % 101.0);
        },
    );
    println!("   MERGE(MAX) over 100 iterations -> {}", mx[0]);

    // ------------------------------------------------------------------
    println!("\n4. ON PROCESSOR(f(i)) vs inspector-executor");
    let np = 8;
    let on = OnProcessor::block(64, np);
    println!(
        "   ON PROCESSOR(j/bs): loads = {:?} (computed at compile time, zero comm)",
        on.loads(64)
    );

    let desc = ArrayDescriptor::block(256, np);
    let wants: Vec<Vec<usize>> = (0..np)
        .map(|p| (0..256).filter(|&g| (g + p) % 5 == 0).collect())
        .collect();
    let mut m = Machine::hypercube(np);
    let mut sched = GatherSchedule::build(&mut m, &desc, wants);
    println!(
        "   inspector: {:.1} us to build, {} remote words per executor run",
        sched.inspector_time * 1e6,
        sched.remote_words()
    );
    let data = vec![2.0; 256];
    for _ in 0..20 {
        sched.execute(&mut m, &data);
    }
    println!(
        "   after 20 reuses, amortised inspector cost = {:.2} us/run",
        sched.amortised_inspector_time() * 1e6
    );
    println!("\nall semantics checks passed.");
}
