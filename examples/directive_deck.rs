//! Directive deck: parse the paper's own Figure 2 directive block and
//! drive a distributed CG solve from it.
//!
//! This is the full front-to-back pipeline an HPF compiler would run:
//! directive text → parse → elaborate (against problem sizes) →
//! distribution descriptors → distributed execution with the induced
//! communication charged to the simulated machine.
//!
//! ```text
//! cargo run --release --example directive_deck
//! ```

use hpf::prelude::*;
use hpf::sparse::gen;
use std::collections::BTreeMap;

/// The directive block of the paper's Figure 2, verbatim (CSR storage
/// for the sparse matrix; every working vector aligned with p).
const FIGURE2_DECK: &str = "
      REAL, dimension(1:nz) :: a
      INTEGER, dimension(1:nz) :: col
      INTEGER, dimension(1:n+1) :: row
      REAL, dimension(1:n) :: x, r, p, q
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
";

fn main() {
    // The application problem.
    let a = gen::poisson_2d(24, 24);
    let n = a.n_rows();
    let nz = a.nnz();
    let (x_true, b) = gen::rhs_for_known_solution(&a);
    let np = 8i64;

    // --- front end: parse + elaborate the deck ---
    let directives = parse_program(FIGURE2_DECK).expect("Figure 2 parses");
    println!(
        "parsed {} directives from the Figure 2 deck:",
        directives.len()
    );
    for d in &directives {
        println!(
            "  {:<18} {}",
            d.kind(),
            if d.is_extension() {
                "(proposed extension)"
            } else {
                "(HPF-1)"
            }
        );
    }

    let env = Env::new()
        .bind("np", np)
        .bind("n", n as i64)
        .bind("nz", nz as i64);
    let extents: BTreeMap<String, usize> = [
        ("p", n),
        ("q", n),
        ("r", n),
        ("x", n),
        ("b", n),
        ("row", n + 1),
        ("col", nz),
        ("a", nz),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    let elab = elaborate(&directives, &env, &extents).expect("Figure 2 elaborates");
    println!(
        "\nelaborated: NP = {} on grid '{}'",
        elab.np,
        elab.grid_name.as_deref().unwrap_or("?")
    );
    for name in ["p", "q", "r", "x", "b", "row", "col", "a"] {
        let d = elab.graph.descriptor(name).unwrap();
        println!(
            "  {:<4} -> {:<12} local sizes {:?}",
            name,
            d.spec().directive(),
            d.local_lens()
        );
    }

    // --- back end: run the Figure 2 CG under the elaborated layout ---
    let p_desc = elab.graph.descriptor("p").unwrap();
    assert_eq!(p_desc.spec(), &hpf::dist::DistSpec::Block);
    let mut machine = Machine::hypercube(elab.np);
    let op = RowwiseCsr::block(a, elab.np, DataArrayLayout::RowAligned);
    let (x, stats) = cg_distributed(
        &mut machine,
        &op,
        &b,
        StopCriterion::RelativeResidual(1e-10),
        10 * n,
    )
    .unwrap();
    assert!(stats.converged);
    let err = x
        .to_global()
        .iter()
        .zip(x_true.iter())
        .map(|(u, v)| (u - v).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nCG under the deck's layout: {} iterations, max error {err:.2e}, \
         simulated {:.2} ms ({:.0}% comm)",
        stats.iterations,
        machine.elapsed() * 1e3,
        100.0 * machine.trace().comm_time() / machine.elapsed()
    );

    // --- and the Figure 5 extension deck ---
    let fig5 = "
!EXT$ ITERATION j ON PROCESSOR(j/np), &
!EXT$ PRIVATE(q(n)) WITH MERGE(+), &
!EXT$ NEW(pj, k), PRIVATE(q(n))
";
    let ds5 = parse_program(fig5).unwrap();
    let elab5 = elaborate(
        &ds5,
        &Env::new().bind("np", np).bind("n", n as i64),
        &extents,
    )
    .expect("Figure 5 elaborates");
    let im = &elab5.iteration_maps[0];
    println!(
        "\nFigure 5 deck: iteration 'j' mapped ON PROCESSOR(j/np); q privatised with {:?}",
        im.privatises("q").unwrap()
    );
    let base = Env::new().bind("np", np).bind("n", n as i64);
    println!(
        "  iteration 0 -> proc {}, iteration {} -> proc {}",
        im.processor_of(0, &base).unwrap(),
        n - 1,
        im.processor_of(n - 1, &base).unwrap()
    );
}
