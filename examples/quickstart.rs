//! Quickstart: the paper's Figure 2 CG program, end to end.
//!
//! Builds a 2-D Poisson system, distributes it row-wise over a simulated
//! 8-processor hypercube (`!HPF$ DISTRIBUTE p(BLOCK)` + `ALIGN`), runs
//! distributed CG, and prints the solve statistics plus the
//! communication the HPF layout induced.
//!
//! Set `HPF_OBS_DIR` to also write the run's observability artifacts
//! (event trace JSONL + convergence CSV) for `trace-report`:
//!
//! ```text
//! cargo run --release --example quickstart
//! HPF_OBS_DIR=target/obs-quickstart cargo run --release --example quickstart
//! ```

use hpf::prelude::*;
use hpf::solvers::cg_distributed_with_observer;
use hpf::sparse::gen;

fn main() {
    // The application matrix: 32x32 grid Poisson problem (n = 1024).
    let a = gen::poisson_2d(32, 32);
    let n = a.n_rows();
    let (x_true, b) = gen::rhs_for_known_solution(&a);
    println!("system: n = {}, nnz = {}", n, a.nnz());

    // PROCESSORS PROCS(8); hypercube network, mid-90s MPP cost model.
    let np = 8;
    let mut machine = Machine::hypercube(np);
    machine.set_tracing(true);

    // ALIGN A(:,*) WITH p(:); DISTRIBUTE p(BLOCK)  — Scenario 1 layout.
    let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);

    let mut log = ConvergenceLog::new();
    let (x, stats) = cg_distributed_with_observer(
        &mut machine,
        &op,
        &b,
        StopCriterion::RelativeResidual(1e-10),
        10 * n,
        &mut log,
    )
    .expect("SPD system must not break down");

    println!("converged:     {}", stats.converged);
    println!("iterations:    {}", stats.iterations);
    println!("residual:      {:.3e}", stats.residual_norm);
    println!(
        "ops:           {} matvecs, {} dots, {} saxpys",
        stats.matvecs, stats.dots, stats.axpys
    );

    // Verify against the known solution.
    let err = x
        .to_global()
        .iter()
        .zip(x_true.iter())
        .map(|(u, v)| (u - v).abs())
        .fold(0.0f64, f64::max);
    println!("max |x - x*|:  {err:.3e}");
    assert!(err < 1e-6, "solution must match the manufactured truth");

    // What the HPF program cost on the simulated machine.
    println!("\nsimulated machine ({} procs, hypercube):", np);
    println!("  elapsed:        {:.2} ms", machine.elapsed() * 1e3);
    println!(
        "  comm fraction:  {:.1}%",
        100.0 * machine.trace().comm_time() / machine.elapsed()
    );
    println!(
        "  events: {} allgathers (matvec broadcasts), {} allreduces (dot merges)",
        machine.trace().count(hpf::machine::EventKind::AllGather),
        machine.trace().count(hpf::machine::EventKind::AllReduce),
    );
    println!("  total flops:    {}", machine.total_flops());
    println!("  words sent:     {}", machine.total_words_sent());

    // Per-iteration telemetry came along for free.
    assert_eq!(log.samples.len(), stats.iterations);
    let first = &log.samples[0];
    let last = log.samples.last().unwrap();
    println!(
        "\ntelemetry: {} samples, residual {:.3e} -> {:.3e}, \
         {} comm bytes/iter (iter 1)",
        log.samples.len(),
        first.residual_norm,
        last.residual_norm,
        first.comm_bytes()
    );

    // Drop the artifacts for trace-report when asked to.
    if let Ok(dir) = std::env::var("HPF_OBS_DIR") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create obs dir");
        std::fs::write(dir.join("trace.jsonl"), machine.trace().to_jsonl()).expect("write trace");
        std::fs::write(dir.join("convergence.csv"), log.to_csv()).expect("write convergence");
        println!(
            "wrote {0}/trace.jsonl and {0}/convergence.csv",
            dir.display()
        );
    }
}
