//! Solver shootout — the Section 2/2.1 solver family plus the dense
//! direct baseline, on both an SPD structural-analysis system and a
//! non-symmetric circuit-like system.
//!
//! ```text
//! cargo run --release --example solver_shootout
//! ```

use hpf::prelude::*;
use hpf::solvers::direct;
use hpf::sparse::{gen, CooMatrix};

fn rel_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x).unwrap();
    let num: f64 = ax
        .iter()
        .zip(b.iter())
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

fn main() {
    let stop = StopCriterion::RelativeResidual(1e-9);

    // --- SPD: banded structural-analysis style system ---
    let n = 400;
    let a = gen::banded_spd(n, 6, 99);
    let (_, b) = gen::rhs_for_known_solution(&a);
    println!("SPD banded system: n = {n}, nnz = {}", a.nnz());
    println!("  method     iters  matvecs  A^T  dots  residual");
    let (x, s) = cg(&a, &b, stop, 10 * n).unwrap();
    println!(
        "  CG        {:6}  {:7}  {:3}  {:4}  {:.1e}",
        s.iterations,
        s.matvecs,
        s.transpose_matvecs,
        s.dots,
        rel_residual(&a, &x, &b)
    );
    assert!(s.converged);

    // Direct baseline (dense LU / Cholesky) for the same system.
    let dense = a.to_dense();
    let x_lu = direct::solve_lu(&dense, &b).unwrap();
    let x_ch = direct::solve_cholesky(&dense, &b).unwrap();
    println!(
        "  dense LU        -        -    -     -  {:.1e}   ({} flops vs CG's {})",
        rel_residual(&a, &x_lu, &b),
        direct::lu_flops(n),
        direct::cg_flops(n, a.nnz(), s.iterations),
    );
    println!(
        "  Cholesky        -        -    -     -  {:.1e}",
        rel_residual(&a, &x_ch, &b)
    );
    let cg_cheaper = direct::cg_flops(n, a.nnz(), s.iterations) < direct::lu_flops(n);
    println!(
        "  -> CG is {} for this sparse system (Section 1's argument)",
        if cg_cheaper { "cheaper" } else { "costlier" }
    );

    // --- non-symmetric: convection-like system ---
    let n2 = 300;
    let mut coo = CooMatrix::new(n2, n2);
    for i in 0..n2 {
        coo.push(i, i, 4.0).unwrap();
        if i + 1 < n2 {
            coo.push(i, i + 1, -1.7).unwrap(); // upwind bias
            coo.push(i + 1, i, -0.3).unwrap();
        }
        if i + 9 < n2 {
            coo.push(i, i + 9, 0.35).unwrap();
        }
    }
    let ns = CsrMatrix::from_coo(&coo);
    let (_, b2) = gen::rhs_for_known_solution(&ns);
    println!("\nnon-symmetric system: n = {n2}, nnz = {}", ns.nnz());
    println!("  method     iters  matvecs  A^T  dots  residual   converged");

    let (xb, sb) = bicg(&ns, &b2, stop, 10 * n2).unwrap();
    println!(
        "  BiCG      {:6}  {:7}  {:3}  {:4}  {:.1e}   {}",
        sb.iterations,
        sb.matvecs,
        sb.transpose_matvecs,
        sb.dots,
        rel_residual(&ns, &xb, &b2),
        sb.converged
    );
    match cgs(&ns, &b2, stop, 10 * n2) {
        Ok((xc, sc)) => println!(
            "  CGS       {:6}  {:7}  {:3}  {:4}  {:.1e}   {}",
            sc.iterations,
            sc.matvecs,
            sc.transpose_matvecs,
            sc.dots,
            rel_residual(&ns, &xc, &b2),
            sc.converged
        ),
        Err(e) => println!("  CGS       breakdown: {e} (the paper's warning about CGS)"),
    }
    let (xs, ss) = bicgstab(&ns, &b2, stop, 10 * n2).unwrap();
    println!(
        "  BiCGSTAB  {:6}  {:7}  {:3}  {:4}  {:.1e}   {}",
        ss.iterations,
        ss.matvecs,
        ss.transpose_matvecs,
        ss.dots,
        rel_residual(&ns, &xs, &b2),
        ss.converged
    );
    assert!(sb.converged && ss.converged);
    println!("\nBiCG pays one A^T product per iteration — the access pattern that");
    println!("negates row-vs-column storage optimisations (Section 2.1); BiCGSTAB");
    println!("avoids A^T at the price of four inner products per iteration.");
}
