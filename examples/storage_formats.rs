//! Storage-scheme tour — Section 3 in practice.
//!
//! Shows the Figure 1 example in every format, then quantifies when the
//! structure-exploiting schemes (ELL, DIA) pay off and when only the
//! general compressed schemes (CSR/CSC) make sense — the premise behind
//! the paper's Section 5.2 distribution extensions.
//!
//! ```text
//! cargo run --release --example storage_formats
//! ```

use hpf::prelude::*;
use hpf::sparse::{gen, stats, DiaMatrix, EllMatrix};

fn main() {
    // --- Figure 1's worked 6x6 example ---
    let d = DenseMatrix::from_rows(&[
        vec![11.0, 12.0, 0.0, 0.0, 15.0, 0.0],
        vec![21.0, 22.0, 0.0, 24.0, 0.0, 26.0],
        vec![31.0, 0.0, 33.0, 0.0, 0.0, 0.0],
        vec![0.0, 42.0, 0.0, 44.0, 0.0, 0.0],
        vec![51.0, 0.0, 0.0, 0.0, 55.0, 0.0],
        vec![0.0, 62.0, 0.0, 0.0, 0.0, 66.0],
    ])
    .unwrap();
    let csc = CscMatrix::from_dense(&d);
    println!("Figure 1 (6x6, nnz = {}):", csc.nnz());
    println!("  CSC a   = {:?}", csc.values());
    println!("  CSC row = {:?}", csc.row_idx());
    println!("  CSC col = {:?}", csc.col_ptr());
    let csr = CsrMatrix::from_dense(&d);
    println!("  CSR col = {:?}", csr.col_idx());
    println!("  CSR row = {:?}", csr.row_ptr());

    // --- when does each scheme make sense? ---
    println!("\nformat ledger (stored f64-equivalents per matrix):");
    println!(
        "  {:<22} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "matrix", "nnz", "CSR", "ELL", "DIA", "dense"
    );
    let cases: Vec<(&str, CsrMatrix)> = vec![
        ("poisson 32x32", gen::poisson_2d(32, 32)),
        ("banded bw=4", gen::banded_spd(1024, 4, 7)),
        ("tridiagonal", gen::tridiagonal(1024, 2.0, -1.0)),
        ("random 6/row", gen::random_spd(1024, 6, 7)),
        ("power-law", gen::power_law_spd(1024, 128, 0.9, 7)),
        (
            "block-irregular",
            gen::block_irregular_mesh(&[160, 8, 8, 8, 8, 8], 7),
        ),
    ];
    for (name, a) in &cases {
        let n = a.n_rows();
        let ell = EllMatrix::from_csr(a);
        let dia = DiaMatrix::from_csr(a);
        // CSR cost: nnz values + nnz indices (as words) + n+1 pointers.
        let csr_words = 2 * a.nnz() + n + 1;
        let ell_words = 2 * ell.stored_slots();
        let dia_words = dia.stored_slots() + dia.n_diagonals();
        println!(
            "  {:<22} {:>8} {:>10} {:>10} {:>10} {:>12}",
            name,
            a.nnz(),
            csr_words,
            ell_words,
            dia_words,
            n * n
        );
    }

    println!("\nstructure metrics:");
    for (name, a) in &cases {
        let rs = stats::row_stats(a);
        let ell = EllMatrix::from_csr(a);
        let dia = DiaMatrix::from_csr(a);
        println!(
            "  {:<22} row-nnz imbalance {:>6.2}   ELL padding {:>5.1}%   DIA fill {:>5.1}%",
            name,
            rs.imbalance,
            100.0 * ell.padding_ratio(),
            100.0 * dia.fill_ratio(),
        );
    }

    // All formats compute the same product.
    let a = &cases[4].1; // power-law
    let x: Vec<f64> = (0..a.n_rows()).map(|i| ((i % 17) as f64) / 7.0).collect();
    let want = a.matvec(&x).unwrap();
    let via_ell = EllMatrix::from_csr(a).matvec(&x).unwrap();
    let via_dia = DiaMatrix::from_csr(a).matvec(&x).unwrap();
    let via_csc = CscMatrix::from_csr(a).matvec(&x).unwrap();
    let max_err = want
        .iter()
        .zip(via_ell.iter().zip(via_dia.iter().zip(via_csc.iter())))
        .map(|(w, (e, (d, c)))| (w - e).abs().max((w - d).abs()).max((w - c).abs()))
        .fold(0.0f64, f64::max);
    println!("\nmax cross-format matvec disagreement: {max_err:.2e}");
    assert!(max_err < 1e-10);
    println!("regular structure -> ELL/DIA win; irregular structure -> only CSR/CSC");
    println!("stay compact, which is what drives Section 5.2's distribution proposals.");
}
