//! CFD pressure-Poisson solve — the paper's Section 1 motivating
//! application class ("computational fluid dynamics generate[s] a matrix
//! that is sparse").
//!
//! Solves the pressure-correction system of a projection-method CFD step
//! on a 3-D grid (7-point stencil), comparing plain CG against Jacobi-
//! and SSOR-preconditioned CG, and sweeping the simulated machine size to
//! show where communication starts to dominate (the computation-to-
//! communication ratio argument of Section 1).
//!
//! ```text
//! cargo run --release --example cfd_pressure
//! ```

use hpf::prelude::*;
use hpf::solvers::{IdentityPrec, SsorPrec};
use hpf::sparse::gen;

fn main() {
    // 3-D pressure grid: 16 x 16 x 16 cells.
    let (nx, ny, nz) = (16, 16, 16);
    let a = gen::poisson_3d(nx, ny, nz);
    let n = a.n_rows();
    println!(
        "pressure system: {nx}x{ny}x{nz} grid, n = {n}, nnz = {}",
        a.nnz()
    );

    // A divergence field as the right-hand side (manufactured).
    let b: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i % nz) as f64 / nz as f64;
            let y = ((i / nz) % ny) as f64 / ny as f64;
            (std::f64::consts::TAU * x).sin() * (std::f64::consts::PI * y).cos()
        })
        .collect();

    let stop = StopCriterion::RelativeResidual(1e-8);

    // --- serial solver comparison (preconditioning) ---
    println!("\npreconditioner comparison (serial):");
    let (_, s_plain) = pcg(&a, &IdentityPrec, &b, stop, 10 * n).unwrap();
    println!(
        "  none:      {:4} iterations (converged: {})",
        s_plain.iterations, s_plain.converged
    );
    let jac = JacobiPrec::new(&a).unwrap();
    let (_, s_jac) = pcg(&a, &jac, &b, stop, 10 * n).unwrap();
    println!(
        "  jacobi:    {:4} iterations (converged: {})",
        s_jac.iterations, s_jac.converged
    );
    let ssor = SsorPrec::new(&a, 1.4).unwrap();
    let (x_ssor, s_ssor) = pcg(&a, &ssor, &b, stop, 10 * n).unwrap();
    println!(
        "  ssor(1.4): {:4} iterations (converged: {})",
        s_ssor.iterations, s_ssor.converged
    );
    assert!(s_ssor.converged);

    // Residual check.
    let ax = a.matvec(&x_ssor).unwrap();
    let res: f64 = ax
        .iter()
        .zip(b.iter())
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!("  final relative residual: {:.2e}", res / bn);

    // --- distributed scaling sweep ---
    println!("\ndistributed CG scaling (simulated tight-MPP hypercube, Figure 2 layout):");
    println!("  NP   time_ms   comm%   speedup");
    let mut t1 = None;
    for np in [1usize, 2, 4, 8, 16, 32] {
        let mut machine = Machine::new(np, Topology::Hypercube, CostModel::tight_mpp());
        let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        let (_, stats) = cg_distributed(&mut machine, &op, &b, stop, 10 * n).unwrap();
        assert!(stats.converged);
        let t = machine.elapsed();
        let base = *t1.get_or_insert(t);
        println!(
            "  {:3}  {:8.2}  {:5.1}  {:7.2}",
            np,
            t * 1e3,
            100.0 * machine.trace().comm_time() / t,
            base / t,
        );
    }
    println!("\ncommunication share grows with NP: the fixed t_startup*log(NP) merge");
    println!("and the allgather per matvec stop paying off once local work shrinks.");
}
