//! Flight-recorder entry point: `cargo run --release -p hpf-bench
//! --example rca -- [REQUESTS]`.
//!
//! Drives the E30 flight-recorder sweep: a clean closed-loop overhead
//! trial (recorder off vs on), then a seeded chaos sweep (stall /
//! crash / bit-flip storm, retries disabled) whose terminal bad
//! outcomes must each produce exactly one post-mortem whose top-ranked
//! root cause names the injected fault class on >= 90% of jobs. The
//! run asserts the <3% overhead band, attribution accuracy, and dump
//! exactness, writes `e30_postmortems.json` / `e30_postmortem.json` /
//! `e30_trace.jsonl` next to `BENCH_30.json` under `HPF_BENCH_DIR`,
//! so a non-zero exit means a band or the regression gate was
//! breached.
//!
//! The acceptance run is `REQUESTS = 600` (the default); CI smoke may
//! shrink it via `HPF_E30_REQUESTS`.

use hpf_bench::experiments::rca_exp;

fn main() {
    let requests = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("REQUESTS must be a positive integer"))
        .unwrap_or_else(rca_exp::default_requests);
    let table = rca_exp::e30_rca(requests);
    println!("{}", table.render());
}
