//! Telemetry-pipeline entry point: `cargo run --release -p hpf-bench
//! --example telemetry -- [REQUESTS]`.
//!
//! Drives the E29 live-telemetry soak: a closed-loop overhead trial
//! (bus off vs on), then a chaos soak streamed through the event bus
//! into the SLO tracker and span profiler, with a scripted overload
//! that must walk the interactive alert through pending -> firing ->
//! resolved. The run asserts the <5% overhead band, the alert
//! lifecycle timing, and that matvec tops the span profile, and
//! records `BENCH_29.json` under `HPF_BENCH_DIR`, so a non-zero exit
//! means a band or the regression gate was breached.
//!
//! The acceptance run is `REQUESTS = 600` (the default); CI smoke may
//! shrink it via `HPF_E29_REQUESTS`.

use hpf_bench::experiments::telemetry_exp;

fn main() {
    let requests = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("REQUESTS must be a positive integer"))
        .unwrap_or_else(telemetry_exp::default_requests);
    let table = telemetry_exp::e29_telemetry(requests);
    println!("{}", table.render());
}
