//! Chaos-soak entry point: `cargo run --release -p hpf-bench --example
//! soak -- [REQUESTS]`.
//!
//! Drives the E27 open-loop mixed-QoS load (faults on) against a live
//! `SolverService` and prints the per-class table. The run asserts the
//! robustness bands itself (zero lost jobs, interactive p99, justified
//! sheds) and records `BENCH_27.json` under `HPF_BENCH_DIR`, so a
//! non-zero exit means a band or the regression gate was breached.
//!
//! The acceptance soak is `REQUESTS = 100000`; the default (also used
//! by the CI smoke) comes from `HPF_SOAK_REQUESTS`, else 5000.

use hpf_bench::experiments::soak_exp;

fn main() {
    let requests = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("REQUESTS must be a positive integer"))
        .unwrap_or_else(soak_exp::default_requests);
    let table = soak_exp::e27_chaos_soak(requests);
    println!("{}", table.render());
}
