//! Plain-text tables for the experiment reports.

use serde::{Deserialize, Serialize};

/// A report table: what the paper would print as a figure/table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form conclusion line ("who wins, by what factor").
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths.iter()) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

/// Format a simulated time in microseconds with 2 decimals.
pub fn us(t: f64) -> String {
    format!("{:.2}", t * 1e6)
}

/// Format a ratio with 2 decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("E0", "demo", &["np", "time"]);
        t.row(vec!["4".into(), "1.00".into()]);
        t.row(vec!["16".into(), "12.50".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("np"));
        assert!(s.contains("note: hello"));
        // Rows and header present.
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(1e-6), "1.00");
        assert_eq!(ratio(2.0), "2.00");
    }
}
