//! # hpf-bench — experiment harness
//!
//! Regenerates every figure and quantitative in-text claim of the paper
//! as a text [`table::Table`] (see DESIGN.md's experiment index E1–E20),
//! plus Criterion wall-clock benches over the same code paths. Run the
//! report binary:
//!
//! ```text
//! cargo run -p hpf-bench --bin report --release           # all experiments
//! cargo run -p hpf-bench --bin report --release -- e4 e6  # a subset
//! ```

pub mod experiments;
pub mod table;

pub use table::Table;
