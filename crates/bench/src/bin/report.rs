//! Experiment report generator: prints the paper-style table for every
//! experiment (or the requested subset).

use hpf_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tables = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::run_all()
    } else {
        let mut out = Vec::new();
        for a in &args {
            match experiments::run_one(&a.to_lowercase()) {
                Some(t) => out.push(t),
                None => {
                    eprintln!(
                        "unknown experiment id '{a}' \
                         (expected e1..e30, or 'soak'/'telemetry'/'rca')"
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    };
    for t in tables {
        println!("{}", t.render());
    }
}
