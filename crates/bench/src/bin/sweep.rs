//! CSV sweep emitter: re-runs an experiment family over a parameter grid
//! and prints machine-readable rows (for plotting the paper-style
//! figures from a spreadsheet or gnuplot).
//!
//! ```text
//! cargo run -p hpf-bench --bin sweep --release -- saxpy > saxpy.csv
//! cargo run -p hpf-bench --bin sweep --release -- dot
//! cargo run -p hpf-bench --bin sweep --release -- matvec
//! cargo run -p hpf-bench --bin sweep --release -- cg-scaling
//! cargo run -p hpf-bench --bin sweep --release -- balance
//! ```

use hpf_core::{DataArrayLayout, DistVector, RowwiseCsr};
use hpf_dist::{partition, ArrayDescriptor};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_solvers::{cg_distributed, StopCriterion};
use hpf_sparse::gen;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: sweep <saxpy|dot|matvec|cg-scaling|balance>");
        std::process::exit(2);
    });
    match which.as_str() {
        "saxpy" => saxpy(),
        "dot" => dot(),
        "matvec" => matvec(),
        "cg-scaling" => cg_scaling(),
        "balance" => balance(),
        other => {
            eprintln!("unknown sweep '{other}'");
            std::process::exit(2);
        }
    }
}

fn saxpy() {
    println!("n,np,time_us,comm_words");
    for n_pow in [12usize, 14, 16, 18] {
        let n = 1usize << n_pow;
        for np in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let mut m = Machine::hypercube(np);
            let d = ArrayDescriptor::block(n, np);
            let mut y = DistVector::zeros(d.clone());
            let x = DistVector::constant(d, 1.0);
            y.axpy(&mut m, 2.0, &x);
            println!(
                "{n},{np},{:.3},{}",
                m.elapsed() * 1e6,
                m.trace().total_comm_words()
            );
        }
    }
}

fn dot() {
    println!("n,np,topology,local_us,merge_us");
    for np in [2usize, 4, 8, 16, 32, 64] {
        for topo in [Topology::Hypercube, Topology::Mesh2D, Topology::Ring] {
            let n = 1usize << 14;
            let mut m = Machine::new(np, topo, CostModel::mpp_1995());
            let d = ArrayDescriptor::block(n, np);
            let a = DistVector::constant(d.clone(), 1.0);
            let b = DistVector::constant(d, 2.0);
            let _ = a.dot(&mut m, &b);
            let local: f64 = m.trace().with_label("dot-local").map(|e| e.time).sum();
            let merge: f64 = m.trace().with_label("dot-merge").map(|e| e.time).sum();
            println!(
                "{n},{np},{},{:.3},{:.3}",
                topo.name(),
                local * 1e6,
                merge * 1e6
            );
        }
    }
}

fn matvec() {
    println!("n,np,layout,bcast_words,fetch_words,total_us");
    for n in [256usize, 1024, 4096] {
        let a = gen::random_spd(n, 6, 42);
        for np in [2usize, 4, 8, 16, 32] {
            for (layout, name) in [
                (DataArrayLayout::RowAligned, "row-aligned"),
                (DataArrayLayout::ElementBlock, "element-block"),
            ] {
                let op = RowwiseCsr::block(a.clone(), np, layout);
                let p = DistVector::constant(ArrayDescriptor::block(n, np), 1.0);
                let mut m = Machine::hypercube(np);
                let (_, stats) = op.matvec(&mut m, &p);
                println!(
                    "{n},{np},{name},{},{},{:.3}",
                    stats.broadcast_words,
                    stats.remote_data_words,
                    m.elapsed() * 1e6
                );
            }
        }
    }
}

fn cg_scaling() {
    println!("model,np,n,iterations,time_ms,comm_frac");
    let a = gen::poisson_2d(32, 32);
    let n = a.n_rows();
    let (_, b) = gen::rhs_for_known_solution(&a);
    for (model, name) in [
        (CostModel::tight_mpp(), "tight-mpp"),
        (CostModel::mpp_1995(), "mpp-1995"),
        (CostModel::lan_cluster(), "lan-cluster"),
    ] {
        for np in [1usize, 2, 4, 8, 16, 32, 64] {
            let mut m = Machine::new(np, Topology::Hypercube, model);
            let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
            let (_, stats) = cg_distributed(
                &mut m,
                &op,
                &b,
                StopCriterion::RelativeResidual(1e-8),
                10 * n,
            )
            .expect("SPD");
            println!(
                "{name},{np},{n},{},{:.3},{:.3}",
                stats.iterations,
                m.elapsed() * 1e3,
                m.trace().comm_time() / m.elapsed().max(1e-300)
            );
        }
    }
}

fn balance() {
    println!("alpha,np,distribution,imbalance");
    for alpha in [0.3f64, 0.6, 0.9, 1.2] {
        let n = 1024;
        let a = gen::power_law_spd(n, 128, alpha, 19);
        let weights: Vec<usize> = (0..n).map(|r| a.row_nnz(r)).collect();
        for np in [4usize, 8, 16, 32] {
            let bs = n.div_ceil(np);
            let block_owner: Vec<usize> = (0..n).map(|i| (i / bs).min(np - 1)).collect();
            let b_imb = partition::imbalance(&partition::loads(&weights, &block_owner, np));
            println!("{alpha},{np},block,{b_imb:.4}");

            let cuts = partition::balanced_contiguous(&weights, np).expect("np > 0");
            let asg = partition::assignment_from_cuts(&cuts, n);
            let p_imb = partition::imbalance(&partition::loads(&weights, &asg.atom_owner, np));
            println!("{alpha},{np},balanced,{p_imb:.4}");

            let lpt = partition::greedy_lpt(&weights, np).expect("np > 0");
            let l_imb = partition::imbalance(&partition::loads(&weights, &lpt, np));
            println!("{alpha},{np},lpt,{l_imb:.4}");
        }
    }
}
