//! `trace-report` — turn saved observability artifacts into exports
//! and human-readable analysis.
//!
//! ```text
//! trace-report --trace trace.jsonl --format summary
//! trace-report --trace trace.jsonl --format perfetto --format prom \
//!              --metrics metrics.json --out target/obs
//! ```
//!
//! Inputs:
//! - `--trace FILE`    machine event trace in JSONL (`Trace::to_jsonl`)
//! - `--metrics FILE`  service metrics JSON (`MetricsSnapshot::to_json`)
//!
//! Formats (repeatable; default `summary`):
//! - `perfetto`  Chrome/Perfetto trace-event JSON (needs `--trace`)
//! - `prom`      Prometheus text exposition (needs `--metrics`)
//! - `csv`       per-span cost attribution CSV (needs `--trace`)
//! - `summary`   critical path, load imbalance, top spans (needs `--trace`)
//!
//! Without `--out DIR` every export goes to stdout in the order
//! requested; with it, each lands in its own file and the path is
//! printed. Exit status is non-zero on unreadable input or an export
//! that validates as empty/malformed.

use hpf_machine::Trace;
use hpf_obs::{critical_path, load_imbalance, snapshot_from_json, span_costs, Timeline};
use std::path::PathBuf;

struct Args {
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    formats: Vec<String>,
    out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace-report [--trace FILE] [--metrics FILE] \
         [--format perfetto|prom|csv|summary]... [--out DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        trace: None,
        metrics: None,
        formats: Vec::new(),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--trace" => args.trace = Some(PathBuf::from(value("--trace"))),
            "--metrics" => args.metrics = Some(PathBuf::from(value("--metrics"))),
            "--format" => args.formats.push(value("--format")),
            "--out" => args.out = Some(PathBuf::from(value("--out"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.formats.is_empty() {
        args.formats.push("summary".to_string());
    }
    args
}

fn fail(why: &str) -> ! {
    eprintln!("trace-report: {why}");
    std::process::exit(1);
}

fn load_trace(args: &Args) -> Trace {
    let path = args
        .trace
        .as_ref()
        .unwrap_or_else(|| fail("this format needs --trace FILE"));
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let trace = Trace::from_jsonl(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", path.display())));
    if trace.events().is_empty() {
        fail(&format!("{} contains no events", path.display()));
    }
    trace
}

fn render_summary(trace: &Trace) -> String {
    let report = critical_path(trace);
    let mut out = String::new();
    out.push_str(&format!(
        "critical path: {:.6e} s (compute {:.1}%, comm {:.1}%, fault {:.1}%) over {} events\n",
        report.total_seconds,
        100.0 * report.compute_seconds / report.total_seconds.max(f64::MIN_POSITIVE),
        100.0 * report.comm_seconds / report.total_seconds.max(f64::MIN_POSITIVE),
        100.0 * report.fault_seconds / report.total_seconds.max(f64::MIN_POSITIVE),
        trace.events().len(),
    ));
    match load_imbalance(trace) {
        Some(li) => out.push_str(&format!(
            "load imbalance: {:.3} (max/mean compute time over {} processors)\n",
            li.ratio,
            li.busy.len()
        )),
        None => out.push_str("load imbalance: n/a (no per-processor compute timings)\n"),
    }
    out.push_str("top spans by critical-path seconds:\n");
    for cost in report.by_span.iter().take(10) {
        let key = if cost.key.is_empty() {
            "(no span)"
        } else {
            &cost.key
        };
        out.push_str(&format!(
            "  {:<40} {:>12.6e} s  x{:<6} {:>10} words {:>12} flops\n",
            key, cost.seconds, cost.count, cost.words, cost.flops
        ));
    }
    out
}

fn render_csv(trace: &Trace) -> String {
    let mut out = String::from("span,count,seconds,words,flops\n");
    for c in span_costs(trace) {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            c.key, c.count, c.seconds, c.words, c.flops
        ));
    }
    out
}

fn main() {
    let args = parse_args();
    for format in &args.formats {
        let (content, filename) = match format.as_str() {
            "perfetto" => {
                let trace = load_trace(&args);
                let doc = hpf_obs::trace_events_json(&Timeline::from_trace(&trace));
                hpf_obs::json::validate(&doc)
                    .unwrap_or_else(|e| fail(&format!("perfetto export invalid: {e}")));
                (doc, "trace.perfetto.json")
            }
            "prom" => {
                let path = args
                    .metrics
                    .as_ref()
                    .unwrap_or_else(|| fail("prom needs --metrics FILE"));
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
                let snap = snapshot_from_json(&text)
                    .unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", path.display())));
                (hpf_obs::render_prometheus(&snap), "metrics.prom")
            }
            "csv" => (render_csv(&load_trace(&args)), "spans.csv"),
            "summary" => (render_summary(&load_trace(&args)), "summary.txt"),
            other => fail(&format!("unknown format {other:?}")),
        };
        if content.is_empty() {
            fail(&format!("{format} export is empty"));
        }
        match &args.out {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
                let path = dir.join(filename);
                std::fs::write(&path, content)
                    .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
                println!("{}", path.display());
            }
            None => print!("{content}"),
        }
    }
}
