//! `trace-report` — turn saved observability artifacts into exports
//! and human-readable analysis.
//!
//! ```text
//! trace-report --trace trace.jsonl --format summary
//! trace-report --trace trace.jsonl --format perfetto --format prom \
//!              --metrics metrics.json --out target/obs
//! trace-report --trace trace.jsonl --format drift --topology hypercube
//! trace-report bench-diff BENCH_prev.json BENCH_cur.json --max-regression 10
//! ```
//!
//! Inputs:
//! - `--trace FILE`    machine event trace in JSONL (`Trace::to_jsonl`)
//! - `--metrics FILE`  service metrics JSON (`MetricsSnapshot::to_json`)
//!
//! Formats (repeatable; default `summary`):
//! - `perfetto`   Chrome/Perfetto trace-event JSON (needs `--trace`)
//! - `prom`       Prometheus text exposition (needs `--metrics`)
//! - `csv`        per-span cost attribution CSV (needs `--trace`)
//! - `summary`    critical path, load imbalance, top spans (needs `--trace`)
//! - `drift`      cost-oracle predicted-vs-measured table (needs `--trace`)
//! - `drift-json` the same report as strict JSON (what `/drift` serves)
//!
//! The oracle formats price the trace under `--topology` (default
//! `hypercube`) and `--cost` (default `mpp-1995`; also `lan-cluster`,
//! `tight-mpp`, `zero-comm`).
//!
//! The `bench-diff` subcommand renders two `BENCH_<n>.json` records as
//! a regression table and exits non-zero when any shared series
//! regressed by more than `--max-regression` percent (default 10).
//!
//! Without `--out DIR` every export goes to stdout in the order
//! requested; with it, each lands in its own file and the path is
//! printed. `--quiet` suppresses stdout payloads (for CI, where only
//! the exit status and written files matter). Exit status is non-zero
//! on unreadable input, a failed validation, or a bench regression.

use hpf_machine::{CostModel, Topology, Trace};
use hpf_obs::{
    critical_path, load_imbalance, render_diff, snapshot_from_json, span_costs, BenchRecord,
    DriftReport, Timeline,
};
use std::path::PathBuf;

struct Args {
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    formats: Vec<String>,
    out: Option<PathBuf>,
    topology: Topology,
    cost: CostModel,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace-report [--trace FILE] [--metrics FILE] \
         [--format perfetto|prom|csv|summary|drift|drift-json]... \
         [--topology NAME] [--cost PRESET] [--out DIR] [--quiet]\n\
         \x20      trace-report bench-diff PREV.json CUR.json \
         [--max-regression PCT] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_topology(name: &str) -> Topology {
    match name {
        "hypercube" => Topology::Hypercube,
        "mesh2d" => Topology::Mesh2D,
        "ring" => Topology::Ring,
        "fully-connected" => Topology::FullyConnected,
        "bus" => Topology::Bus,
        other => fail(&format!(
            "unknown topology {other:?} (try hypercube, mesh2d, ring, fully-connected, bus)"
        )),
    }
}

fn parse_cost(name: &str) -> CostModel {
    match name {
        "mpp-1995" => CostModel::mpp_1995(),
        "lan-cluster" => CostModel::lan_cluster(),
        "tight-mpp" => CostModel::tight_mpp(),
        "zero-comm" => CostModel::zero_comm(),
        other => fail(&format!(
            "unknown cost preset {other:?} (try mpp-1995, lan-cluster, tight-mpp, zero-comm)"
        )),
    }
}

fn parse_args(raw: Vec<String>) -> Args {
    let mut args = Args {
        trace: None,
        metrics: None,
        formats: Vec::new(),
        out: None,
        topology: Topology::Hypercube,
        cost: CostModel::mpp_1995(),
        quiet: false,
    };
    let mut it = raw.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--trace" => args.trace = Some(PathBuf::from(value("--trace"))),
            "--metrics" => args.metrics = Some(PathBuf::from(value("--metrics"))),
            "--format" => args.formats.push(value("--format")),
            "--out" => args.out = Some(PathBuf::from(value("--out"))),
            "--topology" => args.topology = parse_topology(&value("--topology")),
            "--cost" => args.cost = parse_cost(&value("--cost")),
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.formats.is_empty() {
        args.formats.push("summary".to_string());
    }
    args
}

fn fail(why: &str) -> ! {
    eprintln!("trace-report: {why}");
    std::process::exit(1);
}

fn load_trace(args: &Args) -> Trace {
    let path = args
        .trace
        .as_ref()
        .unwrap_or_else(|| fail("this format needs --trace FILE"));
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let trace = Trace::from_jsonl(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", path.display())));
    if trace.events().is_empty() {
        fail(&format!("{} contains no events", path.display()));
    }
    trace
}

fn render_summary(trace: &Trace) -> String {
    let report = critical_path(trace);
    let mut out = String::new();
    out.push_str(&format!(
        "critical path: {:.6e} s (compute {:.1}%, comm {:.1}%, fault {:.1}%) over {} events\n",
        report.total_seconds,
        100.0 * report.compute_seconds / report.total_seconds.max(f64::MIN_POSITIVE),
        100.0 * report.comm_seconds / report.total_seconds.max(f64::MIN_POSITIVE),
        100.0 * report.fault_seconds / report.total_seconds.max(f64::MIN_POSITIVE),
        trace.events().len(),
    ));
    match load_imbalance(trace) {
        Some(li) => out.push_str(&format!(
            "load imbalance: {:.3} (max/mean compute time over {} processors)\n",
            li.ratio,
            li.busy.len()
        )),
        None => out.push_str("load imbalance: n/a (no per-processor compute timings)\n"),
    }
    out.push_str("top spans by critical-path seconds:\n");
    for cost in report.by_span.iter().take(10) {
        let key = if cost.key.is_empty() {
            "(no span)"
        } else {
            &cost.key
        };
        out.push_str(&format!(
            "  {:<40} {:>12.6e} s  x{:<6} {:>10} words {:>12} flops\n",
            key, cost.seconds, cost.count, cost.words, cost.flops
        ));
    }
    out
}

fn render_csv(trace: &Trace) -> String {
    let mut out = String::from("span,count,seconds,words,flops\n");
    for c in span_costs(trace) {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            c.key, c.count, c.seconds, c.words, c.flops
        ));
    }
    out
}

fn load_bench(path: &str) -> BenchRecord {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    BenchRecord::from_json(text.trim())
        .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

/// `trace-report bench-diff PREV CUR [--max-regression PCT] [--quiet]`.
fn bench_diff(raw: Vec<String>) -> ! {
    let mut files = Vec::new();
    let mut max_pct = 10.0;
    let mut quiet = false;
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regression" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--max-regression needs a value");
                    usage()
                });
                max_pct = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --max-regression {v:?}")));
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if files.len() != 2 {
        eprintln!("bench-diff needs exactly two BENCH_<n>.json files");
        usage()
    }
    let prev = load_bench(&files[0]);
    let cur = load_bench(&files[1]);
    let (table, regressed) = render_diff(&prev, &cur, max_pct);
    if !quiet {
        print!("{table}");
    }
    if regressed {
        eprintln!("trace-report: bench-diff found regressions beyond {max_pct}%");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("bench-diff") {
        raw.remove(0);
        bench_diff(raw);
    }
    let args = parse_args(raw);
    for format in &args.formats {
        let (content, filename) = match format.as_str() {
            "perfetto" => {
                let trace = load_trace(&args);
                let doc = hpf_obs::trace_events_json(&Timeline::from_trace(&trace))
                    .unwrap_or_else(|e| fail(&format!("perfetto export failed: {e}")));
                hpf_obs::json::validate(&doc)
                    .unwrap_or_else(|e| fail(&format!("perfetto export invalid: {e}")));
                (doc, "trace.perfetto.json")
            }
            "prom" => {
                let path = args
                    .metrics
                    .as_ref()
                    .unwrap_or_else(|| fail("prom needs --metrics FILE"));
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
                let snap = snapshot_from_json(&text)
                    .unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", path.display())));
                (hpf_obs::render_prometheus(&snap), "metrics.prom")
            }
            "csv" => (render_csv(&load_trace(&args)), "spans.csv"),
            "summary" => (render_summary(&load_trace(&args)), "summary.txt"),
            "drift" => {
                let trace = load_trace(&args);
                let report = DriftReport::from_trace(&trace, args.topology, &args.cost);
                (report.render(), "drift.txt")
            }
            "drift-json" => {
                let trace = load_trace(&args);
                let report = DriftReport::from_trace(&trace, args.topology, &args.cost);
                let json = report.to_json();
                hpf_obs::json::validate(&json)
                    .unwrap_or_else(|e| fail(&format!("drift export invalid: {e}")));
                (json, "drift.json")
            }
            other => fail(&format!("unknown format {other:?}")),
        };
        if content.is_empty() {
            fail(&format!("{format} export is empty"));
        }
        match &args.out {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
                let path = dir.join(filename);
                std::fs::write(&path, content)
                    .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
                if !args.quiet {
                    println!("{}", path.display());
                }
            }
            None if args.quiet => {}
            None => print!("{content}"),
        }
    }
}
