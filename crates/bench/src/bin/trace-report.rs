//! `trace-report` — turn saved observability artifacts into exports
//! and human-readable analysis.
//!
//! ```text
//! trace-report --trace trace.jsonl --format summary
//! trace-report --trace trace.jsonl --format perfetto --format prom \
//!              --metrics metrics.json --out target/obs
//! trace-report --trace trace.jsonl --format drift --topology hypercube
//! trace-report bench-diff BENCH_prev.json BENCH_cur.json --max-regression 10
//! ```
//!
//! Inputs:
//! - `--trace FILE`    machine event trace in JSONL (`Trace::to_jsonl`)
//! - `--metrics FILE`  service metrics JSON (`MetricsSnapshot::to_json`)
//!
//! Formats (repeatable; default `summary`):
//! - `perfetto`   Chrome/Perfetto trace-event JSON (needs `--trace`)
//! - `prom`       Prometheus text exposition (needs `--metrics`)
//! - `csv`        per-span cost attribution CSV (needs `--trace`)
//! - `summary`    critical path, load imbalance, top spans (needs `--trace`)
//! - `drift`      cost-oracle predicted-vs-measured table (needs `--trace`)
//! - `drift-json` the same report as strict JSON (what `/drift` serves)
//! - `partition`  per-partitioner comm accounting: the trace is split at
//!   every `REDISTRIBUTE USING <name>` event and each segment's measured
//!   comm volume/time is set against the oracle's modeled time
//!   (needs `--trace`; exits non-zero on a trace with no redistribute
//!   events — there is nothing to account)
//! - `mg`         per-multigrid-level accounting: events are grouped by
//!   the `level=L` segment of their span path and each level's time,
//!   comm volume, and busy-time imbalance are tabulated (needs
//!   `--trace`; exits non-zero on a trace with no level spans)
//! - `flame`      collapsed-stack self-time profile (`frame;frame;leaf
//!   <microseconds>` per line — feed it to any flamegraph renderer);
//!   span parameters are normalized (`iter=12` → `iter=*`) so the
//!   profile aggregates across iterations and requests (needs `--trace`)
//!
//! Post-mortem mode: `--postmortem FILE` reads a flight-recorder dump
//! (`Postmortem::to_json`, what `/postmortems/<trace>` serves) and
//! renders it with:
//! - `postmortem`  the full autopsy: trigger, ranked causes with
//!   confidence, retained-evidence counts, narrative
//! - `explain`     just the one-paragraph narrative
//!
//! Both refuse (exit 1) any input without the `hpf-postmortem/1` schema
//! marker — pointing them at a clean trace or a metrics file is an
//! error, not an empty report.
//!
//! Live mode: `--follow FILE` tails a bus JSONL file (what
//! `EventBus::drain` + `BusEvent::to_jsonl` append during a run),
//! feeding the span profiler and the SLO tracker as lines land. It
//! re-renders the hot-span table on each batch of new events, prints
//! every alert transition, and exits once the file has been idle for
//! `--idle-ms` (default 2000; `--interval-ms` sets the poll period).
//! Partial trailing lines (a writer mid-append) are left for the next
//! poll. A file that *shrinks* between polls (log rotation or
//! truncation) is re-read from the start instead of being silently
//! ignored. Exits non-zero when no bus event was ever seen.
//!
//! The oracle formats price the trace under `--topology` (default
//! `hypercube`) and `--cost` (default `mpp-1995`; also `lan-cluster`,
//! `tight-mpp`, `zero-comm`).
//!
//! The `bench-diff` subcommand renders two `BENCH_<n>.json` records as
//! a regression table and exits non-zero when any shared series
//! regressed by more than `--max-regression` percent (default 10).
//!
//! Without `--out DIR` every export goes to stdout in the order
//! requested; with it, each lands in its own file and the path is
//! printed. `--quiet` suppresses stdout payloads (for CI, where only
//! the exit status and written files matter). Exit status is non-zero
//! on unreadable input, a failed validation, or a bench regression.

use hpf_machine::{
    level_of, predicted_or_measured_total, CostModel, Event, EventKind, Topology, Trace,
};
use hpf_obs::{
    critical_path, load_imbalance, render_diff, snapshot_from_json, span_costs, BenchRecord,
    DriftReport, Timeline,
};
use std::path::PathBuf;

struct Args {
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    postmortem: Option<PathBuf>,
    formats: Vec<String>,
    out: Option<PathBuf>,
    topology: Topology,
    cost: CostModel,
    quiet: bool,
    follow: Option<PathBuf>,
    interval_ms: u64,
    idle_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace-report [--trace FILE] [--metrics FILE] [--postmortem FILE] \
         [--format perfetto|prom|csv|summary|drift|drift-json|partition|mg|flame|\
         postmortem|explain]... \
         [--topology NAME] [--cost PRESET] [--out DIR] [--quiet]\n\
         \x20      trace-report --follow BUS.jsonl [--interval-ms N] [--idle-ms N] [--quiet]\n\
         \x20      trace-report bench-diff PREV.json CUR.json \
         [--max-regression PCT] [--quiet]\n\
         \x20      trace-report --version"
    );
    std::process::exit(2);
}

fn parse_topology(name: &str) -> Topology {
    match name {
        "hypercube" => Topology::Hypercube,
        "mesh2d" => Topology::Mesh2D,
        "ring" => Topology::Ring,
        "fully-connected" => Topology::FullyConnected,
        "bus" => Topology::Bus,
        other => fail(&format!(
            "unknown topology {other:?} (try hypercube, mesh2d, ring, fully-connected, bus)"
        )),
    }
}

fn parse_cost(name: &str) -> CostModel {
    match name {
        "mpp-1995" => CostModel::mpp_1995(),
        "lan-cluster" => CostModel::lan_cluster(),
        "tight-mpp" => CostModel::tight_mpp(),
        "zero-comm" => CostModel::zero_comm(),
        other => fail(&format!(
            "unknown cost preset {other:?} (try mpp-1995, lan-cluster, tight-mpp, zero-comm)"
        )),
    }
}

fn parse_args(raw: Vec<String>) -> Args {
    let mut args = Args {
        trace: None,
        metrics: None,
        postmortem: None,
        formats: Vec::new(),
        out: None,
        topology: Topology::Hypercube,
        cost: CostModel::mpp_1995(),
        quiet: false,
        follow: None,
        interval_ms: 500,
        idle_ms: 2000,
    };
    let mut it = raw.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        let parse_ms = |name: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("bad {name} {v:?} (want milliseconds)")))
        };
        match flag.as_str() {
            "--trace" => args.trace = Some(PathBuf::from(value("--trace"))),
            "--metrics" => args.metrics = Some(PathBuf::from(value("--metrics"))),
            "--postmortem" => args.postmortem = Some(PathBuf::from(value("--postmortem"))),
            "--format" => args.formats.push(value("--format")),
            "--out" => args.out = Some(PathBuf::from(value("--out"))),
            "--topology" => args.topology = parse_topology(&value("--topology")),
            "--cost" => args.cost = parse_cost(&value("--cost")),
            "--follow" => args.follow = Some(PathBuf::from(value("--follow"))),
            "--interval-ms" => args.interval_ms = parse_ms("--interval-ms", value("--interval-ms")),
            "--idle-ms" => args.idle_ms = parse_ms("--idle-ms", value("--idle-ms")),
            "--quiet" | "-q" => args.quiet = true,
            "--version" | "-V" => {
                println!("trace-report {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.formats.is_empty() {
        args.formats.push("summary".to_string());
    }
    args
}

fn fail(why: &str) -> ! {
    eprintln!("trace-report: {why}");
    std::process::exit(1);
}

fn load_trace(args: &Args) -> Trace {
    let path = args
        .trace
        .as_ref()
        .unwrap_or_else(|| fail("this format needs --trace FILE"));
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let trace = Trace::from_jsonl(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", path.display())));
    if trace.events().is_empty() {
        fail(&format!("{} contains no events", path.display()));
    }
    trace
}

fn render_summary(trace: &Trace) -> String {
    let report = critical_path(trace);
    let mut out = String::new();
    out.push_str(&format!(
        "critical path: {:.6e} s (compute {:.1}%, comm {:.1}%, fault {:.1}%) over {} events\n",
        report.total_seconds,
        100.0 * report.compute_seconds / report.total_seconds.max(f64::MIN_POSITIVE),
        100.0 * report.comm_seconds / report.total_seconds.max(f64::MIN_POSITIVE),
        100.0 * report.fault_seconds / report.total_seconds.max(f64::MIN_POSITIVE),
        trace.events().len(),
    ));
    match load_imbalance(trace) {
        Some(li) => out.push_str(&format!(
            "load imbalance: {:.3} (max/mean compute time over {} processors)\n",
            li.ratio,
            li.busy.len()
        )),
        None => out.push_str("load imbalance: n/a (no per-processor compute timings)\n"),
    }
    out.push_str("top spans by critical-path seconds:\n");
    for cost in report.by_span.iter().take(10) {
        let key = if cost.key.is_empty() {
            "(no span)"
        } else {
            &cost.key
        };
        out.push_str(&format!(
            "  {:<40} {:>12.6e} s  x{:<6} {:>10} words {:>12} flops\n",
            key, cost.seconds, cost.count, cost.words, cost.flops
        ));
    }
    out
}

fn render_csv(trace: &Trace) -> String {
    let mut out = String::from("span,count,seconds,words,flops\n");
    for c in span_costs(trace) {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            c.key, c.count, c.seconds, c.words, c.flops
        ));
    }
    out
}

/// A trace that cannot support the requested analysis. Typed (rather
/// than a bare `fail`) so tests can assert the exact refusal and so the
/// message always carries the event count that was inspected.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ReportError {
    /// `--format partition` on a trace with no redistribute events:
    /// there are no layout switches or typed data motion to account.
    NoRedistributeEvents { events: usize },
    /// `--format mg` on a trace where no event's span carries a
    /// `level=L` segment: nothing was executed inside a V-cycle.
    NoLevelSpans { events: usize },
    /// `--format postmortem|explain` on input that is not a
    /// flight-recorder dump (a clean trace, a metrics file, garbage):
    /// refuse rather than render an empty autopsy.
    NotAPostmortem { why: String },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::NoRedistributeEvents { events } => write!(
                f,
                "partition report needs redistribute events; none among the {events} traced"
            ),
            ReportError::NoLevelSpans { events } => write!(
                f,
                "mg report needs level= span segments; none among the {events} traced"
            ),
            ReportError::NotAPostmortem { why } => {
                write!(f, "input is not a flight-recorder post-mortem: {why}")
            }
        }
    }
}

/// Parse a flight-recorder dump, refusing anything without the schema
/// marker (the typed path behind `--format postmortem|explain`).
fn parse_postmortem(text: &str) -> Result<hpf_obs::PostmortemSummary, ReportError> {
    hpf_obs::postmortem_summary_from_json(text).map_err(|why| ReportError::NotAPostmortem { why })
}

fn load_postmortem(args: &Args) -> hpf_obs::PostmortemSummary {
    let path = args
        .postmortem
        .as_ref()
        .unwrap_or_else(|| fail("this format needs --postmortem FILE"));
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    parse_postmortem(&text).unwrap_or_else(|e| fail(&e.to_string()))
}

fn render_postmortem(pm: &hpf_obs::PostmortemSummary) -> String {
    let mut out = format!("post-mortem {} (class {})\n", pm.trace, pm.class);
    out.push_str(&format!(
        "trigger: {}   outcome: {}\n",
        pm.trigger, pm.outcome
    ));
    out.push_str(&format!(
        "evidence retained: {} machine event(s) ({} overwritten), {} service event(s), {} \
         residual sample(s)\n",
        pm.machine_events, pm.machine_overwritten, pm.service_events, pm.residual_samples
    ));
    out.push_str("ranked causes:\n");
    for (i, (verdict, confidence)) in pm.causes.iter().enumerate() {
        out.push_str(&format!(
            "  {}. {:<22} confidence {:.2}\n",
            i + 1,
            verdict,
            confidence
        ));
    }
    out.push_str("narrative:\n");
    out.push_str(&format!("  {}\n", pm.narrative));
    out
}

/// Label prefix every partitioner-driven redistribution carries (see
/// `hpf_dist::redistribute_using` and the sparse trio directive).
const REDISTRIBUTE_USING: &str = "REDISTRIBUTE USING ";

/// One contiguous run of trace events executed under a single
/// partitioner's layout, delimited by `REDISTRIBUTE USING <name>`
/// events. The opening redistribution itself is accounted separately as
/// the segment's switch cost.
struct PartitionSegment {
    partitioner: String,
    switch_words: usize,
    switch_seconds: f64,
    events: Vec<Event>,
}

fn partition_segments(trace: &Trace) -> Vec<PartitionSegment> {
    let mut segments = vec![PartitionSegment {
        partitioner: "(initial)".to_string(),
        switch_words: 0,
        switch_seconds: 0.0,
        events: Vec::new(),
    }];
    for e in trace.events() {
        if e.kind == EventKind::Redistribute && e.label.starts_with(REDISTRIBUTE_USING) {
            segments.push(PartitionSegment {
                partitioner: e.label[REDISTRIBUTE_USING.len()..].to_string(),
                switch_words: e.words,
                switch_seconds: e.time,
                events: Vec::new(),
            });
        } else if let Some(seg) = segments.last_mut() {
            seg.events.push(e.clone());
        }
    }
    // A trace that opens with a redistribution has no pre-layout work.
    if segments.len() > 1 && segments[0].events.is_empty() {
        segments.remove(0);
    }
    segments
}

fn render_partition(
    trace: &Trace,
    topology: Topology,
    cost: &CostModel,
) -> Result<String, ReportError> {
    if !trace
        .events()
        .iter()
        .any(|e| e.kind == EventKind::Redistribute)
    {
        return Err(ReportError::NoRedistributeEvents {
            events: trace.events().len(),
        });
    }
    let segments = partition_segments(trace);
    let mut out = format!(
        "partition report: {} segment(s) over {} events, priced on {:?}\n",
        segments.len(),
        trace.events().len(),
        topology,
    );
    out.push_str(&format!(
        "{:<24} {:>7} {:>12} {:>14} {:>14} {:>9} {:>12} {:>12}\n",
        "partitioner",
        "events",
        "comm-words",
        "measured-s",
        "modeled-s",
        "drift%",
        "switch-words",
        "switch-s"
    ));
    for seg in &segments {
        let comm: Vec<Event> = seg
            .events
            .iter()
            .filter(|e| !matches!(e.kind, EventKind::Compute))
            .cloned()
            .collect();
        let comm_words: usize = comm.iter().map(|e| e.words).sum();
        let measured: f64 = comm.iter().map(|e| e.time).sum();
        let modeled = predicted_or_measured_total(&comm, topology, cost);
        let drift = if modeled > 0.0 {
            100.0 * (measured - modeled) / modeled
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<24} {:>7} {:>12} {:>14.6e} {:>14.6e} {:>+9.1} {:>12} {:>12.6e}\n",
            seg.partitioner,
            seg.events.len(),
            comm_words,
            measured,
            modeled,
            drift,
            seg.switch_words,
            seg.switch_seconds,
        ));
    }
    let switch_words: usize = segments.iter().map(|s| s.switch_words).sum();
    let switch_seconds: f64 = segments.iter().map(|s| s.switch_seconds).sum();
    out.push_str(&format!(
        "total redistribution cost: {switch_words} words, {switch_seconds:.6e} s across {} switch(es)\n",
        segments.iter().filter(|s| s.switch_words > 0).count(),
    ));
    Ok(out)
}

/// Per-multigrid-level accounting: every event whose span path carries
/// a `level=L` segment is attributed to that level; per-level busy
/// times come from the events' per-processor timings.
fn render_mg(trace: &Trace) -> Result<String, ReportError> {
    #[derive(Default)]
    struct LevelAgg {
        events: usize,
        seconds: f64,
        comm_words: usize,
        comm_seconds: f64,
        busy: Vec<f64>,
    }
    let mut levels: std::collections::BTreeMap<usize, LevelAgg> = std::collections::BTreeMap::new();
    let mut outside = 0usize;
    for e in trace.events() {
        let Some(level) = level_of(&e.span) else {
            outside += 1;
            continue;
        };
        let agg = levels.entry(level).or_default();
        agg.events += 1;
        agg.seconds += e.time;
        if e.kind != EventKind::Compute {
            agg.comm_words += e.words;
            agg.comm_seconds += e.time;
        }
        if agg.busy.len() < e.proc_times.len() {
            agg.busy.resize(e.proc_times.len(), 0.0);
        }
        for (p, t) in e.proc_times.iter().enumerate() {
            agg.busy[p] += t;
        }
    }
    if levels.is_empty() {
        return Err(ReportError::NoLevelSpans {
            events: trace.events().len(),
        });
    }
    let mut out = format!(
        "multigrid report: {} level(s) over {} events ({} outside level spans)\n",
        levels.len(),
        trace.events().len(),
        outside,
    );
    out.push_str(&format!(
        "{:<6} {:>7} {:>14} {:>12} {:>14} {:>10}\n",
        "level", "events", "seconds", "comm-words", "comm-s", "imbalance"
    ));
    for (level, agg) in &levels {
        let mean = agg.busy.iter().sum::<f64>() / agg.busy.len().max(1) as f64;
        let imbalance = if mean > 0.0 {
            agg.busy.iter().cloned().fold(0.0f64, f64::max) / mean
        } else {
            1.0
        };
        out.push_str(&format!(
            "{:<6} {:>7} {:>14.6e} {:>12} {:>14.6e} {:>10.3}\n",
            level, agg.events, agg.seconds, agg.comm_words, agg.comm_seconds, imbalance,
        ));
    }
    Ok(out)
}

fn load_bench(path: &str) -> BenchRecord {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    BenchRecord::from_json(text.trim())
        .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

/// `trace-report bench-diff PREV CUR [--max-regression PCT] [--quiet]`.
fn bench_diff(raw: Vec<String>) -> ! {
    let mut files = Vec::new();
    let mut max_pct = 10.0;
    let mut quiet = false;
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regression" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--max-regression needs a value");
                    usage()
                });
                max_pct = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --max-regression {v:?}")));
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if files.len() != 2 {
        eprintln!("bench-diff needs exactly two BENCH_<n>.json files");
        usage()
    }
    let prev = load_bench(&files[0]);
    let cur = load_bench(&files[1]);
    let (table, regressed) = render_diff(&prev, &cur, max_pct);
    if !quiet {
        print!("{table}");
    }
    if regressed {
        eprintln!("trace-report: bench-diff found regressions beyond {max_pct}%");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Consume every complete line in `text` past `processed`, feeding the
/// profiler and SLO tracker; a partial trailing line (writer mid-append)
/// is left for the next poll. Returns how many events landed.
fn follow_consume(
    text: &str,
    processed: &mut usize,
    profile: &mut hpf_obs::SpanProfile,
    slo: &mut hpf_obs::SloTracker,
    latest_wall: &mut f64,
    malformed: &mut u64,
) -> u64 {
    if text.len() < *processed {
        // The file shrank between polls: it was rotated or truncated by
        // the writer. Everything in it is new — re-read from the start.
        *processed = 0;
    }
    let unseen = &text[*processed..];
    let Some(last_nl) = unseen.rfind('\n') else {
        return 0;
    };
    let mut landed = 0u64;
    for line in unseen[..=last_nl].lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match hpf_obs::BusEvent::from_jsonl(line) {
            Ok(e) => {
                *latest_wall = latest_wall.max(e.wall_s);
                slo.observe_bus_event(&e);
                profile.record_bus_event(&e);
                landed += 1;
            }
            Err(_) => *malformed += 1,
        }
    }
    *processed += last_nl + 1;
    landed
}

/// `--follow FILE`: tail a live bus JSONL file until it goes idle.
fn follow(path: &std::path::Path, args: &Args) -> ! {
    let interval = std::time::Duration::from_millis(args.interval_ms.max(1));
    let idle = std::time::Duration::from_millis(args.idle_ms.max(1));
    let mut profile = hpf_obs::SpanProfile::new();
    let mut slo = hpf_obs::SloTracker::soak_defaults();
    let mut processed = 0usize;
    let mut seen = 0u64;
    let mut malformed = 0u64;
    let mut latest_wall = 0.0f64;
    let mut last_new = std::time::Instant::now();
    loop {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let landed = follow_consume(
            &text,
            &mut processed,
            &mut profile,
            &mut slo,
            &mut latest_wall,
            &mut malformed,
        );
        if landed > 0 {
            seen += landed;
            last_new = std::time::Instant::now();
            for t in slo.evaluate(latest_wall) {
                println!(
                    "alert[{}] {} -> {} at {:.1}s (burn slow {:.2} fast {:.2})",
                    t.class.name(),
                    t.from.name(),
                    t.to.name(),
                    t.at_s,
                    t.slow_burn,
                    t.fast_burn,
                );
            }
            if !args.quiet {
                println!("-- {seen} event(s), bus clock {latest_wall:.1}s --");
                print!("{}", profile.render_top(10));
            }
        } else if last_new.elapsed() >= idle {
            break;
        }
        std::thread::sleep(interval);
    }
    if seen == 0 {
        fail(&format!(
            "follow saw no bus events in {} before going idle",
            path.display()
        ));
    }
    println!(
        "followed {} event(s) ({malformed} malformed line(s)), {} alert transition(s)",
        seen,
        slo.log().len()
    );
    print!("{}", profile.render_top(10));
    std::process::exit(0);
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("bench-diff") {
        raw.remove(0);
        bench_diff(raw);
    }
    let args = parse_args(raw);
    if let Some(path) = args.follow.clone() {
        follow(&path, &args);
    }
    for format in &args.formats {
        let (content, filename) = match format.as_str() {
            "perfetto" => {
                let trace = load_trace(&args);
                let doc = hpf_obs::trace_events_json(&Timeline::from_trace(&trace))
                    .unwrap_or_else(|e| fail(&format!("perfetto export failed: {e}")));
                hpf_obs::json::validate(&doc)
                    .unwrap_or_else(|e| fail(&format!("perfetto export invalid: {e}")));
                (doc, "trace.perfetto.json")
            }
            "prom" => {
                let path = args
                    .metrics
                    .as_ref()
                    .unwrap_or_else(|| fail("prom needs --metrics FILE"));
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
                let snap = snapshot_from_json(&text)
                    .unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", path.display())));
                (hpf_obs::render_prometheus(&snap), "metrics.prom")
            }
            "csv" => (render_csv(&load_trace(&args)), "spans.csv"),
            "summary" => (render_summary(&load_trace(&args)), "summary.txt"),
            "drift" => {
                let trace = load_trace(&args);
                let report = DriftReport::from_trace(&trace, args.topology, &args.cost);
                (report.render(), "drift.txt")
            }
            "partition" => {
                let trace = load_trace(&args);
                let report = render_partition(&trace, args.topology, &args.cost)
                    .unwrap_or_else(|e| fail(&e.to_string()));
                (report, "partition.txt")
            }
            "mg" => {
                let trace = load_trace(&args);
                let report = render_mg(&trace).unwrap_or_else(|e| fail(&e.to_string()));
                (report, "mg.txt")
            }
            "drift-json" => {
                let trace = load_trace(&args);
                let report = DriftReport::from_trace(&trace, args.topology, &args.cost);
                let json = report.to_json();
                hpf_obs::json::validate(&json)
                    .unwrap_or_else(|e| fail(&format!("drift export invalid: {e}")));
                (json, "drift.json")
            }
            "postmortem" => (render_postmortem(&load_postmortem(&args)), "postmortem.txt"),
            "explain" => {
                let pm = load_postmortem(&args);
                (format!("{}\n", pm.narrative), "explain.txt")
            }
            "flame" => {
                let trace = load_trace(&args);
                let profile = hpf_obs::SpanProfile::from_trace(&trace);
                if !args.quiet {
                    eprint!("{}", profile.render_top(10));
                }
                (profile.collapsed(), "flame.txt")
            }
            other => fail(&format!("unknown format {other:?}")),
        };
        if content.is_empty() {
            fail(&format!("{format} export is empty"));
        }
        match &args.out {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
                let path = dir.join(filename);
                std::fs::write(&path, content)
                    .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
                if !args.quiet {
                    println!("{}", path.display());
                }
            }
            None if args.quiet => {}
            None => print!("{content}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::Machine;

    fn traced_machine() -> Machine {
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        m.set_tracing(true);
        m
    }

    #[test]
    fn partition_report_segments_at_redistribute_using_labels() {
        let mut m = traced_machine();
        m.allreduce(8, "dot-merge");
        m.compute_uniform(100, "axpy");
        let traffic = vec![
            vec![0, 5, 0, 0],
            vec![0, 0, 3, 0],
            vec![0, 0, 0, 2],
            vec![1, 0, 0, 0],
        ];
        m.exchange(&traffic, "REDISTRIBUTE USING greedy-hypergraph");
        m.allreduce(8, "dot-merge");
        let report = render_partition(m.trace(), Topology::Hypercube, &CostModel::mpp_1995())
            .expect("trace has redistribute events");
        assert!(report.contains("2 segment(s)"), "{report}");
        assert!(report.contains("(initial)"), "{report}");
        assert!(report.contains("greedy-hypergraph"), "{report}");
        assert!(report.contains("across 1 switch(es)"), "{report}");

        let segs = partition_segments(m.trace());
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].partitioner, "(initial)");
        assert_eq!(segs[0].events.len(), 2);
        assert_eq!(segs[1].partitioner, "greedy-hypergraph");
        assert_eq!(segs[1].switch_words, 11);
        assert_eq!(segs[1].events.len(), 1);
    }

    #[test]
    fn leading_redistribute_has_no_initial_segment() {
        let mut m = traced_machine();
        let traffic = vec![vec![0; 4], vec![0; 4], vec![2, 0, 0, 0], vec![0; 4]];
        m.exchange(&traffic, "REDISTRIBUTE USING spectral");
        m.compute_uniform(10, "axpy");
        let segs = partition_segments(m.trace());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].partitioner, "spectral");
    }

    #[test]
    fn unlabeled_redistributes_stay_inside_their_segment() {
        let mut m = traced_machine();
        let traffic = vec![vec![0; 4], vec![4, 0, 0, 0], vec![0; 4], vec![0; 4]];
        m.exchange(&traffic, "halo-exchange");
        let segs = partition_segments(m.trace());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].partitioner, "(initial)");
        assert_eq!(segs[0].events.len(), 1);
    }

    #[test]
    fn partition_report_refuses_traces_without_redistributes() {
        let mut m = traced_machine();
        m.allreduce(8, "dot-merge");
        m.compute_uniform(100, "axpy");
        let err = render_partition(m.trace(), Topology::Hypercube, &CostModel::mpp_1995())
            .expect_err("no redistribute events in this trace");
        assert_eq!(err, ReportError::NoRedistributeEvents { events: 2 });
        assert!(err.to_string().contains("redistribute"), "{err}");
    }

    #[test]
    fn mg_report_groups_time_volume_and_imbalance_by_level() {
        use hpf_machine::span;
        let mut m = traced_machine();
        m.compute_uniform(50, "setup"); // outside any level span
        let traffic = vec![vec![0; 4], vec![3, 0, 0, 0], vec![0; 4], vec![0; 4]];
        {
            let _v = span::enter("vcycle");
            {
                let _l = span::enter("level=0");
                m.compute_all(&[100, 200, 100, 100], "mg-smooth");
                m.exchange(&traffic, "mg-halo");
            }
            {
                let _l = span::enter("level=1");
                m.compute_uniform(40, "mg-smooth");
            }
        }
        let report = render_mg(m.trace()).expect("trace has level spans");
        assert!(
            report.contains("2 level(s) over 4 events (1 outside level spans)"),
            "{report}"
        );
        // Level 0 carries the halo words; level 1 carries none.
        let l0 = report.lines().find(|l| l.starts_with("0 ")).unwrap();
        assert!(l0.contains(" 3 "), "{l0}");
        // The skewed compute_all shows up as busy-time imbalance > 1.
        let imbalance: f64 = l0.split_whitespace().last().unwrap().parse().unwrap();
        assert!(imbalance > 1.0, "{l0}");
    }

    #[test]
    fn mg_report_refuses_traces_without_level_spans() {
        let mut m = traced_machine();
        m.compute_uniform(10, "axpy");
        let err = render_mg(m.trace()).expect_err("no level spans");
        assert_eq!(err, ReportError::NoLevelSpans { events: 1 });
        assert!(err.to_string().contains("level="), "{err}");
    }

    #[test]
    fn follow_consume_leaves_partial_trailing_lines_for_next_poll() {
        use hpf_machine::span;
        let bus = hpf_obs::EventBus::new(64, hpf_obs::SamplingPolicy::keep_all());
        let mut m = traced_machine();
        m.set_event_sink(bus.machine_sink());
        {
            let _t = span::enter("trace=00000000000000ab");
            let _s = span::enter("solve");
            let _mv = span::enter("matvec");
            m.compute_uniform(1000, "local");
            m.allreduce(4, "dot-merge");
        }
        let mut text = String::new();
        for e in bus.drain() {
            text.push_str(&e.to_jsonl());
            text.push('\n');
        }
        // Chop the final newline: the last line is "mid-append".
        text.pop();
        let mut profile = hpf_obs::SpanProfile::new();
        let mut slo = hpf_obs::SloTracker::soak_defaults();
        let (mut processed, mut wall, mut malformed) = (0usize, 0.0f64, 0u64);
        let landed = follow_consume(
            &text,
            &mut processed,
            &mut profile,
            &mut slo,
            &mut wall,
            &mut malformed,
        );
        assert_eq!(landed, 1, "only the newline-terminated line lands");
        // The writer finishes the line; the next poll picks it up.
        text.push('\n');
        let landed = follow_consume(
            &text,
            &mut processed,
            &mut profile,
            &mut slo,
            &mut wall,
            &mut malformed,
        );
        assert_eq!(landed, 1);
        assert_eq!(processed, text.len());
        assert_eq!(malformed, 0);
        assert!(profile.top_k(1)[0].stack.contains("matvec"), "span kept");
    }

    #[test]
    fn follow_consume_survives_log_rotation() {
        use hpf_machine::span;
        let drain_text = |bus: &hpf_obs::EventBus| {
            let mut text = String::new();
            for e in bus.drain() {
                text.push_str(&e.to_jsonl());
                text.push('\n');
            }
            text
        };
        let bus = hpf_obs::EventBus::new(64, hpf_obs::SamplingPolicy::keep_all());
        let mut m = traced_machine();
        m.set_event_sink(bus.machine_sink());
        {
            let _t = span::enter("trace=00000000000000ab");
            let _s = span::enter("solve");
            m.allreduce(4, "dot-merge");
            m.allreduce(4, "dot-merge");
            m.allreduce(4, "dot-merge");
        }
        let first = drain_text(&bus);
        {
            let _t = span::enter("trace=00000000000000cd");
            let _s = span::enter("solve");
            m.allreduce(4, "dot-merge");
        }
        // The rotated file is SHORTER than what was already consumed.
        let rotated = drain_text(&bus);
        assert!(rotated.len() < first.len());

        let mut profile = hpf_obs::SpanProfile::new();
        let mut slo = hpf_obs::SloTracker::soak_defaults();
        let (mut processed, mut wall, mut malformed) = (0usize, 0.0f64, 0u64);
        let landed = follow_consume(
            &first,
            &mut processed,
            &mut profile,
            &mut slo,
            &mut wall,
            &mut malformed,
        );
        assert_eq!(landed, 3);
        assert_eq!(processed, first.len());
        // Next poll sees the rotated (smaller) file: consumption must
        // restart at offset 0 instead of waiting for the file to grow
        // past the stale offset.
        let landed = follow_consume(
            &rotated,
            &mut processed,
            &mut profile,
            &mut slo,
            &mut wall,
            &mut malformed,
        );
        assert_eq!(landed, 1, "post-rotation events land");
        assert_eq!(processed, rotated.len());
        assert_eq!(malformed, 0);
    }

    #[test]
    fn postmortem_formats_render_dumps_and_refuse_everything_else() {
        use hpf_obs::{FlightRecorder, FlightRecorderConfig};
        use hpf_service::{QosClass, ServiceEvent};
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        fr.service_sink(None).emit(&ServiceEvent::Completed {
            trace_id: 0xbeef,
            class: QosClass::Batch,
            latency_us: 777,
            ok: false,
            outcome: "recovery-exhausted",
        });
        let doc = fr.postmortems()[0].to_json();
        let pm = parse_postmortem(&doc).expect("real dump parses");
        let rendered = render_postmortem(&pm);
        assert!(
            rendered.contains("post-mortem 000000000000beef"),
            "{rendered}"
        );
        assert!(
            rendered.contains("trigger: recovery-exhausted"),
            "{rendered}"
        );
        assert!(rendered.contains("ranked causes:"), "{rendered}");
        assert!(rendered.contains(&pm.narrative), "{rendered}");

        // A clean machine trace is NOT a post-mortem: typed refusal.
        let mut m = traced_machine();
        m.allreduce(8, "dot-merge");
        let clean = m.trace().to_jsonl();
        let err = parse_postmortem(clean.lines().next().unwrap()).expect_err("clean trace");
        assert!(matches!(err, ReportError::NotAPostmortem { .. }));
        assert!(err.to_string().contains("hpf-postmortem/1"), "{err}");
        assert!(parse_postmortem("not json").is_err());
    }

    #[test]
    fn flame_profile_of_a_trace_is_collapsed_stack_shaped() {
        use hpf_machine::span;
        let mut m = traced_machine();
        {
            let _s = span::enter("solve");
            for i in 0..3 {
                let _it = span::enter(format!("iter={i}"));
                let _mv = span::enter("matvec");
                m.compute_uniform(10_000, "local");
            }
        }
        let profile = hpf_obs::SpanProfile::from_trace(m.trace());
        let collapsed = profile.collapsed();
        for line in collapsed.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("frames <value>");
            assert!(!stack.is_empty());
            value.parse::<u64>().expect("integer microseconds");
        }
        assert!(
            collapsed.contains("solve;iter=*;matvec;local"),
            "{collapsed}"
        );
    }

    /// The full MG-PCG pipeline end to end: solve traced, export the
    /// per-level report, see every hierarchy level and the coarse work.
    #[test]
    fn mg_report_renders_a_real_mg_pcg_trace() {
        use hpf_mg::{pcg_mg_distributed, GridDims, MgHierarchy, MgPreconditioner};
        use hpf_solvers::StopCriterion;
        let h = MgHierarchy::build(GridDims::d2(15, 15), 3, 4).unwrap();
        let (_, b) = hpf_sparse::gen::rhs_for_known_solution(h.fine_matrix());
        let pre = MgPreconditioner::new(h);
        let mut m = traced_machine();
        let (_, s) =
            pcg_mg_distributed(&mut m, &pre, &b, StopCriterion::RelativeResidual(1e-8), 200)
                .unwrap();
        assert!(s.converged);
        let report = render_mg(m.trace()).expect("MG trace has level spans");
        assert!(report.contains("3 level(s)"), "{report}");
        for level in ["0 ", "1 ", "2 "] {
            assert!(report.lines().any(|l| l.starts_with(level)), "{report}");
        }
    }
}
