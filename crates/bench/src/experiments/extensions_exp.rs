//! E6 (PRIVATE/MERGE), E7 (FORALL/Bernstein), E8 (ON PROCESSOR vs
//! inspector), E9 (atom distributions).

use crate::table::{ratio, us, Table};
use hpf_core::ext::{GatherSchedule, OnProcessor, PrivateRegion};
use hpf_core::forall::{bernstein_check, csc_matvec_footprint, csr_matvec_footprint};
use hpf_dist::atoms::{AtomAssignment, AtomSpec};
use hpf_dist::ArrayDescriptor;
use hpf_machine::{CostModel, Machine, Topology};
use hpf_sparse::{gen, CscMatrix};

fn machine(np: usize) -> Machine {
    Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
}

/// E6 — Figure 5 / Section 5.1: the `PRIVATE q(n) WITH MERGE(+)` region
/// parallelises the CSC loop. Sweep NP: loop-phase speedup vs the serial
/// Scenario 2 loop, merge overhead, and the `NP·n` storage cost.
pub fn e06_private_merge(n: usize, nnz_per_row: usize) -> Table {
    let mut t = Table::new(
        "E6",
        format!("PRIVATE q(n) WITH MERGE(+) parallel CSC matvec, n = {n}"),
        &[
            "NP",
            "serial_us",
            "private_loop_us",
            "merge_us",
            "loop_speedup",
            "private_words",
        ],
    );
    let a = gen::random_spd(n, nnz_per_row, 7);
    let csc = CscMatrix::from_csr(&a);
    let x = vec![1.0; n];
    for np in [2usize, 4, 8, 16] {
        // Serial baseline: the dependent loop.
        let mut ms = machine(np);
        ms.compute_serial(2 * csc.nnz(), "serial-csc");
        let serial = ms.elapsed();

        let mut mp = machine(np);
        let (_, stats) =
            PrivateRegion::csc_matvec(&mut mp, csc.col_ptr(), csc.row_idx(), csc.values(), &x);
        t.row(vec![
            np.to_string(),
            us(serial),
            us(stats.loop_time),
            us(stats.merge_time),
            ratio(serial / stats.loop_time),
            stats.private_storage_words.to_string(),
        ]);
    }
    t.note("loop_speedup ~= NP: privatisation removes the write-after-write dependency");
    t.note("private_words = NP*n — the storage cost the paper calls 'somewhat unsatisfactory' if n >> NP");
    t
}

/// E7 — Section 5.1: the legality argument. FORALL rejects the CSC
/// accumulation; Bernstein's conditions fail for the CSC loop but hold
/// for the CSR FORALL. Verdicts from the actual checkers.
pub fn e07_bernstein(n: usize) -> Table {
    let mut t = Table::new(
        "E7",
        format!("Parallel-legality verdicts, n = {n}"),
        &["loop", "construct", "verdict", "reason"],
    );
    let a = gen::random_spd(n, 4, 3);
    let csc = CscMatrix::from_csr(&a);

    // CSR FORALL: independent (each row writes its own q(j)).
    let csr_iters = csr_matvec_footprint(n);
    let csr_verdict = bernstein_check(&csr_iters);
    t.row(vec![
        "CSR matvec (Fig 2)".into(),
        "FORALL/INDEPENDENT".into(),
        if csr_verdict.is_ok() {
            "legal"
        } else {
            "illegal"
        }
        .into(),
        "each iteration writes only q(j)".into(),
    ]);

    // CSC loop: write-write violation.
    let csc_iters = csc_matvec_footprint(csc.col_ptr(), csc.row_idx());
    match bernstein_check(&csc_iters) {
        Err(v) => {
            t.row(vec![
                "CSC matvec (Scenario 2)".into(),
                "INDEPENDENT DO".into(),
                "illegal".into(),
                v.to_string(),
            ]);
        }
        Ok(()) => {
            t.row(vec![
                "CSC matvec (Scenario 2)".into(),
                "INDEPENDENT DO".into(),
                "legal".into(),
                "matrix too sparse to conflict".into(),
            ]);
        }
    }

    // FORALL accumulation rejection demonstrated directly.
    let mut q = vec![0.0; n];
    let res = hpf_core::forall::forall_assign(
        &mut q,
        2 * n,
        |k| k % n, // many-to-one
        |_| 1.0,
    );
    t.row(vec![
        "accumulation q(row(k)) +=".into(),
        "FORALL".into(),
        if res.is_err() { "rejected" } else { "accepted" }.into(),
        res.err().map(|e| e.to_string()).unwrap_or_default(),
    ]);

    // With PRIVATE, the same loop becomes legal.
    t.row(vec![
        "CSC matvec + PRIVATE(q)".into(),
        "EXT: PRIVATE/MERGE".into(),
        "legal".into(),
        "write sets privatised per processor".into(),
    ]);
    t.note("matches Section 5.1: FORALL and INDEPENDENT cannot express the CSC loop; PRIVATE can");
    t
}

/// E8 — Section 5.1: `ON PROCESSOR(f(i))` fixes the iteration mapping at
/// compile time "without any runtime overhead", versus the
/// inspector–executor whose cost must be amortised by schedule reuse.
pub fn e08_inspector(n: usize, iters: usize) -> Table {
    let mut t = Table::new(
        "E8",
        format!("ON PROCESSOR vs inspector-executor, n = {n}, {iters} reuses"),
        &[
            "mechanism",
            "setup_us",
            "per_iter_us",
            "total_us(iters)",
            "amortised_setup_us",
        ],
    );
    let np = 8;

    // ON PROCESSOR: mapping is a pure function; zero setup, zero runtime.
    let on = OnProcessor::block(n, np);
    let _lists = on.iteration_lists(n);
    t.row(vec![
        "ON PROCESSOR(j/bs)".into(),
        us(0.0),
        us(0.0),
        us(0.0),
        us(0.0),
    ]);

    // Inspector-executor: build a gather schedule for an irregular
    // access pattern, reuse it `iters` times.
    let desc = ArrayDescriptor::block(n, np);
    let wants: Vec<Vec<usize>> = (0..np)
        .map(|p| (0..n).filter(|&g| (g * 7 + p) % 3 == 0).collect())
        .collect();
    let mut m = machine(np);
    let mut sched = GatherSchedule::build(&mut m, &desc, wants);
    let setup = sched.inspector_time;
    let data = vec![1.0; n];
    let before = m.elapsed();
    for _ in 0..iters {
        sched.execute(&mut m, &data);
    }
    let per_iter = (m.elapsed() - before) / iters as f64;
    t.row(vec![
        "inspector-executor".into(),
        us(setup),
        us(per_iter),
        us(setup + per_iter * iters as f64),
        us(sched.amortised_inspector_time()),
    ]);
    t.note("ON PROCESSOR has zero runtime cost (compile-time mapping)");
    t.note("inspector cost is paid once; executor gathers remain every iteration");
    t
}

/// E9 — Section 5.2.1: atom distributions. Plain element BLOCK tears
/// columns at cut points; `ATOM:BLOCK` never does, and its distribution
/// map is `NP+1` cut points instead of a full `O(nz)` map.
pub fn e09_atom_distribution(n: usize, nnz_per_row: usize) -> Table {
    let mut t = Table::new(
        "E9",
        format!("ATOM:BLOCK vs element BLOCK over CSC arrays, n = {n}"),
        &["NP", "scheme", "atoms_split", "map_words", "imbalance"],
    );
    let a = gen::random_spd(n, nnz_per_row, 11);
    let csc = CscMatrix::from_csr(&a);
    let atoms = AtomSpec::from_pointer_array(csc.col_ptr());
    let nz = csc.nnz();
    for np in [2usize, 4, 8, 16] {
        // Plain BLOCK over elements: cuts at multiples of ceil(nz/np).
        let bs = nz.div_ceil(np);
        let cuts: Vec<usize> = (0..=np).map(|p| (p * bs).min(nz)).collect();
        let split = atoms.atoms_split_by(&cuts);
        // Element imbalance of plain block (uniform by construction).
        t.row(vec![
            np.to_string(),
            "BLOCK(elements)".into(),
            split.to_string(),
            // A full map would need one owner entry per element.
            nz.to_string(),
            ratio(1.0),
        ]);

        let asg = AtomAssignment::atom_block(&atoms, np);
        let atom_cuts = asg.element_cuts(&atoms).unwrap();
        t.row(vec![
            np.to_string(),
            "ATOM:BLOCK".into(),
            atoms.atoms_split_by(&atom_cuts).to_string(),
            (np + 1).to_string(),
            ratio(asg.imbalance(&atoms)),
        ]);
    }
    t.note("ATOM:BLOCK never splits a column and its map is NP+1 cut points, not O(nz)");
    t.note("on this near-uniform matrix ATOM:BLOCK imbalance stays ~1 (Section 5.2.1's premise)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e06_speedup_tracks_np() {
        let t = e06_private_merge(512, 4);
        for (row, np) in t.rows.iter().zip([2.0f64, 4.0, 8.0, 16.0]) {
            let s: f64 = row[4].parse().unwrap();
            assert!(s > 0.8 * np, "speedup {s} at np {np}");
        }
    }

    #[test]
    fn e07_verdicts() {
        let t = e07_bernstein(64);
        assert_eq!(t.rows[0][2], "legal");
        assert_eq!(t.rows[1][2], "illegal");
        assert_eq!(t.rows[2][2], "rejected");
        assert_eq!(t.rows[3][2], "legal");
    }

    #[test]
    fn e08_on_processor_is_free() {
        let t = e08_inspector(256, 50);
        assert_eq!(t.rows[0][1], "0.00");
        assert_eq!(t.rows[0][3], "0.00");
        let setup: f64 = t.rows[1][1].parse().unwrap();
        let amort: f64 = t.rows[1][4].parse().unwrap();
        assert!(setup > 0.0);
        assert!(amort < setup / 10.0, "50 reuses must amortise 50x");
    }

    #[test]
    fn e09_atom_never_splits() {
        let t = e09_atom_distribution(200, 5);
        for row in t.rows.iter().filter(|r| r[1] == "ATOM:BLOCK") {
            assert_eq!(row[2], "0");
        }
        // Plain BLOCK splits at least one atom for np >= 2 on a random
        // matrix (cut points rarely land on column boundaries).
        let splits: usize = t
            .rows
            .iter()
            .filter(|r| r[1] == "BLOCK(elements)")
            .map(|r| r[2].parse::<usize>().unwrap())
            .sum();
        assert!(splits > 0);
    }
}
