//! E1 (Figure 2 CG program), E11 (n_e convergence), E12 (solver family
//! structure), E14 (preconditioning).

use crate::table::{ratio, us, Table};
use hpf_core::{DataArrayLayout, RowwiseCsr};
use hpf_machine::{CostModel, EventKind, Machine, Topology};
use hpf_solvers::{
    bicg, bicgstab, cg, cg_distributed, cgs, pcg, JacobiPrec, SsorPrec, StopCriterion,
    BICGSTAB_PROFILE, BICG_PROFILE, CGS_PROFILE, CG_PROFILE,
};
use hpf_sparse::{gen, CooMatrix, CsrMatrix};

fn machine(np: usize) -> Machine {
    Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
}

/// E1 — the full Figure 2 HPF CG program on the simulated machine:
/// convergence, per-iteration operation counts, and the communication
/// events each HPF construct induced.
pub fn e01_cg_figure2(nx: usize, ny: usize, np: usize) -> Table {
    let mut t = Table::new(
        "E1",
        format!("Figure 2 HPF CG on {nx}x{ny} Poisson, NP = {np}"),
        &["quantity", "value"],
    );
    let a = gen::poisson_2d(nx, ny);
    let n = a.n_rows();
    let nnz = a.nnz();
    let (_, b) = gen::rhs_for_known_solution(&a);
    let mut m = machine(np);
    let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
    let (x, stats) = cg_distributed(
        &mut m,
        &op,
        &b,
        StopCriterion::RelativeResidual(1e-10),
        10 * n,
    )
    .expect("SPD system");

    t.row(vec!["n".into(), n.to_string()]);
    t.row(vec!["nnz".into(), nnz.to_string()]);
    t.row(vec!["converged".into(), stats.converged.to_string()]);
    t.row(vec!["iterations".into(), stats.iterations.to_string()]);
    t.row(vec![
        "residual".into(),
        format!("{:.3e}", stats.residual_norm),
    ]);
    t.row(vec!["matvecs".into(), stats.matvecs.to_string()]);
    t.row(vec!["dots".into(), stats.dots.to_string()]);
    t.row(vec!["saxpys".into(), stats.axpys.to_string()]);
    t.row(vec![
        "allgathers (matvec bcast)".into(),
        m.trace().count(EventKind::AllGather).to_string(),
    ]);
    t.row(vec![
        "allreduces (dot merges)".into(),
        m.trace().count(EventKind::AllReduce).to_string(),
    ]);
    t.row(vec!["simulated time (us)".into(), us(m.elapsed())]);
    t.row(vec![
        "comm fraction".into(),
        ratio(m.trace().comm_time() / m.elapsed()),
    ]);
    t.row(vec!["solution length".into(), x.len().to_string()]);
    t.note("per iteration: 1 matvec (1 allgather), 2 dots (2 allreduces), 3 saxpy-class updates — exactly Figure 2");
    t
}

/// E11 — Section 2: "the CG algorithm will generally converge ... in at
/// most n_e iterations, where n_e is the number of distinct eigenvalues."
pub fn e11_ne_convergence(n: usize) -> Table {
    let mut t = Table::new(
        "E11",
        format!("CG iterations vs distinct eigenvalue count, n = {n}"),
        &["n_e (distinct eigs)", "iterations", "within n_e?"],
    );
    let spectra: Vec<Vec<f64>> = vec![
        vec![3.0],
        vec![1.0, 10.0],
        vec![1.0, 4.0, 9.0],
        vec![1.0, 2.0, 4.0, 8.0],
        vec![2.0, 3.0, 5.0, 7.0, 11.0],
        vec![1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0],
    ];
    for eigs in spectra {
        let a = gen::distinct_eigenvalues(n, &eigs, 4 * n, 23);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (_, stats) =
            cg(&a, &b, StopCriterion::RelativeResidual(1e-9), 10 * n).expect("SPD by construction");
        t.row(vec![
            eigs.len().to_string(),
            stats.iterations.to_string(),
            (stats.iterations <= eigs.len()).to_string(),
        ]);
    }
    t.note("CG terminates in at most n_e iterations regardless of n");
    t
}

/// Mildly non-symmetric test matrix for the non-symmetric solvers.
fn nonsymmetric(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0).unwrap();
        if i + 1 < n {
            coo.push(i, i + 1, -1.6).unwrap();
            coo.push(i + 1, i, -0.4).unwrap();
        }
        if i + 7 < n {
            coo.push(i, i + 7, 0.3).unwrap();
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// E12 — Section 2.1: the computational structure of the CG family.
/// Static profiles (storage vectors, ops/iteration) beside measured
/// counts from real solves; highlights BiCG's Aᵀ products, which negate
/// row-vs-column layout optimisations.
pub fn e12_solver_family(n: usize) -> Table {
    let mut t = Table::new(
        "E12",
        format!("CG family structure, n = {n}"),
        &[
            "method",
            "iters",
            "matvecs",
            "A^T matvecs",
            "dots",
            "storage vecs",
            "nonsym ok",
            "converged",
        ],
    );
    let stop = StopCriterion::RelativeResidual(1e-9);
    let spd = gen::poisson_2d((n as f64).sqrt() as usize, (n as f64).sqrt() as usize);
    let (_, b_spd) = gen::rhs_for_known_solution(&spd);
    let ns = nonsymmetric(n);
    let (_, b_ns) = gen::rhs_for_known_solution(&ns);

    let (_, s_cg) = cg(&spd, &b_spd, stop, 10 * n).unwrap();
    t.row(vec![
        "CG (SPD)".into(),
        s_cg.iterations.to_string(),
        s_cg.matvecs.to_string(),
        s_cg.transpose_matvecs.to_string(),
        s_cg.dots.to_string(),
        CG_PROFILE.storage_vectors.to_string(),
        CG_PROFILE.handles_nonsymmetric.to_string(),
        s_cg.converged.to_string(),
    ]);
    let (_, s_bicg) = bicg(&ns, &b_ns, stop, 10 * n).unwrap();
    t.row(vec![
        "BiCG".into(),
        s_bicg.iterations.to_string(),
        s_bicg.matvecs.to_string(),
        s_bicg.transpose_matvecs.to_string(),
        s_bicg.dots.to_string(),
        BICG_PROFILE.storage_vectors.to_string(),
        BICG_PROFILE.handles_nonsymmetric.to_string(),
        s_bicg.converged.to_string(),
    ]);
    match cgs(&ns, &b_ns, stop, 10 * n) {
        Ok((_, s_cgs)) => {
            t.row(vec![
                "CGS".into(),
                s_cgs.iterations.to_string(),
                s_cgs.matvecs.to_string(),
                s_cgs.transpose_matvecs.to_string(),
                s_cgs.dots.to_string(),
                CGS_PROFILE.storage_vectors.to_string(),
                CGS_PROFILE.handles_nonsymmetric.to_string(),
                s_cgs.converged.to_string(),
            ]);
        }
        Err(e) => {
            t.row(vec![
                "CGS".into(),
                "-".into(),
                "-".into(),
                "0".into(),
                "-".into(),
                CGS_PROFILE.storage_vectors.to_string(),
                "true".into(),
                format!("breakdown: {e}"),
            ]);
        }
    }
    let (_, s_bs) = bicgstab(&ns, &b_ns, stop, 10 * n).unwrap();
    t.row(vec![
        "BiCGSTAB".into(),
        s_bs.iterations.to_string(),
        s_bs.matvecs.to_string(),
        s_bs.transpose_matvecs.to_string(),
        s_bs.dots.to_string(),
        BICGSTAB_PROFILE.storage_vectors.to_string(),
        BICGSTAB_PROFILE.handles_nonsymmetric.to_string(),
        s_bs.converged.to_string(),
    ]);
    t.note("BiCG alone needs A^T: the row-access layout tuned for A is column-access for A^T (Section 2.1)");
    t.note(
        "BiCGSTAB avoids A^T but performs ~4 dots/iter: heavier demand on the DOT_PRODUCT merge",
    );
    t
}

/// E14 — preconditioned CG: iteration counts for identity / Jacobi /
/// SSOR on a badly-scaled Poisson system; the per-iteration
/// communication structure is unchanged (Jacobi is aligned element-wise).
pub fn e14_preconditioning(nx: usize, ny: usize) -> Table {
    let mut t = Table::new(
        "E14",
        format!("Preconditioned CG on badly scaled {nx}x{ny} Poisson"),
        &["preconditioner", "iterations", "converged", "vs plain"],
    );
    // Badly scaled SPD system.
    let base = gen::poisson_2d(nx, ny);
    let n = base.n_rows();
    let mut coo = CooMatrix::new(n, n);
    let scale = |i: usize| 10f64.powi((i % 5) as i32 - 2);
    for i in 0..n {
        for (j, v) in base.row(i) {
            coo.push(i, j, v * scale(i) * scale(j)).unwrap();
        }
    }
    let a = CsrMatrix::from_coo(&coo);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let stop = StopCriterion::RelativeResidual(1e-8);

    let (_, s_plain) = cg(&a, &b, stop, 100 * n).unwrap();
    t.row(vec![
        "none".into(),
        s_plain.iterations.to_string(),
        s_plain.converged.to_string(),
        ratio(1.0),
    ]);
    let jac = JacobiPrec::new(&a).unwrap();
    let (_, s_jac) = pcg(&a, &jac, &b, stop, 100 * n).unwrap();
    t.row(vec![
        "Jacobi".into(),
        s_jac.iterations.to_string(),
        s_jac.converged.to_string(),
        ratio(s_jac.iterations as f64 / s_plain.iterations as f64),
    ]);
    let ssor = SsorPrec::new(&a, 1.2).unwrap();
    let (_, s_ssor) = pcg(&a, &ssor, &b, stop, 100 * n).unwrap();
    t.row(vec![
        "SSOR(1.2)".into(),
        s_ssor.iterations.to_string(),
        s_ssor.converged.to_string(),
        ratio(s_ssor.iterations as f64 / s_plain.iterations as f64),
    ]);
    t.note("preconditioning cuts iterations; Jacobi is an aligned element-wise op (no extra communication)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e01_reports_figure2_structure() {
        let t = e01_cg_figure2(8, 8, 4);
        let get = |k: &str| -> String {
            t.rows
                .iter()
                .find(|r| r[0] == k)
                .unwrap_or_else(|| panic!("missing {k}"))[1]
                .clone()
        };
        assert_eq!(get("converged"), "true");
        let iters: usize = get("iterations").parse().unwrap();
        let gathers: usize = get("allgathers (matvec bcast)").parse().unwrap();
        assert_eq!(gathers, iters);
        let dots: usize = get("dots").parse().unwrap();
        let reduces: usize = get("allreduces (dot merges)").parse().unwrap();
        assert_eq!(reduces, dots);
    }

    #[test]
    fn e11_all_within_ne() {
        let t = e11_ne_convergence(24);
        assert!(t.rows.iter().all(|r| r[2] == "true"), "{t:?}");
    }

    #[test]
    fn e12_structure_claims_hold() {
        let t = e12_solver_family(64);
        let bicg_row = t.rows.iter().find(|r| r[0] == "BiCG").unwrap();
        assert_eq!(bicg_row[2], bicg_row[3], "BiCG: one A^T per A matvec");
        let cg_row = t.rows.iter().find(|r| r[0] == "CG (SPD)").unwrap();
        assert_eq!(cg_row[3], "0");
        let bs_row = t.rows.iter().find(|r| r[0] == "BiCGSTAB").unwrap();
        assert_eq!(bs_row[3], "0");
        assert_eq!(bs_row[7], "true");
    }

    #[test]
    fn e14_preconditioners_reduce_iterations() {
        let t = e14_preconditioning(8, 8);
        let plain: usize = t.rows[0][1].parse().unwrap();
        let jac: usize = t.rows[1][1].parse().unwrap();
        assert!(jac < plain);
        assert_eq!(t.rows[1][2], "true");
        assert_eq!(t.rows[2][2], "true");
    }
}
