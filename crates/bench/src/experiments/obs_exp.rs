//! E24: observability overhead.
//!
//! Telemetry must be cheap enough to leave on: the per-iteration
//! observer hook plus event tracing with span capture must cost under
//! 5% wall-clock on a production-sized solve. This experiment times a
//! CG solve two ways — bare (tracing off, no observer) and with full
//! telemetry on (tracing + spans + `ConvergenceLog`) — and asserts the
//! budget on the difference. The exporter pass (timeline, Perfetto
//! JSON, convergence CSV, critical path) is recorded as a third row:
//! it runs *once per trace*, offline in `trace-report`, not inside the
//! solve loop, so its cost is reported in absolute terms rather than
//! charged against the per-solve budget.

use crate::table::Table;
use hpf_core::{DataArrayLayout, RowwiseCsr};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_obs::{critical_path, ConvergenceLog, Timeline};
use hpf_solvers::{cg_distributed, cg_distributed_with_observer, StopCriterion};
use hpf_sparse::gen;
use std::time::Instant;

fn machine(np: usize, tracing: bool) -> Machine {
    let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
    m.set_tracing(tracing);
    m
}

/// E24 — observability overhead: wall-clock cost of leave-on telemetry
/// (event trace + spans + per-iteration observer) on a CG solve of `n`
/// rows on `np` processors, best of `reps` repetitions per
/// configuration, plus the one-shot exporter pass over the resulting
/// trace. For report-sized runs (`n >= 4096`) the telemetry-on solve
/// must stay within 5% of bare.
pub fn e24_observability_overhead(n: usize, np: usize, reps: usize) -> Table {
    let mut t = Table::new(
        "E24",
        format!("observability overhead: CG, n = {n}, NP = {np}, best of {reps}"),
        &["config", "wall ms", "overhead %", "events", "samples"],
    );

    let a = gen::banded_spd(n, 3, 11);
    let (_x, b) = gen::rhs_for_known_solution(&a);
    let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
    let stop = StopCriterion::RelativeResidual(1e-9);
    let max_iters = 50 * n;
    let reps = reps.max(1);

    // Bare: tracing off, no observer — the zero-overhead baseline.
    let mut bare = f64::INFINITY;
    for _ in 0..reps {
        let mut m = machine(np, false);
        let t0 = Instant::now();
        let (_, s) = cg_distributed(&mut m, &op, &b, stop, max_iters).expect("SPD");
        bare = bare.min(t0.elapsed().as_secs_f64());
        assert!(s.converged);
    }

    // Telemetry on: event trace + span capture + per-iteration observer
    // — everything that runs *inside* the solve when observability is
    // left on. This is the configuration the 5% budget governs.
    let mut telemetry = f64::INFINITY;
    let mut export = f64::INFINITY;
    let mut events = 0usize;
    let mut samples = 0usize;
    for _ in 0..reps {
        let mut m = machine(np, true);
        let mut log = ConvergenceLog::new();
        let t0 = Instant::now();
        let (_, s) =
            cg_distributed_with_observer(&mut m, &op, &b, stop, max_iters, &mut log).expect("SPD");
        telemetry = telemetry.min(t0.elapsed().as_secs_f64());
        assert!(s.converged);
        events = m.trace().events().len();
        samples = log.samples.len();

        // Exporter pass: one shot per trace, normally run offline by
        // `trace-report` on the saved artifacts.
        let t1 = Instant::now();
        let timeline = Timeline::from_trace(m.trace());
        let perfetto = hpf_obs::trace_events_json(&timeline).expect("finite trace");
        let csv = log.to_csv();
        let report = critical_path(m.trace());
        export = export.min(t1.elapsed().as_secs_f64());
        assert!(!perfetto.is_empty() && !csv.is_empty() && report.total_seconds > 0.0);
    }

    let pct = |cfg: f64| 100.0 * (cfg / bare - 1.0);
    t.row(vec![
        "bare".to_string(),
        format!("{:.2}", bare * 1e3),
        "0.0".to_string(),
        "0".to_string(),
        "0".to_string(),
    ]);
    t.row(vec![
        "telemetry on".to_string(),
        format!("{:.2}", telemetry * 1e3),
        format!("{:.1}", pct(telemetry)),
        format!("{events}"),
        format!("{samples}"),
    ]);
    t.row(vec![
        "export pass (one-shot)".to_string(),
        format!("{:.2}", export * 1e3),
        "-".to_string(),
        format!("{events}"),
        format!("{samples}"),
    ]);

    // Wall-clock budgets are only meaningful once the solve dwarfs the
    // measurement noise; small test-sized runs skip the assertion.
    if n >= 4096 {
        assert!(
            pct(telemetry) < 5.0,
            "telemetry overhead {:.1}% breaches the 5% budget",
            pct(telemetry)
        );
        t.note(format!(
            "leave-on telemetry overhead {:.1}% (budget 5%)",
            pct(telemetry)
        ));
    }
    t.note("wall-clock times, best of repetitions; simulated solve identical in all configs");
    t.note("export pass runs once per trace (offline in trace-report), not per solve");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e24_reports_three_configs_with_consistent_counts() {
        let t = e24_observability_overhead(256, 4, 2);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][0], "bare");
        assert_eq!(t.rows[1][0], "telemetry on");
        assert_eq!(t.rows[2][0], "export pass (one-shot)");
        // Tracing recorded events and the observer saw iterations.
        let events: usize = t.rows[1][3].parse().unwrap();
        let samples: usize = t.rows[1][4].parse().unwrap();
        assert!(events > 0);
        assert!(samples > 0);
        // The export pass ran over the same trace.
        assert_eq!(t.rows[1][3], t.rows[2][3]);
    }
}
