//! E29: live telemetry pipeline — bus overhead, SLO burn-rate alerting,
//! and continuous span profiling, all on one soak.
//!
//! E27 proves the service *survives* chaos; E29 proves an operator can
//! *watch* it do so without distorting it. Three claims, each asserted:
//!
//! 1. **Overhead** — the event bus (machine tap + service tap, head
//!    sampling on, a consumer draining) costs < 5% wall clock against
//!    the identical closed-loop chaos workload with the bus off. The
//!    comparison must be closed-loop: an open-loop soak's wall time is
//!    arrival-paced and would hide any overhead.
//! 2. **Alerting** — an injected overload phase (interactive requests
//!    with hopeless microsecond deadlines, mass-shed at the door)
//!    breaches the interactive SLO's burn-rate windows: the alert walks
//!    `Inactive → Pending → Firing` *during* the overload and reaches
//!    `Resolved` only after a clean recovery phase, with no alert
//!    activity before the overload begins. All of it is asserted from
//!    the tracker's transition log, fed exclusively by bus events.
//! 3. **Profiling** — the span profile built from the live bus (and a
//!    post-hoc traced solve of the same workload) names `matvec` as the
//!    hottest stack, matching the paper's cost story, and exports a
//!    well-formed collapsed-stack profile.
//!
//! Artifacts land next to the gate's `BENCH_29.json`: `e29_bus.jsonl`
//! (the drained bus stream — `trace-report --follow` consumes it),
//! `e29_trace.jsonl` (a traced solve for `trace-report --format
//! flame`), and `e29_flame.txt` (the live profile, collapsed). Set
//! `HPF_E29_REQUESTS` to resize the run; below 300 requests the
//! wall-clock-noise-sensitive overhead band is reported but not
//! asserted and the SLO windows shrink to smoke scale.

use crate::table::Table;
use hpf_core::{DataArrayLayout, RowwiseCsr};
use hpf_machine::{CostModel, FaultPlan, Machine, Topology};
use hpf_obs::{
    AlertState, AlertTransition, BenchRecord, EventBus, RegressionGate, SamplingPolicy, SloSpec,
    SloTracker, SpanProfile,
};
use hpf_service::{JobHandle, QosClass, ServiceConfig, ServiceError, SolveRequest, SolverService};
use hpf_solvers::{cg_distributed, StopCriterion};
use hpf_sparse::{gen, CsrMatrix};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run size: `HPF_E29_REQUESTS` if set, else 600 (the closed-loop
/// request count per overhead rep; also selects full-scale SLO windows
/// at >= 300).
pub fn default_requests() -> usize {
    std::env::var("HPF_E29_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600)
}

/// E29 — telemetry pipeline, gated against the previous `BENCH_29.json`.
/// Tolerance is generous: the delay series are wall-clock hysteresis
/// timings, not simulated-clock quantities.
pub fn e29_telemetry(requests: usize) -> Table {
    let dir = std::env::var("HPF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    e29_with_gate(requests, &RegressionGate::new(dir).with_tolerance(150.0))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The soak-shaped service config (E27's shape, minus the open loop).
fn service_config(bus: Option<&Arc<EventBus>>) -> ServiceConfig {
    let mut cfg = ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        np: 4,
        hang_timeout: Duration::from_millis(100),
        supervisor_poll: Duration::from_millis(10),
        breaker_threshold: 50,
        ..ServiceConfig::default()
    };
    if let Some(bus) = bus {
        cfg.event_sink = Some(bus.service_sink());
        cfg.machine_sink = Some(bus.machine_sink());
    }
    cfg
}

/// The interactive SLO at window scale `k` (1.0 = the soak defaults'
/// shape; smoke runs shrink every window so the full lifecycle still
/// plays out in seconds).
fn interactive_spec(k: f64) -> SloSpec {
    SloSpec {
        class: QosClass::Interactive,
        objective_latency_us: 250_000,
        error_budget: 0.05,
        slow_window_s: 4.0 * k,
        fast_window_s: 1.0 * k,
        burn_threshold: 2.0,
        pending_for_s: 0.4 * k,
        clear_for_s: 1.2 * k,
    }
}

/// Closed-loop chaos workload: `requests` mixed-structure solves, ~5%
/// carrying transient crash plans, 16 in flight. Returns the wall
/// seconds the batch took. Identical stream with or without the bus, so
/// the pair is a fair overhead comparison.
fn timed_closed_loop(
    requests: usize,
    mats: &[Arc<CsrMatrix>; 3],
    rhs: &[Vec<f64>],
    bus: Option<&Arc<EventBus>>,
) -> f64 {
    let service = SolverService::start(service_config(bus));
    let started = Instant::now();
    let mut done = 0usize;
    while done < requests {
        let chunk = (requests - done).min(16);
        let handles: Vec<JobHandle> = (0..chunk)
            .map(|j| {
                let i = done + j;
                let h = splitmix64(i as u64 ^ 0xE29);
                let s = i % 3;
                let mut req = SolveRequest::with_rhs_set(mats[s].clone(), vec![rhs[s].clone()]);
                if h & 0xFF < 13 {
                    let op = 20 + ((h >> 32) % 40) as usize;
                    req = req.fault_plan(FaultPlan::new().with_crash(op, ((h >> 40) % 4) as usize));
                }
                service.submit(req).expect("closed loop fits the queue")
            })
            .collect();
        for h in handles {
            // Transient chaos may fail a job; both sides of the
            // comparison see the same stream, so that is fair game.
            let _ = h.wait();
        }
        if let Some(bus) = bus {
            // A real consumer: the bus must be drained, not just fed.
            bus.drain();
        }
        done += chunk;
    }
    let wall = started.elapsed().as_secs_f64();
    service.shutdown();
    wall
}

/// The live consumer side of the soak: drains the bus into the JSONL
/// artifact, the SLO tracker, and the span profile, then advances the
/// alert state machines.
struct Pipeline {
    bus: Arc<EventBus>,
    slo: SloTracker,
    profile: SpanProfile,
    jsonl: String,
    transitions: Vec<AlertTransition>,
    events: u64,
}

impl Pipeline {
    fn pump(&mut self, now_s: f64) {
        for e in self.bus.drain() {
            self.jsonl.push_str(&e.to_jsonl());
            self.jsonl.push('\n');
            self.slo.observe_bus_event(&e);
            self.profile.record_bus_event(&e);
            self.events += 1;
        }
        self.transitions.extend(self.slo.evaluate(now_s));
    }
}

/// E29 with an explicit gate (tests point this at a scratch directory).
pub fn e29_with_gate(requests: usize, gate: &RegressionGate) -> Table {
    let mut t = Table::new(
        "E29",
        format!("live telemetry: bus overhead, SLO alerting, span profiling ({requests} req)"),
        &["stage", "seconds", "detail"],
    );
    let artifact_dir = gate
        .baseline_path(29)
        .parent()
        .expect("gate path has a directory")
        .to_path_buf();
    std::fs::create_dir_all(&artifact_dir).expect("artifact dir");

    // Soak-scale problems: the overhead claim is about the chaos-soak
    // workload, so the closed loop must solve systems big enough that
    // the tap's fixed per-operation cost competes with real arithmetic,
    // not with bookkeeping (tiny systems would overstate the overhead
    // of *any* tap by an order of magnitude).
    let mats: [Arc<CsrMatrix>; 3] = [
        Arc::new(gen::banded_spd(512, 2, 27)),
        Arc::new(gen::power_law_spd(512, 10, 0.9, 27)),
        Arc::new(gen::poisson_2d(32, 32)),
    ];
    let rhs: Vec<Vec<f64>> = mats
        .iter()
        .map(|a| gen::rhs_for_known_solution(a).0)
        .collect();

    // ------------------------------------------------------------------
    // Phase A — overhead: best-of-3 closed-loop wall clock, bus off vs
    // bus on (both taps, sampling at the default 10%, consumer active).
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..3 {
        best_off = best_off.min(timed_closed_loop(requests, &mats, &rhs, None));
        let bus = EventBus::new(1 << 15, SamplingPolicy::with_rate(0.1));
        best_on = best_on.min(timed_closed_loop(requests, &mats, &rhs, Some(&bus)));
    }
    let overhead_ratio = best_on / best_off.max(1e-9);
    let overhead_pct = 100.0 * (overhead_ratio - 1.0);
    if requests >= 300 {
        assert!(
            overhead_pct < 5.0,
            "bus overhead {overhead_pct:.2}% breaches the 5% band \
             (off {best_off:.3}s, on {best_on:.3}s)"
        );
    }
    t.row(vec![
        "overhead-off".into(),
        format!("{best_off:.3}"),
        format!("{requests} closed-loop chaos solves, no bus"),
    ]);
    t.row(vec![
        "overhead-on".into(),
        format!("{best_on:.3}"),
        format!("same stream, both taps + drain ({overhead_pct:+.2}%)"),
    ]);

    // ------------------------------------------------------------------
    // Phase B — the observed soak: normal load, injected overload,
    // recovery; the SLO tracker sees only what crosses the bus.
    let k = if requests >= 300 { 1.0 } else { 0.35 };
    let epoch = Instant::now();
    let bus = EventBus::new(1 << 16, SamplingPolicy::with_rate(0.25));
    let mut pipe = Pipeline {
        bus: bus.clone(),
        slo: SloTracker::new(vec![interactive_spec(k), SloSpec::batch_soak()]),
        profile: SpanProfile::new(),
        jsonl: String::new(),
        transitions: Vec::new(),
        events: 0,
    };
    let service = SolverService::start(service_config(Some(&bus)));
    let now = || epoch.elapsed().as_secs_f64();
    // Big enough that matvec's broadcast out-costs the dot-product
    // allreduce on the simulated clock (the paper's regime), small
    // enough that a solve stays milliseconds of wall time.
    let soak_mat = Arc::new(gen::poisson_2d(32, 32));
    let soak_rhs = gen::rhs_for_known_solution(&soak_mat).0;
    let good_request = || {
        SolveRequest::with_rhs_set(soak_mat.clone(), vec![soak_rhs.clone()])
            .qos(QosClass::Interactive)
            .deadline(Duration::from_secs(2))
    };

    // Normal phase: clean interactive traffic, plus one scripted stall
    // (a kill mid-phase is a blip the hysteresis must NOT page on).
    let normal_start = now();
    let normal_end = normal_start + 1.2 * k;
    let mut stall_sent = false;
    let mut good = 0u64;
    while now() < normal_end {
        if !stall_sent {
            stall_sent = true;
            let req = SolveRequest::with_rhs_set(mats[0].clone(), vec![rhs[0].clone()])
                .qos(QosClass::Batch)
                .fault_plan(FaultPlan::new().with_stall(30, 0, 120));
            if let Ok(h) = service.submit(req) {
                let _ = h.wait();
            }
        }
        if let Ok(h) = service.submit(good_request()) {
            good += u64::from(h.wait().is_ok());
        }
        pipe.pump(now());
    }

    // Overload phase: hopeless microsecond deadlines, shed at the door.
    let overload_start = now();
    let overload_end = overload_start + 2.0 * k;
    let mut sheds = 0u64;
    while now() < overload_end {
        let req = good_request().deadline(Duration::from_micros(20));
        match service.submit(req) {
            Err(ServiceError::Shed { .. }) => sheds += 1,
            Ok(h) => {
                let _ = h.wait();
            }
            Err(_) => {}
        }
        pipe.pump(now());
        std::thread::sleep(Duration::from_millis(1));
    }

    // Recovery phase: clean traffic until the alert resolves (bounded
    // by slow window + clear hysteresis + slack).
    let recovery_start = now();
    let recovery_deadline = recovery_start + (4.0 + 1.2 + 2.5) * k;
    while now() < recovery_deadline {
        if let Ok(h) = service.submit(good_request()) {
            good += u64::from(h.wait().is_ok());
        }
        pipe.pump(now());
        if pipe
            .transitions
            .iter()
            .any(|tr| tr.to == AlertState::Resolved)
        {
            break;
        }
    }
    let soak_end = now();
    let m = service.shutdown();
    pipe.pump(now());
    let stats = bus.stats();

    // ------------------------------------------------------------------
    // The alerting ledger: the full lifecycle, in order, and only when
    // the injected overload justified it.
    assert!(sheds >= 50, "overload must shed at the door (got {sheds})");
    assert!(good >= 20, "clean phases must complete work (got {good})");
    assert!(
        m.supervisor_kills >= 1,
        "the scripted stall must trip the supervisor"
    );
    let trs = &pipe.transitions;
    assert!(
        trs.iter().all(|tr| tr.class == QosClass::Interactive),
        "only the interactive SLO may page: {trs:?}"
    );
    assert!(
        trs.iter().all(|tr| tr.at_s >= overload_start - 0.05),
        "no alert activity before the overload begins: {trs:?}"
    );
    let pending = trs
        .iter()
        .find(|tr| tr.to == AlertState::Pending)
        .expect("breach must open a pending alert");
    let firing = trs
        .iter()
        .find(|tr| tr.to == AlertState::Firing)
        .expect("sustained breach must fire");
    let resolved = trs
        .iter()
        .find(|tr| tr.to == AlertState::Resolved)
        .unwrap_or_else(|| panic!("alert must resolve after recovery: {trs:?}"));
    assert!(
        firing.at_s >= overload_start && firing.at_s <= overload_end + 0.2 * k,
        "alert must fire during the injected overload \
         (fired {:.2}s, overload {overload_start:.2}..{overload_end:.2}s)",
        firing.at_s
    );
    assert!(
        pending.at_s <= firing.at_s && firing.at_s < resolved.at_s,
        "lifecycle order pending -> firing -> resolved: {trs:?}"
    );
    assert!(
        resolved.at_s >= recovery_start,
        "alert may only resolve after recovery starts \
         (resolved {:.2}s, recovery from {recovery_start:.2}s)",
        resolved.at_s
    );
    let firing_delay = firing.at_s - overload_start;
    let resolve_delay = resolved.at_s - recovery_start;
    let flaps = trs.len().saturating_sub(3) as f64;

    // ------------------------------------------------------------------
    // Phase C — profiling. The live profile (bus-fed) and a post-hoc
    // traced solve of the same workload must both name matvec hottest.
    assert!(pipe.events > 0 && !pipe.profile.is_empty());
    let live_top = pipe.profile.top_k(1)[0].clone();
    assert!(
        live_top.stack.contains("matvec"),
        "live profile's hot span must be matvec, got {}",
        live_top.stack
    );
    let flame = pipe.profile.collapsed();
    for line in flame.lines() {
        let (_, v) = line.rsplit_once(' ').expect("frames <value>");
        v.parse::<u64>().expect("integer microseconds");
    }

    let a = gen::poisson_2d(48, 48);
    let (b, _) = gen::rhs_for_known_solution(&a);
    let op = RowwiseCsr::block(a, 4, DataArrayLayout::RowAligned);
    let mut machine = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
    machine.set_tracing(true);
    let (_, solve_stats) = cg_distributed(
        &mut machine,
        &op,
        &b,
        StopCriterion::RelativeResidual(1e-8),
        500,
    )
    .expect("traced CG solve");
    assert!(solve_stats.converged);
    let posthoc = SpanProfile::from_trace(machine.trace());
    assert!(
        posthoc.top_k(1)[0].stack.contains("matvec"),
        "post-hoc profile's hot span must be matvec, got {}",
        posthoc.top_k(1)[0].stack
    );

    for (name, content) in [
        ("e29_bus.jsonl", pipe.jsonl.as_str()),
        ("e29_flame.txt", flame.as_str()),
        ("e29_trace.jsonl", &machine.trace().to_jsonl()),
    ] {
        let path = artifact_dir.join(name);
        std::fs::write(&path, content)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    }

    t.row(vec![
        "soak-normal".into(),
        format!("{:.2}", overload_start - normal_start),
        format!("{good} clean completions so far, 1 scripted stall (no page)"),
    ]);
    t.row(vec![
        "soak-overload".into(),
        format!("{:.2}", recovery_start - overload_start),
        format!("{sheds} sheds; fired {firing_delay:.2}s after breach"),
    ]);
    t.row(vec![
        "soak-recovery".into(),
        format!("{:.2}", soak_end - recovery_start),
        format!("resolved {resolve_delay:.2}s into recovery"),
    ]);

    let drop_pct = 100.0 * stats.dropped as f64 / (stats.published as f64).max(1.0);
    let mut record = BenchRecord::new(29, "e29-telemetry");
    record.push("telemetry/overhead_ratio", overhead_ratio);
    record.push("telemetry/bus_drop_pct", drop_pct);
    record.push("telemetry/firing_delay_s", firing_delay);
    record.push("telemetry/resolve_delay_s", resolve_delay);
    record.push("telemetry/alert_flaps", flaps);
    let outcome = gate
        .check_and_record(&record)
        .unwrap_or_else(|e| panic!("E29 bench gate: {e}"));

    t.note(format!(
        "bus: {} published, {} sampled out, {} dropped ({drop_pct:.3}%); {} events consumed",
        stats.published, stats.sampled_out, stats.dropped, pipe.events
    ));
    t.note(format!(
        "hot span (live): {} ({:.1} us over {} events)",
        live_top.stack,
        live_top.self_s * 1e6,
        live_top.events
    ));
    t.note(format!(
        "alerts: {} transition(s); pending {:.2}s, firing {:.2}s, resolved {:.2}s on the bus clock",
        trs.len(),
        pending.at_s,
        firing.at_s,
        resolved.at_s
    ));
    t.note(if outcome.compared {
        format!(
            "regression gate: PASS vs previous {} ({} series compared, tolerance {}%)",
            outcome.baseline_path.display(),
            outcome.series_compared,
            gate.max_regression_pct
        )
    } else {
        format!(
            "regression gate: first run, baseline written to {}",
            outcome.baseline_path.display()
        )
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e29_smoke_walks_the_full_alert_lifecycle() {
        let dir = std::env::temp_dir().join(format!("hpf-e29-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gate = RegressionGate::new(&dir).with_tolerance(150.0);
        // Below the 300-request threshold: smoke-scale SLO windows and
        // no wall-clock overhead assertion, but the lifecycle, the
        // profile, and every artifact are still asserted.
        let t = e29_with_gate(120, &gate);
        assert_eq!(t.rows.len(), 5);
        assert!(gate.baseline_path(29).exists());
        for artifact in ["e29_bus.jsonl", "e29_flame.txt", "e29_trace.jsonl"] {
            assert!(dir.join(artifact).exists(), "{artifact} must be written");
        }
        // The bus artifact replays: every line is a valid BusEvent.
        let text = std::fs::read_to_string(dir.join("e29_bus.jsonl")).unwrap();
        assert!(text.lines().count() > 0);
        for line in text.lines() {
            hpf_obs::BusEvent::from_jsonl(line).expect("bus artifact line");
        }
        assert!(t.notes.iter().any(|n| n.contains("hot span")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
