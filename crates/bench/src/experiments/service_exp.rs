//! E22: throughput of the solver service with the plan cache on vs off.
//!
//! The service's thesis is the paper's amortisation argument made
//! operational: `CG_BALANCED_PARTITIONER_1` is worth running once per
//! *structure*, not once per *solve*. This experiment pushes a burst of
//! same-structure solves through a running [`SolverService`] twice —
//! plan cache enabled and disabled — and reports solves/second,
//! partitioner invocations, and cache traffic.

use crate::table::{ratio, Table};
use hpf_service::{ServiceConfig, SolveRequest, SolverService};
use hpf_sparse::gen;
use std::sync::Arc;
use std::time::Instant;

/// E22 — service throughput, cache on vs off. `jobs` solves sharing one
/// irregular structure are queued up front; with the cache on, the
/// partitioner must run exactly once for the whole burst.
pub fn e22_service_throughput(n: usize, jobs: usize, np: usize) -> Table {
    let mut t = Table::new(
        "E22",
        format!("solver service: {jobs} same-structure solves, n = {n}, NP = {np}"),
        &[
            "plan cache",
            "solves/sec",
            "partitioner calls",
            "cache hits",
            "batches",
            "wall (ms)",
        ],
    );

    let a = Arc::new(gen::power_law_spd(n, 16, 0.9, 29));
    let (b, _x) = gen::rhs_for_known_solution(&a);

    let mut run = |cache_on: bool| {
        let service = SolverService::start(ServiceConfig {
            workers: 2,
            queue_capacity: jobs.max(1),
            np,
            plan_cache_enabled: cache_on,
            // Batching also shares plans (one per batch), which would
            // mask the cache variable; off, every job pays the plan
            // lookup individually — a controlled comparison.
            batching_enabled: false,
            ..ServiceConfig::default()
        });
        let started = Instant::now();
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                service
                    .submit(SolveRequest::new(a.clone(), b.clone()))
                    .expect("queue sized for the whole burst")
            })
            .collect();
        for h in handles {
            let resp = h.wait().expect("solve succeeds");
            assert!(resp.stats[0].converged, "SPD system must converge");
        }
        let wall = started.elapsed();
        let m = service.shutdown();
        assert_eq!(m.completed as usize, jobs);
        if cache_on {
            assert_eq!(
                m.partitioner_invocations, 1,
                "cache on: one partition must serve the whole burst"
            );
        }
        let solves_per_sec = jobs as f64 / wall.as_secs_f64();
        t.row(vec![
            if cache_on { "on" } else { "off" }.into(),
            format!("{solves_per_sec:.0}"),
            m.partitioner_invocations.to_string(),
            m.cache_hits.to_string(),
            m.batches_executed.to_string(),
            format!("{:.2}", wall.as_secs_f64() * 1e3),
        ]);
        (solves_per_sec, m.partitioner_invocations)
    };

    let (rate_on, calls_on) = run(true);
    let (rate_off, calls_off) = run(false);

    t.note(format!(
        "plan cache turns {calls_off} partitioner calls into {calls_on}; throughput x{} ({:.0} vs {:.0} solves/sec)",
        ratio(rate_on / rate_off.max(f64::MIN_POSITIVE)),
        rate_on,
        rate_off
    ));
    t.note("batching disabled for both runs so every job pays its own plan lookup; with batching on, cache-off would still share one partition per batch");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e22_cache_on_wins_and_partitions_once() {
        let t = e22_service_throughput(96, 32, 8);
        assert_eq!(t.rows.len(), 2);
        // Row 0 is cache-on: exactly one partitioner call for 32 solves.
        assert_eq!(t.rows[0][2], "1");
        // Cache-off re-partitions for every one of the 32 jobs.
        assert_eq!(t.rows[1][2], "32");
    }
}
