//! E2 (SAXPY scaling) and E3 (inner-product merge cost).

use crate::table::{ratio, us, Table};
use hpf_core::DistVector;
use hpf_dist::ArrayDescriptor;
use hpf_machine::{CostModel, Machine, Topology};

/// E2 — Section 4: "Using N_P processors, SAXPY operations can be
/// performed in O(n/N_P) time on any architecture", with zero
/// communication. Sweep NP at fixed n and report modeled time,
/// speedup, and communication words.
pub fn e02_saxpy_scaling(n: usize) -> Table {
    let mut t = Table::new(
        "E2",
        format!("SAXPY O(n/NP) scaling, n = {n}"),
        &["NP", "time_us", "speedup", "comm_words", "flops/proc"],
    );
    let mut t1 = None;
    for np in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let d = ArrayDescriptor::block(n, np);
        let mut y = DistVector::zeros(d.clone());
        let x = DistVector::constant(d, 1.0);
        y.axpy(&mut m, 2.0, &x);
        let time = m.elapsed();
        let t_base = *t1.get_or_insert(time);
        t.row(vec![
            np.to_string(),
            us(time),
            ratio(t_base / time),
            m.trace().total_comm_words().to_string(),
            (2 * n.div_ceil(np)).to_string(),
        ]);
    }
    t.note("speedup ~= NP and comm_words = 0 at every NP: SAXPY is embarrassingly parallel under alignment");
    t
}

/// E3 — Section 4: the inner product's local phase is O(n/NP) while the
/// merge "on a hypercube architecture ... is done in t_startup·log N_P
/// time". Sweep NP on three topologies, reporting the measured merge
/// time against the analytic formula.
pub fn e03_dot_merge(n: usize) -> Table {
    let mut t = Table::new(
        "E3",
        format!("DOT_PRODUCT merge phase vs t_startup*log(NP), n = {n}"),
        &[
            "NP",
            "topology",
            "local_us",
            "merge_us",
            "ts*logNP_us",
            "merge/formula",
        ],
    );
    let cost = CostModel::mpp_1995();
    for np in [2usize, 4, 8, 16, 32, 64] {
        for topo in [Topology::Hypercube, Topology::Mesh2D, Topology::Ring] {
            let mut m = Machine::new(np, topo, cost);
            let d = ArrayDescriptor::block(n, np);
            let a = DistVector::constant(d.clone(), 1.0);
            let b = DistVector::constant(d, 2.0);
            let _ = a.dot(&mut m, &b);
            let local: f64 = m.trace().with_label("dot-local").map(|e| e.time).sum();
            let merge: f64 = m.trace().with_label("dot-merge").map(|e| e.time).sum();
            let formula = cost.t_startup * Topology::log2_ceil(np) as f64;
            t.row(vec![
                np.to_string(),
                topo.name().to_string(),
                us(local),
                us(merge),
                us(formula),
                ratio(merge / formula),
            ]);
        }
    }
    t.note("hypercube merge/formula ~= 1.00 (the paper's t_startup*logNP bound); ring grows linearly in NP");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e02_shows_linear_speedup_and_no_comm() {
        let t = e02_saxpy_scaling(1 << 14);
        assert_eq!(t.rows.len(), 7);
        // Every row has zero communication.
        assert!(t.rows.iter().all(|r| r[3] == "0"));
        // Speedup at NP=16 (row index 4) close to 16.
        let s: f64 = t.rows[4][2].parse().unwrap();
        assert!((s - 16.0).abs() < 0.01, "speedup {s}");
    }

    #[test]
    fn e03_hypercube_matches_formula() {
        let t = e03_dot_merge(1 << 12);
        for row in t.rows.iter().filter(|r| r[1] == "hypercube") {
            let q: f64 = row[5].parse().unwrap();
            // Merge includes tiny t_word/t_flop terms: ratio within 2%.
            assert!((q - 1.0).abs() < 0.02, "ratio {q}");
        }
        // Ring merge is much slower than hypercube at NP=64.
        let hc: f64 = t
            .rows
            .iter()
            .find(|r| r[0] == "64" && r[1] == "hypercube")
            .unwrap()[3]
            .parse()
            .unwrap();
        let ring: f64 = t
            .rows
            .iter()
            .find(|r| r[0] == "64" && r[1] == "ring")
            .unwrap()[3]
            .parse()
            .unwrap();
        assert!(ring > 5.0 * hc);
    }
}
