//! E4 (Scenario 1: row-wise) and E5 (Scenario 2: column-wise).

use crate::table::{ratio, us, Table};
use hpf_core::{ColwiseCsc, DataArrayLayout, DistVector, RowwiseCsr};
use hpf_dist::ArrayDescriptor;
use hpf_machine::{CostModel, Machine, Topology};
use hpf_sparse::{gen, CscMatrix};

fn machine(np: usize) -> Machine {
    Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
}

/// E4 — Figure 3 / Scenario 1: row-wise `(BLOCK,*)` CSR matvec. The
/// all-to-all broadcast costs `t_s·log NP + t_c·(NP-1)·n/NP`; with the
/// data arrays naively element-block distributed, extra remote `a`/`col`
/// fetches appear ("additional communication is needed to bring in those
/// missing elements").
pub fn e04_scenario1(n: usize, nnz_per_row: usize) -> Table {
    let mut t = Table::new(
        "E4",
        format!("Scenario 1 row-wise CSR matvec, n = {n}"),
        &[
            "NP",
            "layout",
            "bcast_words",
            "fetch_words",
            "comm_us",
            "compute_us",
            "total_us",
        ],
    );
    let a = gen::random_spd(n, nnz_per_row, 42);
    for np in [2usize, 4, 8, 16] {
        for (layout, name) in [
            (DataArrayLayout::RowAligned, "row-aligned"),
            (DataArrayLayout::ElementBlock, "element-block"),
        ] {
            let op = RowwiseCsr::block(a.clone(), np, layout);
            let p = DistVector::constant(ArrayDescriptor::block(n, np), 1.0);
            let mut m = machine(np);
            let (_, stats) = op.matvec(&mut m, &p);
            t.row(vec![
                np.to_string(),
                name.to_string(),
                stats.broadcast_words.to_string(),
                stats.remote_data_words.to_string(),
                us(m.trace().comm_time()),
                us(m.trace().compute_time()),
                us(m.elapsed()),
            ]);
        }
    }
    t.note("row-aligned layout (the ATOM extension's guarantee) eliminates all fetch_words");
    t.note("FORALL over rows is parallel: compute_us shrinks ~1/NP");
    t
}

/// E5 — Figure 4 / Scenario 2: column-wise `(*,BLOCK)` CSC matvec. The
/// many-to-one accumulation serialises the loop; the temp-2D + SUM
/// workaround restores parallel compute at `NP·n` extra words. Scenario
/// 2's communication equals Scenario 1's ("it is not possible to reduce
/// the communication time ... either in a row-wise or column-wise
/// fashion").
pub fn e05_scenario2(n: usize, nnz_per_row: usize) -> Table {
    let mut t = Table::new(
        "E5",
        format!("Scenario 2 column-wise CSC matvec, n = {n}"),
        &[
            "NP",
            "variant",
            "comm_us",
            "compute_us",
            "total_us",
            "temp_words",
            "vs_scenario1_comm",
        ],
    );
    let a = gen::random_spd(n, nnz_per_row, 42);
    let csc = CscMatrix::from_csr(&a);
    for np in [2usize, 4, 8, 16] {
        let p = DistVector::constant(ArrayDescriptor::block(n, np), 1.0);

        // Scenario 1 comm reference.
        let mut m1 = machine(np);
        let op1 = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        op1.matvec(&mut m1, &p);
        let s1_comm = m1.trace().comm_time();

        let op = ColwiseCsc::block(csc.clone(), np);
        for variant in ["serial", "temp2d"] {
            let mut m = machine(np);
            let (_, stats) = match variant {
                "serial" => op.matvec_serial(&mut m, &p),
                _ => op.matvec_temp2d(&mut m, &p),
            };
            t.row(vec![
                np.to_string(),
                variant.to_string(),
                us(m.trace().comm_time()),
                us(m.trace().compute_time()),
                us(m.elapsed()),
                stats.temp_storage_words.to_string(),
                ratio(m.trace().comm_time() / s1_comm),
            ]);
        }
    }
    t.note(
        "serial variant: compute_us does NOT shrink with NP (the dependency Section 5.1 attacks)",
    );
    t.note("serial vs_scenario1_comm = 1.00: column-wise striping cannot reduce communication");
    t.note("temp2d restores parallel compute but allocates NP*n temporary words");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e04_row_aligned_has_zero_fetches() {
        let t = e04_scenario1(256, 5);
        for row in t.rows.iter().filter(|r| r[1] == "row-aligned") {
            assert_eq!(row[3], "0");
        }
        // element-block rows fetch something at np >= 2.
        assert!(t
            .rows
            .iter()
            .filter(|r| r[1] == "element-block")
            .all(|r| r[3].parse::<usize>().unwrap() > 0));
    }

    #[test]
    fn e04_compute_shrinks_with_np() {
        let t = e04_scenario1(512, 4);
        let get = |np: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == np && r[1] == "row-aligned")
                .unwrap()[5]
                .parse()
                .unwrap()
        };
        assert!(get("16") < get("2") / 4.0);
    }

    #[test]
    fn e05_serial_compute_flat_and_comm_matches_s1() {
        let t = e05_scenario2(256, 4);
        let serial: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[1] == "serial").collect();
        let c2: f64 = serial[0][3].parse().unwrap();
        let c16: f64 = serial[3][3].parse().unwrap();
        assert!(
            (c2 - c16).abs() / c2 < 0.01,
            "serial compute must not scale"
        );
        for r in &serial {
            let q: f64 = r[6].parse().unwrap();
            assert!((q - 1.0).abs() < 0.01, "comm ratio {q}");
        }
        // temp2d temp storage grows with np.
        let temp: Vec<usize> = t
            .rows
            .iter()
            .filter(|r| r[1] == "temp2d")
            .map(|r| r[5].parse().unwrap())
            .collect();
        assert!(temp.windows(2).all(|w| w[1] > w[0]));
    }
}
