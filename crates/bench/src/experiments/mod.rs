//! One module per experiment family; every public function returns a
//! [`crate::table::Table`] reproducing a figure or in-text claim of the
//! paper (see DESIGN.md's experiment index).

pub mod balance_exp;
pub mod comparison_exp;
pub mod drift_exp;
pub mod extended_exp;
pub mod extensions_exp;
pub mod fault_exp;
pub mod matvec_exp;
pub mod mg_exp;
pub mod obs_exp;
pub mod partition_exp;
pub mod rca_exp;
pub mod service_exp;
pub mod soak_exp;
pub mod solvers_exp;
pub mod telemetry_exp;
pub mod vector_ops;

use crate::table::Table;

/// Run every experiment at its default (report-sized) parameters, in
/// index order.
pub fn run_all() -> Vec<Table> {
    vec![
        solvers_exp::e01_cg_figure2(16, 16, 8),
        vector_ops::e02_saxpy_scaling(1 << 16),
        vector_ops::e03_dot_merge(1 << 14),
        matvec_exp::e04_scenario1(1024, 6),
        matvec_exp::e05_scenario2(1024, 6),
        extensions_exp::e06_private_merge(1024, 6),
        extensions_exp::e07_bernstein(128),
        extensions_exp::e08_inspector(1024, 100),
        extensions_exp::e09_atom_distribution(512, 6),
        balance_exp::e10_load_balance(1024, 128, 0.9),
        solvers_exp::e11_ne_convergence(32),
        solvers_exp::e12_solver_family(144),
        comparison_exp::e13_hpf_vs_spmd(256, 5, 8),
        solvers_exp::e14_preconditioning(10, 10),
        comparison_exp::e15_storage_formats(),
        extended_exp::e16_checkerboard(1024),
        extended_exp::e17_transpose_asymmetry(512, 8),
        extended_exp::e18_cost_sensitivity(48, 48),
        extended_exp::e19_gmres_and_cgs(10),
        extended_exp::e20_condition_bound(),
        extended_exp::e21_redistribute_amortisation(1024, 128, 8),
        service_exp::e22_service_throughput(256, 40, 8),
        fault_exp::e23_fault_sweep(96, 4, 5),
        obs_exp::e24_observability_overhead(10_000, 8, 3),
        drift_exp::e25_drift_oracle(1024, 8),
        partition_exp::e26_partitioners(512),
        soak_exp::e27_chaos_soak(soak_exp::default_requests()),
        mg_exp::e28_hpcg(),
        telemetry_exp::e29_telemetry(telemetry_exp::default_requests()),
        rca_exp::e30_rca(rca_exp::default_requests()),
    ]
}

/// Run one experiment by its lowercase id (`"e1"`, `"e01"`, ... `"e30"`);
/// `"soak"` is an alias for the E27 chaos soak, `"telemetry"` for the
/// E29 pipeline, and `"rca"` for the E30 flight-recorder sweep.
pub fn run_one(id: &str) -> Option<Table> {
    let norm = id.trim_start_matches('e').trim_start_matches('0');
    Some(match norm {
        "1" => solvers_exp::e01_cg_figure2(16, 16, 8),
        "2" => vector_ops::e02_saxpy_scaling(1 << 16),
        "3" => vector_ops::e03_dot_merge(1 << 14),
        "4" => matvec_exp::e04_scenario1(1024, 6),
        "5" => matvec_exp::e05_scenario2(1024, 6),
        "6" => extensions_exp::e06_private_merge(1024, 6),
        "7" => extensions_exp::e07_bernstein(128),
        "8" => extensions_exp::e08_inspector(1024, 100),
        "9" => extensions_exp::e09_atom_distribution(512, 6),
        "10" => balance_exp::e10_load_balance(1024, 128, 0.9),
        "11" => solvers_exp::e11_ne_convergence(32),
        "12" => solvers_exp::e12_solver_family(144),
        "13" => comparison_exp::e13_hpf_vs_spmd(256, 5, 8),
        "14" => solvers_exp::e14_preconditioning(10, 10),
        "15" => comparison_exp::e15_storage_formats(),
        "16" => extended_exp::e16_checkerboard(1024),
        "17" => extended_exp::e17_transpose_asymmetry(512, 8),
        "18" => extended_exp::e18_cost_sensitivity(48, 48),
        "19" => extended_exp::e19_gmres_and_cgs(10),
        "20" => extended_exp::e20_condition_bound(),
        "21" => extended_exp::e21_redistribute_amortisation(1024, 128, 8),
        "22" => service_exp::e22_service_throughput(256, 40, 8),
        "23" => fault_exp::e23_fault_sweep(96, 4, 5),
        "24" => obs_exp::e24_observability_overhead(10_000, 8, 3),
        "25" => drift_exp::e25_drift_oracle(1024, 8),
        "26" => partition_exp::e26_partitioners(512),
        "27" | "soak" => soak_exp::e27_chaos_soak(soak_exp::default_requests()),
        "28" | "hpcg" => mg_exp::e28_hpcg(),
        "29" | "telemetry" => telemetry_exp::e29_telemetry(telemetry_exp::default_requests()),
        "30" | "rca" => rca_exp::e30_rca(rca_exp::default_requests()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_resolves_ids() {
        // E25/E26's regression gates write BENCH_<n>.json into
        // HPF_BENCH_DIR (default "."); keep test artifacts out of the
        // source tree.
        let scratch = std::env::temp_dir().join(format!("hpf-run-one-{}", std::process::id()));
        std::fs::create_dir_all(&scratch).unwrap();
        std::env::set_var("HPF_BENCH_DIR", &scratch);
        assert!(run_one("e1").is_some());
        assert!(run_one("e01").is_some());
        assert!(run_one("15").is_some());
        assert!(run_one("e16").is_some());
        assert!(run_one("e19").is_some());
        assert!(run_one("e20").is_some());
        assert!(run_one("e21").is_some());
        assert!(run_one("e22").is_some());
        assert!(run_one("e23").is_some());
        assert!(run_one("e24").is_some());
        assert!(run_one("e25").is_some());
        assert!(run_one("e26").is_some());
        // E27 is the chaos soak; keep the in-test run small.
        std::env::set_var("HPF_SOAK_REQUESTS", "600");
        assert!(run_one("e27").is_some());
        assert!(run_one("soak").is_some());
        // E28 is the HPCG-class MG sweep; keep the in-test run small.
        std::env::set_var("HPF_E28_SMOKE", "1");
        assert!(run_one("e28").is_some());
        assert!(run_one("hpcg").is_some());
        std::env::remove_var("HPF_E28_SMOKE");
        // E29 is the telemetry soak; keep the in-test run smoke-sized.
        std::env::set_var("HPF_E29_REQUESTS", "120");
        assert!(run_one("e29").is_some());
        assert!(run_one("telemetry").is_some());
        std::env::remove_var("HPF_E29_REQUESTS");
        // E30 is the flight-recorder sweep; keep the in-test run
        // smoke-sized.
        std::env::set_var("HPF_E30_REQUESTS", "120");
        assert!(run_one("e30").is_some());
        assert!(run_one("rca").is_some());
        std::env::remove_var("HPF_E30_REQUESTS");
        assert!(run_one("e31").is_none());
        assert!(run_one("nope").is_none());
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
