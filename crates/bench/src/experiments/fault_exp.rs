//! E23: fault-injection sweep over the protected CG solver.
//!
//! Two claims are measured. First, the *insurance premium*: with no
//! faults injected, checkpointing and verified convergence must cost
//! under 10% simulated time over plain CG. Second, the *payout*: under
//! seeded random fault plans of increasing intensity, protected CG keeps
//! converging (rolling back and replacing residuals as needed) while the
//! unprotected solver fails or silently degrades.

use crate::table::Table;
use hpf_core::{DataArrayLayout, RowwiseCsr};
use hpf_machine::{CostModel, FaultPlan, FaultRates, Machine, Topology};
use hpf_solvers::{cg_distributed, cg_distributed_protected, RecoveryConfig, StopCriterion};
use hpf_sparse::gen;

fn machine(np: usize) -> Machine {
    Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
}

/// E23 — fault sweep: recovery rate of protected vs plain CG across
/// transient-fault intensities, plus the faults-off checkpoint overhead.
pub fn e23_fault_sweep(n: usize, np: usize, trials: usize) -> Table {
    let mut t = Table::new(
        "E23",
        format!("fault injection: protected vs plain CG, n = {n}, NP = {np}, {trials} seeds/rate"),
        &[
            "fault rate",
            "faults/run",
            "protected recovered",
            "plain survived",
            "avg rollbacks",
            "avg detections",
        ],
    );

    let a = gen::banded_spd(n, 3, 11);
    let (_x, b) = gen::rhs_for_known_solution(&a);
    let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
    let stop = StopCriterion::RelativeResidual(1e-9);
    let max_iters = 50 * n;

    // Faults-off premium: identical workload, with and without the
    // checkpoint/verify machinery.
    let mut m = machine(np);
    let (_, plain_stats) = cg_distributed(&mut m, &op, &b, stop, max_iters).expect("SPD");
    let t_plain = m.elapsed();
    let mut m = machine(np);
    let (_, prot_stats, _) =
        cg_distributed_protected(&mut m, &op, &b, stop, max_iters, RecoveryConfig::default())
            .expect("SPD");
    let t_prot = m.elapsed();
    let overhead = 100.0 * (t_prot / t_plain - 1.0);
    assert!(
        plain_stats.converged && prot_stats.converged,
        "both solvers converge without faults"
    );
    assert!(
        overhead < 10.0,
        "faults-off checkpoint overhead {overhead:.1}% breaches the 10% budget"
    );

    for rate in [0.005, 0.02, 0.05] {
        let mut injected = 0usize;
        let mut recovered = 0usize;
        let mut plain_ok = 0usize;
        let mut rollbacks = 0usize;
        let mut detections = 0usize;
        for seed in 0..trials as u64 {
            let plan = FaultPlan::random(1000 + seed, np, 200, FaultRates::transient(rate));
            let config = RecoveryConfig {
                max_rollbacks: 4 * plan.len().max(4),
                ..RecoveryConfig::default()
            };

            let mut m = machine(np);
            m.set_fault_plan(plan.clone());
            if let Ok((_, stats, rec)) =
                cg_distributed_protected(&mut m, &op, &b, stop, max_iters, config)
            {
                if stats.converged {
                    recovered += 1;
                }
                rollbacks += rec.rollbacks;
                detections += rec.faults_detected;
            }
            injected += m.faults_injected();

            let mut m = machine(np);
            m.set_fault_plan(plan);
            if let Ok((_, stats)) = cg_distributed(&mut m, &op, &b, stop, max_iters) {
                if stats.converged {
                    plain_ok += 1;
                }
            }
        }
        t.row(vec![
            format!("{rate}"),
            format!("{:.1}", injected as f64 / trials as f64),
            format!("{recovered}/{trials}"),
            format!("{plain_ok}/{trials}"),
            format!("{:.1}", rollbacks as f64 / trials as f64),
            format!("{:.1}", detections as f64 / trials as f64),
        ]);
    }

    t.note(format!(
        "faults-off checkpoint/verify overhead: {overhead:.1}% simulated time (budget 10%)"
    ));
    t.note("plans are seeded and sorted by machine op index, so every row is exactly reproducible");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e23_protected_recovers_everywhere() {
        let t = e23_fault_sweep(64, 4, 3);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row[2], "3/3", "protected CG must recover: {row:?}");
        }
        // At the harshest rate the plain solver must not match the
        // protected one (it fails or stalls on at least one seed).
        let harsh = &t.rows[2];
        assert_ne!(harsh[3], "3/3", "plain CG should fail under heavy faults");
    }
}
