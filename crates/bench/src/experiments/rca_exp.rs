//! E30: flight recorder + root-cause attribution — recorder overhead,
//! chaos attribution accuracy, and dump exactness, all asserted.
//!
//! E29 proves an operator can *watch* the service; E30 proves that when
//! a solve goes wrong the service can *explain itself*. Three claims:
//!
//! 1. **Overhead** — the per-job black box (machine ring, service tail,
//!    and residual tap, wired through
//!    [`hpf_obs::FlightRecorder::install`]) costs < 3% wall clock on a
//!    clean closed-loop workload against the identical stream with the
//!    recorder off. Clean jobs discard their tails at `Completed`, so
//!    the recorder's steady-state cost is the ring writes, not the
//!    dumps.
//! 2. **Attribution** — a seeded chaos sweep (stall / crash / bit-flip
//!    storm fault plans, retries disabled so every injected fault
//!    surfaces as a terminal outcome) ends with the top-ranked
//!    [`RootCause`] naming the injected fault class on >= 90% of the
//!    bad-outcome jobs.
//! 3. **Exactness** — every kill / exhaustion / divergence (any outcome
//!    with a dump trigger) yields exactly one post-mortem: no job dumps
//!    twice, no bad job goes missing, and no clean job dumps at all.
//!
//! Artifacts land next to the gate's `BENCH_30.json`:
//! `e30_postmortems.json` (the `/postmortems` index), `e30_postmortem.json`
//! (one full dump — `trace-report --format postmortem|explain` consumes
//! it), and `e30_trace.jsonl` (a clean machine trace the explain mode
//! must *refuse*, pinning the CLI's nonzero exit on non-dumps). Set
//! `HPF_E30_REQUESTS` to resize the run; below 300 requests the
//! wall-clock-noise-sensitive overhead band is reported but not
//! asserted and the chaos sweep shrinks to smoke scale.

use crate::table::Table;
use hpf_core::{DataArrayLayout, RowwiseCsr};
use hpf_machine::{CostModel, FaultPlan, Machine, Topology};
use hpf_obs::{BenchRecord, FlightRecorder, FlightRecorderConfig, RegressionGate, Trigger};
use hpf_service::{JobHandle, ServiceConfig, SolveRequest, SolverService};
use hpf_solvers::{cg_distributed, RecoveryConfig, StopCriterion};
use hpf_sparse::{gen, CsrMatrix};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run size: `HPF_E30_REQUESTS` if set, else 600 (the closed-loop
/// request count per overhead rep; also selects the full-scale chaos
/// sweep at >= 300).
pub fn default_requests() -> usize {
    std::env::var("HPF_E30_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600)
}

/// E30 — flight recorder + RCA, gated against the previous
/// `BENCH_30.json`. Tolerance is generous: the overhead series is a
/// wall-clock ratio measured on whatever hardware CI hands us, and the
/// chaos sweep's latency-shaped series ride on supervisor timing.
pub fn e30_rca(requests: usize) -> Table {
    let dir = std::env::var("HPF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    e30_with_gate(requests, &RegressionGate::new(dir).with_tolerance(150.0))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The soak-shaped service config (E29's shape). `recorder` wires the
/// flight recorder's three taps through [`FlightRecorder::install`].
fn service_config(recorder: Option<&Arc<FlightRecorder>>) -> ServiceConfig {
    let mut cfg = ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        np: 4,
        hang_timeout: Duration::from_millis(100),
        supervisor_poll: Duration::from_millis(10),
        // The chaos sweep hammers one fingerprint on purpose; the
        // breaker must not turn injected faults into refusals.
        breaker_threshold: 1000,
        ..ServiceConfig::default()
    };
    if let Some(fr) = recorder {
        fr.install(&mut cfg);
    }
    cfg
}

/// Clean closed-loop workload: `requests` mixed-structure solves, no
/// fault plans, 16 in flight. Identical stream with or without the
/// recorder, so the pair is a fair overhead comparison.
fn timed_closed_loop(
    requests: usize,
    mats: &[Arc<CsrMatrix>; 3],
    rhs: &[Vec<f64>],
    recorder: Option<&Arc<FlightRecorder>>,
) -> f64 {
    let service = SolverService::start(service_config(recorder));
    let started = Instant::now();
    let mut done = 0usize;
    while done < requests {
        let chunk = (requests - done).min(16);
        let handles: Vec<JobHandle> = (0..chunk)
            .map(|j| {
                let i = done + j;
                let s = i % 3;
                let req = SolveRequest::with_rhs_set(mats[s].clone(), vec![rhs[s].clone()]);
                service.submit(req).expect("closed loop fits the queue")
            })
            .collect();
        for h in handles {
            h.wait().expect("clean workload must solve");
        }
        done += chunk;
    }
    let wall = started.elapsed().as_secs_f64();
    service.shutdown();
    wall
}

/// E30 with an explicit gate (tests point this at a scratch directory).
pub fn e30_with_gate(requests: usize, gate: &RegressionGate) -> Table {
    let mut t = Table::new(
        "E30",
        format!(
            "flight recorder: overhead, root-cause attribution, dump exactness ({requests} req)"
        ),
        &["stage", "value", "detail"],
    );
    let artifact_dir = gate
        .baseline_path(30)
        .parent()
        .expect("gate path has a directory")
        .to_path_buf();
    std::fs::create_dir_all(&artifact_dir).expect("artifact dir");

    // Soak-scale problems (E29's reasoning: tiny systems would
    // overstate any tap's fixed per-operation cost; the recorder's
    // ~45ns/event budget is judged against ops that carry a realistic
    // amount of local arithmetic).
    let mats: [Arc<CsrMatrix>; 3] = [
        Arc::new(gen::banded_spd(1024, 2, 27)),
        Arc::new(gen::power_law_spd(1024, 10, 0.9, 27)),
        Arc::new(gen::poisson_2d(40, 40)),
    ];
    let rhs: Vec<Vec<f64>> = mats
        .iter()
        .map(|a| gen::rhs_for_known_solution(a).0)
        .collect();

    // ------------------------------------------------------------------
    // Phase A — overhead: best-of-3 clean closed-loop wall clock,
    // recorder off vs recorder on (all three taps live, rings written
    // and discarded per job, nothing ever dumps).
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut clean_recorded = 0u64;
    for _ in 0..3 {
        best_off = best_off.min(timed_closed_loop(requests, &mats, &rhs, None));
        let fr = FlightRecorder::new(FlightRecorderConfig::default());
        best_on = best_on.min(timed_closed_loop(requests, &mats, &rhs, Some(&fr)));
        clean_recorded = clean_recorded.max(fr.blackbox().recorded());
        assert_eq!(
            fr.dumps(),
            0,
            "a clean workload must never trigger a post-mortem"
        );
        assert_eq!(
            fr.blackbox().traces(),
            0,
            "every clean job must discard its ring at Completed"
        );
    }
    let overhead_ratio = best_on / best_off.max(1e-9);
    let overhead_pct = 100.0 * (overhead_ratio - 1.0);
    if requests >= 300 {
        assert!(
            overhead_pct < 3.0,
            "flight-recorder overhead {overhead_pct:.2}% breaches the 3% band \
             (off {best_off:.3}s, on {best_on:.3}s)"
        );
    }
    assert!(
        clean_recorded > 0,
        "the recorder-on side must actually record machine events"
    );
    t.row(vec![
        "overhead-off".into(),
        format!("{best_off:.3}s"),
        format!("{requests} clean closed-loop solves, recorder off"),
    ]);
    t.row(vec![
        "overhead-on".into(),
        format!("{best_on:.3}s"),
        format!(
            "same stream, black box + tails live ({overhead_pct:+.2}%, {clean_recorded} events ringed)"
        ),
    ]);

    // ------------------------------------------------------------------
    // Phase B — seeded chaos sweep. Retries off and recovery headroom
    // zero: the protected solver still *detects* every fault (checkpoint
    // ring, residual-jump checks), but its first rollback is terminal,
    // so crashes and bit-flip storms surface as `recovery-exhausted`
    // instead of being silently absorbed, and the recorder must (a)
    // dump each bad job exactly once and (b) rank the injected fault
    // class first.
    let fr = FlightRecorder::new(FlightRecorderConfig::default());
    let mut cfg = service_config(Some(&fr));
    cfg.max_attempts = 1;
    cfg.recovery = Some(RecoveryConfig {
        max_rollbacks: 0,
        ..RecoveryConfig::default()
    });
    let service = SolverService::start(cfg);
    let chaos_mat = Arc::new(gen::poisson_2d(24, 24));
    let chaos_rhs = gen::rhs_for_known_solution(&chaos_mat).0;

    let per_kind = if requests >= 300 { 8 } else { 4 };
    let kinds = ["stall", "crash", "bitflip"];
    // (trace id, injected kind, terminal outcome tag) per chaos job.
    let mut jobs: Vec<(u64, &str, &'static str)> = Vec::new();
    for i in 0..per_kind * kinds.len() {
        let kind = kinds[i % kinds.len()];
        let trace = 0x00E3_0000u64 + i as u64 + 1;
        let h = splitmix64(i as u64 ^ 0xE30);
        let op = 10 + (h % 30) as usize;
        let proc = ((h >> 8) % 4) as usize;
        let plan = match kind {
            // Longer than the 100ms hang timeout: the supervisor must
            // kill the worker mid-stall.
            "stall" => FaultPlan::new().with_stall(op, proc, 150),
            "crash" => FaultPlan::new().with_crash(op, proc),
            // A storm of high-bit flips: recovery (if any survives the
            // single attempt) cannot absorb them all.
            _ => {
                let mut p = FaultPlan::new();
                for k in 0..6 {
                    p = p.with_bit_flip(op + 7 * k, proc, 62, 0);
                }
                p
            }
        };
        let req = SolveRequest::with_rhs_set(chaos_mat.clone(), vec![chaos_rhs.clone()])
            .trace(trace)
            .fault_plan(plan);
        let outcome = match service
            .submit(req)
            .expect("chaos job fits the queue")
            .wait()
        {
            Ok(_) => "ok",
            Err(e) => e.outcome(),
        };
        jobs.push((trace, kind, outcome));
    }

    // Clean control jobs through the same recorder: none may dump.
    let clean_traces: Vec<u64> = (0..6).map(|i| 0x00E4_0000u64 + i as u64 + 1).collect();
    for &trace in &clean_traces {
        let req =
            SolveRequest::with_rhs_set(chaos_mat.clone(), vec![chaos_rhs.clone()]).trace(trace);
        service
            .submit(req)
            .expect("control job fits the queue")
            .wait()
            .expect("control job must solve");
    }
    let m = service.shutdown();

    // ------------------------------------------------------------------
    // The exactness + attribution ledger.
    let mut bad = 0usize;
    let mut matched = 0usize;
    let mut conf_sum = 0.0f64;
    let mut verdicts: Vec<(String, &str)> = Vec::new();
    for (trace, kind, outcome) in &jobs {
        let key = format!("{trace:016x}");
        if Trigger::from_outcome(outcome).is_some() {
            bad += 1;
            let pm = fr.get(&key).unwrap_or_else(|| {
                panic!("bad job {key} ({kind}, outcome {outcome}) must have a post-mortem")
            });
            let top = pm.top_verdict().name().to_string();
            if top == format!("fault-{kind}") {
                matched += 1;
                conf_sum += pm.causes.first().map(|c| c.confidence).unwrap_or(0.0);
            }
            verdicts.push((top, kind));
        } else {
            assert!(
                fr.get(&key).is_none(),
                "job {key} ({kind}) ended {outcome} — a non-trigger outcome must not dump"
            );
        }
    }
    for &trace in &clean_traces {
        assert!(
            fr.get(&format!("{trace:016x}")).is_none(),
            "clean control job {trace:#x} must not dump"
        );
    }
    assert!(
        jobs.iter()
            .filter(|(_, k, _)| *k == "stall")
            .all(|(_, _, o)| Trigger::from_outcome(o).is_some()),
        "every stall must end badly (supervisor kill): {jobs:?}"
    );
    assert!(
        m.supervisor_kills >= per_kind as u64,
        "each stall must trip the supervisor (kills {}, stalls {per_kind})",
        m.supervisor_kills
    );
    assert_eq!(
        fr.dumps(),
        bad as u64,
        "exactly one post-mortem per bad-outcome job (no dupes, no misses)"
    );
    let dump_keys: std::collections::HashSet<String> =
        fr.postmortems().iter().map(|pm| pm.key.clone()).collect();
    assert_eq!(
        dump_keys.len() as u64,
        fr.dumps(),
        "post-mortem keys must be unique"
    );
    let match_rate = matched as f64 / bad.max(1) as f64;
    assert_eq!(
        bad,
        jobs.len(),
        "zero recovery headroom + no retries: every chaos job must end \
         badly: {jobs:?}"
    );
    assert!(
        match_rate >= 0.9,
        "top-ranked cause must name the injected fault class on >= 90% of \
         bad jobs (got {matched}/{bad}): {verdicts:?}"
    );
    let mean_conf = if matched > 0 {
        conf_sum / matched as f64
    } else {
        0.0
    };
    t.row(vec![
        "chaos-sweep".into(),
        format!("{matched}/{bad}"),
        format!(
            "top cause matches injected class ({:.0}% >= 90%), mean confidence {mean_conf:.2}",
            100.0 * match_rate
        ),
    ]);
    t.row(vec![
        "clean-control".into(),
        format!("{}", clean_traces.len()),
        "clean jobs through the same recorder: zero dumps".into(),
    ]);

    // ------------------------------------------------------------------
    // Artifacts: the /postmortems index, one full dump (the CLI's
    // postmortem/explain input), and a clean trace explain must refuse.
    let first = fr
        .postmortems()
        .into_iter()
        .min_by_key(|pm| pm.seq)
        .expect("the sweep produced at least one dump");
    let a = gen::poisson_2d(16, 16);
    let (b, _) = gen::rhs_for_known_solution(&a);
    let op = RowwiseCsr::block(a, 4, DataArrayLayout::RowAligned);
    let mut machine = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
    machine.set_tracing(true);
    let (_, solve_stats) = cg_distributed(
        &mut machine,
        &op,
        &b,
        StopCriterion::RelativeResidual(1e-8),
        500,
    )
    .expect("traced clean solve");
    assert!(solve_stats.converged);
    for (name, content) in [
        ("e30_postmortems.json", fr.index_json()),
        ("e30_postmortem.json", first.to_json()),
        ("e30_trace.jsonl", machine.trace().to_jsonl()),
    ] {
        let path = artifact_dir.join(name);
        std::fs::write(&path, content)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    }
    // The dump artifact round-trips through the summary parser the CLI
    // and the HTTP scrape both use.
    let summary = hpf_obs::postmortem_summary_from_json(&first.to_json())
        .expect("dump artifact parses as a post-mortem");
    assert_eq!(summary.trace, first.key);

    let mut histogram: Vec<(String, usize)> = Vec::new();
    for (v, _) in &verdicts {
        match histogram.iter_mut().find(|(name, _)| name == v) {
            Some((_, n)) => *n += 1,
            None => histogram.push((v.clone(), 1)),
        }
    }
    let mut record = BenchRecord::new(30, "e30-rca");
    record.push("rca/overhead_ratio", overhead_ratio);
    record.push("rca/match_rate", match_rate);
    record.push("rca/dumps", fr.dumps() as f64);
    record.push("rca/mean_top_confidence", mean_conf);
    let outcome = gate
        .check_and_record(&record)
        .unwrap_or_else(|e| panic!("E30 bench gate: {e}"));

    t.note(format!(
        "verdicts: {} ({} chaos jobs, {} ended badly, {} absorbed by recovery)",
        histogram
            .iter()
            .map(|(v, n)| format!("{v} x{n}"))
            .collect::<Vec<_>>()
            .join(", "),
        jobs.len(),
        bad,
        jobs.len() - bad
    ));
    t.note(format!("sample narrative: {}", first.narrative));
    t.note(if outcome.compared {
        format!(
            "regression gate: PASS vs previous {} ({} series compared, tolerance {}%)",
            outcome.baseline_path.display(),
            outcome.series_compared,
            gate.max_regression_pct
        )
    } else {
        format!(
            "regression gate: first run, baseline written to {}",
            outcome.baseline_path.display()
        )
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e30_smoke_attributes_every_injected_fault_class() {
        let dir = std::env::temp_dir().join(format!("hpf-e30-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gate = RegressionGate::new(&dir).with_tolerance(150.0);
        // Below the 300-request threshold: smoke-scale sweep and no
        // wall-clock overhead assertion, but attribution accuracy, dump
        // exactness, and every artifact are still asserted.
        let t = e30_with_gate(120, &gate);
        assert_eq!(t.rows.len(), 4);
        assert!(gate.baseline_path(30).exists());
        for artifact in [
            "e30_postmortems.json",
            "e30_postmortem.json",
            "e30_trace.jsonl",
        ] {
            assert!(dir.join(artifact).exists(), "{artifact} must be written");
        }
        let doc = std::fs::read_to_string(dir.join("e30_postmortem.json")).unwrap();
        let summary = hpf_obs::postmortem_summary_from_json(&doc).expect("artifact is a dump");
        assert!(summary.top_verdict.starts_with("fault-"));
        let index = std::fs::read_to_string(dir.join("e30_postmortems.json")).unwrap();
        hpf_obs::json::validate(&index).expect("index is strict JSON");
        assert!(index.contains(&summary.trace));
        // The clean trace is NOT a post-mortem: explain must refuse it.
        let clean = std::fs::read_to_string(dir.join("e30_trace.jsonl")).unwrap();
        assert!(hpf_obs::postmortem_summary_from_json(&clean).is_err());
        assert!(t.notes.iter().any(|n| n.contains("verdicts:")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
