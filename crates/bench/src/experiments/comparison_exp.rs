//! E13 (HPF vs hand-coded message passing) and E15 (Figure 1 storage
//! representations).

use crate::table::{ratio, Table};
use hpf_core::spmd_baseline::{spmd_cg, spmd_matvec};
use hpf_core::{DataArrayLayout, DistVector, RowwiseCsr};
use hpf_dist::ArrayDescriptor;
use hpf_machine::{CostModel, Machine, Topology};
use hpf_solvers::{cg_distributed, StopCriterion};
use hpf_sparse::{gen, CooMatrix, CscMatrix, CsrMatrix, DenseMatrix};

fn machine(np: usize) -> Machine {
    Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
}

/// E13 — Sections 1/6: HPF's promise is "additional code portability and
/// ease of maintenance by comparison with message-passing
/// implementations" at comparable communication. Compare the words the
/// HPF layouts induce (simulated machine counters) against a hand-coded
/// SPMD message-passing run (real threads, real messages) for the same
/// matvec and the same full CG solve.
pub fn e13_hpf_vs_spmd(n: usize, nnz_per_row: usize, np: usize) -> Table {
    let mut t = Table::new(
        "E13",
        format!("HPF vs hand-coded SPMD traffic, n = {n}, NP = {np}"),
        &[
            "operation",
            "implementation",
            "words_sent",
            "per-iteration words",
            "hpf/spmd",
        ],
    );
    let a = gen::random_spd(n, nnz_per_row, 31);
    let x = vec![1.0; n];

    // --- single matvec ---
    let mut m = machine(np);
    let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let p = DistVector::from_global(ArrayDescriptor::block(n, np), &x);
    op.matvec(&mut m, &p);
    let hpf_words = m.total_words_sent();
    let (_, run) = spmd_matvec(&a, &x, np);
    let spmd_words = run.total_words_sent();
    t.row(vec![
        "matvec".into(),
        "HPF (simulated)".into(),
        hpf_words.to_string(),
        "-".into(),
        ratio(hpf_words as f64 / spmd_words.max(1) as f64),
    ]);
    t.row(vec![
        "matvec".into(),
        "SPMD (real threads)".into(),
        spmd_words.to_string(),
        "-".into(),
        ratio(1.0),
    ]);

    // --- full CG ---
    let (_, b) = gen::rhs_for_known_solution(&a);
    let mut m2 = machine(np);
    let (_, stats) = cg_distributed(
        &mut m2,
        &op,
        &b,
        StopCriterion::RelativeResidual(1e-8),
        10 * n,
    )
    .unwrap();
    let hpf_cg_words = m2.total_words_sent();
    let (res, run2) = spmd_cg(&a, &b, 1e-8, 10 * n, np);
    let spmd_cg_words = run2.total_words_sent();
    t.row(vec![
        format!("CG ({} iters)", stats.iterations),
        "HPF (simulated)".into(),
        hpf_cg_words.to_string(),
        (hpf_cg_words / stats.iterations.max(1) as u64).to_string(),
        ratio(hpf_cg_words as f64 / spmd_cg_words.max(1) as f64),
    ]);
    t.row(vec![
        format!("CG ({} iters)", res.iterations),
        "SPMD (real threads)".into(),
        spmd_cg_words.to_string(),
        (spmd_cg_words / res.iterations.max(1) as u64).to_string(),
        ratio(1.0),
    ]);
    t.note("HPF induces the same communication volume (ratio ~1) while the source is the Figure 2 one-liner style");
    t.note("SPMD allgather sends each block to NP-1 peers; the simulated HPF allgather counts the same contributions");
    t
}

/// E15 — Figure 1: the CSC representation of the worked 6x6 example, and
/// round-trips through every storage scheme.
pub fn e15_storage_formats() -> Table {
    let mut t = Table::new(
        "E15",
        "Figure 1 sparse storage representations (6x6 example)".to_string(),
        &["check", "result"],
    );
    let d = DenseMatrix::from_rows(&[
        vec![11.0, 12.0, 0.0, 0.0, 15.0, 0.0],
        vec![21.0, 22.0, 0.0, 24.0, 0.0, 26.0],
        vec![31.0, 0.0, 33.0, 0.0, 0.0, 0.0],
        vec![0.0, 42.0, 0.0, 44.0, 0.0, 0.0],
        vec![51.0, 0.0, 0.0, 0.0, 55.0, 0.0],
        vec![0.0, 62.0, 0.0, 0.0, 0.0, 66.0],
    ])
    .unwrap();
    let csc = CscMatrix::from_dense(&d);
    let csr = CsrMatrix::from_dense(&d);
    let coo = CooMatrix::from_dense(&d);

    t.row(vec!["nnz".into(), csc.nnz().to_string()]);
    t.row(vec![
        "CSC a(nz) first column".into(),
        format!("{:?}", &csc.values()[..4]),
    ]);
    t.row(vec![
        "CSC row(nz) first column".into(),
        format!("{:?}", &csc.row_idx()[..4]),
    ]);
    t.row(vec!["CSC col(n+1)".into(), format!("{:?}", csc.col_ptr())]);
    t.row(vec![
        "dense->CSC->dense".into(),
        (csc.to_dense() == d).to_string(),
    ]);
    t.row(vec![
        "dense->CSR->dense".into(),
        (csr.to_dense() == d).to_string(),
    ]);
    t.row(vec![
        "CSR->CSC->CSR".into(),
        (CscMatrix::from_csr(&csr).to_csr() == csr).to_string(),
    ]);
    t.row(vec!["COO->dense".into(), (coo.to_dense() == d).to_string()]);
    let x: Vec<f64> = (1..=6).map(|i| i as f64).collect();
    let same = {
        let a = d.matvec(&x).unwrap();
        let b = csr.matvec(&x).unwrap();
        let c = csc.matvec(&x).unwrap();
        a.iter()
            .zip(b.iter())
            .zip(c.iter())
            .all(|((u, v), w)| (u - v).abs() < 1e-12 && (u - w).abs() < 1e-12)
    };
    t.row(vec![
        "matvec agrees across formats".into(),
        same.to_string(),
    ]);
    t.note("matches Figure 1: a stored column-by-column, row() holding row numbers, col() the column pointers");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_volumes_comparable() {
        let t = e13_hpf_vs_spmd(64, 4, 4);
        // matvec ratio within 2x either way (collective algorithms count
        // contributions differently but the volume class is the same).
        let r: f64 = t.rows[0][4].parse().unwrap();
        assert!(r > 0.3 && r < 3.0, "matvec ratio {r}");
        let rcg: f64 = t.rows[2][4].parse().unwrap();
        assert!(rcg > 0.3 && rcg < 3.0, "cg ratio {rcg}");
    }

    #[test]
    fn e15_all_checks_pass() {
        let t = e15_storage_formats();
        for row in t
            .rows
            .iter()
            .filter(|r| r[0].contains("->") || r[0].contains("agrees"))
        {
            assert_eq!(row[1], "true", "{} failed", row[0]);
        }
        assert_eq!(t.rows[0][1], "15");
    }
}
