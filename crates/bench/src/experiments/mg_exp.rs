//! E28: the HPCG-class workload — multigrid-preconditioned CG swept
//! over hierarchy depth, machine size, and Poisson family.
//!
//! The paper's study stops at Jacobi PCG; `hpf-mg` adds the geometric
//! multigrid V-cycle the HPCG benchmark made canonical. E28 runs
//! MG-PCG over 5-point 2-D and 7-point 3-D Poisson systems at several
//! hierarchy depths and machine sizes, with a Jacobi-PCG reference
//! solve per (family, NP) point, and asserts the headline claim rather
//! than just tabulating it: at depth >= 3 the V-cycle must cut the
//! iteration count by at least 5x. Every MG solve runs traced and is
//! pushed through the [`DriftReport`] oracle, which now splits the
//! multigrid work into `mg-smooth` (per-level relaxation + halo +
//! coarse solve) and `mg-transfer` (restriction / prolongation motion)
//! categories; each sweep point must keep every category inside the
//! ±10% drift band, and both mg categories must actually appear. The
//! HPCG-style figure of merit — GFLOP/s-equivalent over the simulated
//! schedule — is reported per point.
//!
//! The run is recorded through the [`RegressionGate`] into
//! `BENCH_28.json` + `bench-history.jsonl`. Artifacts: set
//! `HPF_BENCH_DIR` to redirect the bench records and `HPF_OBS_DIR` to
//! dump one drift-report JSON per sweep point. `HPF_E28_SMOKE=1`
//! restricts the sweep to the 2-D family at NP = 4 (a strict subset of
//! the full grid, so the smoke record still diffs cleanly against a
//! committed full baseline).

use crate::table::Table;
use hpf_machine::{CostModel, Machine, Topology};
use hpf_mg::{pcg_mg_distributed, GridDims, MgHierarchy, MgPreconditioner};
use hpf_obs::{BenchRecord, DriftReport, RegressionGate};
use hpf_solvers::{pcg_jacobi_distributed, StopCriterion};
use hpf_sparse::gen;

/// Drift tolerance band shared with E25 (DESIGN.md §8): every cost
/// category must stay within ±10% of the analytic prediction.
const DRIFT_TOLERANCE: f64 = 0.10;

/// One sweep point: a matrix family at one machine size, solved at
/// each listed hierarchy depth.
struct SweepPoint {
    family: &'static str,
    dims: GridDims,
    np: usize,
    depths: &'static [usize],
}

fn sweep(smoke: bool) -> Vec<SweepPoint> {
    let mut points = vec![SweepPoint {
        family: "poisson-2d",
        dims: GridDims::d2(31, 31),
        np: 4,
        depths: &[2, 3],
    }];
    if !smoke {
        points.push(SweepPoint {
            family: "poisson-2d",
            dims: GridDims::d2(31, 31),
            np: 8,
            depths: &[2, 3],
        });
        points.push(SweepPoint {
            family: "poisson-3d",
            dims: GridDims::d3(15, 15, 15),
            np: 8,
            depths: &[2, 3],
        });
    }
    points
}

/// E28 — MG-PCG sweep, gated against the previous run's
/// `BENCH_28.json`. Reads `HPF_E28_SMOKE` and `HPF_BENCH_DIR`.
pub fn e28_hpcg() -> Table {
    let dir = std::env::var("HPF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let smoke = std::env::var("HPF_E28_SMOKE").is_ok_and(|v| v == "1");
    e28_with_gate(smoke, &RegressionGate::new(dir).with_tolerance(10.0))
}

/// E28 with an explicit gate (tests point this at a scratch directory).
pub fn e28_with_gate(smoke: bool, gate: &RegressionGate) -> Table {
    let mut t = Table::new(
        "E28",
        format!(
            "HPCG-class MG-PCG sweep{}: levels x NP x Poisson family, hypercube, mpp-1995",
            if smoke { " (smoke)" } else { "" }
        ),
        &[
            "family",
            "NP",
            "levels",
            "MG iters",
            "Jacobi iters",
            "iter ratio",
            "sim solve s",
            "max |drift| %",
            "GFLOP/s-eq",
        ],
    );

    let stop = StopCriterion::RelativeResidual(1e-8);
    let mut record = BenchRecord::new(28, "e28-hpcg");
    let obs_dir = std::env::var("HPF_OBS_DIR").ok();

    for p in sweep(smoke) {
        let n = p.dims.n();
        // Jacobi-PCG reference on the same fine operator, once per
        // (family, NP) point.
        let a = p.dims.poisson();
        let (_, b) = gen::rhs_for_known_solution(&a);
        let ref_h = MgHierarchy::build(p.dims, 2, p.np)
            .unwrap_or_else(|e| panic!("{}/np{}: {e}", p.family, p.np));
        let ref_op = ref_h.fine_operator();
        let mut m_j = Machine::new(p.np, Topology::Hypercube, CostModel::mpp_1995());
        let (_, s_j) = pcg_jacobi_distributed(&mut m_j, &ref_op, &b, stop, 50 * n)
            .expect("Jacobi-PCG on Poisson must converge");
        assert!(
            s_j.converged,
            "{}/np{}: Jacobi-PCG diverged",
            p.family, p.np
        );
        record.push(
            format!("{}/np{}/jacobi_iters", p.family, p.np),
            s_j.iterations as f64,
        );

        for &levels in p.depths {
            let key = format!("{}/np{}/L{levels}", p.family, p.np);
            let h =
                MgHierarchy::build(p.dims, levels, p.np).unwrap_or_else(|e| panic!("{key}: {e}"));
            let pre = MgPreconditioner::new(h);
            let mut m = Machine::new(p.np, Topology::Hypercube, CostModel::mpp_1995());
            m.set_tracing(true);
            let (_, s) =
                pcg_mg_distributed(&mut m, &pre, &b, stop, 50 * n).expect("MG-PCG must converge");
            assert!(s.converged, "{key}: MG-PCG diverged");

            // The oracle reprices the whole traced schedule; the mg
            // categories must be present and every category in band.
            let report = DriftReport::from_trace(m.trace(), Topology::Hypercube, m.cost_model());
            let max_drift = report.max_abs_rel_error();
            assert!(
                max_drift <= DRIFT_TOLERANCE,
                "{key}: drift {:.2}% breaches the {:.0}% band\n{}",
                max_drift * 100.0,
                DRIFT_TOLERANCE * 100.0,
                report.render()
            );
            for cat in ["mg-smooth", "mg-transfer"] {
                let line = report
                    .categories
                    .iter()
                    .find(|l| l.category.name() == cat)
                    .unwrap_or_else(|| panic!("{key}: no {cat} category line"));
                assert!(
                    line.measured_seconds > 0.0,
                    "{key}: {cat} carries no measured time"
                );
            }
            let gflops = report
                .gflops_equivalent()
                .expect("traced MG solve has flops and time");

            // Headline claim on the deep hierarchies: the V-cycle cuts
            // iterations at least 5x vs the paper's Jacobi PCG.
            if levels >= 3 {
                assert!(
                    5 * s.iterations <= s_j.iterations,
                    "{key}: MG {} vs Jacobi {} iterations — less than the 5x cut",
                    s.iterations,
                    s_j.iterations
                );
            }

            t.row(vec![
                p.family.to_string(),
                format!("{}", p.np),
                format!("{levels}"),
                format!("{}", s.iterations),
                format!("{}", s_j.iterations),
                format!("{:.1}x", s_j.iterations as f64 / s.iterations as f64),
                format!("{:.6e}", m.elapsed()),
                format!("{:.3}", max_drift * 100.0),
                format!("{:.4}", gflops),
            ]);
            record.push(format!("{key}/iters"), s.iterations as f64);
            record.push(format!("{key}/solve_seconds"), m.elapsed());
            record.push(format!("{key}/max_drift_pct"), max_drift * 100.0);
            if let Some(dir) = &obs_dir {
                let _ = std::fs::create_dir_all(dir);
                let path = std::path::Path::new(dir)
                    .join(format!("e28-{}-np{}-L{levels}.drift.json", p.family, p.np));
                std::fs::write(&path, report.to_json())
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            }
        }
    }

    let outcome = gate
        .check_and_record(&record)
        .unwrap_or_else(|e| panic!("E28 bench gate: {e}"));
    t.note(format!(
        "drift = (measured - predicted)/predicted per oracle category (incl. \
         mg-smooth / mg-transfer); band ±{:.0}%",
        DRIFT_TOLERANCE * 100.0
    ));
    t.note("figure of merit = recorded flops / simulated schedule seconds (HPCG-style)");
    t.note(if outcome.compared {
        format!(
            "regression gate: PASS vs previous {} ({} series compared, tolerance {}%)",
            outcome.baseline_path.display(),
            outcome.series_compared,
            gate.max_regression_pct
        )
    } else {
        format!(
            "regression gate: first run, baseline written to {}",
            outcome.baseline_path.display()
        )
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_gate(tag: &str) -> RegressionGate {
        let dir = std::env::temp_dir().join(format!("hpf-e28-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RegressionGate::new(dir)
    }

    #[test]
    fn e28_smoke_asserts_the_5x_cut_and_gates() {
        let gate = scratch_gate("smoke");
        let t = e28_with_gate(true, &gate);
        // 1 point x 2 depths.
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert_eq!(row[0], "poisson-2d");
            let drift: f64 = row[7].parse().unwrap();
            assert!(drift <= 10.0);
            let gflops: f64 = row[8].parse().unwrap();
            assert!(gflops > 0.0);
        }
        assert!(gate.baseline_path(28).exists());
        // A second identical run compares against the baseline cleanly.
        let t2 = e28_with_gate(true, &gate);
        assert!(t2.notes.iter().any(|n| n.contains("PASS")));
        let _ = std::fs::remove_dir_all(&gate.dir);
    }

    #[test]
    fn e28_smoke_record_is_a_subset_of_the_full_sweep() {
        // The CI smoke run diffs its record against the committed full
        // baseline, which only works if smoke keys are a strict subset.
        let full: Vec<String> = sweep(false)
            .iter()
            .flat_map(|p| {
                p.depths
                    .iter()
                    .map(|l| format!("{}/np{}/L{l}", p.family, p.np))
                    .collect::<Vec<_>>()
            })
            .collect();
        for p in sweep(true) {
            for l in p.depths {
                let key = format!("{}/np{}/L{l}", p.family, p.np);
                assert!(full.contains(&key), "smoke point {key} not in full sweep");
            }
        }
        assert!(sweep(true).len() < sweep(false).len());
    }
}
