//! E27: chaos soak — the overload-robust service under open-loop load
//! with faults on.
//!
//! E22 asks "how fast is the service?"; E27 asks the operational
//! question behind ROADMAP item 2: "does it *stay a service* when tail
//! jobs, faults, and overload coincide?". The harness first calibrates
//! the service's closed-loop throughput, then replays a deterministic
//! mixed-tenant request stream **open-loop** at ~1.35x that rate —
//! arrivals do not wait for completions, exactly the regime where a
//! naive queue collapses. The mix (a fixed splitmix64 stream, so every
//! run sees the same traffic) is ~20% `Interactive` (some with hopeless
//! microsecond deadlines), ~60% `Batch`, ~20% `BestEffort`, with ~5% of
//! jobs carrying transient fault plans and a periodic wall-clock
//! **stall** fault that hangs a worker until the supervisor kills it.
//!
//! Asserted, not just tabulated:
//! - **zero lost jobs** — every submitted request gets exactly one
//!   typed terminal answer: a response through its handle, or
//!   `Busy`/`Shed` at the door;
//! - **interactive p99 stays bounded** under overload (weighted-fair
//!   dequeue is what keeps the 20% interactive stream out of the batch
//!   flood's shadow);
//! - **sheds are justified**: the hindsight audit's shed-when-feasible
//!   rate ([`hpf_obs::AdmissionAudit`]) stays under 5%;
//! - **supervision works**: at least one hung worker is killed and
//!   respawned mid-soak.
//!
//! The run is recorded through the [`RegressionGate`] as
//! `BENCH_27.json` + `bench-history.jsonl` (scale-free rate series
//! only, so a 5k CI smoke compares against a 100k baseline). Set
//! `HPF_SOAK_REQUESTS` to resize the default run.

use crate::table::Table;
use hpf_obs::{percentile_us, AdmissionAudit, BenchRecord, RegressionGate};
use hpf_service::{JobHandle, QosClass, ServiceConfig, ServiceError, SolveRequest, SolverService};
use hpf_sparse::{gen, CsrMatrix};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every `STALL_PERIOD`-th request (offset so short runs still see
/// one) carries a wall-clock stall fault long enough to trip the
/// supervisor's hang timeout.
const STALL_PERIOD: usize = 2500;
const STALL_OFFSET: usize = 1250;
const STALL_MILLIS: u64 = 250;

/// Soak size: `HPF_SOAK_REQUESTS` if set, else the CI-smoke-sized 5000.
/// The acceptance run uses 100_000.
pub fn default_requests() -> usize {
    std::env::var("HPF_SOAK_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000)
}

/// E27 — chaos soak, gated against the previous `BENCH_27.json`. The
/// generous tolerance reflects that the gated series are rates under a
/// wall-clock-paced load, not simulated-clock quantities.
pub fn e27_chaos_soak(requests: usize) -> Table {
    let dir = std::env::var("HPF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    e27_with_gate(requests, &RegressionGate::new(dir).with_tolerance(50.0))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-class terminal tally kept by the reaper thread.
#[derive(Default)]
struct Tally {
    completed: [u64; 3],
    deadline_missed: [u64; 3],
    worker_killed: [u64; 3],
    failed_other: u64,
    /// Wall latency (queue wait + solve) of completed jobs, µs.
    latency_us: [Vec<u64>; 3],
}

/// E27 with an explicit gate (tests point this at a scratch directory).
pub fn e27_with_gate(requests: usize, gate: &RegressionGate) -> Table {
    let mut t = Table::new(
        "E27",
        format!("chaos soak: {requests} open-loop mixed-QoS requests, faults on"),
        &[
            "class",
            "submitted",
            "completed",
            "shed",
            "busy",
            "missed",
            "killed",
            "p50 ms",
            "p99 ms",
        ],
    );

    let service = SolverService::start(ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        np: 4,
        hang_timeout: Duration::from_millis(100),
        supervisor_poll: Duration::from_millis(10),
        // Kills feed the breaker; keep it from tripping on the shared
        // structures so breaker refusals don't dominate the soak.
        breaker_threshold: 50,
        ..ServiceConfig::default()
    });
    // Three structures cover the repo's matrix families; small enough
    // that a 100k-request soak stays in seconds, irregular enough that
    // plans and predictions differ per structure.
    let mats: [Arc<CsrMatrix>; 3] = [
        Arc::new(gen::banded_spd(48, 2, 27)),
        Arc::new(gen::power_law_spd(64, 10, 0.9, 27)),
        Arc::new(gen::poisson_2d(8, 8)),
    ];
    let rhs: Vec<Vec<f64>> = mats
        .iter()
        .map(|a| gen::rhs_for_known_solution(a).0)
        .collect();

    // ------------------------------------------------------------------
    // Phase 1 — closed-loop calibration: measure sustainable throughput
    // (and warm the plan cache + admission EWMAs) with chunked bursts.
    let calib_jobs = (requests / 10).clamp(96, 512);
    let calib_started = Instant::now();
    let mut done = 0usize;
    while done < calib_jobs {
        let chunk = (calib_jobs - done).min(24);
        let handles: Vec<JobHandle> = (0..chunk)
            .map(|k| {
                let s = (done + k) % 3;
                service
                    .submit(SolveRequest::with_rhs_set(
                        mats[s].clone(),
                        vec![rhs[s].clone()],
                    ))
                    .expect("calibration chunk fits the queue")
            })
            .collect();
        for h in handles {
            assert!(h.wait().expect("calibration solve").stats[0].converged);
        }
        done += chunk;
    }
    let rate = calib_jobs as f64 / calib_started.elapsed().as_secs_f64().max(1e-9);
    // Open-loop arrival rate: 1.35x measured capacity, so queues must
    // fill and the overload answers (Busy, Shed) must engage.
    let interarrival = Duration::from_secs_f64(1.0 / (rate * 1.35));

    // ------------------------------------------------------------------
    // Phase 2 — the soak. A reaper thread consumes handles FIFO so the
    // submit loop never blocks on completions (open loop).
    let audit = Arc::new(AdmissionAudit::new());
    let (handle_tx, handle_rx) = std::sync::mpsc::channel::<(QosClass, JobHandle)>();
    let reaper = {
        let audit = audit.clone();
        std::thread::spawn(move || {
            let mut tally = Tally::default();
            for (class, h) in handle_rx {
                let i = class.index();
                match h.wait() {
                    Ok(resp) => {
                        let wall = resp.wait_time + resp.solve_time;
                        audit.record_completed(class, wall);
                        tally.latency_us[i].push(wall.as_micros() as u64);
                        tally.completed[i] += 1;
                    }
                    Err(ServiceError::DeadlineExceeded { .. }) => tally.deadline_missed[i] += 1,
                    Err(ServiceError::WorkerKilled { .. }) => tally.worker_killed[i] += 1,
                    Err(_) => tally.failed_other += 1,
                }
            }
            tally
        })
    };

    let mut submitted = [0u64; 3];
    let mut shed = [0u64; 3];
    let mut busy = [0u64; 3];
    let mut stalls_submitted = 0u64;
    let soak_started = Instant::now();
    for i in 0..requests {
        let h = splitmix64(i as u64);
        let s = (h % 3) as usize;
        // The scripted stall rides a plain batch job (no deadline) so
        // neither the admission controller nor a full queue can turn
        // the hang scenario away at the door.
        let is_stall = i % STALL_PERIOD == STALL_OFFSET;
        let class = if is_stall {
            QosClass::Batch
        } else {
            match (h >> 8) & 0xFF {
                0..=50 => QosClass::Interactive,
                51..=204 => QosClass::Batch,
                _ => QosClass::BestEffort,
            }
        };
        let build = |mats: &[Arc<CsrMatrix>; 3], rhs: &[Vec<f64>]| {
            let mut req = SolveRequest::with_rhs_set(mats[s].clone(), vec![rhs[s].clone()])
                .qos(class)
                .tenant(class.name());
            if class == QosClass::Interactive {
                // Mostly a generous 2 s budget; ~10% hopeless
                // microsecond deadlines a calibrated controller sheds.
                req = req.deadline(if (h >> 16) & 0xFF < 26 {
                    Duration::from_micros(20)
                } else {
                    Duration::from_secs(2)
                });
            }
            if is_stall {
                // The hang: a worker sleeps through the supervisor's
                // timeout and is killed and respawned mid-soak.
                req = req.fault_plan(hpf_machine::FaultPlan::new().with_stall(30, 0, STALL_MILLIS));
            } else if (h >> 24) & 0xFF < 13 {
                // ~5% transient chaos: a crash plus a dropped message
                // for the protected solver to ride out.
                let op = 20 + ((h >> 32) % 40) as usize;
                req = req.fault_plan(
                    hpf_machine::FaultPlan::new()
                        .with_crash(op, ((h >> 40) % 4) as usize)
                        .with_message_drop(op + 15, ((h >> 44) % 4) as usize),
                );
            }
            req
        };

        // Open loop: pace arrivals off the wall clock, never off
        // completions.
        let due = soak_started + interarrival.mul_f64(i as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        submitted[class.index()] += 1;
        stalls_submitted += u64::from(is_stall);
        let mut attempts = 0u32;
        loop {
            match service.submit(build(&mats, &rhs)) {
                Ok(handle) => {
                    handle_tx
                        .send((class, handle))
                        .expect("reaper outlives the submit loop");
                    break;
                }
                Err(ServiceError::Shed { predicted, budget }) => {
                    audit.record_shed(class, predicted, budget);
                    shed[class.index()] += 1;
                    break;
                }
                Err(ServiceError::Busy { .. }) if is_stall => {
                    // Only the scripted hang retries: it must land for
                    // the supervision assertions to be meaningful.
                    attempts += 1;
                    assert!(attempts < 10_000, "stall request starved by Busy");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(ServiceError::Busy { .. }) => {
                    busy[class.index()] += 1;
                    break;
                }
                Err(e) => panic!("unexpected submit error at request {i}: {e}"),
            }
        }
    }
    drop(handle_tx);
    let tally = reaper.join().expect("reaper thread");
    // A stall near the end of the stream can still be mid kill/respawn
    // when the last handle answers; let the supervisor finish so the
    // restart is visible in the shutdown snapshot.
    if stalls_submitted > 0 {
        let wait_started = Instant::now();
        while service.metrics().worker_restarts < stalls_submitted
            && wait_started.elapsed() < Duration::from_secs(5)
        {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let m = service.shutdown();

    // ------------------------------------------------------------------
    // The robustness ledger. Zero lost jobs: every accepted handle was
    // reaped with exactly one terminal answer, and the service's own
    // books balance.
    let accepted: u64 =
        submitted.iter().sum::<u64>() - shed.iter().sum::<u64>() - busy.iter().sum::<u64>();
    let reaped: u64 = tally.completed.iter().sum::<u64>()
        + tally.deadline_missed.iter().sum::<u64>()
        + tally.worker_killed.iter().sum::<u64>()
        + tally.failed_other;
    assert_eq!(
        reaped, accepted,
        "every accepted job must answer exactly once"
    );
    assert_eq!(
        m.accepted,
        accepted + calib_jobs as u64,
        "service-side accept counter must match the generator's"
    );
    assert_eq!(m.shed_total, shed.iter().sum::<u64>());
    assert_eq!(
        m.in_flight, 0,
        "nothing may remain in flight after shutdown"
    );
    assert_eq!(
        m.completed + m.failed,
        m.accepted,
        "service ledger: accepted = completed + failed"
    );
    assert!(m.faults_injected > 0, "the chaos must actually fire");

    let feasible_rate = audit.shed_when_feasible_rate();
    assert!(
        feasible_rate < 0.05,
        "shed-when-feasible rate {feasible_rate:.4} breaches the 5% band"
    );

    let p99_us = |class: usize| -> Option<u64> {
        let lat = &tally.latency_us[class];
        (!lat.is_empty()).then(|| percentile_us(lat, 0.99))
    };
    if requests >= 1000 {
        // Large enough for every scripted event to have occurred.
        assert!(shed.iter().sum::<u64>() >= 1, "no shed ever fired");
        assert!(
            m.supervisor_kills >= 1 && m.worker_restarts >= 1,
            "the stall must kill and respawn a worker (kills {}, restarts {})",
            m.supervisor_kills,
            m.worker_restarts
        );
        let p99 = p99_us(0).expect("interactive jobs completed");
        // The E27 band: interactive p99 stays an order of magnitude
        // under its 2 s budget even at 1.35x overload with stalls.
        assert!(
            p99 < 1_000_000,
            "interactive p99 {p99} µs breaches the 1 s soak band"
        );
        let refused: u64 = shed.iter().sum::<u64>() + busy.iter().sum::<u64>();
        assert!(
            refused >= 1,
            "1.35x overload must engage an overload answer"
        );
        assert!(
            refused * 10 < requests as u64 * 4,
            "overload answers ({refused}) must stay under 40% of {requests}"
        );
    }

    for class in QosClass::ALL {
        let i = class.index();
        let (p50, p99) = match (&tally.latency_us[i], p99_us(i)) {
            (lat, Some(p99)) => (
                format!("{:.2}", percentile_us(lat, 0.50) as f64 / 1e3),
                format!("{:.2}", p99 as f64 / 1e3),
            ),
            _ => ("-".to_string(), "-".to_string()),
        };
        t.row(vec![
            class.name().to_string(),
            submitted[i].to_string(),
            tally.completed[i].to_string(),
            shed[i].to_string(),
            busy[i].to_string(),
            tally.deadline_missed[i].to_string(),
            tally.worker_killed[i].to_string(),
            p50,
            p99,
        ]);
    }

    // Gate series are scale-free rates (percent of submitted), so a 5k
    // smoke run compares meaningfully against a 100k baseline. Lower is
    // better for every one of them.
    let total = requests as f64;
    let pct = |n: u64| n as f64 / total * 100.0;
    let mut record = BenchRecord::new(27, "e27-chaos-soak");
    record.push("soak/lost_jobs", (accepted - reaped) as f64);
    record.push("soak/failed_other_pct", pct(tally.failed_other));
    record.push(
        "soak/deadline_miss_pct",
        pct(tally.deadline_missed.iter().sum()),
    );
    record.push("soak/shed_when_feasible_pct", feasible_rate * 100.0);
    record.push(
        "soak/incomplete_pct",
        pct(accepted - tally.completed.iter().sum::<u64>()),
    );
    let outcome = gate
        .check_and_record(&record)
        .unwrap_or_else(|e| panic!("E27 bench gate: {e}"));

    t.note(format!(
        "open loop at {:.0} req/s (1.35x calibrated {:.0} solves/s); {} accepted, {} shed, {} busy",
        1.0 / interarrival.as_secs_f64(),
        rate,
        accepted,
        shed.iter().sum::<u64>(),
        busy.iter().sum::<u64>(),
    ));
    t.note(format!(
        "supervisor: {} kills, {} restarts; faults injected: {}; shed-when-feasible {:.2}%",
        m.supervisor_kills,
        m.worker_restarts,
        m.faults_injected,
        feasible_rate * 100.0
    ));
    t.note(if outcome.compared {
        format!(
            "regression gate: PASS vs previous {} ({} series compared, tolerance {}%)",
            outcome.baseline_path.display(),
            outcome.series_compared,
            gate.max_regression_pct
        )
    } else {
        format!(
            "regression gate: first run, baseline written to {}",
            outcome.baseline_path.display()
        )
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e27_soak_smoke_holds_every_band() {
        let dir = std::env::temp_dir().join(format!("hpf-e27-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gate = RegressionGate::new(&dir).with_tolerance(50.0);
        // Above the 1000-request threshold so the stall, the sheds, and
        // the p99 band are all asserted inside the harness.
        let t = e27_with_gate(1500, &gate);
        assert_eq!(t.rows.len(), 3);
        assert!(gate.baseline_path(27).exists());
        assert!(gate.history_path().exists());
        assert!(t.notes.iter().any(|n| n.contains("kills")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
