//! E10 — irregular sparse block distributions and load-balancing
//! partitioners (Section 5.2.2).

use crate::table::{ratio, us, Table};
use hpf_core::{DistVector, RowwiseCsr};
use hpf_dist::atoms::{AtomAssignment, AtomSpec};
use hpf_dist::partition;
use hpf_dist::ArrayDescriptor;
use hpf_machine::{CostModel, Machine, Topology};
use hpf_sparse::{gen, stats as mstats, CsrMatrix};

fn machine(np: usize) -> Machine {
    Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
}

/// Run a row-wise matvec with the given row cuts and report (imbalance,
/// compute time).
fn matvec_with_cuts(a: &CsrMatrix, np: usize, cuts: Vec<usize>) -> (f64, f64) {
    let n = a.n_rows();
    // p is aligned with the rows: same cut points.
    let p_desc = ArrayDescriptor::new(n, np, hpf_dist::DistSpec::IrregularCuts(cuts.clone()));
    let op = RowwiseCsr::with_row_cuts(a.clone(), np, cuts);
    let flops = op.flops_per_proc();
    let max = *flops.iter().max().unwrap() as f64;
    let mean = flops.iter().sum::<usize>() as f64 / np as f64;
    let imb = if mean == 0.0 { 1.0 } else { max / mean };
    let p = DistVector::constant(p_desc, 1.0);
    let mut m = machine(np);
    let (_, _) = op.matvec(&mut m, &p);
    (imb, m.trace().compute_time())
}

/// E10 — on a power-law (irregular) matrix, compare three row
/// distributions: plain BLOCK (equal row counts), ATOM-uniform (same
/// thing expressed over atoms), and `CG_BALANCED_PARTITIONER_1` (equal
/// nnz). Report nnz imbalance and the modeled matvec compute time.
pub fn e10_load_balance(n: usize, max_row_nnz: usize, alpha: f64) -> Table {
    let mut t = Table::new(
        "E10",
        format!("Load balance on irregular (power-law) matrix, n = {n}, alpha = {alpha}"),
        &[
            "NP",
            "distribution",
            "nnz_imbalance",
            "matvec_compute_us",
            "vs_block",
        ],
    );
    let a = gen::power_law_spd(n, max_row_nnz, alpha, 19);
    let row_stats = mstats::row_stats(&a);
    t.note(format!(
        "matrix row nnz: min {}, max {}, mean {:.1} (imbalance {:.2})",
        row_stats.min, row_stats.max, row_stats.mean, row_stats.imbalance
    ));
    let weights: Vec<usize> = (0..n).map(|r| a.row_nnz(r)).collect();
    let atoms = AtomSpec::from_pointer_array(a.row_ptr());

    for np in [4usize, 8, 16] {
        // Plain BLOCK rows.
        let bs = n.div_ceil(np);
        let block_cuts: Vec<usize> = (0..=np).map(|p| (p * bs).min(n)).collect();
        let (b_imb, b_time) = matvec_with_cuts(&a, np, block_cuts);
        t.row(vec![
            np.to_string(),
            "BLOCK(rows)".into(),
            ratio(b_imb),
            us(b_time),
            ratio(1.0),
        ]);

        // ATOM:BLOCK over rows-as-atoms (equal atom counts — same cut
        // structure as BLOCK here, since atoms are rows).
        let asg = AtomAssignment::atom_block(&atoms, np);
        let atom_el_cuts = asg.element_cuts(&atoms).unwrap();
        // Convert element cuts back to row cuts via atom boundaries.
        let mut row_cuts = vec![0usize; np + 1];
        row_cuts[np] = n;
        for p in 1..np {
            // First atom whose start element >= cut.
            row_cuts[p] = a
                .row_ptr()
                .iter()
                .position(|&e| e >= atom_el_cuts[p])
                .unwrap_or(n)
                .min(n);
        }
        let (a_imb, a_time) = matvec_with_cuts(&a, np, row_cuts);
        t.row(vec![
            np.to_string(),
            "ATOM:BLOCK".into(),
            ratio(a_imb),
            us(a_time),
            ratio(a_time / b_time),
        ]);

        // Balanced partitioner.
        let bal_cuts = partition::balanced_contiguous(&weights, np).expect("np > 0");
        let (p_imb, p_time) = matvec_with_cuts(&a, np, bal_cuts);
        t.row(vec![
            np.to_string(),
            "CG_BALANCED_PARTITIONER_1".into(),
            ratio(p_imb),
            us(p_time),
            ratio(p_time / b_time),
        ]);
    }
    t.note(
        "the balanced partitioner drives nnz imbalance toward 1.0 and cuts the matvec compute time",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_partitioner_beats_block() {
        let t = e10_load_balance(400, 80, 0.9);
        for np in ["4", "8", "16"] {
            let block: f64 = t
                .rows
                .iter()
                .find(|r| r[0] == np && r[1] == "BLOCK(rows)")
                .unwrap()[2]
                .parse()
                .unwrap();
            let bal: f64 = t
                .rows
                .iter()
                .find(|r| r[0] == np && r[1] == "CG_BALANCED_PARTITIONER_1")
                .unwrap()[2]
                .parse()
                .unwrap();
            assert!(bal <= block, "np={np}: balanced {bal} vs block {block}");
            assert!(bal < 1.6, "balanced imbalance should approach 1, got {bal}");
        }
        // Compute time improves too.
        let speedups: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[1] == "CG_BALANCED_PARTITIONER_1")
            .map(|r| r[4].parse::<f64>().unwrap())
            .collect();
        assert!(speedups.iter().all(|&s| s <= 1.0));
    }
}
