//! E26: the partitioner registry earns its keep — comm volume by
//! heuristic, plus the auto-repartitioner closing the loop mid-solve.
//!
//! The paper stops at `CG_BALANCED_PARTITIONER_1`, a contiguous
//! balanced-rows heuristic; `hpf-partition` generalises `REDISTRIBUTE
//! ... USING <name>` to a registry of four heuristics. E26 sweeps every
//! registered partitioner over the two irregular matrix families the
//! repo models (power-law SPD and block-irregular mesh) at several
//! machine sizes, pricing each layout's column-net comm volume through
//! the cost oracle ([`hpf_partition::assess`]). The headline claim is
//! asserted, not just tabulated: on power-law matrices at `NP >= 16`
//! the greedy hypergraph partitioner must move fewer modeled words per
//! matvec than the paper's balanced-rows layout. A second stage runs
//! [`cg_auto_repartition`] on a deliberately skewed block matrix and
//! asserts the policy fires and the measured busy-time imbalance drops.
//!
//! The run is recorded through the [`RegressionGate`] into
//! `BENCH_26.json` + `bench-history.jsonl`. Artifacts: set
//! `HPF_BENCH_DIR` to redirect the bench records and `HPF_OBS_DIR` to
//! also dump one `PartitionAssessment` JSON per sweep point.

use crate::table::Table;
use hpf_dist::{AtomAssignment, AtomSpec};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_obs::{BenchRecord, RegressionGate};
use hpf_partition::{
    all_partitioners, assess, cg_auto_repartition, connectivity_of, NnzBisection,
    PartitionAssessment, RepartitionPolicy,
};
use hpf_solvers::RecordingObserver;
use hpf_sparse::{gen, CsrMatrix};

/// Matrix families the sweep covers, sized from `n`.
fn families(n: usize) -> Vec<(&'static str, CsrMatrix)> {
    // One dominant block plus a tail of small ones: the shape that
    // defeats equal-row-count layouts.
    let big = n / 2;
    let small = (n - big) / 8;
    let mut blocks = vec![big];
    blocks.resize(9, small.max(2));
    vec![
        ("power-law", gen::power_law_spd(n, 24, 0.9, 26)),
        ("block-irregular", gen::block_irregular_mesh(&blocks, 26)),
    ]
}

/// E26 — partitioner sweep + auto-repartition, gated against the
/// previous run's `BENCH_26.json`.
pub fn e26_partitioners(n: usize) -> Table {
    let dir = std::env::var("HPF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    e26_with_gate(n, &RegressionGate::new(dir).with_tolerance(10.0))
}

/// E26 with an explicit gate (tests point this at a scratch directory).
pub fn e26_with_gate(n: usize, gate: &RegressionGate) -> Table {
    let mut t = Table::new(
        "E26",
        format!("REDISTRIBUTE USING sweep: n = {n}, hypercube, mpp-1995"),
        &[
            "matrix",
            "NP",
            "partitioner",
            "volume words",
            "cut edges",
            "imbalance",
            "modeled s",
        ],
    );

    let cost = CostModel::mpp_1995();
    let obs_dir = std::env::var("HPF_OBS_DIR").ok();
    let mut record = BenchRecord::new(26, "e26-partition");

    for (family, a) in families(n) {
        let spec = AtomSpec::from_pointer_array(a.row_ptr());
        let graph = connectivity_of(&a);
        for np in [4usize, 16] {
            let mut sweep: Vec<PartitionAssessment> = Vec::new();
            for p in all_partitioners() {
                let s = assess(p.as_ref(), &spec, &graph, np, Topology::Hypercube, &cost);
                t.row(vec![
                    family.to_string(),
                    format!("{np}"),
                    s.partitioner.clone(),
                    format!("{}", s.comm_volume_words),
                    format!("{}", s.cut_edges),
                    format!("{:.3}", s.load_imbalance),
                    format!("{:.6e}", s.modeled_seconds),
                ]);
                record.push(
                    format!("{family}/np{np}/{}/volume_words", s.partitioner),
                    s.comm_volume_words as f64,
                );
                if let Some(dir) = &obs_dir {
                    let _ = std::fs::create_dir_all(dir);
                    let path = std::path::Path::new(dir)
                        .join(format!("e26-{family}-np{np}-{}.json", s.partitioner));
                    std::fs::write(&path, s.to_json())
                        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                }
                sweep.push(s);
            }
            // Headline claim: on power-law structure at scale, the
            // column-net heuristic beats the paper's balanced rows.
            if family == "power-law" && np >= 16 {
                let volume_of = |name: &str| {
                    sweep
                        .iter()
                        .find(|s| s.partitioner == name)
                        .unwrap_or_else(|| panic!("{name} missing from sweep"))
                        .comm_volume_words
                };
                let (hyper, rows) = (volume_of("greedy-hypergraph"), volume_of("balanced-rows"));
                assert!(
                    hyper < rows,
                    "greedy-hypergraph ({hyper} words) must beat balanced-rows \
                     ({rows} words) on {family} at NP = {np}"
                );
            }
        }
    }

    // Stage 2: the policy layer. Start a skewed block matrix on the
    // worst layout (equal row counts) and let the auto-repartitioner
    // recover mid-solve.
    // Half the rows in one dense block, half in a tail of small blocks:
    // equal-row-count cuts put whole processors inside the dense block,
    // so their matvec load runs ~2x the mean.
    let mut blocks = vec![n / 2];
    blocks.resize(9, (n / 16).max(2));
    let a = gen::block_irregular_mesh(&blocks, 9);
    let rows = a.n_rows();
    let b: Vec<f64> = (0..rows).map(|i| 1.0 + (i % 7) as f64).collect();
    let spec = AtomSpec::from_pointer_array(a.row_ptr());
    let initial = AtomAssignment::atom_block(&spec, 4);
    let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
    let mut obs = RecordingObserver::new();
    let policy = RepartitionPolicy {
        check_every: 4,
        imbalance_threshold: 1.25,
        drift_threshold: 0.5,
        max_repartitions: 1,
    };
    let out = cg_auto_repartition(
        &mut m,
        &a,
        &b,
        1e-10,
        20 * rows,
        &initial,
        &NnzBisection,
        &policy,
        &mut obs,
    )
    .expect("SPD system must converge");
    assert!(out.stats.converged, "auto-repartitioned CG must converge");
    assert_eq!(
        out.repartitions.len(),
        1,
        "policy must fire exactly once; segment imbalances {:?}",
        out.segment_imbalances
    );
    let ev = &out.repartitions[0];
    assert!(
        ev.imbalance_after < ev.imbalance_before,
        "repartition must reduce measured imbalance ({} -> {})",
        ev.imbalance_before,
        ev.imbalance_after
    );
    record.push("auto/imbalance_before", ev.imbalance_before);
    record.push("auto/imbalance_after", ev.imbalance_after);
    record.push("auto/words_moved", ev.words_moved as f64);
    record.push("auto/solve_seconds", m.elapsed());

    let outcome = gate
        .check_and_record(&record)
        .unwrap_or_else(|e| panic!("E26 bench gate: {e}"));
    t.note(format!(
        "auto-repartition: fired at iter {}, imbalance {:.3} -> {:.3}, {} words moved ({})",
        ev.at_iteration, ev.imbalance_before, ev.imbalance_after, ev.words_moved, ev.partitioner
    ));
    t.note(if outcome.compared {
        format!(
            "regression gate: PASS vs previous {} ({} series compared, tolerance {}%)",
            outcome.baseline_path.display(),
            outcome.series_compared,
            gate.max_regression_pct
        )
    } else {
        format!(
            "regression gate: first run, baseline written to {}",
            outcome.baseline_path.display()
        )
    });
    t.note("volume = column-net Σ_j (λ_j − 1) words per matvec; priced by the oracle");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_gate(tag: &str) -> RegressionGate {
        let dir = std::env::temp_dir().join(format!("hpf-e26-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RegressionGate::new(dir)
    }

    #[test]
    fn e26_sweeps_every_partitioner_and_gates() {
        let gate = scratch_gate("sweep");
        let t = e26_with_gate(256, &gate);
        // 2 families x 2 machine sizes x 4 partitioners.
        assert_eq!(t.rows.len(), 16);
        for name in hpf_partition::partitioner_names() {
            assert!(t.rows.iter().any(|r| r[2] == name), "{name} missing");
        }
        assert!(t.notes.iter().any(|n| n.contains("auto-repartition")));
        assert!(gate.baseline_path(26).exists());
        // A second identical run compares against the baseline cleanly.
        let t2 = e26_with_gate(256, &gate);
        assert!(t2.notes.iter().any(|n| n.contains("PASS")));
        let _ = std::fs::remove_dir_all(&gate.dir);
    }

    #[test]
    fn e26_writes_assessment_artifacts_when_asked() {
        let gate = scratch_gate("artifacts");
        let obs = std::env::temp_dir().join(format!("hpf-e26-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&obs);
        std::env::set_var("HPF_OBS_DIR", &obs);
        e26_with_gate(192, &gate);
        std::env::remove_var("HPF_OBS_DIR");
        let files: Vec<_> = std::fs::read_dir(&obs)
            .expect("obs dir exists")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files.len(), 16, "{files:?}");
        assert!(files
            .iter()
            .any(|f| f == "e26-power-law-np16-greedy-hypergraph.json"));
        let _ = std::fs::remove_dir_all(&obs);
        let _ = std::fs::remove_dir_all(&gate.dir);
    }
}
