//! E16–E19: ablations and extension experiments beyond the paper's
//! figures — the 2-D checkerboard layout, the Aᵀ layout asymmetry, cost-
//! model sensitivity, and the GMRES storage/robustness trade (all
//! flagged in DESIGN.md as design-choice ablations).

use crate::table::{ratio, us, Table};
use hpf_core::{Checkerboard, ColwiseCsc, DataArrayLayout, DistVector, ProcGrid2D, RowwiseCsr};
use hpf_dist::ArrayDescriptor;
use hpf_machine::{CostModel, Machine, Topology};
use hpf_solvers::{
    bicg_distributed, cg_distributed, gmres, gmres_storage_vectors, nonmonotonicity,
    residual_history, ColwiseOperator, CscVariant, Method, StopCriterion,
};
use hpf_sparse::{gen, CooMatrix, CscMatrix, CsrMatrix, DenseMatrix};

/// E16 — the 2-D `(BLOCK, BLOCK)` checkerboard vs 1-D striping. The
/// paper proves 1-D row/column stripings cost the same; the classical
/// fix it stops short of is 2-D partitioning. Sweep P and compare the
/// communication critical path of one dense matvec.
pub fn e16_checkerboard(n: usize) -> Table {
    let mut t = Table::new(
        "E16",
        format!("2-D (BLOCK,BLOCK) vs 1-D (BLOCK,*) dense matvec comm, n = {n}"),
        &["P", "layout", "comm_us", "2d/1d"],
    );
    let comm_only = CostModel {
        t_flop: 0.0,
        ..CostModel::mpp_1995()
    };
    let d = DenseMatrix::zeros(n, n);
    for np in [4usize, 16, 64] {
        let x = vec![0.0; n];
        let p = DistVector::from_global(ArrayDescriptor::block(n, np), &x);

        let mut m1 = Machine::new(np, Topology::Hypercube, comm_only);
        hpf_core::matvec::dense_rowwise_matvec(&mut m1, &d, &p);
        let c1 = m1.elapsed();

        let grid = ProcGrid2D::square(np).unwrap();
        let cb = Checkerboard::new(d.clone(), grid);
        let mut m2 = Machine::new(np, Topology::Hypercube, comm_only);
        cb.matvec(&mut m2, &p);
        let c2 = m2.elapsed();

        t.row(vec![
            np.to_string(),
            "1-D (BLOCK,*)".into(),
            us(c1),
            ratio(1.0),
        ]);
        t.row(vec![
            np.to_string(),
            "2-D checkerboard".into(),
            us(c2),
            ratio(c2 / c1),
        ]);
    }
    t.note("the checkerboard's advantage grows with P: 2 log sqrt(P) start-ups and O(n/sqrt(P)) words vs log P + O(n)");
    t
}

fn nonsymmetric(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0).unwrap();
        if i + 1 < n {
            coo.push(i, i + 1, -1.5).unwrap();
            coo.push(i + 1, i, -0.5).unwrap();
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// E17 — the Aᵀ layout asymmetry behind Section 2.1's BiCG remark:
/// forward and transpose matvec communication through the row-wise and
/// column-wise layouts, plus full distributed BiCG on both.
pub fn e17_transpose_asymmetry(n: usize, np: usize) -> Table {
    let mut t = Table::new(
        "E17",
        format!("A vs A^T communication by layout (BiCG's burden), n = {n}, NP = {np}"),
        &["operation", "layout", "comm_us", "temp_words"],
    );
    let a = nonsymmetric(n);
    let csc = CscMatrix::from_csr(&a);
    let x = vec![1.0; n];
    let p = DistVector::from_global(ArrayDescriptor::block(n, np), &x);
    let row_op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let col_op = ColwiseCsc::block(csc.clone(), np);

    let mk = || Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());

    let mut m = mk();
    let (_, s) = row_op.matvec(&mut m, &p);
    t.row(vec![
        "A p".into(),
        "row-wise".into(),
        us(m.trace().comm_time()),
        s.temp_storage_words.to_string(),
    ]);
    let mut m = mk();
    let (_, s) = row_op.matvec_transpose(&mut m, &p);
    t.row(vec![
        "A^T p".into(),
        "row-wise".into(),
        us(m.trace().comm_time()),
        s.temp_storage_words.to_string(),
    ]);
    let mut m = mk();
    let (_, s) = col_op.matvec_temp2d(&mut m, &p);
    t.row(vec![
        "A p".into(),
        "column-wise".into(),
        us(m.trace().comm_time()),
        s.temp_storage_words.to_string(),
    ]);
    let mut m = mk();
    let (_, s) = col_op.matvec_transpose_gather(&mut m, &p);
    t.row(vec![
        "A^T p".into(),
        "column-wise".into(),
        us(m.trace().comm_time()),
        s.temp_storage_words.to_string(),
    ]);

    // Full BiCG (needs both directions every iteration): neither layout
    // escapes the expensive direction.
    let (_, b) = gen::rhs_for_known_solution(&a);
    let stop = StopCriterion::RelativeResidual(1e-8);
    let mut m_row = mk();
    let (_, s_row) = bicg_distributed(&mut m_row, &row_op, &b, stop, 10 * n).unwrap();
    t.row(vec![
        format!("BiCG ({} iters)", s_row.iterations),
        "row-wise".into(),
        us(m_row.trace().comm_time()),
        "-".into(),
    ]);
    let col_full = ColwiseOperator {
        inner: col_op,
        variant: CscVariant::Temp2d,
    };
    let mut m_col = mk();
    let (_, s_col) = bicg_distributed(&mut m_col, &col_full, &b, stop, 10 * n).unwrap();
    t.row(vec![
        format!("BiCG ({} iters)", s_col.iterations),
        "column-wise".into(),
        us(m_col.trace().comm_time()),
        "-".into(),
    ]);
    t.note("each layout is cheap in one direction and pays a vector merge in the other;");
    t.note(
        "BiCG needs both per iteration — 'storage distribution optimisations ... negated' (S2.1)",
    );
    t
}

/// E18 — cost-model sensitivity: where the scaling knee of distributed
/// CG sits as the network gets slower (the HPCC-platform dependence the
/// paper's O() analysis abstracts over).
pub fn e18_cost_sensitivity(nx: usize, ny: usize) -> Table {
    let mut t = Table::new(
        "E18",
        format!("Distributed CG scaling knee vs machine cost model ({nx}x{ny} Poisson)"),
        &["model", "NP", "time_ms", "speedup", "comm%"],
    );
    let a = gen::poisson_2d(nx, ny);
    let n = a.n_rows();
    let (_, b) = gen::rhs_for_known_solution(&a);
    let stop = StopCriterion::RelativeResidual(1e-8);
    for (model, name) in [
        (CostModel::tight_mpp(), "tight-mpp"),
        (CostModel::mpp_1995(), "mpp-1995"),
        (CostModel::lan_cluster(), "lan-cluster"),
    ] {
        let mut t1 = None;
        for np in [1usize, 4, 16, 64] {
            let mut m = Machine::new(np, Topology::Hypercube, model);
            let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
            let (_, stats) = cg_distributed(&mut m, &op, &b, stop, 10 * n).unwrap();
            assert!(stats.converged);
            let time = m.elapsed();
            let base = *t1.get_or_insert(time);
            t.row(vec![
                name.into(),
                np.to_string(),
                format!("{:.2}", time * 1e3),
                ratio(base / time),
                format!("{:.0}", 100.0 * m.trace().comm_time() / time),
            ]);
        }
    }
    t.note("the slower the network, the earlier speedup saturates (and reverses): the t_startup*logNP merges dominate");
    t
}

/// E19 — the "longer recurrences" ledger: GMRES(m) storage vs iteration
/// count, and CGS's irregular convergence quantified (both Section 2.1
/// remarks).
pub fn e19_gmres_and_cgs(n_grid: usize) -> Table {
    let mut t = Table::new(
        "E19",
        format!(
            "GMRES restart ledger + CGS irregularity ({n_grid}x{n_grid} Poisson / shifted system)"
        ),
        &[
            "solver",
            "iterations",
            "storage n-vectors",
            "non-monotone steps %",
        ],
    );
    let a = gen::poisson_2d(n_grid, n_grid);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let stop = StopCriterion::RelativeResidual(1e-8);
    for m in [5usize, 10, 20, 40] {
        let (_, stats) = gmres(&a, &b, m, stop, 100_000).unwrap();
        t.row(vec![
            format!("GMRES({m})"),
            stats.iterations.to_string(),
            gmres_storage_vectors(m).to_string(),
            "-".into(),
        ]);
    }
    // Convergence-shape comparison on a non-normal system.
    let n = 60;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0).unwrap();
        if i + 1 < n {
            coo.push(i, i + 1, -1.4).unwrap();
            coo.push(i + 1, i, -0.6).unwrap();
        }
        if i + 4 < n {
            coo.push(i, i + 4, 0.5).unwrap();
        }
    }
    let ns = CsrMatrix::from_coo(&coo);
    let (_, b_ns) = gen::rhs_for_known_solution(&ns);
    // CG's monotone reference on the SPD system, then the non-symmetric
    // methods on the shifted system.
    let h_cg = residual_history(Method::Cg, &a, &b, 60).unwrap();
    t.row(vec![
        "CG on SPD (history)".into(),
        (h_cg.len() - 1).to_string(),
        "4".into(),
        format!("{:.0}", 100.0 * nonmonotonicity(&h_cg)),
    ]);
    for method in [Method::Cgs, Method::BiCgStab] {
        let h = residual_history(method, &ns, &b_ns, 60).unwrap();
        t.row(vec![
            format!("{} on nonsym (history)", method.name()),
            (h.len() - 1).to_string(),
            "8".into(),
            format!("{:.0}", 100.0 * nonmonotonicity(&h)),
        ]);
    }
    t.note("larger restarts: fewer iterations, linearly more storage — 'longer recurrences require greater storage'");
    t.note("CGS shows the paper's 'irregular rates of convergence'; BiCGSTAB smooths them");
    t
}

/// E20 — the quantitative version of Section 2's convergence remark
/// ("eigenvalues vary widely in magnitude → a large number of
/// iterations"): estimated condition number, the classical
/// `2((√κ−1)/(√κ+1))^k` bound's predicted iterations, and measured CG
/// iterations, as the Poisson grid grows (κ ~ h⁻²).
pub fn e20_condition_bound() -> Table {
    use hpf_solvers::{cg, cg_iterations_for, estimate_spd_spectrum};
    let mut t = Table::new(
        "E20",
        "CG iterations vs condition number (Poisson grids)".to_string(),
        &[
            "grid",
            "n",
            "kappa",
            "bound iters",
            "measured iters",
            "within bound",
        ],
    );
    let eps = 1e-8;
    for g in [6usize, 10, 16, 24] {
        let a = gen::poisson_2d(g, g);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let sp = estimate_spd_spectrum(&a, 1e-10, 200_000).expect("SPD");
        let predicted = cg_iterations_for(sp.condition, eps);
        let (_, stats) = cg(&a, &b, StopCriterion::RelativeResidual(eps), 100_000).unwrap();
        t.row(vec![
            format!("{g}x{g}"),
            (g * g).to_string(),
            format!("{:.1}", sp.condition),
            predicted.to_string(),
            stats.iterations.to_string(),
            // 2x slack: energy-norm bound vs 2-norm stopping rule.
            (stats.iterations <= 2 * predicted).to_string(),
        ]);
    }
    t.note("kappa grows ~h^-2 with refinement; measured iterations track sqrt(kappa), inside the classical bound");
    t
}

/// E21 — when does `REDISTRIBUTE` pay? Section 5.2.1: "The user is
/// responsible for putting the REDISTRIBUTE directive in the proper
/// place to improve the performance." On an irregular matrix, the
/// balanced layout costs a one-time data movement but saves compute
/// every iteration; this experiment measures the break-even iteration
/// count.
pub fn e21_redistribute_amortisation(n: usize, max_row_nnz: usize, np: usize) -> Table {
    use hpf_core::ext::{SparseFormat, SparseMatrixDirective};
    use hpf_dist::partition;

    // A compute-capable machine: on a latency-bound network the matvec is
    // communication-dominated and no layout change can pay (the dual
    // lesson — also reported in the notes).
    let model = CostModel::tight_mpp();

    let mut t = Table::new(
        "E21",
        format!(
            "REDISTRIBUTE amortisation on irregular matrix, n = {n}, NP = {np} (tight-MPP model)"
        ),
        &["quantity", "BLOCK (stay)", "balanced (redistribute)"],
    );
    let a = gen::power_law_spd(n, max_row_nnz, 0.9, 23);
    let x = vec![1.0; n];

    // Per-iteration matvec time under each layout.
    let per_iter = |op: &RowwiseCsr| -> f64 {
        let p = DistVector::constant(
            hpf_dist::ArrayDescriptor::new(n, np, op.row_descriptor().spec().clone()),
            1.0,
        );
        let mut m = Machine::new(np, Topology::Hypercube, model);
        op.matvec(&mut m, &p);
        let _ = &x;
        m.elapsed()
    };

    let block_op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let t_block = per_iter(&block_op);

    let weights: Vec<usize> = (0..n).map(|r| a.row_nnz(r)).collect();
    let cuts = partition::balanced_contiguous(&weights, np).expect("np > 0");
    let bal_op = RowwiseCsr::with_row_cuts(a.clone(), np, cuts);
    let t_bal = per_iter(&bal_op);

    // One-time redistribution cost: the smA trio plus the five aligned
    // vectors of Figure 2.
    let mut m_move = Machine::new(np, Topology::Hypercube, model);
    let mut sm = SparseMatrixDirective::new(SparseFormat::Csr, a.row_ptr(), np);
    sm.redistribute_balanced(&mut m_move);
    let from = hpf_dist::ArrayDescriptor::block(n, np);
    for name in ["p", "q", "r", "x", "b"] {
        let mut v = DistVector::constant(from.clone(), 1.0);
        let to = bal_op.row_descriptor().clone();
        v.redistribute(&mut m_move, to, name);
    }
    let move_cost = m_move.elapsed();

    let saving = (t_block - t_bal).max(0.0);
    let break_even = if saving > 0.0 {
        (move_cost / saving).ceil() as usize
    } else {
        usize::MAX
    };

    t.row(vec!["matvec time/iter (us)".into(), us(t_block), us(t_bal)]);
    t.row(vec![
        "one-time move cost (us)".into(),
        us(0.0),
        us(move_cost),
    ]);
    t.row(vec!["saving/iter (us)".into(), "-".into(), us(saving)]);
    t.row(vec![
        "break-even iterations".into(),
        "-".into(),
        if break_even == usize::MAX {
            "never".into()
        } else {
            break_even.to_string()
        },
    ]);
    // For context: how many iterations a real CG solve on this system
    // takes (so the reader sees the redistribution easily amortises).
    let (_, b) = gen::rhs_for_known_solution(&a);
    let (_, stats) = cg_distributed(
        &mut Machine::new(np, Topology::Hypercube, model),
        &bal_op,
        &b,
        StopCriterion::RelativeResidual(1e-8),
        10 * n,
    )
    .expect("SPD");
    t.row(vec![
        "CG iterations to 1e-8".into(),
        "-".into(),
        stats.iterations.to_string(),
    ]);
    t.note("on a compute-capable machine the one-time REDISTRIBUTE pays before CG converges — before the solve loop is 'the proper place'");
    t.note("on a latency-bound network (mpp-1995/lan) the matvec is comm-dominated and no layout change can pay: the directive's placement is machine-dependent");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e21_break_even_before_convergence() {
        let t = e21_redistribute_amortisation(1024, 128, 8);
        let get = |q: &str, col: usize| -> String {
            t.rows.iter().find(|r| r[0] == q).unwrap()[col].clone()
        };
        let break_even: usize = get("break-even iterations", 2).parse().unwrap();
        let cg_iters: usize = get("CG iterations to 1e-8", 2).parse().unwrap();
        assert!(
            break_even < cg_iters,
            "break-even {break_even} must precede convergence at {cg_iters}"
        );
    }

    #[test]
    fn e20_measured_within_bound() {
        let t = e20_condition_bound();
        assert!(t.rows.iter().all(|r| r[5] == "true"), "{t:?}");
        // kappa increases with grid size.
        let kappas: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(kappas.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn e16_checkerboard_wins_at_64() {
        let t = e16_checkerboard(1024);
        let r64: f64 = t
            .rows
            .iter()
            .find(|r| r[0] == "64" && r[1].contains("2-D"))
            .unwrap()[3]
            .parse()
            .unwrap();
        assert!(r64 < 1.0, "2-D should win at P=64, ratio {r64}");
    }

    #[test]
    fn e17_transpose_expensive_on_row_layout() {
        let t = e17_transpose_asymmetry(256, 8);
        let get = |op: &str, layout: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == op && r[1] == layout)
                .unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(get("A^T p", "row-wise") > get("A p", "row-wise"));
        assert!(get("A p", "column-wise") > get("A^T p", "column-wise"));
    }

    #[test]
    fn e18_slower_networks_saturate_earlier() {
        let t = e18_cost_sensitivity(12, 12);
        let speedup = |model: &str, np: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == model && r[1] == np).unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(speedup("tight-mpp", "16") > speedup("lan-cluster", "16"));
    }

    #[test]
    fn e19_restart_monotone_in_storage() {
        let t = e19_gmres_and_cgs(8);
        let gm: Vec<(usize, usize)> = t
            .rows
            .iter()
            .filter(|r| r[0].starts_with("GMRES"))
            .map(|r| (r[1].parse().unwrap(), r[2].parse().unwrap()))
            .collect();
        // Iterations non-increasing as storage grows.
        for w in gm.windows(2) {
            assert!(w[1].0 <= w[0].0, "{gm:?}");
            assert!(w[1].1 > w[0].1);
        }
        // CGS row exists with nonzero irregularity.
        let cgs_row = t.rows.iter().find(|r| r[0].contains("CGS")).unwrap();
        let cg_row = t.rows.iter().find(|r| r[0].contains("CG on SPD")).unwrap();
        let cg_pct: f64 = cg_row[3].parse().unwrap();
        assert!(
            cg_pct < 10.0,
            "CG on SPD must be (near-)monotone: {cg_pct}%"
        );
        let pct: f64 = cgs_row[3].parse().unwrap();
        assert!(pct > 0.0);
    }
}
