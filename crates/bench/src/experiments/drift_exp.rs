//! E25: the cost oracle closes the loop — predicted vs measured.
//!
//! The paper's Section 4 prices every CG building block in closed form;
//! the simulator executes the same operations event by event. E25 runs
//! a full CG solve under both matvec data layouts the paper analyzes —
//! Scenario 1 `(BLOCK,*)` row blocks (allgather of `p`) and Scenario 2
//! `(*,BLOCK)` column blocks (allreduce merge of `q`) — pushes each
//! trace through the [`DriftReport`] oracle, and asserts the measured
//! schedule stays inside a ±10% band of the analytic prediction in
//! every cost category. The run is then recorded through the
//! [`RegressionGate`]: simulated solve time and drift land in
//! `BENCH_25.json` + `bench-history.jsonl`, and the experiment *fails*
//! if either regressed by more than 10% against the previous run — the
//! repo carries its own performance trajectory.
//!
//! Artifacts: set `HPF_BENCH_DIR` to redirect the bench records
//! (default: current directory, i.e. the repo root under `cargo run`),
//! and `HPF_OBS_DIR` to also dump each scenario's drift report JSON.

use crate::table::Table;
use hpf_core::{ColwiseCsc, DataArrayLayout, RowwiseCsr};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_obs::{BenchRecord, ConvergenceLog, DriftReport, RegressionGate};
use hpf_solvers::{
    cg_distributed_with_observer, ColwiseOperator, CscVariant, DistOperator, StopCriterion,
};
use hpf_sparse::{gen, CscMatrix};

/// Drift tolerance band: every category must stay within ±10% of the
/// analytic prediction on a clean machine (documented in DESIGN.md §8).
const DRIFT_TOLERANCE: f64 = 0.10;

struct ScenarioResult {
    name: &'static str,
    iterations: usize,
    solve_seconds: f64,
    report: DriftReport,
}

fn run_scenario(name: &'static str, op: &dyn DistOperator, b: &[f64], n: usize) -> ScenarioResult {
    let np = op.descriptor().np();
    let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
    m.set_tracing(true);
    let mut log = ConvergenceLog::new();
    let (_, stats) = cg_distributed_with_observer(
        &mut m,
        op,
        b,
        StopCriterion::RelativeResidual(1e-8),
        20 * n,
        &mut log,
    )
    .expect("SPD system must converge");
    assert!(stats.converged, "{name}: CG failed to converge");
    // The telemetry's cumulative predicted clock must agree with the
    // oracle's event-by-event pricing at the last iteration.
    let report = DriftReport::from_trace(m.trace(), Topology::Hypercube, m.cost_model());
    let last = log.samples.last().expect("at least one iteration");
    assert!(
        last.predicted_time > 0.0,
        "{name}: solver did not surface per-iteration predictions"
    );
    ScenarioResult {
        name,
        iterations: stats.iterations,
        solve_seconds: m.elapsed(),
        report,
    }
}

/// E25 — cost-oracle drift on both matvec layouts, gated against the
/// previous run's `BENCH_25.json`.
pub fn e25_drift_oracle(n: usize, np: usize) -> Table {
    let dir = std::env::var("HPF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    e25_with_gate(n, np, &RegressionGate::new(dir).with_tolerance(10.0))
}

/// E25 with an explicit gate (tests point this at a scratch directory).
pub fn e25_with_gate(n: usize, np: usize, gate: &RegressionGate) -> Table {
    let mut t = Table::new(
        "E25",
        format!("cost oracle drift: CG, n = {n}, NP = {np}, hypercube, mpp-1995"),
        &[
            "scenario",
            "iters",
            "sim solve s",
            "predicted s",
            "max |drift| %",
            "total drift %",
        ],
    );

    let a = gen::banded_spd(n, 3, 11);
    let (_x, b) = gen::rhs_for_known_solution(&a);
    let row_op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
    let col_op = ColwiseOperator {
        inner: ColwiseCsc::block(CscMatrix::from_csr(&a), np),
        variant: CscVariant::Temp2d,
    };
    let scenarios = [
        run_scenario("rowwise (BLOCK,*)", &row_op, &b, n),
        run_scenario("colwise (*,BLOCK)", &col_op, &b, n),
    ];

    let mut record = BenchRecord::new(25, "e25-drift");
    let obs_dir = std::env::var("HPF_OBS_DIR").ok();
    for s in &scenarios {
        let max_drift = s.report.max_abs_rel_error();
        assert!(
            max_drift <= DRIFT_TOLERANCE,
            "{}: drift {:.2}% breaches the {:.0}% band\n{}",
            s.name,
            max_drift * 100.0,
            DRIFT_TOLERANCE * 100.0,
            s.report.render()
        );
        t.row(vec![
            s.name.to_string(),
            format!("{}", s.iterations),
            format!("{:.6e}", s.solve_seconds),
            format!("{:.6e}", s.report.total_predicted_seconds),
            format!("{:.3}", max_drift * 100.0),
            format!("{:+.3}", s.report.total_rel_error() * 100.0),
        ]);
        let key = if s.name.starts_with("rowwise") {
            "rowwise"
        } else {
            "colwise"
        };
        record.push(format!("{key}/solve_seconds"), s.solve_seconds);
        record.push(format!("{key}/max_drift_pct"), max_drift * 100.0);
        record.push(
            format!("{key}/abs_total_drift_pct"),
            s.report.total_rel_error().abs() * 100.0,
        );
        if let Some(dir) = &obs_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = std::path::Path::new(dir).join(format!("e25-{key}.drift.json"));
            std::fs::write(&path, s.report.to_json())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
    }

    let outcome = gate
        .check_and_record(&record)
        .unwrap_or_else(|e| panic!("E25 bench gate: {e}"));
    t.note(format!(
        "drift = (measured - predicted)/predicted per category; band ±{:.0}%",
        DRIFT_TOLERANCE * 100.0
    ));
    t.note(if outcome.compared {
        format!(
            "regression gate: PASS vs previous {} ({} series compared, tolerance {}%)",
            outcome.baseline_path.display(),
            outcome.series_compared,
            gate.max_regression_pct
        )
    } else {
        format!(
            "regression gate: first run, baseline written to {}",
            outcome.baseline_path.display()
        )
    });
    t.note("simulated quantities only: records are deterministic across hosts");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_obs::GateError;

    fn scratch_gate(tag: &str) -> RegressionGate {
        let dir = std::env::temp_dir().join(format!("hpf-e25-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RegressionGate::new(dir)
    }

    #[test]
    fn e25_holds_the_band_on_both_layouts_and_gates() {
        let gate = scratch_gate("band");
        let t = e25_with_gate(192, 4, &gate);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0][0].contains("BLOCK,*"));
        assert!(t.rows[1][0].contains("*,BLOCK"));
        // Max drift column respects the band.
        for row in &t.rows {
            let drift: f64 = row[4].parse().unwrap();
            assert!(drift <= 10.0);
        }
        // Gate artifacts exist and a second identical run passes.
        assert!(gate.baseline_path(25).exists());
        assert!(gate.history_path().exists());
        let t2 = e25_with_gate(192, 4, &gate);
        assert!(t2.notes.iter().any(|n| n.contains("PASS")));
        let _ = std::fs::remove_dir_all(&gate.dir);
    }

    #[test]
    fn e25_gate_fails_typed_when_the_baseline_is_faster() {
        let gate = scratch_gate("regress");
        e25_with_gate(128, 4, &gate);
        // Forge a "previous run" that was impossibly fast, so the real
        // run must trip the regression gate.
        let mut forged = BenchRecord::new(25, "e25-drift");
        forged.push("rowwise/solve_seconds", 1e-12);
        forged.push("colwise/solve_seconds", 1e-15);
        std::fs::write(gate.baseline_path(25), format!("{}\n", forged.to_json())).unwrap();
        let result = std::panic::catch_unwind(|| e25_with_gate(128, 4, &gate));
        let err = result.expect_err("gate must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("bench regression gate failed"), "{msg}");
        // And the typed error path agrees.
        let fresh = BenchRecord::new(25, "e25-drift");
        match gate.check_and_record(&fresh) {
            Ok(_) => {} // no shared series -> no comparison, fine
            Err(GateError::Regression { .. }) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&gate.dir);
    }
}
