//! E4/E5 benches: the distributed matvec scenarios (row-wise vs
//! column-wise, aligned vs naive element-block data layouts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_core::{ColwiseCsc, DataArrayLayout, DistVector, RowwiseCsr};
use hpf_dist::ArrayDescriptor;
use hpf_machine::{CostModel, Machine, Topology};
use hpf_sparse::{gen, CscMatrix};
use std::hint::black_box;

const N: usize = 2048;
const NNZ_PER_ROW: usize = 6;
const NP: usize = 8;

fn bench_matvec_rowwise(c: &mut Criterion) {
    let a = gen::random_spd(N, NNZ_PER_ROW, 42);
    let mut group = c.benchmark_group("e4_matvec_rowwise");
    group.sample_size(20);
    for (layout, name) in [
        (DataArrayLayout::RowAligned, "row-aligned"),
        (DataArrayLayout::ElementBlock, "element-block"),
    ] {
        let op = RowwiseCsr::block(a.clone(), NP, layout);
        let p = DistVector::constant(ArrayDescriptor::block(N, NP), 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(name), &op, |bch, op| {
            bch.iter(|| {
                let mut m = Machine::new(NP, Topology::Hypercube, CostModel::mpp_1995());
                m.set_tracing(false);
                black_box(op.matvec(&mut m, black_box(&p)))
            });
        });
    }
    group.finish();
}

fn bench_matvec_colwise(c: &mut Criterion) {
    let a = gen::random_spd(N, NNZ_PER_ROW, 42);
    let csc = CscMatrix::from_csr(&a);
    let op = ColwiseCsc::block(csc, NP);
    let p = DistVector::constant(ArrayDescriptor::block(N, NP), 1.0);
    let mut group = c.benchmark_group("e5_matvec_colwise");
    group.sample_size(20);
    group.bench_function("serial", |bch| {
        bch.iter(|| {
            let mut m = Machine::new(NP, Topology::Hypercube, CostModel::mpp_1995());
            m.set_tracing(false);
            black_box(op.matvec_serial(&mut m, black_box(&p)))
        });
    });
    group.bench_function("temp2d", |bch| {
        bch.iter(|| {
            let mut m = Machine::new(NP, Topology::Hypercube, CostModel::mpp_1995());
            m.set_tracing(false);
            black_box(op.matvec_temp2d(&mut m, black_box(&p)))
        });
    });
    group.finish();
}

fn bench_serial_kernels(c: &mut Criterion) {
    // The raw storage-scheme kernels (Figure 1/2 substrate).
    let a = gen::random_spd(N, NNZ_PER_ROW, 42);
    let csc = CscMatrix::from_csr(&a);
    let x = vec![1.0; N];
    let mut group = c.benchmark_group("serial_spmv");
    group.bench_function("csr", |bch| bch.iter(|| black_box(a.matvec(&x).unwrap())));
    group.bench_function("csc", |bch| bch.iter(|| black_box(csc.matvec(&x).unwrap())));
    group.bench_function("csr_transpose", |bch| {
        bch.iter(|| black_box(a.matvec_transpose(&x).unwrap()))
    });
    let ell = hpf_sparse::EllMatrix::from_csr(&a);
    group.bench_function("ell", |bch| bch.iter(|| black_box(ell.matvec(&x).unwrap())));
    let banded = gen::banded_spd(N, 4, 9);
    let dia = hpf_sparse::DiaMatrix::from_csr(&banded);
    let xb = vec![1.0; N];
    group.bench_function("dia_banded", |bch| {
        bch.iter(|| black_box(dia.matvec(&xb).unwrap()))
    });
    group.finish();
}

fn bench_checkerboard(c: &mut Criterion) {
    // E16: 2-D (BLOCK,BLOCK) vs 1-D striping.
    use hpf_core::{Checkerboard, ProcGrid2D};
    use hpf_sparse::DenseMatrix;
    let n = 512;
    let d = gen::poisson_2d(16, 32).to_dense();
    assert_eq!(d.n_rows(), n);
    let np = 16;
    let mut group = c.benchmark_group("e16_checkerboard");
    group.sample_size(20);
    group.bench_function("dense_1d_rowwise", |bch| {
        let p = DistVector::constant(ArrayDescriptor::block(n, np), 1.0);
        bch.iter(|| {
            let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
            m.set_tracing(false);
            black_box(hpf_core::matvec::dense_rowwise_matvec(&mut m, &d, &p))
        });
    });
    group.bench_function("dense_2d_checkerboard", |bch| {
        let grid = ProcGrid2D::square(np).unwrap();
        let cb = Checkerboard::new(d.clone(), grid);
        let p = DistVector::constant(ArrayDescriptor::block(n, np), 1.0);
        bch.iter(|| {
            let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
            m.set_tracing(false);
            black_box(cb.matvec(&mut m, &p))
        });
    });
    let _ = DenseMatrix::zeros(1, 1);
    group.finish();
}

criterion_group!(
    benches,
    bench_matvec_rowwise,
    bench_matvec_colwise,
    bench_serial_kernels,
    bench_checkerboard
);
criterion_main!(benches);
