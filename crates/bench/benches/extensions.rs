//! E6/E8/E9/E10 benches: the proposed extensions — PRIVATE/MERGE,
//! inspector–executor, atom distributions, load-balancing partitioners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_core::ext::{GatherSchedule, PrivateRegion};
use hpf_dist::atoms::{AtomAssignment, AtomSpec};
use hpf_dist::{partition, ArrayDescriptor};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_sparse::{gen, CscMatrix};
use std::hint::black_box;

fn machine(np: usize) -> Machine {
    let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
    m.set_tracing(false);
    m
}

fn bench_private_merge(c: &mut Criterion) {
    let a = gen::random_spd(2048, 6, 7);
    let csc = CscMatrix::from_csr(&a);
    let x = vec![1.0; 2048];
    let mut group = c.benchmark_group("e6_private_merge");
    group.sample_size(20);
    for np in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(np), &np, |bch, &np| {
            bch.iter(|| {
                let mut m = machine(np);
                black_box(PrivateRegion::csc_matvec(
                    &mut m,
                    csc.col_ptr(),
                    csc.row_idx(),
                    csc.values(),
                    black_box(&x),
                ))
            });
        });
    }
    group.finish();
}

fn bench_inspector(c: &mut Criterion) {
    let n = 4096;
    let np = 8;
    let desc = ArrayDescriptor::block(n, np);
    let wants: Vec<Vec<usize>> = (0..np)
        .map(|p| (0..n).filter(|&g| (g * 7 + p) % 3 == 0).collect())
        .collect();
    let data = vec![1.0; n];
    let mut group = c.benchmark_group("e8_inspector");
    group.sample_size(20);
    group.bench_function("build_schedule", |bch| {
        bch.iter(|| {
            let mut m = machine(np);
            black_box(GatherSchedule::build(&mut m, &desc, wants.clone()))
        });
    });
    group.bench_function("execute_reused", |bch| {
        let mut m = machine(np);
        let mut sched = GatherSchedule::build(&mut m, &desc, wants.clone());
        bch.iter(|| {
            let mut m2 = machine(np);
            black_box(sched.execute(&mut m2, black_box(&data)))
        });
    });
    group.finish();
}

fn bench_atom_dist(c: &mut Criterion) {
    let a = gen::random_spd(4096, 6, 11);
    let csc = CscMatrix::from_csr(&a);
    let atoms = AtomSpec::from_pointer_array(csc.col_ptr());
    let mut group = c.benchmark_group("e9_atom_dist");
    group.bench_function("atom_block_assignment", |bch| {
        bch.iter(|| black_box(AtomAssignment::atom_block(&atoms, 16)))
    });
    group.bench_function("element_cuts", |bch| {
        let asg = AtomAssignment::atom_block(&atoms, 16);
        bch.iter(|| black_box(asg.element_cuts(&atoms)))
    });
    group.bench_function("split_count_naive_block", |bch| {
        let nz = atoms.total_elements();
        let bs = nz.div_ceil(16);
        let cuts: Vec<usize> = (0..=16).map(|p| (p * bs).min(nz)).collect();
        bch.iter(|| black_box(atoms.atoms_split_by(&cuts)))
    });
    group.finish();
}

fn bench_load_balance(c: &mut Criterion) {
    let a = gen::power_law_spd(4096, 160, 0.9, 19);
    let weights: Vec<usize> = (0..4096).map(|r| a.row_nnz(r)).collect();
    let mut group = c.benchmark_group("e10_partitioners");
    for np in [8usize, 32] {
        group.bench_with_input(
            BenchmarkId::new("balanced_contiguous", np),
            &np,
            |bch, &np| bch.iter(|| black_box(partition::balanced_contiguous(&weights, np))),
        );
        group.bench_with_input(BenchmarkId::new("greedy_lpt", np), &np, |bch, &np| {
            bch.iter(|| black_box(partition::greedy_lpt(&weights, np)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_private_merge,
    bench_inspector,
    bench_atom_dist,
    bench_load_balance
);
criterion_main!(benches);
