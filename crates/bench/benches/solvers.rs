//! E1/E11/E12/E14 benches: the CG family, distributed CG, and
//! preconditioning, as wall-clock measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_core::{DataArrayLayout, RowwiseCsr};
use hpf_machine::{CostModel, Machine, Topology};
use hpf_solvers::{
    bicg, bicgstab, cg, cg_distributed, cgs, pcg, JacobiPrec, SsorPrec, StopCriterion,
};
use hpf_sparse::{gen, CooMatrix, CsrMatrix};
use std::hint::black_box;

fn bench_cg_iteration(c: &mut Criterion) {
    // E1: the Figure 2 program per-solve cost, serial vs distributed.
    let a = gen::poisson_2d(32, 32);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let stop = StopCriterion::RelativeResidual(1e-8);
    let mut group = c.benchmark_group("e1_cg");
    group.sample_size(10);
    group.bench_function("serial", |bch| {
        bch.iter(|| black_box(cg(&a, &b, stop, 5000).unwrap()))
    });
    for np in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("distributed", np), &np, |bch, &np| {
            let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
            bch.iter(|| {
                let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
                m.set_tracing(false);
                black_box(cg_distributed(&mut m, &op, &b, stop, 5000).unwrap())
            });
        });
    }
    group.finish();
}

fn nonsymmetric(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0).unwrap();
        if i + 1 < n {
            coo.push(i, i + 1, -1.6).unwrap();
            coo.push(i + 1, i, -0.4).unwrap();
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn bench_solver_family(c: &mut Criterion) {
    // E12: CG / BiCG / CGS / BiCGSTAB wall-clock per solve.
    let spd = gen::poisson_2d(24, 24);
    let (_, b_spd) = gen::rhs_for_known_solution(&spd);
    let ns = nonsymmetric(576);
    let (_, b_ns) = gen::rhs_for_known_solution(&ns);
    let stop = StopCriterion::RelativeResidual(1e-8);
    let mut group = c.benchmark_group("e12_family");
    group.sample_size(10);
    group.bench_function("cg_spd", |bch| {
        bch.iter(|| black_box(cg(&spd, &b_spd, stop, 5000).unwrap()))
    });
    group.bench_function("bicg_nonsym", |bch| {
        bch.iter(|| black_box(bicg(&ns, &b_ns, stop, 5000).unwrap()))
    });
    group.bench_function("cgs_nonsym", |bch| {
        bch.iter(|| black_box(cgs(&ns, &b_ns, stop, 5000)))
    });
    group.bench_function("bicgstab_nonsym", |bch| {
        bch.iter(|| black_box(bicgstab(&ns, &b_ns, stop, 5000).unwrap()))
    });
    group.finish();
}

fn bench_preconditioning(c: &mut Criterion) {
    // E14: plain vs Jacobi vs SSOR on a badly scaled system.
    let base = gen::poisson_2d(16, 16);
    let n = base.n_rows();
    let mut coo = CooMatrix::new(n, n);
    let scale = |i: usize| 10f64.powi((i % 5) as i32 - 2);
    for i in 0..n {
        for (j, v) in base.row(i) {
            coo.push(i, j, v * scale(i) * scale(j)).unwrap();
        }
    }
    let a = CsrMatrix::from_coo(&coo);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let stop = StopCriterion::RelativeResidual(1e-8);
    let mut group = c.benchmark_group("e14_pcg");
    group.sample_size(10);
    group.bench_function("plain", |bch| {
        bch.iter(|| black_box(cg(&a, &b, stop, 100 * n).unwrap()))
    });
    group.bench_function("jacobi", |bch| {
        let m = JacobiPrec::new(&a).unwrap();
        bch.iter(|| black_box(pcg(&a, &m, &b, stop, 100 * n).unwrap()))
    });
    group.bench_function("ssor", |bch| {
        let m = SsorPrec::new(&a, 1.2).unwrap();
        bch.iter(|| black_box(pcg(&a, &m, &b, stop, 100 * n).unwrap()))
    });
    group.finish();
}

fn bench_ne_convergence(c: &mut Criterion) {
    // E11: solve time as distinct-eigenvalue count grows.
    let mut group = c.benchmark_group("e11_ne");
    group.sample_size(10);
    for ne in [2usize, 4, 8] {
        let eigs: Vec<f64> = (1..=ne).map(|k| k as f64 * 1.7 + 0.5).collect();
        let a = gen::distinct_eigenvalues(48, &eigs, 192, 23);
        let (_, b) = gen::rhs_for_known_solution(&a);
        group.bench_with_input(BenchmarkId::from_parameter(ne), &ne, |bch, _| {
            bch.iter(|| black_box(cg(&a, &b, StopCriterion::RelativeResidual(1e-9), 500).unwrap()));
        });
    }
    group.finish();
}

fn bench_gmres_and_dist(c: &mut Criterion) {
    use hpf_solvers::{bicg_distributed, gmres};
    let a = gen::poisson_2d(16, 16);
    let (_, b) = gen::rhs_for_known_solution(&a);
    let stop = StopCriterion::RelativeResidual(1e-8);
    let mut group = c.benchmark_group("e19_gmres");
    group.sample_size(10);
    for m in [10usize, 40] {
        group.bench_with_input(BenchmarkId::new("gmres", m), &m, |bch, &m| {
            bch.iter(|| black_box(gmres(&a, &b, m, stop, 100_000).unwrap()))
        });
    }
    group.bench_function("bicg_distributed_np8", |bch| {
        let ns = nonsymmetric(256);
        let (_, bn) = gen::rhs_for_known_solution(&ns);
        let op = RowwiseCsr::block(ns.clone(), 8, DataArrayLayout::RowAligned);
        bch.iter(|| {
            let mut m = Machine::new(8, Topology::Hypercube, CostModel::mpp_1995());
            m.set_tracing(false);
            black_box(bicg_distributed(&mut m, &op, &bn, stop, 5000).unwrap())
        });
    });
    group.finish();
}

fn bench_directive_frontend(c: &mut Criterion) {
    // The hpf-lang front-end on the Figure 2 deck.
    let deck = "\n!HPF$ PROCESSORS :: PROCS(NP)\n!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b\n!HPF$ DISTRIBUTE p(BLOCK)\n!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))\n!HPF$ ALIGN a(:) WITH col(:)\n!HPF$ DISTRIBUTE col(BLOCK)\n";
    let mut group = c.benchmark_group("lang_frontend");
    group.bench_function("parse_figure2", |bch| {
        bch.iter(|| black_box(hpf_lang::parse_program(deck).unwrap()))
    });
    group.bench_function("parse_and_elaborate", |bch| {
        let env = hpf_lang::Env::new().bind("np", 8).bind("n", 1024);
        let extents: std::collections::BTreeMap<String, usize> = [
            ("p", 1024usize),
            ("q", 1024),
            ("r", 1024),
            ("x", 1024),
            ("b", 1024),
            ("row", 1025),
            ("col", 5120),
            ("a", 5120),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        bch.iter(|| {
            let ds = hpf_lang::parse_program(deck).unwrap();
            black_box(hpf_lang::elaborate(&ds, &env, &extents).unwrap())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cg_iteration,
    bench_solver_family,
    bench_preconditioning,
    bench_ne_convergence,
    bench_gmres_and_dist,
    bench_directive_frontend
);
criterion_main!(benches);
