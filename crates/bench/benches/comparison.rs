//! E13/E15 benches: HPF (simulated) vs hand-coded SPMD (real threads),
//! and the storage-format conversion costs.

use criterion::{criterion_group, criterion_main, Criterion};
use hpf_core::spmd_baseline::{spmd_cg, spmd_matvec};
use hpf_core::{DataArrayLayout, DistVector, RowwiseCsr};
use hpf_dist::ArrayDescriptor;
use hpf_machine::{CostModel, Machine, Topology};
use hpf_solvers::{cg_distributed, StopCriterion};
use hpf_sparse::{gen, CooMatrix, CscMatrix, CsrMatrix};
use std::hint::black_box;

fn bench_hpf_vs_spmd(c: &mut Criterion) {
    let n = 512;
    let np = 4;
    let a = gen::random_spd(n, 5, 31);
    let x = vec![1.0; n];
    let (_, b) = gen::rhs_for_known_solution(&a);
    let mut group = c.benchmark_group("e13_hpf_vs_spmd");
    group.sample_size(10);

    group.bench_function("matvec_hpf_simulated", |bch| {
        let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        let p = DistVector::from_global(ArrayDescriptor::block(n, np), &x);
        bch.iter(|| {
            let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
            m.set_tracing(false);
            black_box(op.matvec(&mut m, black_box(&p)))
        });
    });
    group.bench_function("matvec_spmd_threads", |bch| {
        bch.iter(|| black_box(spmd_matvec(&a, &x, np)));
    });
    group.bench_function("cg_hpf_simulated", |bch| {
        let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        bch.iter(|| {
            let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
            m.set_tracing(false);
            black_box(
                cg_distributed(&mut m, &op, &b, StopCriterion::RelativeResidual(1e-8), 5000)
                    .unwrap(),
            )
        });
    });
    group.bench_function("cg_spmd_threads", |bch| {
        bch.iter(|| black_box(spmd_cg(&a, &b, 1e-8, 5000, np)));
    });
    group.finish();
}

fn bench_formats(c: &mut Criterion) {
    let a = gen::random_spd(2048, 6, 5);
    let coo = a.to_coo();
    let mut group = c.benchmark_group("e15_formats");
    group.bench_function("coo_to_csr", |bch| {
        bch.iter(|| black_box(CsrMatrix::from_coo(&coo)))
    });
    group.bench_function("coo_to_csc", |bch| {
        bch.iter(|| black_box(CscMatrix::from_coo(&coo)))
    });
    group.bench_function("csr_to_csc", |bch| {
        bch.iter(|| black_box(CscMatrix::from_csr(&a)))
    });
    group.bench_function("csr_transpose", |bch| bch.iter(|| black_box(a.transpose())));
    group.bench_function("coo_assembly_with_duplicates", |bch| {
        let trips: Vec<(usize, usize, f64)> = (0..20_000)
            .map(|k| ((k * 7) % 512, (k * 13) % 512, 1.0))
            .collect();
        bch.iter(|| black_box(CooMatrix::from_triplets_summing(512, 512, trips.clone()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_hpf_vs_spmd, bench_formats);
criterion_main!(benches);
