//! E2/E3 benches: SAXPY and DOT_PRODUCT over distributed vectors —
//! wall-clock cost of the simulation runtime itself as NP and n sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_core::DistVector;
use hpf_dist::ArrayDescriptor;
use hpf_machine::{CostModel, Machine, Topology};
use std::hint::black_box;

fn bench_saxpy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_saxpy");
    group.sample_size(20);
    let n = 1 << 16;
    for np in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(np), &np, |bch, &np| {
            let d = ArrayDescriptor::block(n, np);
            let x = DistVector::constant(d.clone(), 1.0);
            bch.iter(|| {
                let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
                m.set_tracing(false);
                let mut y = DistVector::zeros(d.clone());
                y.axpy(&mut m, 2.0, black_box(&x));
                black_box(m.elapsed())
            });
        });
    }
    group.finish();
}

fn bench_dot_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_dot");
    group.sample_size(20);
    let n = 1 << 16;
    for np in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(np), &np, |bch, &np| {
            let d = ArrayDescriptor::block(n, np);
            let a = DistVector::constant(d.clone(), 1.0);
            let b = DistVector::constant(d.clone(), 2.0);
            bch.iter(|| {
                let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
                m.set_tracing(false);
                black_box(a.dot(&mut m, black_box(&b)))
            });
        });
    }
    group.finish();
}

fn bench_dot_topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_dot_topology");
    group.sample_size(20);
    let n = 1 << 14;
    let np = 16;
    for topo in [Topology::Hypercube, Topology::Mesh2D, Topology::Ring] {
        group.bench_with_input(
            BenchmarkId::from_parameter(topo.name()),
            &topo,
            |bch, &topo| {
                let d = ArrayDescriptor::block(n, np);
                let a = DistVector::constant(d.clone(), 1.0);
                let b = DistVector::constant(d.clone(), 2.0);
                bch.iter(|| {
                    let mut m = Machine::new(np, topo, CostModel::mpp_1995());
                    m.set_tracing(false);
                    black_box(a.dot(&mut m, black_box(&b)))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_saxpy_scaling,
    bench_dot_scaling,
    bench_dot_topologies
);
criterion_main!(benches);
