//! Property tests over the solver family: on arbitrary generated SPD
//! systems the iterative solvers actually solve (small residual), agree
//! with the dense direct baseline, and respect their structural
//! contracts (op counts, storage, honesty of `converged`).

use hpf_solvers::{
    bicg, bicgstab, cg, cgs, direct, gmres, pcg, residual_history, JacobiPrec, Method,
    SerialOperator, StopCriterion,
};
use hpf_sparse::{gen, CsrMatrix};
use proptest::prelude::*;

// Thin helper re-exported through the test to keep the public API clean.
mod helper {
    use hpf_solvers::direct;
    use hpf_sparse::CsrMatrix;

    pub fn direct_solution(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
        direct::solve_lu(&a.to_dense(), b).expect("generated SPD systems are nonsingular")
    }
}

fn rel_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x).unwrap();
    let num: f64 = ax
        .iter()
        .zip(b.iter())
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CG solves every generated SPD system to tolerance and agrees with
    /// dense LU.
    #[test]
    fn cg_solves_random_spd(n in 4usize..48, nnz in 1usize..5, seed in any::<u64>()) {
        let a = gen::random_spd(n, nnz, seed);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (x, stats) = cg(&a, &b, StopCriterion::RelativeResidual(1e-10), 50 * n).unwrap();
        prop_assert!(stats.converged);
        prop_assert!(rel_residual(&a, &x, &b) < 1e-8);
        let x_lu = helper::direct_solution(&a, &b);
        for (u, v) in x.iter().zip(x_lu.iter()) {
            prop_assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
        // Structural contract: one matvec per iteration, no transposes.
        prop_assert_eq!(stats.matvecs, stats.iterations);
        prop_assert_eq!(stats.transpose_matvecs, 0);
    }

    /// Jacobi PCG also solves, never diverges, and its residual claim is
    /// honest (recomputable).
    #[test]
    fn pcg_honest_on_random_spd(n in 4usize..40, nnz in 1usize..4, seed in any::<u64>()) {
        let a = gen::random_spd(n, nnz, seed);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let m = JacobiPrec::new(&a).unwrap();
        let (x, stats) = pcg(&a, &m, &b, StopCriterion::RelativeResidual(1e-9), 50 * n).unwrap();
        prop_assert!(stats.converged);
        let true_res = rel_residual(&a, &x, &b);
        prop_assert!(true_res < 1e-7, "claimed {} true {}", stats.residual_norm, true_res);
    }

    /// The non-symmetric family solves generated banded SPD systems too
    /// (SPD is a special case of their domain), and their structural
    /// contracts hold.
    #[test]
    fn nonsymmetric_family_on_spd(n in 4usize..40, bw in 1usize..4, seed in any::<u64>()) {
        let a = gen::banded_spd(n, bw, seed);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let stop = StopCriterion::RelativeResidual(1e-9);

        let (xb, sb) = bicg(&a, &b, stop, 50 * n).unwrap();
        prop_assert!(sb.converged);
        prop_assert!(rel_residual(&a, &xb, &b) < 1e-7);
        prop_assert_eq!(sb.transpose_matvecs, sb.matvecs);

        let (xs, ss) = bicgstab(&a, &b, stop, 50 * n).unwrap();
        prop_assert!(ss.converged);
        prop_assert!(rel_residual(&a, &xs, &b) < 1e-7);
        prop_assert_eq!(ss.transpose_matvecs, 0);

        if let Ok((xc, sc)) = cgs(&a, &b, stop, 50 * n) {
            if sc.converged {
                prop_assert!(rel_residual(&a, &xc, &b) < 1e-6);
            }
        } // CGS breakdown is an accepted honest outcome.

        let (xg, sg) = gmres(&a, &b, 20, stop, 100 * n).unwrap();
        prop_assert!(sg.converged);
        prop_assert!(rel_residual(&a, &xg, &b) < 1e-7);
    }

    /// Cholesky agrees with LU wherever it applies.
    #[test]
    fn cholesky_agrees_with_lu(n in 2usize..30, seed in any::<u64>()) {
        let a = gen::random_spd(n, 3, seed);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let d = a.to_dense();
        let x_ch = direct::solve_cholesky(&d, &b).unwrap();
        let x_lu = direct::solve_lu(&d, &b).unwrap();
        for (u, v) in x_ch.iter().zip(x_lu.iter()) {
            prop_assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
        prop_assert!(rel_residual(&a, &x_ch, &b) < 1e-8);
    }

    /// Residual histories: CG on SPD is (near-)monotone and history
    /// values are consistent with a real run.
    #[test]
    fn cg_history_monotone_on_spd(n in 6usize..36, seed in any::<u64>()) {
        let a = gen::banded_spd(n, 2, seed);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let h = residual_history(Method::Cg, &a, &b, 2 * n).unwrap();
        prop_assert_eq!(h[0], 1.0);
        // Allow tiny upticks from rounding, but the envelope must fall.
        let min = h.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(min < 1e-6, "CG failed to reduce the residual: min {min}");
        let ups = h.windows(2).filter(|w| w[1] > w[0] * 1.5).count();
        prop_assert!(ups == 0, "CG residual jumped by >50% {ups} times");
    }

    /// Stopping criteria are honest: with an impossible tolerance the
    /// solver reports non-convergence rather than looping forever or
    /// lying.
    #[test]
    fn impossible_tolerance_reported(n in 4usize..24, seed in any::<u64>()) {
        let a = gen::random_spd(n, 3, seed);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (_, stats) = cg(&a, &b, StopCriterion::AbsoluteResidual(0.0), 5).unwrap();
        prop_assert!(!stats.converged || stats.residual_norm == 0.0);
        prop_assert!(stats.iterations <= 5);
    }

    /// The SerialOperator abstraction is coherent: apply/apply_transpose
    /// through CSR equal the dense versions for random SPD systems.
    #[test]
    fn operator_trait_coherent(n in 2usize..24, seed in any::<u64>()) {
        let a = gen::random_spd(n, 3, seed);
        let d = a.to_dense();
        let x: Vec<f64> = (0..n).map(|i| ((i * 11) % 7) as f64 - 3.0).collect();
        let via_csr = SerialOperator::apply(&a, &x);
        let via_dense = SerialOperator::apply(&d, &x);
        for (u, v) in via_csr.iter().zip(via_dense.iter()) {
            prop_assert!((u - v).abs() < 1e-10);
        }
        prop_assert_eq!(SerialOperator::dim(&a), n);
        prop_assert_eq!(SerialOperator::diagonal(&a), SerialOperator::diagonal(&d));
    }
}
