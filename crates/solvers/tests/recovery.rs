//! Property and determinism tests for the fault-injection / recovery
//! stack: on generated SPD systems with seeded fault plans, protected CG
//! converges to the same tolerance as a fault-free run while the
//! unprotected solver fails with a typed error — and an identical seed
//! replays a byte-identical fault trace.

use hpf_core::{DataArrayLayout, RowwiseCsr};
use hpf_machine::{CostModel, EventKind, FaultPlan, FaultRates, Machine, Topology};
use hpf_solvers::{cg_distributed, cg_distributed_protected, RecoveryConfig, StopCriterion};
use hpf_sparse::gen;
use proptest::prelude::*;

const NP: usize = 4;

fn machine(np: usize) -> Machine {
    Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
}

fn spd_system(n: usize, bw: usize, seed: u64) -> (RowwiseCsr, hpf_sparse::CsrMatrix, Vec<f64>) {
    let a = gen::banded_spd(n, bw, seed);
    let (_x_true, b) = gen::rhs_for_known_solution(&a);
    (
        RowwiseCsr::block(a.clone(), NP, DataArrayLayout::RowAligned),
        a,
        b,
    )
}

fn rel_residual(a: &hpf_sparse::CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x).unwrap();
    let num: f64 = ax
        .iter()
        .zip(b)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    num / den
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A crash (lost contribution → NaN) at an arbitrary point early in
    /// the solve: protected CG still converges to the fault-free
    /// tolerance; the unprotected solver on the same machine state fails
    /// with a typed error instead of silently returning garbage.
    #[test]
    fn protected_cg_converges_where_unprotected_fails(
        n in 24usize..64,
        bw in 1usize..4,
        mat_seed in any::<u64>(),
        crash_op in 10usize..60,
        crash_proc in 0usize..NP,
    ) {
        let (op, a, b) = spd_system(n, bw, mat_seed);
        let stop = StopCriterion::RelativeResidual(1e-9);
        let plan = FaultPlan::new().with_crash(crash_op, crash_proc);

        let mut m = machine(NP);
        m.set_fault_plan(plan.clone());
        let unprotected = cg_distributed(&mut m, &op, &b, stop, 50 * n);
        prop_assert!(
            unprotected.is_err(),
            "NaN from a lost contribution must surface as a typed error"
        );

        let mut m = machine(NP);
        m.set_fault_plan(plan);
        let (x, stats, rec) =
            cg_distributed_protected(&mut m, &op, &b, stop, 50 * n, RecoveryConfig::default())
                .unwrap();
        prop_assert!(stats.converged, "protected CG must converge: {stats:?} {rec:?}");
        prop_assert!(m.faults_injected() >= 1);
        prop_assert!(rec.faults_detected >= 1, "the crash must be detected");
        prop_assert!(rel_residual(&a, &x.to_global(), &b) < 1e-8);
    }

    /// Seeded random transient-fault plans (bit flips, drops,
    /// stragglers): protected CG reaches the same tolerance a fault-free
    /// run would, with every injected fault showing up in the trace.
    #[test]
    fn protected_cg_rides_out_random_transient_plans(
        mat_seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let (op, a, b) = spd_system(48, 2, mat_seed);
        let stop = StopCriterion::RelativeResidual(1e-9);
        let plan = FaultPlan::random(fault_seed, NP, 200, FaultRates::transient(0.03));
        // A dense plan can force one rollback per fault; budget for it.
        let config = RecoveryConfig {
            max_rollbacks: 4 * plan.len().max(4),
            ..RecoveryConfig::default()
        };

        let mut m = machine(NP);
        m.set_tracing(true);
        m.set_fault_plan(plan.clone());
        let (x, stats, _rec) =
            cg_distributed_protected(&mut m, &op, &b, stop, 4000, config).unwrap();
        prop_assert!(stats.converged);
        let true_rel = rel_residual(&a, &x.to_global(), &b);
        prop_assert!(true_rel < 1e-8, "true rel residual {true_rel} claimed {}", stats.residual_norm);
        prop_assert_eq!(m.trace().count(EventKind::Fault), m.faults_injected());
        prop_assert!(m.faults_injected() <= plan.len());
    }
}

/// Same seed, same machine, same workload ⇒ byte-identical fault traces
/// (the whole point of plan-based injection). A different seed produces a
/// different plan.
#[test]
fn identical_seeds_replay_identical_fault_traces() {
    let run = |fault_seed: u64| -> String {
        let (op, _a, b) = spd_system(48, 2, 7);
        let plan = FaultPlan::random(fault_seed, NP, 200, FaultRates::transient(0.05));
        let mut m = machine(NP);
        m.set_tracing(true);
        m.set_fault_plan(plan);
        let stop = StopCriterion::RelativeResidual(1e-9);
        let _ = cg_distributed_protected(&mut m, &op, &b, stop, 4000, RecoveryConfig::default())
            .unwrap();
        m.trace()
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Fault)
            .map(|e| format!("{e:?}\n"))
            .collect()
    };
    let a = run(1234);
    let b = run(1234);
    assert!(!a.is_empty(), "the plan should fire at least one fault");
    assert_eq!(a, b, "same seed must replay the same fault schedule");
    let c = run(99);
    assert_ne!(a, c, "different seeds should differ");
}

/// `Machine::reset` rewinds the injector: two runs on one machine (as the
/// service's retry loop does between attempts) see the same schedule.
#[test]
fn machine_reset_replays_the_fault_plan() {
    let (op, _a, b) = spd_system(32, 2, 3);
    let stop = StopCriterion::RelativeResidual(1e-9);
    let mut m = machine(NP);
    m.set_fault_plan(FaultPlan::new().with_crash(20, 1).with_message_drop(40, 0));

    let first = cg_distributed(&mut m, &op, &b, stop, 2000);
    assert!(first.is_err());
    let injected_first = m.faults_injected();
    assert!(injected_first >= 1);

    m.reset();
    let second = cg_distributed(&mut m, &op, &b, stop, 2000);
    assert!(second.is_err(), "reset must replay, not clear, the plan");
    assert_eq!(m.faults_injected(), injected_first);

    m.clear_fault_plan();
    m.reset();
    let (_, stats) = cg_distributed(&mut m, &op, &b, stop, 2000).unwrap();
    assert!(stats.converged);
    assert_eq!(m.faults_injected(), 0);
}
