//! Spectral estimates and the classical CG convergence bound.
//!
//! Section 2 of the paper ties CG's convergence to the spectrum: "the CG
//! algorithm will generally converge ... in at most n_e iterations,
//! where n_e is the number of distinct eigenvalues ... in cases where A
//! has many distinct eigenvalues and those eigenvalues vary widely in
//! magnitude, the CG algorithm may require a large number of iterations."
//! The quantitative version is the classical energy-norm bound
//!
//! `||e_k||_A <= 2 ((sqrt(κ) - 1) / (sqrt(κ) + 1))^k ||e_0||_A`
//!
//! with `κ = λ_max / λ_min`. This module estimates the extreme
//! eigenvalues by power iteration (λ_max directly; λ_min via power
//! iteration on the spectral complement `λ_max·I − A`) and exposes the
//! bound for tests and reports.

use crate::error::SolverError;
use crate::operator::SerialOperator;

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Result of a power-iteration eigenvalue estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EigEstimate {
    pub value: f64,
    pub iterations: usize,
    /// Relative change of the estimate at termination.
    pub residual: f64,
}

/// Largest-magnitude eigenvalue of a symmetric operator by power
/// iteration (deterministic start vector).
pub fn power_method<A: SerialOperator + ?Sized>(
    a: &A,
    tol: f64,
    max_iters: usize,
) -> Result<EigEstimate, SolverError> {
    let n = a.dim();
    if n == 0 {
        return Err(SolverError::NotSquare { rows: 0, cols: 0 });
    }
    // Deterministic, unlikely-to-be-orthogonal start.
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + ((i * 2654435761) % 97) as f64 / 97.0)
        .collect();
    let nv = norm2(&v);
    v.iter_mut().for_each(|x| *x /= nv);
    let mut lambda = 0.0f64;
    for k in 1..=max_iters {
        let w = a.apply(&v);
        let nw = norm2(&w);
        if nw < f64::MIN_POSITIVE * 1e16 {
            // v is (numerically) in the null space: eigenvalue 0.
            return Ok(EigEstimate {
                value: 0.0,
                iterations: k,
                residual: 0.0,
            });
        }
        // Rayleigh quotient (v normalised).
        let new_lambda: f64 = v.iter().zip(w.iter()).map(|(x, y)| x * y).sum();
        let rel = (new_lambda - lambda).abs() / new_lambda.abs().max(1e-300);
        lambda = new_lambda;
        v = w.iter().map(|x| x / nw).collect();
        if rel < tol && k > 3 {
            return Ok(EigEstimate {
                value: lambda,
                iterations: k,
                residual: rel,
            });
        }
    }
    Ok(EigEstimate {
        value: lambda,
        iterations: max_iters,
        residual: f64::NAN,
    })
}

/// Extreme-eigenvalue and condition-number estimate for a symmetric
/// positive-definite operator: λ_max by power iteration, λ_min by power
/// iteration on `λ_max·I − A` (whose dominant eigenvalue is
/// `λ_max − λ_min`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpdSpectrum {
    pub lambda_max: f64,
    pub lambda_min: f64,
    pub condition: f64,
}

struct Shifted<'a, A: ?Sized> {
    a: &'a A,
    shift: f64,
}

impl<A: SerialOperator + ?Sized> SerialOperator for Shifted<'_, A> {
    fn dim(&self) -> usize {
        self.a.dim()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let ax = self.a.apply(x);
        x.iter()
            .zip(ax.iter())
            .map(|(xi, axi)| self.shift * xi - axi)
            .collect()
    }
    fn apply_transpose(&self, x: &[f64]) -> Vec<f64> {
        // Symmetric use only.
        self.apply(x)
    }
    fn diagonal(&self) -> Vec<f64> {
        self.a.diagonal().iter().map(|d| self.shift - d).collect()
    }
}

/// Estimate the SPD spectrum bounds.
pub fn estimate_spd_spectrum<A: SerialOperator + ?Sized>(
    a: &A,
    tol: f64,
    max_iters: usize,
) -> Result<SpdSpectrum, SolverError> {
    let top = power_method(a, tol, max_iters)?;
    let lambda_max = top.value;
    if lambda_max <= 0.0 {
        return Err(SolverError::Breakdown {
            what: "lambda_max",
            value: lambda_max,
        });
    }
    // Slight over-shift keeps the complement PSD under estimate error.
    let shifted = Shifted {
        a,
        shift: lambda_max * 1.0001,
    };
    let comp = power_method(&shifted, tol, max_iters)?;
    let lambda_min = (shifted.shift - comp.value).max(f64::MIN_POSITIVE);
    Ok(SpdSpectrum {
        lambda_max,
        lambda_min,
        condition: lambda_max / lambda_min,
    })
}

/// The classical CG energy-norm error bound after `k` iterations for
/// condition number `kappa`: `2 ((sqrt(κ)-1)/(sqrt(κ)+1))^k`.
pub fn cg_error_bound(kappa: f64, k: usize) -> f64 {
    assert!(kappa >= 1.0, "condition number is at least 1");
    let s = kappa.sqrt();
    let rho = (s - 1.0) / (s + 1.0);
    2.0 * rho.powi(k as i32)
}

/// Iterations predicted by the bound to reach relative energy error
/// `eps`.
pub fn cg_iterations_for(kappa: f64, eps: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0);
    if kappa <= 1.0 + 1e-12 {
        return 1;
    }
    let s = kappa.sqrt();
    let rho = (s - 1.0) / (s + 1.0);
    ((eps / 2.0).ln() / rho.ln()).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stopping::StopCriterion;
    use hpf_sparse::gen;

    #[test]
    fn power_method_on_diagonal_matrix() {
        let a = gen::distinct_eigenvalues(8, &[1.0, 3.0, 7.0], 0, 0); // pure diagonal
        let est = power_method(&a, 1e-12, 1000).unwrap();
        assert!((est.value - 7.0).abs() < 1e-6, "{est:?}");
    }

    #[test]
    fn spectrum_of_tridiagonal_matches_theory() {
        // tri(-1, 2, -1): eigenvalues 2 - 2 cos(k pi / (n+1)).
        let n = 40;
        let a = gen::tridiagonal(n, 2.0, -1.0);
        let sp = estimate_spd_spectrum(&a, 1e-12, 200_000).unwrap();
        let theory_max = 2.0 - 2.0 * (n as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let theory_min = 2.0 - 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        assert!(
            (sp.lambda_max - theory_max).abs() / theory_max < 1e-3,
            "max {} vs {}",
            sp.lambda_max,
            theory_max
        );
        assert!(
            (sp.lambda_min - theory_min).abs() / theory_min < 0.05,
            "min {} vs {}",
            sp.lambda_min,
            theory_min
        );
    }

    #[test]
    fn cg_obeys_the_kappa_bound() {
        // Actual CG iterations <= the bound's prediction on Poisson.
        let a = gen::poisson_2d(12, 12);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let sp = estimate_spd_spectrum(&a, 1e-10, 100_000).unwrap();
        let eps = 1e-9;
        let predicted = cg_iterations_for(sp.condition, eps);
        let (_, stats) =
            crate::cg::cg(&a, &b, StopCriterion::RelativeResidual(eps), 10_000).unwrap();
        assert!(stats.converged);
        // The energy-norm bound is pessimistic for the 2-norm criterion
        // but must not be *violated* by a large factor; allow slack 2x
        // for the norm mismatch.
        assert!(
            stats.iterations <= 2 * predicted,
            "CG took {} iterations, bound predicts {}",
            stats.iterations,
            predicted
        );
    }

    #[test]
    fn bound_decreases_geometrically() {
        let b1 = cg_error_bound(100.0, 10);
        let b2 = cg_error_bound(100.0, 20);
        assert!(b2 < b1);
        // Perfectly conditioned: bound collapses immediately.
        assert!(cg_error_bound(1.0, 1) < 1e-12);
        // Worse conditioning -> slower rate.
        assert!(cg_error_bound(1e4, 10) > cg_error_bound(1e2, 10));
    }

    #[test]
    fn iterations_for_grows_with_kappa() {
        assert!(cg_iterations_for(1e4, 1e-8) > cg_iterations_for(1e2, 1e-8));
        assert_eq!(cg_iterations_for(1.0, 1e-8), 1);
    }
}
