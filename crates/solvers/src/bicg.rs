//! Bi-Conjugate Gradient (BiCG).
//!
//! Section 2.1: "The BiCG algorithm employs an alternative approach of
//! using two mutually orthogonal sequences of residuals. This requires
//! three extra vectors to be stored, and different choices of alpha and
//! beta, but otherwise the computational structure of the algorithm is
//! similar to CG. BiCG does however require two matrix-vector multiply
//! operations one of which uses the matrix transpose Aᵀ, and therefore
//! any storage distribution optimisations made on the basis of row access
//! vs. column access will be negated with the use of BiCG."

use crate::cg::{check_breakdown, dot, norm2};
use crate::error::SolverError;
use crate::operator::SerialOperator;
use crate::stopping::{SolveStats, StopCriterion};

/// BiCG for general (possibly non-symmetric) systems.
pub fn bicg<A: SerialOperator + ?Sized>(
    a: &A,
    b: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(Vec<f64>, SolveStats), SolverError> {
    let n = a.dim();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    let mut stats = SolveStats::new();
    let b_norm = norm2(b);
    stats.dots += 1;

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    // Shadow residual: the second, mutually orthogonal sequence.
    let mut r_hat = b.to_vec();
    let mut p = r.clone();
    let mut p_hat = r_hat.clone();
    let mut rho = dot(&r_hat, &r);
    stats.dots += 1;
    stats.residual_norm = norm2(&r);
    if stop.satisfied(stats.residual_norm, b_norm) {
        stats.converged = true;
        return Ok((x, stats));
    }

    for _ in 0..max_iters {
        check_breakdown("rho", rho)?;
        let q = a.apply(&p);
        stats.matvecs += 1;
        let q_hat = a.apply_transpose(&p_hat);
        stats.transpose_matvecs += 1;
        let pq = dot(&p_hat, &q);
        stats.dots += 1;
        check_breakdown("p_hat.Ap", pq)?;
        let alpha = rho / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
            r_hat[i] -= alpha * q_hat[i];
        }
        stats.axpys += 3;
        stats.iterations += 1;
        stats.residual_norm = norm2(&r);
        stats.dots += 1;
        if stop.satisfied(stats.residual_norm, b_norm) {
            stats.converged = true;
            return Ok((x, stats));
        }
        let rho_new = dot(&r_hat, &r);
        stats.dots += 1;
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
            p_hat[i] = r_hat[i] + beta * p_hat[i];
        }
        stats.axpys += 2;
    }
    Ok((x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::{gen, CooMatrix, CsrMatrix};

    fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        let d: f64 = ax
            .iter()
            .zip(b.iter())
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        d / norm2(b).max(1e-300)
    }

    /// Non-symmetric but well-conditioned test matrix: diagonally
    /// dominant with skewed off-diagonals.
    fn nonsymmetric(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.5).unwrap();
                coo.push(i + 1, i, -0.5).unwrap();
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn bicg_solves_symmetric_like_cg() {
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (x, stats) = bicg(&a, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        assert!(stats.converged);
        assert!(residual(&a, &x, &b) < 1e-9);
        // On symmetric A, BiCG reduces to CG in iterates.
        let (_, s_cg) = crate::cg::cg(&a, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        assert_eq!(stats.iterations, s_cg.iterations);
    }

    #[test]
    fn bicg_solves_nonsymmetric_where_cg_fails() {
        let a = nonsymmetric(50);
        assert!(!a.is_symmetric(1e-12));
        let (x_true, b) = gen::rhs_for_known_solution(&a);
        let (x, stats) = bicg(&a, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        assert!(stats.converged, "BiCG must converge on this system");
        assert!(residual(&a, &x, &b) < 1e-9);
        let err: f64 = x
            .iter()
            .zip(x_true.iter())
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-7);
    }

    #[test]
    fn bicg_uses_transpose_matvecs() {
        // The structural point of E12: one Aᵀ product per iteration.
        let a = nonsymmetric(30);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (_, stats) = bicg(&a, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        assert_eq!(stats.transpose_matvecs, stats.matvecs);
        assert!(stats.transpose_matvecs > 0);
    }

    #[test]
    fn bicg_dimension_check() {
        let a = nonsymmetric(10);
        assert!(matches!(
            bicg(&a, &[1.0; 3], StopCriterion::RelativeResidual(1e-8), 10),
            Err(SolverError::DimensionMismatch { .. })
        ));
    }
}
