//! Operator abstractions: one for plain serial solves, one for solves on
//! the simulated HPF machine.

use hpf_core::{ColwiseCsc, DistVector, RowwiseCsr};
use hpf_machine::Machine;
use hpf_sparse::{CscMatrix, CsrMatrix, DenseMatrix};

/// A square linear operator applied serially.
pub trait SerialOperator {
    /// Problem dimension `n`.
    fn dim(&self) -> usize;
    /// `y = A x`.
    fn apply(&self, x: &[f64]) -> Vec<f64>;
    /// `y = Aᵀ x` (needed by BiCG).
    fn apply_transpose(&self, x: &[f64]) -> Vec<f64>;
    /// Main diagonal (for Jacobi preconditioning).
    fn diagonal(&self) -> Vec<f64>;
}

impl SerialOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n_rows()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.matvec(x).expect("dimension checked by solver")
    }
    fn apply_transpose(&self, x: &[f64]) -> Vec<f64> {
        self.matvec_transpose(x)
            .expect("dimension checked by solver")
    }
    fn diagonal(&self) -> Vec<f64> {
        CsrMatrix::diagonal(self)
    }
}

impl SerialOperator for CscMatrix {
    fn dim(&self) -> usize {
        self.n_rows()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.matvec(x).expect("dimension checked by solver")
    }
    fn apply_transpose(&self, x: &[f64]) -> Vec<f64> {
        self.matvec_transpose(x)
            .expect("dimension checked by solver")
    }
    fn diagonal(&self) -> Vec<f64> {
        CscMatrix::diagonal(self)
    }
}

impl SerialOperator for DenseMatrix {
    fn dim(&self) -> usize {
        self.n_rows()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.matvec(x).expect("dimension checked by solver")
    }
    fn apply_transpose(&self, x: &[f64]) -> Vec<f64> {
        self.matvec_transpose(x)
            .expect("dimension checked by solver")
    }
    fn diagonal(&self) -> Vec<f64> {
        let n = self.n_rows().min(self.n_cols());
        (0..n).map(|i| self[(i, i)]).collect()
    }
}

/// A square linear operator applied on the simulated HPF machine,
/// charging the communication its data layout induces.
pub trait DistOperator {
    fn dim(&self) -> usize;
    /// `q = A p`, charging the machine.
    fn apply(&self, machine: &mut Machine, p: &DistVector) -> DistVector;
    /// `q = Aᵀ p`, charging the machine — needed by distributed BiCG.
    /// Per the paper's §2.1, the cost of this direction is layout-
    /// dependent: cheap through a column layout, expensive through a row
    /// layout.
    fn apply_transpose(&self, machine: &mut Machine, p: &DistVector) -> DistVector;
    /// The descriptor result vectors carry.
    fn descriptor(&self) -> hpf_dist::ArrayDescriptor;
    /// Main diagonal as a distributed vector (for Jacobi PCG).
    fn diagonal(&self) -> Vec<f64>;
}

impl DistOperator for RowwiseCsr {
    fn dim(&self) -> usize {
        self.matrix().n_rows()
    }
    fn apply(&self, machine: &mut Machine, p: &DistVector) -> DistVector {
        self.matvec(machine, p).0
    }
    fn apply_transpose(&self, machine: &mut Machine, p: &DistVector) -> DistVector {
        self.matvec_transpose(machine, p).0
    }
    fn descriptor(&self) -> hpf_dist::ArrayDescriptor {
        self.row_descriptor().clone()
    }
    fn diagonal(&self) -> Vec<f64> {
        self.matrix().diagonal()
    }
}

/// Which Scenario-2 matvec variant a [`ColwiseCsc`] operator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CscVariant {
    /// The paper's serial code (inter-iteration dependency).
    Serial,
    /// Temporary 2-D array + `SUM` intrinsic.
    Temp2d,
}

/// A Scenario-2 operator: column-wise CSC with a chosen variant.
#[derive(Debug, Clone)]
pub struct ColwiseOperator {
    pub inner: ColwiseCsc,
    pub variant: CscVariant,
}

impl DistOperator for ColwiseOperator {
    fn dim(&self) -> usize {
        self.inner.matrix().n_rows()
    }
    fn apply(&self, machine: &mut Machine, p: &DistVector) -> DistVector {
        match self.variant {
            CscVariant::Serial => self.inner.matvec_serial(machine, p).0,
            CscVariant::Temp2d => self.inner.matvec_temp2d(machine, p).0,
        }
    }
    fn apply_transpose(&self, machine: &mut Machine, p: &DistVector) -> DistVector {
        self.inner.matvec_transpose_gather(machine, p).0
    }
    fn descriptor(&self) -> hpf_dist::ArrayDescriptor {
        self.inner.col_descriptor().clone()
    }
    fn diagonal(&self) -> Vec<f64> {
        self.inner.matrix().diagonal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_core::DataArrayLayout;
    use hpf_machine::{CostModel, Topology};
    use hpf_sparse::gen;

    #[test]
    fn serial_operators_agree() {
        let csr = gen::random_spd(20, 3, 2);
        let csc = CscMatrix::from_csr(&csr);
        let dense = csr.to_dense();
        let x: Vec<f64> = (0..20).map(|i| (i as f64).cos()).collect();
        let a = SerialOperator::apply(&csr, &x);
        let b = SerialOperator::apply(&csc, &x);
        let c = SerialOperator::apply(&dense, &x);
        for i in 0..20 {
            assert!((a[i] - b[i]).abs() < 1e-12);
            assert!((a[i] - c[i]).abs() < 1e-12);
        }
        assert_eq!(
            SerialOperator::diagonal(&csr),
            SerialOperator::diagonal(&dense)
        );
    }

    #[test]
    fn dist_operators_agree_with_serial() {
        let csr = gen::random_spd(24, 3, 4);
        let ones = vec![1.0; 24];
        let want = csr.matvec(&ones).unwrap();
        let np = 4;
        let row_op = RowwiseCsr::block(csr.clone(), np, DataArrayLayout::RowAligned);
        let col_op = ColwiseOperator {
            inner: ColwiseCsc::block(CscMatrix::from_csr(&csr), np),
            variant: CscVariant::Temp2d,
        };
        let p = DistVector::constant(row_op.descriptor(), 1.0);
        let mut m1 = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let q1 = row_op.apply(&mut m1, &p);
        let mut m2 = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let q2 = col_op.apply(&mut m2, &p);
        for i in 0..24 {
            assert!((q1.to_global()[i] - want[i]).abs() < 1e-12);
            assert!((q2.to_global()[i] - want[i]).abs() < 1e-12);
        }
    }
}
