//! Stabilized Bi-Conjugate Gradient (BiCGSTAB).
//!
//! Section 2.1: "The Stabilized BiCG algorithm also uses two matrix
//! vector operations but avoids using Aᵀ and therefore can be optimized
//! using the data distribution ideas we discuss here. It does however
//! involve four inner products, so will have a greater demand for an
//! efficient intrinsic for this than basic CG."

use crate::cg::{check_breakdown, dot, norm2};
use crate::error::SolverError;
use crate::operator::SerialOperator;
use crate::stopping::{SolveStats, StopCriterion};

/// BiCGSTAB for general systems.
pub fn bicgstab<A: SerialOperator + ?Sized>(
    a: &A,
    b: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(Vec<f64>, SolveStats), SolverError> {
    let n = a.dim();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    let mut stats = SolveStats::new();
    let b_norm = norm2(b);
    stats.dots += 1;

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r_hat = b.to_vec();
    let mut p = r.clone();
    let mut rho = dot(&r_hat, &r);
    stats.dots += 1;
    stats.residual_norm = norm2(&r);
    if stop.satisfied(stats.residual_norm, b_norm) {
        stats.converged = true;
        return Ok((x, stats));
    }

    for _ in 0..max_iters {
        check_breakdown("rho", rho)?;
        let v = a.apply(&p);
        stats.matvecs += 1;
        let rv = dot(&r_hat, &v);
        stats.dots += 1; // inner product 1
        check_breakdown("r_hat.Ap", rv)?;
        let alpha = rho / rv;
        let s: Vec<f64> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
        stats.axpys += 1;
        // Early exit on half-step convergence.
        let s_norm = norm2(&s);
        stats.dots += 1; // inner product 2
        if stop.satisfied(s_norm, b_norm) {
            for i in 0..n {
                x[i] += alpha * p[i];
            }
            stats.axpys += 1;
            stats.iterations += 1;
            stats.residual_norm = s_norm;
            stats.converged = true;
            return Ok((x, stats));
        }
        let t = a.apply(&s);
        stats.matvecs += 1;
        let tt = dot(&t, &t);
        stats.dots += 1; // inner product 3
        check_breakdown("t.t", tt)?;
        let omega = dot(&t, &s) / tt;
        stats.dots += 1; // inner product 4
        check_breakdown("omega", omega)?;
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        stats.axpys += 3;
        stats.iterations += 1;
        stats.residual_norm = norm2(&r);
        stats.dots += 1;
        if stop.satisfied(stats.residual_norm, b_norm) {
            stats.converged = true;
            return Ok((x, stats));
        }
        let rho_new = dot(&r_hat, &r);
        stats.dots += 1;
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        stats.axpys += 2;
    }
    Ok((x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::{gen, CooMatrix, CsrMatrix};

    fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        let d: f64 = ax
            .iter()
            .zip(b.iter())
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        d / norm2(b).max(1e-300)
    }

    fn nonsymmetric(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.7).unwrap();
                coo.push(i + 1, i, -0.3).unwrap();
            }
            if i + 5 < n {
                coo.push(i, i + 5, 0.4).unwrap();
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn bicgstab_solves_spd() {
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (x, stats) = bicgstab(&a, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        assert!(stats.converged);
        assert!(residual(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric_without_transpose() {
        let a = nonsymmetric(60);
        assert!(!a.is_symmetric(1e-12));
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (x, stats) = bicgstab(&a, &b, StopCriterion::RelativeResidual(1e-10), 1000).unwrap();
        assert!(stats.converged);
        assert!(residual(&a, &x, &b) < 1e-9);
        // The structural claim: no Aᵀ, two matvecs per full iteration.
        assert_eq!(stats.transpose_matvecs, 0);
        assert!(stats.matvecs <= 2 * stats.iterations);
        assert!(stats.matvecs >= 2 * stats.iterations - 1); // half-step exit
    }

    #[test]
    fn bicgstab_four_dots_per_iteration() {
        let a = nonsymmetric(40);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (_, stats) = bicgstab(&a, &b, StopCriterion::RelativeResidual(1e-10), 1000).unwrap();
        // >= 4 true inner products per full iteration (plus norm checks).
        assert!(
            stats.dots >= 4 * stats.iterations,
            "dots {} iterations {}",
            stats.dots,
            stats.iterations
        );
    }

    #[test]
    fn bicgstab_dimension_check() {
        let a = nonsymmetric(10);
        assert!(matches!(
            bicgstab(&a, &[0.0; 2], StopCriterion::RelativeResidual(1e-6), 5),
            Err(SolverError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn bicgstab_zero_rhs() {
        let a = nonsymmetric(10);
        let (x, stats) =
            bicgstab(&a, &[0.0; 10], StopCriterion::RelativeResidual(1e-10), 5).unwrap();
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
