//! Conjugate Gradient Squared (CGS).
//!
//! Section 2.1: "The Conjugate Gradient Squared (CGS) algorithm avoids
//! using Aᵀ operations but also requires additional vectors of storage
//! over the basic CG. CGS can be built using the operations and data
//! distributions we describe here, but can have some undesirable
//! numerical properties such as actual divergence or irregular rates of
//! convergence."

use crate::cg::{check_breakdown, dot, norm2};
use crate::error::SolverError;
use crate::operator::SerialOperator;
use crate::stopping::{SolveStats, StopCriterion};

/// CGS for general systems. May diverge — callers must check
/// `stats.converged` (the "undesirable numerical properties" the paper
/// warns about are real and reproduced in the tests).
pub fn cgs<A: SerialOperator + ?Sized>(
    a: &A,
    b: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(Vec<f64>, SolveStats), SolverError> {
    let n = a.dim();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    let mut stats = SolveStats::new();
    let b_norm = norm2(b);
    stats.dots += 1;

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r_hat = b.to_vec(); // fixed shadow vector
    let mut p = vec![0.0; n];
    let mut u = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut rho = 1.0;
    let mut first = true;

    stats.residual_norm = norm2(&r);
    if stop.satisfied(stats.residual_norm, b_norm) {
        stats.converged = true;
        return Ok((x, stats));
    }

    for _ in 0..max_iters {
        let rho_new = dot(&r_hat, &r);
        stats.dots += 1;
        check_breakdown("rho", rho_new)?;
        if first {
            u.clone_from(&r);
            p.clone_from(&u);
            first = false;
        } else {
            let beta = rho_new / rho;
            for i in 0..n {
                u[i] = r[i] + beta * q[i];
                p[i] = u[i] + beta * (q[i] + beta * p[i]);
            }
            stats.axpys += 3;
        }
        rho = rho_new;

        let v = a.apply(&p);
        stats.matvecs += 1;
        let sigma = dot(&r_hat, &v);
        stats.dots += 1;
        check_breakdown("r_hat.Ap", sigma)?;
        let alpha = rho / sigma;
        for i in 0..n {
            q[i] = u[i] - alpha * v[i];
        }
        stats.axpys += 1;
        let uq: Vec<f64> = (0..n).map(|i| u[i] + q[i]).collect();
        let auq = a.apply(&uq);
        stats.matvecs += 1;
        for i in 0..n {
            x[i] += alpha * uq[i];
            r[i] -= alpha * auq[i];
        }
        stats.axpys += 2;
        stats.iterations += 1;
        stats.residual_norm = norm2(&r);
        stats.dots += 1;
        if !stats.residual_norm.is_finite() {
            return Err(SolverError::Breakdown {
                what: "residual diverged",
                value: stats.residual_norm,
            });
        }
        if stop.satisfied(stats.residual_norm, b_norm) {
            stats.converged = true;
            return Ok((x, stats));
        }
    }
    Ok((x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::{gen, CooMatrix, CsrMatrix};

    fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        let d: f64 = ax
            .iter()
            .zip(b.iter())
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        d / norm2(b).max(1e-300)
    }

    #[test]
    fn cgs_solves_spd_system() {
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (x, stats) = cgs(&a, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        assert!(stats.converged);
        assert!(residual(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn cgs_avoids_transpose_but_doubles_matvecs() {
        let a = gen::poisson_2d(6, 6);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (_, stats) = cgs(&a, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        assert_eq!(stats.transpose_matvecs, 0);
        assert_eq!(stats.matvecs, 2 * stats.iterations);
    }

    #[test]
    fn cgs_solves_mildly_nonsymmetric() {
        let mut coo = CooMatrix::new(40, 40);
        for i in 0..40 {
            coo.push(i, i, 5.0).unwrap();
            if i + 1 < 40 {
                coo.push(i, i + 1, -1.2).unwrap();
                coo.push(i + 1, i, -0.8).unwrap();
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (x, stats) = cgs(&a, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        assert!(stats.converged);
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn cgs_irregular_convergence_or_divergence_is_detected() {
        // A strongly non-normal system: CGS either fails to converge in
        // few iterations, breaks down, or exhibits non-monotone residuals
        // — the paper's "undesirable numerical properties". We assert the
        // API surfaces this honestly rather than silently looping.
        let n = 30;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, 2.5).unwrap(); // strong upper coupling
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let b = vec![1.0; n];
        match cgs(&a, &b, StopCriterion::RelativeResidual(1e-12), 40) {
            Err(SolverError::Breakdown { .. }) => {} // honest failure
            Ok((x, stats)) => {
                // Either it failed to converge, or it truly solved it.
                if stats.converged {
                    assert!(residual(&a, &x, &b) < 1e-6);
                } else {
                    assert_eq!(stats.iterations, 40);
                }
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
