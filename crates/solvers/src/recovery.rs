//! Checkpoint/rollback CG — self-healing solves under injected faults.
//!
//! The machine layer can corrupt reduction and matvec results
//! (`hpf_machine::FaultPlan`); this module makes the Figure 2 CG loop
//! survive that. The protected solvers keep a small ring of checkpoints
//! `(x, r, p, rho)`, watch every scalar the recurrence divides by, and
//! periodically recompute the *true* residual `b - A x` (residual
//! replacement in the sense of Chen/Carson). When corruption is detected
//! — a non-finite or non-positive `p·Ap`, a residual jump, or drift
//! between the recurrence residual and the true residual — the solve
//! rolls back to the last checkpoint and replays instead of diverging.
//!
//! Replayed iterations do not re-hit the same faults: the machine's
//! fault schedule is keyed to a monotone operation counter, so a fault
//! fires once and the replay runs over clean operations.

use crate::cg::check_breakdown;
use crate::error::SolverError;
use crate::observer::{IterObserver, IterSample, MachineMark, NullObserver};
use crate::operator::DistOperator;
use crate::precond::{DistPreconditioner, JacobiPreconditioner};
use crate::stopping::{ResidualMonitor, SolveStats, StopCriterion};
use hpf_core::DistVector;
use hpf_machine::{span, Machine};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Knobs for the checkpoint/rollback machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Save a checkpoint every this many iterations.
    pub checkpoint_interval: usize,
    /// How many checkpoints to keep (a rollback that keeps failing
    /// retreats to older ones).
    pub ring_capacity: usize,
    /// Recompute the true residual `b - A x` every this many iterations.
    pub residual_check_interval: usize,
    /// A recurrence residual this many times larger than the previous
    /// one is treated as corruption, not convergence history.
    pub residual_jump_factor: f64,
    /// Relative drift between recurrence and true residual (scaled by
    /// `||b||`) that triggers residual replacement.
    pub drift_tolerance: f64,
    /// Give up with [`SolverError::RecoveryExhausted`] after this many
    /// rollbacks.
    pub max_rollbacks: usize,
    /// If the best residual seen fails to improve by at least 1% over
    /// this many consecutive iterations, assume a silently corrupted
    /// scalar froze the recurrence and restart from the true residual.
    pub stagnation_window: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_interval: 8,
            ring_capacity: 3,
            residual_check_interval: 25,
            residual_jump_factor: 1e6,
            drift_tolerance: 1e-4,
            max_rollbacks: 16,
            stagnation_window: 40,
        }
    }
}

/// What the recovery machinery did during one solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Checkpoints saved.
    pub checkpoints: usize,
    /// Rollbacks performed.
    pub rollbacks: usize,
    /// Corruption events detected (each triggers a rollback or a
    /// residual replacement).
    pub faults_detected: usize,
    /// True-residual recomputations that replaced the recurrence
    /// residual.
    pub residual_replacements: usize,
}

/// One saved iteration state.
struct Checkpoint {
    k: usize,
    x: DistVector,
    r: DistVector,
    p: DistVector,
    rho: f64,
    res: f64,
}

/// Fault-tolerant distributed CG: [`crate::cg_distributed`] plus the
/// checkpoint/rollback loop described in the module docs.
pub fn cg_distributed_protected<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    config: RecoveryConfig,
) -> Result<(DistVector, SolveStats, RecoveryStats), SolverError> {
    protected_cg_core(
        machine,
        a,
        b_global,
        stop,
        max_iters,
        config,
        None,
        &mut NullObserver,
    )
}

/// [`cg_distributed_protected`] with per-iteration telemetry: samples
/// carry the running rollback count, and the observer's
/// `on_rollback`/`on_restart` hooks fire on every recovery action.
pub fn cg_distributed_protected_with_observer<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    config: RecoveryConfig,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats, RecoveryStats), SolverError> {
    protected_cg_core(machine, a, b_global, stop, max_iters, config, None, obs)
}

/// Fault-tolerant Jacobi-preconditioned distributed CG.
pub fn pcg_jacobi_distributed_protected<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    config: RecoveryConfig,
) -> Result<(DistVector, SolveStats, RecoveryStats), SolverError> {
    let m = JacobiPreconditioner::from_operator(a)?;
    protected_cg_core(
        machine,
        a,
        b_global,
        stop,
        max_iters,
        config,
        Some(&m),
        &mut NullObserver,
    )
}

/// [`pcg_jacobi_distributed_protected`] with per-iteration telemetry.
pub fn pcg_jacobi_distributed_protected_with_observer<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    config: RecoveryConfig,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats, RecoveryStats), SolverError> {
    let m = JacobiPreconditioner::from_operator(a)?;
    protected_cg_core(machine, a, b_global, stop, max_iters, config, Some(&m), obs)
}

/// Fault-tolerant distributed CG preconditioned by any
/// [`DistPreconditioner`] — how `hpf-mg`'s V-cycle gets the
/// checkpoint/rollback machinery.
pub fn pcg_preconditioned_distributed_protected<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    m: &dyn DistPreconditioner,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    config: RecoveryConfig,
) -> Result<(DistVector, SolveStats, RecoveryStats), SolverError> {
    protected_cg_core(
        machine,
        a,
        b_global,
        stop,
        max_iters,
        config,
        Some(m),
        &mut NullObserver,
    )
}

/// [`pcg_preconditioned_distributed_protected`] with per-iteration
/// telemetry.
#[allow(clippy::too_many_arguments)]
pub fn pcg_preconditioned_distributed_protected_with_observer<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    m: &dyn DistPreconditioner,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    config: RecoveryConfig,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats, RecoveryStats), SolverError> {
    protected_cg_core(machine, a, b_global, stop, max_iters, config, Some(m), obs)
}

/// Shared core: plain CG when `precond` is `None`, preconditioned CG
/// when it holds an `M⁻¹` application.
#[allow(clippy::too_many_arguments)]
fn protected_cg_core<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    config: RecoveryConfig,
    precond: Option<&dyn DistPreconditioner>,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats, RecoveryStats), SolverError> {
    let _solve_span = span::enter("solve");
    let n = a.dim();
    if b_global.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b_global.len(),
        });
    }
    let desc = a.descriptor();
    let checkpoint_interval = config.checkpoint_interval.max(1);
    let residual_check_interval = config.residual_check_interval.max(1);
    let ring_capacity = config.ring_capacity.max(1);

    let mut stats = SolveStats::new();
    let mut rec = RecoveryStats::default();
    let mut monitor = ResidualMonitor::new(stop);

    // z = M^-1 r, identity when unpreconditioned (then z is just a copy
    // of r).
    let precondition = |machine: &mut Machine, r: &DistVector| -> DistVector {
        match precond {
            Some(m) => {
                let _s = span::enter("precondition");
                m.apply(machine, r)
            }
            None => r.clone(),
        }
    };

    let b = DistVector::from_global(desc.clone(), b_global);
    let mut x = DistVector::zeros(desc.clone());
    let mut r = b.clone();
    let mut z = precondition(machine, &r);
    let mut p = z.clone();

    let b_norm = b.dot(machine, &b).sqrt();
    stats.dots += 1;
    let mut rho = r.dot(machine, &z);
    stats.dots += 1;
    let mut res = r.dot(machine, &r).sqrt();
    stats.dots += 1;
    stats.residual_norm = res;
    if monitor.observe(res, b_norm)? {
        stats.converged = true;
        return Ok((x, stats, rec));
    }
    check_breakdown("rho", rho)?;

    // Per-proc flop counts charged for a checkpoint save / restore: the
    // three vectors (x, r, p) are copied locally, no communication.
    let copy_flops: Vec<usize> = (0..desc.np()).map(|pr| 3 * desc.local_len(pr)).collect();

    let mut ring: VecDeque<Checkpoint> = VecDeque::new();
    ring.push_back(Checkpoint {
        k: 0,
        x: x.clone(),
        r: r.clone(),
        p: p.clone(),
        rho,
        res,
    });
    {
        let _s = span::enter("checkpoint");
        machine.compute_all(&copy_flops, "checkpoint-save");
    }
    rec.checkpoints += 1;

    let mut k = 0usize;
    let mut rollbacks_since_checkpoint = 0usize;
    let stagnation_window = config.stagnation_window.max(1);
    let mut best_res = res;
    let mut since_improve = 0usize;

    // Roll back to the newest surviving checkpoint; retreat one
    // checkpoint deeper when the newest one keeps failing (it may have
    // been saved after the corruption landed).
    macro_rules! rollback {
        ($reason:expr) => {{
            rec.rollbacks += 1;
            rec.faults_detected += 1;
            rollbacks_since_checkpoint += 1;
            obs.on_rollback(k, $reason);
            if rec.rollbacks > config.max_rollbacks {
                return Err(SolverError::RecoveryExhausted {
                    rollbacks: rec.rollbacks,
                    residual_norm: res,
                });
            }
            if rollbacks_since_checkpoint >= 2 && ring.len() > 1 {
                ring.pop_back();
            }
            let cp = ring.back().expect("ring never empties");
            x.copy_from(&cp.x);
            r.copy_from(&cp.r);
            p.copy_from(&cp.p);
            rho = cp.rho;
            res = cp.res;
            k = cp.k;
            stats.iterations = k;
            stats.residual_norm = res;
            since_improve = 0;
            monitor.reset_window();
            {
                let _s = span::enter("rollback");
                machine.compute_all(&copy_flops, "rollback-restore");
            }
            continue;
        }};
    }

    // Discard the (possibly mis-scaled) search direction and restart
    // CG from the true residual at the current iterate.
    macro_rules! restart_from_true_residual {
        () => {{
            let _restart_span = span::enter("restart");
            let ax = a.apply(machine, &x);
            stats.matvecs += 1;
            let mut r_true = b.clone();
            r_true.axpy(machine, -1.0, &ax);
            stats.axpys += 1;
            let res_true = r_true.dot(machine, &r_true).sqrt();
            stats.dots += 1;
            if !res_true.is_finite() {
                rollback!("non-finite");
            }
            obs.on_restart(k);
            rec.residual_replacements += 1;
            r = r_true;
            z = precondition(machine, &r);
            rho = r.dot(machine, &z);
            stats.dots += 1;
            p = z.clone();
            res = res_true;
            stats.residual_norm = res;
            since_improve = 0;
            monitor.reset_window();
            if !rho.is_finite() || rho < 0.0 {
                rollback!("non-finite");
            }
            check_breakdown("rho", rho)?;
            // Convergence is only ever declared through the verified
            // path in the main loop; a claim here just means the next
            // iteration's observation triggers verification.
            monitor.observe(res, b_norm)?;
            continue;
        }};
    }

    let mut mark = MachineMark::take(machine);
    while k < max_iters {
        let _iter_span = span::enter(format!("iter={k}"));
        let q = {
            let _s = span::enter("matvec");
            a.apply(machine, &p)
        };
        stats.matvecs += 1;
        let pq = {
            let _s = span::enter("dot");
            p.dot(machine, &q)
        };
        stats.dots += 1;
        // SPD input guarantees p·Ap > 0; non-finite or non-positive
        // means a corrupted reduction (or a genuinely indefinite input,
        // which exhausts the rollback budget and surfaces as a typed
        // error).
        if !pq.is_finite() || pq <= 0.0 {
            rollback!("non-finite");
        }
        let alpha = rho / pq;
        {
            let _s = span::enter("axpy");
            x.axpy(machine, alpha, &p);
            r.axpy(machine, -alpha, &q);
        }
        stats.axpys += 2;
        // Unpreconditioned CG has z = r, so one reduction serves both
        // rho and the residual norm (keeps the faults-off overhead to
        // checkpointing alone).
        let (rho_new, res_new) = match precond {
            Some(_) => {
                z = precondition(machine, &r);
                let rho_new = r.dot(machine, &z);
                stats.dots += 1;
                let res_new = r.dot(machine, &r).sqrt();
                stats.dots += 1;
                (rho_new, res_new)
            }
            None => {
                let rho_new = r.dot(machine, &r);
                stats.dots += 1;
                z = r.clone();
                (rho_new, rho_new.abs().sqrt())
            }
        };
        if !res_new.is_finite()
            || !rho_new.is_finite()
            || rho_new < 0.0
            || res_new > config.residual_jump_factor * res.max(f64::MIN_POSITIVE)
        {
            rollback!("divergence");
        }
        k += 1;
        stats.iterations = k;
        res = res_new;
        stats.residual_norm = res;
        let (d_flops, d_words) = mark.delta(machine);
        obs.on_iteration(&IterSample {
            iteration: k,
            residual_norm: res,
            alpha,
            beta: rho_new / rho,
            flops: d_flops,
            comm_words: d_words,
            sim_time: machine.elapsed(),
            predicted_time: mark.predicted(),
            rollbacks: rec.rollbacks,
        });

        // Progress watchdog: a silently mis-scaled scalar (e.g. a bit
        // flip in rho) freezes the recurrence without breaking the
        // residual invariant, so neither the jump test nor drift
        // detection fires. No improvement over a whole window means the
        // search direction is dead — restart it.
        if res <= 0.99 * best_res {
            best_res = res;
            since_improve = 0;
        } else {
            since_improve += 1;
        }
        if since_improve >= stagnation_window {
            rec.faults_detected += 1;
            if rec.rollbacks + rec.residual_replacements >= config.max_rollbacks {
                return Err(SolverError::RecoveryExhausted {
                    rollbacks: rec.rollbacks,
                    residual_norm: res,
                });
            }
            restart_from_true_residual!();
        }

        // Residual replacement: periodically recompute the true
        // residual b - A x. Large drift means the recurrence was
        // silently corrupted; swap in the true residual and restart the
        // search direction.
        if k.is_multiple_of(residual_check_interval) {
            let _check_span = span::enter("residual-check");
            let ax = a.apply(machine, &x);
            stats.matvecs += 1;
            let mut r_true = b.clone();
            r_true.axpy(machine, -1.0, &ax);
            stats.axpys += 1;
            let res_true = r_true.dot(machine, &r_true).sqrt();
            stats.dots += 1;
            if !res_true.is_finite() {
                rollback!("non-finite");
            }
            if (res_true - res).abs() > config.drift_tolerance * b_norm.max(f64::MIN_POSITIVE) {
                rec.faults_detected += 1;
                rec.residual_replacements += 1;
                obs.on_restart(k);
                r = r_true;
                z = precondition(machine, &r);
                rho = r.dot(machine, &z);
                stats.dots += 1;
                p = z.clone();
                res = res_true;
                stats.residual_norm = res;
                since_improve = 0;
                monitor.reset_window();
                if !rho.is_finite() || rho < 0.0 {
                    rollback!("non-finite");
                }
                check_breakdown("rho", rho)?;
                // Convergence goes through the verified path only.
                monitor.observe(res, b_norm)?;
                continue; // p was restarted; skip the beta update
            }
        }

        if monitor.observe(res, b_norm)? {
            // Trust but verify: a corrupted reduction can fake a tiny
            // residual norm. Accept convergence only if the true
            // residual b - A x agrees — computed twice, because an armed
            // corruption can drain into the verification itself, and it
            // can only drain once.
            let mut verify = || {
                let _s = span::enter("verify");
                let ax = a.apply(machine, &x);
                stats.matvecs += 1;
                let mut r_true = b.clone();
                r_true.axpy(machine, -1.0, &ax);
                stats.axpys += 1;
                stats.dots += 1;
                r_true.dot(machine, &r_true).sqrt()
            };
            let (v1, v2) = (verify(), verify());
            let res_true = v1.max(v2);
            let agree = (v1 - v2).abs() <= 1e-12 * b_norm.max(f64::MIN_POSITIVE);
            if res_true.is_finite() && agree && stop.satisfied(res_true, b_norm) {
                stats.converged = true;
                stats.residual_norm = res_true;
                return Ok((x, stats, rec));
            }
            if !res_true.is_finite() {
                rollback!("non-finite");
            }
            // The recursive residual lied but the iterate is finite.
            // Checkpoints may have been saved after the corruption
            // landed (replaying them repeats the false claim), so repair
            // the recurrence in place instead of rolling back.
            rec.faults_detected += 1;
            if rec.rollbacks + rec.residual_replacements >= config.max_rollbacks {
                return Err(SolverError::RecoveryExhausted {
                    rollbacks: rec.rollbacks,
                    residual_norm: res,
                });
            }
            restart_from_true_residual!();
        }
        check_breakdown("rho", rho)?;
        let beta = rho_new / rho;
        rho = rho_new;
        p.aypx(machine, beta, &z);
        stats.axpys += 1;

        if k.is_multiple_of(checkpoint_interval) {
            ring.push_back(Checkpoint {
                k,
                x: x.clone(),
                r: r.clone(),
                p: p.clone(),
                rho,
                res,
            });
            if ring.len() > ring_capacity {
                ring.pop_front();
            }
            {
                let _s = span::enter("checkpoint");
                machine.compute_all(&copy_flops, "checkpoint-save");
            }
            rec.checkpoints += 1;
            rollbacks_since_checkpoint = 0;
        }
    }
    Ok((x, stats, rec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg_distributed;
    use hpf_core::{DataArrayLayout, RowwiseCsr};
    use hpf_machine::{CostModel, FaultPlan, Topology};
    use hpf_sparse::gen;

    fn machine(np: usize) -> Machine {
        Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
    }

    fn poisson_op(np: usize) -> (RowwiseCsr, Vec<f64>, Vec<f64>) {
        let a = gen::poisson_2d(8, 8);
        let (x_true, b) = gen::rhs_for_known_solution(&a);
        (
            RowwiseCsr::block(a, np, DataArrayLayout::RowAligned),
            x_true,
            b,
        )
    }

    fn rel_err(x: &[f64], y: &[f64]) -> f64 {
        let num: f64 = x
            .iter()
            .zip(y)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        num / den
    }

    #[test]
    fn protected_cg_matches_plain_cg_without_faults() {
        let np = 4;
        let (op, _x_true, b) = poisson_op(np);
        let stop = StopCriterion::RelativeResidual(1e-10);

        let mut m1 = machine(np);
        let (x_plain, s_plain) = cg_distributed(&mut m1, &op, &b, stop, 500).unwrap();
        let mut m2 = machine(np);
        let (x_prot, s_prot, rec) =
            cg_distributed_protected(&mut m2, &op, &b, stop, 500, RecoveryConfig::default())
                .unwrap();

        assert!(s_prot.converged);
        assert_eq!(s_prot.iterations, s_plain.iterations);
        assert_eq!(rec.rollbacks, 0);
        assert!(rec.checkpoints >= 1);
        assert!(rel_err(&x_prot.to_global(), &x_plain.to_global()) < 1e-12);
    }

    #[test]
    fn checkpoint_overhead_without_faults_is_small() {
        let np = 4;
        let (op, _, b) = poisson_op(np);
        let stop = StopCriterion::RelativeResidual(1e-10);

        let mut m1 = machine(np);
        cg_distributed(&mut m1, &op, &b, stop, 500).unwrap();
        let t_plain = m1.elapsed();
        let mut m2 = machine(np);
        cg_distributed_protected(&mut m2, &op, &b, stop, 500, RecoveryConfig::default()).unwrap();
        let t_prot = m2.elapsed();

        assert!(
            t_prot < 1.10 * t_plain,
            "checkpoint overhead {:.1}% exceeds 10%",
            100.0 * (t_prot / t_plain - 1.0)
        );
    }

    #[test]
    fn protected_cg_survives_bit_flips_where_plain_cg_degrades() {
        let np = 4;
        let (op, x_true, b) = poisson_op(np);
        let stop = StopCriterion::RelativeResidual(1e-10);
        // High-order mantissa/exponent bit flips on reductions early in
        // the solve.
        let plan = FaultPlan::new()
            .with_bit_flip(20, 1, 62, 3)
            .with_bit_flip(47, 2, 61, 5);

        let mut m = machine(np);
        m.set_fault_plan(plan);
        let (x, s, rec) =
            cg_distributed_protected(&mut m, &op, &b, stop, 2000, RecoveryConfig::default())
                .unwrap();
        assert!(
            s.converged,
            "protected CG must converge under bit flips: {s:?} {rec:?}"
        );
        assert!(
            rec.faults_detected >= 1,
            "faults should be detected: injected={} {s:?} {rec:?}",
            m.faults_injected()
        );
        assert!(rel_err(&x.to_global(), &x_true) < 1e-7);
    }

    #[test]
    fn protected_cg_survives_a_crash() {
        let np = 4;
        let (op, x_true, b) = poisson_op(np);
        let stop = StopCriterion::RelativeResidual(1e-10);

        let mut m = machine(np);
        m.set_fault_plan(FaultPlan::new().with_crash(30, 2));
        let (x, s, rec) =
            cg_distributed_protected(&mut m, &op, &b, stop, 2000, RecoveryConfig::default())
                .unwrap();
        assert!(s.converged, "protected CG must converge past a crash");
        assert!(rec.rollbacks >= 1, "a crash forces a rollback");
        assert!(rel_err(&x.to_global(), &x_true) < 1e-7);
    }

    #[test]
    fn observer_sees_rollbacks_and_every_iteration() {
        let np = 4;
        let (op, _, b) = poisson_op(np);
        let stop = StopCriterion::RelativeResidual(1e-10);

        let mut m = machine(np);
        m.set_fault_plan(FaultPlan::new().with_crash(30, 2));
        let mut obs = crate::observer::RecordingObserver::new();
        let (_, s, rec) = cg_distributed_protected_with_observer(
            &mut m,
            &op,
            &b,
            stop,
            2000,
            RecoveryConfig::default(),
            &mut obs,
        )
        .unwrap();
        assert!(s.converged);
        assert!(rec.rollbacks >= 1);
        assert_eq!(obs.rollbacks.len(), rec.rollbacks);
        // Samples exist for every surviving iteration number 1..=final,
        // and replayed iterations re-report (so counts can exceed the
        // final iteration count but never miss one).
        let mut seen: Vec<usize> = obs.samples.iter().map(|s| s.iteration).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, (1..=s.iterations).collect::<Vec<_>>());
        // The running rollback count is nondecreasing and ends at the
        // reported total.
        assert!(obs
            .samples
            .windows(2)
            .all(|w| w[1].rollbacks >= w[0].rollbacks || w[1].iteration < w[0].iteration));
        assert_eq!(obs.samples.last().unwrap().rollbacks, rec.rollbacks);
        // Recovery phases left span-tagged events in the trace.
        assert!(m
            .trace()
            .events()
            .iter()
            .any(|e| e.span.contains("rollback")));
    }

    #[test]
    fn unprotected_cg_fails_under_the_same_crash() {
        let np = 4;
        let (op, _, b) = poisson_op(np);
        let stop = StopCriterion::RelativeResidual(1e-10);

        let mut m = machine(np);
        m.set_fault_plan(FaultPlan::new().with_crash(30, 2));
        let out = cg_distributed(&mut m, &op, &b, stop, 2000);
        match out {
            Err(SolverError::NonFinite { .. }) | Err(SolverError::Breakdown { .. }) => {}
            Ok((_, s)) => assert!(!s.converged, "NaN poison must not converge"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn protected_pcg_converges_under_faults() {
        let np = 4;
        let a = gen::banded_spd(96, 3, 11);
        let (x_true, b) = gen::rhs_for_known_solution(&a);
        let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        let stop = StopCriterion::RelativeResidual(1e-10);

        let mut m = machine(np);
        m.set_fault_plan(FaultPlan::new().with_bit_flip(25, 0, 60, 1));
        let (x, s, rec) = pcg_jacobi_distributed_protected(
            &mut m,
            &op,
            &b,
            stop,
            2000,
            RecoveryConfig::default(),
        )
        .unwrap();
        assert!(
            s.converged,
            "injected={} {s:?} {rec:?}",
            m.faults_injected()
        );
        assert!(rel_err(&x.to_global(), &x_true) < 1e-7);
    }

    #[test]
    fn indefinite_input_exhausts_recovery_with_typed_error() {
        use hpf_sparse::{CooMatrix, CsrMatrix};
        let np = 2;
        let coo = CooMatrix::from_triplets(
            4,
            4,
            (0..4)
                .map(|i| (i, i, if i % 2 == 0 { 1.0 } else { -1.0 }))
                .collect(),
        )
        .unwrap();
        let a = CsrMatrix::from_coo(&coo);
        let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        let b = vec![0.0, 1.0, 0.0, 1.0];

        let mut m = machine(np);
        let out = cg_distributed_protected(
            &mut m,
            &op,
            &b,
            StopCriterion::RelativeResidual(1e-12),
            200,
            RecoveryConfig::default(),
        );
        assert!(
            matches!(out, Err(SolverError::RecoveryExhausted { .. })),
            "indefinite input must exhaust the rollback budget, got {out:?}"
        );
    }
}
