//! Stopping criteria and per-solve statistics.
//!
//! The paper's Figure 2 loop exits on `IF ( stop_criterion ) EXIT`; the
//! conventional criterion is a relative residual drop. [`SolveStats`]
//! additionally records the operation counts the paper's Section 2
//! analysis is based on ("the work per iteration is modest, amounting to
//! a single matrix-vector multiplication ..., two inner products ..., and
//! several SAXPY operations").

use crate::error::SolverError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// When to declare convergence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StopCriterion {
    /// `||r|| <= tol * ||b||`.
    RelativeResidual(f64),
    /// `||r|| <= tol`.
    AbsoluteResidual(f64),
    /// A progress *guard* rather than a tolerance: the solve keeps
    /// iterating while the residual drops by at least the fraction
    /// `min_drop` over each trailing `window` of iterations, and a
    /// [`ResidualMonitor`] aborts with [`SolverError::Stagnation`] when
    /// it stops doing so — a hostile input terminates with a typed error
    /// instead of burning `max_iters`. As a convergence test it only
    /// fires at the machine-precision floor `||r|| <= ε·||b||`.
    Stagnation { window: usize, min_drop: f64 },
}

impl StopCriterion {
    pub fn satisfied(&self, residual_norm: f64, b_norm: f64) -> bool {
        match *self {
            StopCriterion::RelativeResidual(tol) => {
                residual_norm <= tol * b_norm.max(f64::MIN_POSITIVE)
            }
            StopCriterion::AbsoluteResidual(tol) => residual_norm <= tol,
            StopCriterion::Stagnation { .. } => {
                residual_norm <= f64::EPSILON * b_norm.max(f64::MIN_POSITIVE)
            }
        }
    }
}

/// Stateful residual watcher used by the iterative solvers: combines the
/// convergence test with two abort guards — a non-finite residual is a
/// typed [`SolverError::NonFinite`] (never silently iterated on), and
/// under [`StopCriterion::Stagnation`] a residual that stops improving
/// becomes a typed [`SolverError::Stagnation`].
#[derive(Debug, Clone)]
pub struct ResidualMonitor {
    criterion: StopCriterion,
    history: VecDeque<f64>,
    observed: usize,
}

impl ResidualMonitor {
    pub fn new(criterion: StopCriterion) -> Self {
        ResidualMonitor {
            criterion,
            history: VecDeque::new(),
            observed: 0,
        }
    }

    /// Feed one residual norm. `Ok(true)` means converged, `Ok(false)`
    /// means keep iterating, `Err` is a typed abort.
    pub fn observe(&mut self, residual_norm: f64, b_norm: f64) -> Result<bool, SolverError> {
        if !residual_norm.is_finite() {
            return Err(SolverError::NonFinite {
                what: "residual norm",
                value: residual_norm,
            });
        }
        if self.criterion.satisfied(residual_norm, b_norm) {
            return Ok(true);
        }
        if let StopCriterion::Stagnation { window, min_drop } = self.criterion {
            let window = window.max(1);
            self.history.push_back(residual_norm);
            if self.history.len() > window {
                let oldest = self.history.pop_front().expect("non-empty");
                if residual_norm > oldest * (1.0 - min_drop) {
                    return Err(SolverError::Stagnation {
                        iterations: self.observed,
                        window,
                        residual_norm,
                    });
                }
            }
        }
        self.observed += 1;
        Ok(false)
    }

    /// Forget the trailing history (rollback support: replayed
    /// iterations should not be compared against pre-fault residuals).
    pub fn reset_window(&mut self) {
        self.history.clear();
    }
}

/// Outcome and operation counts of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveStats {
    pub iterations: usize,
    pub converged: bool,
    pub residual_norm: f64,
    /// `A·x` products performed.
    pub matvecs: usize,
    /// `Aᵀ·x` products performed (BiCG only).
    pub transpose_matvecs: usize,
    /// Inner products performed.
    pub dots: usize,
    /// SAXPY-class vector updates performed.
    pub axpys: usize,
}

impl SolveStats {
    pub fn new() -> Self {
        SolveStats {
            iterations: 0,
            converged: false,
            residual_norm: f64::INFINITY,
            matvecs: 0,
            transpose_matvecs: 0,
            dots: 0,
            axpys: 0,
        }
    }
}

impl Default for SolveStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-iteration operation structure of each algorithm, as tabulated in
/// the paper's Section 2/2.1 discussion. `storage_vectors` counts the
/// working n-vectors beyond the matrix (CG: x, r, p, q).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgorithmProfile {
    pub name: &'static str,
    pub matvecs_per_iter: usize,
    pub transpose_matvecs_per_iter: usize,
    pub dots_per_iter: usize,
    pub storage_vectors: usize,
    /// Whether the method applies to non-symmetric systems.
    pub handles_nonsymmetric: bool,
}

/// CG: 1 matvec, 2 dots, 4 vectors (x, r, p, q).
pub const CG_PROFILE: AlgorithmProfile = AlgorithmProfile {
    name: "CG",
    matvecs_per_iter: 1,
    transpose_matvecs_per_iter: 0,
    dots_per_iter: 2,
    storage_vectors: 4,
    handles_nonsymmetric: false,
};

/// BiCG: "two matrix-vector multiply operations one of which uses the
/// matrix transpose", two dots, "three extra vectors" over CG.
pub const BICG_PROFILE: AlgorithmProfile = AlgorithmProfile {
    name: "BiCG",
    matvecs_per_iter: 1,
    transpose_matvecs_per_iter: 1,
    dots_per_iter: 2,
    storage_vectors: 7,
    handles_nonsymmetric: true,
};

/// CGS: avoids Aᵀ "but also requires additional vectors of storage over
/// the basic CG".
pub const CGS_PROFILE: AlgorithmProfile = AlgorithmProfile {
    name: "CGS",
    matvecs_per_iter: 2,
    transpose_matvecs_per_iter: 0,
    dots_per_iter: 2,
    storage_vectors: 8,
    handles_nonsymmetric: true,
};

/// BiCGSTAB: "also uses two matrix vector operations but avoids using
/// Aᵀ ... It does however involve four inner products".
pub const BICGSTAB_PROFILE: AlgorithmProfile = AlgorithmProfile {
    name: "BiCGSTAB",
    matvecs_per_iter: 2,
    transpose_matvecs_per_iter: 0,
    dots_per_iter: 4,
    storage_vectors: 8,
    handles_nonsymmetric: true,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_criterion() {
        let c = StopCriterion::RelativeResidual(1e-6);
        assert!(c.satisfied(1e-7, 1.0));
        assert!(!c.satisfied(1e-5, 1.0));
        assert!(c.satisfied(1e-3, 1e4));
    }

    #[test]
    fn absolute_criterion_ignores_b() {
        let c = StopCriterion::AbsoluteResidual(1e-6);
        assert!(c.satisfied(1e-7, 1e-30));
        assert!(!c.satisfied(1e-5, 1e30));
    }

    #[test]
    fn zero_b_norm_does_not_divide_by_zero() {
        let c = StopCriterion::RelativeResidual(1e-6);
        assert!(c.satisfied(0.0, 0.0));
        assert!(!c.satisfied(1.0, 0.0));
    }

    #[test]
    fn stagnation_guard_aborts_flat_residuals() {
        let mut mon = ResidualMonitor::new(StopCriterion::Stagnation {
            window: 4,
            min_drop: 0.1,
        });
        // Healthy start: residual halves each step.
        let mut r = 1.0;
        for _ in 0..6 {
            assert_eq!(mon.observe(r, 1.0), Ok(false));
            r *= 0.5;
        }
        // Then it flatlines: after `window` flat observations, abort.
        let mut aborted = false;
        for _ in 0..6 {
            match mon.observe(r, 1.0) {
                Ok(false) => {}
                Err(SolverError::Stagnation { window, .. }) => {
                    assert_eq!(window, 4);
                    aborted = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(aborted, "flat residual must trip the guard");
    }

    #[test]
    fn stagnation_window_reset_forgives_history() {
        let mut mon = ResidualMonitor::new(StopCriterion::Stagnation {
            window: 2,
            min_drop: 0.5,
        });
        assert_eq!(mon.observe(1.0, 1.0), Ok(false));
        assert_eq!(mon.observe(1.0, 1.0), Ok(false));
        mon.reset_window(); // rollback happened; start the window over
        assert_eq!(mon.observe(1.0, 1.0), Ok(false));
        assert_eq!(mon.observe(1.0, 1.0), Ok(false));
        assert!(mon.observe(1.0, 1.0).is_err());
    }

    #[test]
    fn monitor_rejects_non_finite_residuals() {
        let mut mon = ResidualMonitor::new(StopCriterion::RelativeResidual(1e-8));
        assert_eq!(mon.observe(0.5, 1.0), Ok(false));
        assert!(matches!(
            mon.observe(f64::NAN, 1.0),
            Err(SolverError::NonFinite { .. })
        ));
        assert!(matches!(
            mon.observe(f64::INFINITY, 1.0),
            Err(SolverError::NonFinite { .. })
        ));
    }

    #[test]
    fn monitor_reports_convergence_like_the_criterion() {
        let mut mon = ResidualMonitor::new(StopCriterion::AbsoluteResidual(1e-6));
        assert_eq!(mon.observe(1e-3, 1.0), Ok(false));
        assert_eq!(mon.observe(1e-7, 1.0), Ok(true));
    }

    #[test]
    fn stagnation_converges_only_at_machine_precision() {
        let c = StopCriterion::Stagnation {
            window: 10,
            min_drop: 0.01,
        };
        assert!(!c.satisfied(1e-8, 1.0));
        assert!(c.satisfied(1e-17, 1.0));
    }

    #[test]
    fn profiles_match_paper_claims() {
        // BiCG needs the transpose; the others do not.
        assert_eq!(BICG_PROFILE.transpose_matvecs_per_iter, 1);
        assert_eq!(CG_PROFILE.transpose_matvecs_per_iter, 0);
        assert_eq!(BICGSTAB_PROFILE.transpose_matvecs_per_iter, 0);
        // BiCGSTAB does four inner products, CG two.
        assert_eq!(BICGSTAB_PROFILE.dots_per_iter, 4);
        assert_eq!(CG_PROFILE.dots_per_iter, 2);
        // BiCG stores three extra vectors over CG.
        assert_eq!(BICG_PROFILE.storage_vectors - CG_PROFILE.storage_vectors, 3);
        // Only CG is restricted to symmetric systems.
        let profiles = [CG_PROFILE, BICG_PROFILE, CGS_PROFILE, BICGSTAB_PROFILE];
        let symmetric_only: Vec<&str> = profiles
            .iter()
            .filter(|p| !p.handles_nonsymmetric)
            .map(|p| p.name)
            .collect();
        assert_eq!(symmetric_only, vec!["CG"]);
    }
}
