//! Stopping criteria and per-solve statistics.
//!
//! The paper's Figure 2 loop exits on `IF ( stop_criterion ) EXIT`; the
//! conventional criterion is a relative residual drop. [`SolveStats`]
//! additionally records the operation counts the paper's Section 2
//! analysis is based on ("the work per iteration is modest, amounting to
//! a single matrix-vector multiplication ..., two inner products ..., and
//! several SAXPY operations").

use serde::{Deserialize, Serialize};

/// When to declare convergence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StopCriterion {
    /// `||r|| <= tol * ||b||`.
    RelativeResidual(f64),
    /// `||r|| <= tol`.
    AbsoluteResidual(f64),
}

impl StopCriterion {
    pub fn satisfied(&self, residual_norm: f64, b_norm: f64) -> bool {
        match *self {
            StopCriterion::RelativeResidual(tol) => {
                residual_norm <= tol * b_norm.max(f64::MIN_POSITIVE)
            }
            StopCriterion::AbsoluteResidual(tol) => residual_norm <= tol,
        }
    }
}

/// Outcome and operation counts of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveStats {
    pub iterations: usize,
    pub converged: bool,
    pub residual_norm: f64,
    /// `A·x` products performed.
    pub matvecs: usize,
    /// `Aᵀ·x` products performed (BiCG only).
    pub transpose_matvecs: usize,
    /// Inner products performed.
    pub dots: usize,
    /// SAXPY-class vector updates performed.
    pub axpys: usize,
}

impl SolveStats {
    pub fn new() -> Self {
        SolveStats {
            iterations: 0,
            converged: false,
            residual_norm: f64::INFINITY,
            matvecs: 0,
            transpose_matvecs: 0,
            dots: 0,
            axpys: 0,
        }
    }
}

impl Default for SolveStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-iteration operation structure of each algorithm, as tabulated in
/// the paper's Section 2/2.1 discussion. `storage_vectors` counts the
/// working n-vectors beyond the matrix (CG: x, r, p, q).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgorithmProfile {
    pub name: &'static str,
    pub matvecs_per_iter: usize,
    pub transpose_matvecs_per_iter: usize,
    pub dots_per_iter: usize,
    pub storage_vectors: usize,
    /// Whether the method applies to non-symmetric systems.
    pub handles_nonsymmetric: bool,
}

/// CG: 1 matvec, 2 dots, 4 vectors (x, r, p, q).
pub const CG_PROFILE: AlgorithmProfile = AlgorithmProfile {
    name: "CG",
    matvecs_per_iter: 1,
    transpose_matvecs_per_iter: 0,
    dots_per_iter: 2,
    storage_vectors: 4,
    handles_nonsymmetric: false,
};

/// BiCG: "two matrix-vector multiply operations one of which uses the
/// matrix transpose", two dots, "three extra vectors" over CG.
pub const BICG_PROFILE: AlgorithmProfile = AlgorithmProfile {
    name: "BiCG",
    matvecs_per_iter: 1,
    transpose_matvecs_per_iter: 1,
    dots_per_iter: 2,
    storage_vectors: 7,
    handles_nonsymmetric: true,
};

/// CGS: avoids Aᵀ "but also requires additional vectors of storage over
/// the basic CG".
pub const CGS_PROFILE: AlgorithmProfile = AlgorithmProfile {
    name: "CGS",
    matvecs_per_iter: 2,
    transpose_matvecs_per_iter: 0,
    dots_per_iter: 2,
    storage_vectors: 8,
    handles_nonsymmetric: true,
};

/// BiCGSTAB: "also uses two matrix vector operations but avoids using
/// Aᵀ ... It does however involve four inner products".
pub const BICGSTAB_PROFILE: AlgorithmProfile = AlgorithmProfile {
    name: "BiCGSTAB",
    matvecs_per_iter: 2,
    transpose_matvecs_per_iter: 0,
    dots_per_iter: 4,
    storage_vectors: 8,
    handles_nonsymmetric: true,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_criterion() {
        let c = StopCriterion::RelativeResidual(1e-6);
        assert!(c.satisfied(1e-7, 1.0));
        assert!(!c.satisfied(1e-5, 1.0));
        assert!(c.satisfied(1e-3, 1e4));
    }

    #[test]
    fn absolute_criterion_ignores_b() {
        let c = StopCriterion::AbsoluteResidual(1e-6);
        assert!(c.satisfied(1e-7, 1e-30));
        assert!(!c.satisfied(1e-5, 1e30));
    }

    #[test]
    fn zero_b_norm_does_not_divide_by_zero() {
        let c = StopCriterion::RelativeResidual(1e-6);
        assert!(c.satisfied(0.0, 0.0));
        assert!(!c.satisfied(1.0, 0.0));
    }

    #[test]
    fn profiles_match_paper_claims() {
        // BiCG needs the transpose; the others do not.
        assert_eq!(BICG_PROFILE.transpose_matvecs_per_iter, 1);
        assert_eq!(CG_PROFILE.transpose_matvecs_per_iter, 0);
        assert_eq!(BICGSTAB_PROFILE.transpose_matvecs_per_iter, 0);
        // BiCGSTAB does four inner products, CG two.
        assert_eq!(BICGSTAB_PROFILE.dots_per_iter, 4);
        assert_eq!(CG_PROFILE.dots_per_iter, 2);
        // BiCG stores three extra vectors over CG.
        assert_eq!(BICG_PROFILE.storage_vectors - CG_PROFILE.storage_vectors, 3);
        // Only CG is restricted to symmetric systems.
        let profiles = [CG_PROFILE, BICG_PROFILE, CGS_PROFILE, BICGSTAB_PROFILE];
        let symmetric_only: Vec<&str> = profiles
            .iter()
            .filter(|p| !p.handles_nonsymmetric)
            .map(|p| p.name)
            .collect();
        assert_eq!(symmetric_only, vec!["CG"]);
    }
}
