//! Solver error type.

use std::fmt;

/// Errors from solver setup or numerical breakdown.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The operator is not square.
    NotSquare { rows: usize, cols: usize },
    /// Right-hand side length does not match the operator.
    DimensionMismatch { expected: usize, got: usize },
    /// A required property fails (e.g. CG on a non-symmetric matrix).
    NotSymmetric,
    /// Division by a (near-)zero inner product: the iteration broke down
    /// (e.g. `p·Ap ≈ 0` in CG on an indefinite system, `rho ≈ 0` in
    /// BiCG/CGS).
    Breakdown { what: &'static str, value: f64 },
    /// A matrix factorisation failed (singular pivot in LU, negative
    /// pivot in Cholesky).
    SingularMatrix { pivot: usize, value: f64 },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NotSquare { rows, cols } => {
                write!(f, "operator must be square, got {rows}x{cols}")
            }
            SolverError::DimensionMismatch { expected, got } => {
                write!(f, "rhs has length {got}, operator expects {expected}")
            }
            SolverError::NotSymmetric => write!(f, "CG requires a symmetric operator"),
            SolverError::Breakdown { what, value } => {
                write!(f, "iteration breakdown: {what} = {value:e}")
            }
            SolverError::SingularMatrix { pivot, value } => {
                write!(f, "singular matrix: pivot {pivot} = {value:e}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(SolverError::NotSquare { rows: 3, cols: 4 }
            .to_string()
            .contains("3x4"));
        assert!(SolverError::Breakdown {
            what: "p.Ap",
            value: 0.0
        }
        .to_string()
        .contains("p.Ap"));
        assert!(SolverError::SingularMatrix {
            pivot: 2,
            value: 1e-300
        }
        .to_string()
        .contains("pivot 2"));
    }
}
