//! Solver error type.

use std::fmt;

/// Errors from solver setup or numerical breakdown.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The operator is not square.
    NotSquare { rows: usize, cols: usize },
    /// Right-hand side length does not match the operator.
    DimensionMismatch { expected: usize, got: usize },
    /// A required property fails (e.g. CG on a non-symmetric matrix).
    NotSymmetric,
    /// Division by a (near-)zero inner product: the iteration broke down
    /// (e.g. `p·Ap ≈ 0` in CG on an indefinite system, `rho ≈ 0` in
    /// BiCG/CGS).
    Breakdown { what: &'static str, value: f64 },
    /// A matrix factorisation failed (singular pivot in LU, negative
    /// pivot in Cholesky).
    SingularMatrix { pivot: usize, value: f64 },
    /// A non-finite value (NaN or infinity) appeared in the recurrence —
    /// overflow, or injected corruption that slipped past recovery.
    NonFinite { what: &'static str, value: f64 },
    /// The residual failed to drop by the required factor over a
    /// trailing window of iterations (see
    /// `StopCriterion::Stagnation`).
    Stagnation {
        iterations: usize,
        window: usize,
        residual_norm: f64,
    },
    /// Checkpoint/rollback recovery gave up: corruption kept being
    /// detected after the maximum number of rollbacks.
    RecoveryExhausted {
        rollbacks: usize,
        residual_norm: f64,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NotSquare { rows, cols } => {
                write!(f, "operator must be square, got {rows}x{cols}")
            }
            SolverError::DimensionMismatch { expected, got } => {
                write!(f, "rhs has length {got}, operator expects {expected}")
            }
            SolverError::NotSymmetric => write!(f, "CG requires a symmetric operator"),
            SolverError::Breakdown { what, value } => {
                write!(f, "iteration breakdown: {what} = {value:e}")
            }
            SolverError::SingularMatrix { pivot, value } => {
                write!(f, "singular matrix: pivot {pivot} = {value:e}")
            }
            SolverError::NonFinite { what, value } => {
                write!(f, "non-finite value in iteration: {what} = {value}")
            }
            SolverError::Stagnation {
                iterations,
                window,
                residual_norm,
            } => write!(
                f,
                "residual stagnated at {residual_norm:e} over a window of \
                 {window} iterations (after {iterations} iterations)"
            ),
            SolverError::RecoveryExhausted {
                rollbacks,
                residual_norm,
            } => write!(
                f,
                "recovery exhausted after {rollbacks} rollbacks \
                 (residual {residual_norm:e})"
            ),
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(SolverError::NotSquare { rows: 3, cols: 4 }
            .to_string()
            .contains("3x4"));
        assert!(SolverError::Breakdown {
            what: "p.Ap",
            value: 0.0
        }
        .to_string()
        .contains("p.Ap"));
        assert!(SolverError::SingularMatrix {
            pivot: 2,
            value: 1e-300
        }
        .to_string()
        .contains("pivot 2"));
        assert!(SolverError::NonFinite {
            what: "residual norm",
            value: f64::NAN
        }
        .to_string()
        .contains("residual norm"));
        assert!(SolverError::Stagnation {
            iterations: 40,
            window: 20,
            residual_norm: 1e-3
        }
        .to_string()
        .contains("window of 20"));
        assert!(SolverError::RecoveryExhausted {
            rollbacks: 9,
            residual_norm: 1.0
        }
        .to_string()
        .contains("9 rollbacks"));
    }
}
