//! Residual-history recording — the convergence *shapes* behind the
//! paper's Section 2.1 judgements ("irregular rates of convergence" for
//! CGS, monotone energy-norm decrease for CG on SPD systems).

use crate::cg::{dot, norm2};
use crate::error::SolverError;
use crate::operator::SerialOperator;

/// Which algorithm to trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Cg,
    Cgs,
    BiCgStab,
}

impl Method {
    pub fn name(&self) -> &'static str {
        match self {
            Method::Cg => "CG",
            Method::Cgs => "CGS",
            Method::BiCgStab => "BiCGSTAB",
        }
    }
}

/// Run `method` for up to `iters` iterations (no early exit) and return
/// `||r_k|| / ||b||` after each iteration, index 0 being the initial
/// residual. Breakdown truncates the trace (the values so far are
/// returned, with a final `f64::INFINITY` marker for divergence).
pub fn residual_history<A: SerialOperator + ?Sized>(
    method: Method,
    a: &A,
    b: &[f64],
    iters: usize,
) -> Result<Vec<f64>, SolverError> {
    let n = a.dim();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    let b_norm = norm2(b).max(f64::MIN_POSITIVE);
    let mut hist = vec![1.0];
    match method {
        Method::Cg => {
            let mut x = vec![0.0; n];
            let mut r = b.to_vec();
            let mut p = b.to_vec();
            let mut rho = dot(&r, &r);
            for _ in 0..iters {
                let q = a.apply(&p);
                let pq = dot(&p, &q);
                if pq.abs() < f64::MIN_POSITIVE * 1e16 {
                    hist.push(f64::INFINITY);
                    break;
                }
                let alpha = rho / pq;
                for i in 0..n {
                    x[i] += alpha * p[i];
                    r[i] -= alpha * q[i];
                }
                let rho_new = dot(&r, &r);
                hist.push(rho_new.sqrt() / b_norm);
                if rho.abs() < f64::MIN_POSITIVE * 1e16 {
                    break;
                }
                let beta = rho_new / rho;
                rho = rho_new;
                for i in 0..n {
                    p[i] = r[i] + beta * p[i];
                }
            }
        }
        Method::Cgs => {
            let mut x = vec![0.0; n];
            let mut r = b.to_vec();
            let r_hat = b.to_vec();
            let mut p = vec![0.0; n];
            let mut u = vec![0.0; n];
            let mut q = vec![0.0; n];
            let mut rho = 1.0;
            let mut first = true;
            for _ in 0..iters {
                let rho_new = dot(&r_hat, &r);
                if rho_new.abs() < f64::MIN_POSITIVE * 1e16 {
                    hist.push(f64::INFINITY);
                    break;
                }
                if first {
                    u.clone_from(&r);
                    p.clone_from(&u);
                    first = false;
                } else {
                    let beta = rho_new / rho;
                    for i in 0..n {
                        u[i] = r[i] + beta * q[i];
                        p[i] = u[i] + beta * (q[i] + beta * p[i]);
                    }
                }
                rho = rho_new;
                let v = a.apply(&p);
                let sigma = dot(&r_hat, &v);
                if sigma.abs() < f64::MIN_POSITIVE * 1e16 {
                    hist.push(f64::INFINITY);
                    break;
                }
                let alpha = rho / sigma;
                for i in 0..n {
                    q[i] = u[i] - alpha * v[i];
                }
                let uq: Vec<f64> = (0..n).map(|i| u[i] + q[i]).collect();
                let auq = a.apply(&uq);
                for i in 0..n {
                    x[i] += alpha * uq[i];
                    r[i] -= alpha * auq[i];
                }
                let rn = norm2(&r) / b_norm;
                hist.push(rn);
                if !rn.is_finite() {
                    break;
                }
            }
        }
        Method::BiCgStab => {
            let mut x = vec![0.0; n];
            let mut r = b.to_vec();
            let r_hat = b.to_vec();
            let mut p = r.clone();
            let mut rho = dot(&r_hat, &r);
            for _ in 0..iters {
                if rho.abs() < f64::MIN_POSITIVE * 1e16 {
                    hist.push(f64::INFINITY);
                    break;
                }
                let v = a.apply(&p);
                let rv = dot(&r_hat, &v);
                if rv.abs() < f64::MIN_POSITIVE * 1e16 {
                    hist.push(f64::INFINITY);
                    break;
                }
                let alpha = rho / rv;
                let s: Vec<f64> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
                let t = a.apply(&s);
                let tt = dot(&t, &t);
                if tt.abs() < f64::MIN_POSITIVE * 1e16 {
                    // Half-step exact solve.
                    for i in 0..n {
                        x[i] += alpha * p[i];
                    }
                    hist.push(norm2(&s) / b_norm);
                    break;
                }
                let omega = dot(&t, &s) / tt;
                for i in 0..n {
                    x[i] += alpha * p[i] + omega * s[i];
                    r[i] = s[i] - omega * t[i];
                }
                hist.push(norm2(&r) / b_norm);
                let rho_new = dot(&r_hat, &r);
                let beta = (rho_new / rho) * (alpha / omega);
                rho = rho_new;
                for i in 0..n {
                    p[i] = r[i] + beta * (p[i] - omega * v[i]);
                }
            }
        }
    }
    Ok(hist)
}

/// Quantify "irregular rate of convergence": the number of iterations
/// whose residual *increased* over the previous one, divided by the
/// trace length.
pub fn nonmonotonicity(history: &[f64]) -> f64 {
    if history.len() < 2 {
        return 0.0;
    }
    let ups = history
        .windows(2)
        .filter(|w| w[1] > w[0] && w[1].is_finite())
        .count();
    ups as f64 / (history.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::{gen, CooMatrix, CsrMatrix};

    #[test]
    fn cg_history_is_recorded_and_converges() {
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let h = residual_history(Method::Cg, &a, &b, 200).unwrap();
        assert_eq!(h[0], 1.0);
        assert!(h.last().unwrap() < &1e-10);
        assert!(h.len() > 10);
    }

    #[test]
    fn cgs_is_less_monotone_than_cg_on_tough_systems() {
        // The §2.1 "irregular rates of convergence" claim, quantified.
        let n = 60;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.4).unwrap();
                coo.push(i + 1, i, -0.6).unwrap();
            }
            if i + 4 < n {
                coo.push(i, i + 4, 0.5).unwrap();
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let h_cgs = residual_history(Method::Cgs, &a, &b, 60).unwrap();
        let h_bs = residual_history(Method::BiCgStab, &a, &b, 60).unwrap();
        let rough_cgs = nonmonotonicity(&h_cgs);
        let rough_bs = nonmonotonicity(&h_bs);
        // CGS must show residual growth somewhere (irregularity), and be
        // at least as rough as its stabilised variant.
        assert!(rough_cgs > 0.0, "CGS history unexpectedly monotone");
        assert!(
            rough_cgs >= rough_bs,
            "CGS {rough_cgs} should be rougher than BiCGSTAB {rough_bs}"
        );
    }

    #[test]
    fn nonmonotonicity_metric() {
        assert_eq!(nonmonotonicity(&[1.0, 0.5, 0.25]), 0.0);
        assert_eq!(nonmonotonicity(&[1.0, 2.0, 0.5, 4.0]), 2.0 / 3.0);
        assert_eq!(nonmonotonicity(&[1.0]), 0.0);
    }

    #[test]
    fn history_dimension_check() {
        let a = gen::poisson_2d(3, 3);
        assert!(residual_history(Method::Cg, &a, &[1.0; 4], 5).is_err());
    }
}
