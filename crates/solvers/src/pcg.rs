//! Preconditioned Conjugate Gradient.
//!
//! Section 2.1: "A preconditioner for A can be added to any of the
//! algorithms described above and which will increase the speed of
//! convergence of the CG algorithm. Although these preconditioned
//! conjugate gradient algorithms requires a matrix inverse, and a
//! transpose, practical implementations is formulated such that it works
//! with the original matrix A but maintains the same convergence rate as
//! that for the preconditioned system."
//!
//! Two classic preconditioners are provided, both of which keep the CG
//! communication structure intact (Jacobi is element-wise hence
//! communication-free under alignment; SSOR sweeps are local per
//! processor in the row-block layout used here).

use crate::cg::{check_breakdown, dot, norm2};
use crate::error::SolverError;
use crate::observer::{IterObserver, IterSample, NullObserver};
use crate::operator::SerialOperator;
use crate::stopping::{SolveStats, StopCriterion};
use hpf_sparse::CsrMatrix;

/// A preconditioner `M ≈ A`: applies `z = M⁻¹ r`.
pub trait Preconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64>;
    fn name(&self) -> &'static str;
}

/// Identity preconditioner (plain CG).
pub struct IdentityPrec;

impl Preconditioner for IdentityPrec {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.to_vec()
    }
    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Jacobi (diagonal) preconditioner: `M = diag(A)`. Element-wise, so in
/// HPF it is one aligned parallel array assignment — zero communication.
pub struct JacobiPrec {
    inv_diag: Vec<f64>,
}

impl JacobiPrec {
    pub fn new<A: SerialOperator + ?Sized>(a: &A) -> Result<Self, SolverError> {
        let diag = a.diagonal();
        if let Some((i, &d)) = diag
            .iter()
            .enumerate()
            .find(|(_, &d)| d.abs() < f64::MIN_POSITIVE * 1e16)
        {
            return Err(SolverError::SingularMatrix { pivot: i, value: d });
        }
        Ok(JacobiPrec {
            inv_diag: diag.iter().map(|d| 1.0 / d).collect(),
        })
    }
}

impl Preconditioner for JacobiPrec {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.iter()
            .zip(self.inv_diag.iter())
            .map(|(x, d)| x * d)
            .collect()
    }
    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Symmetric SOR preconditioner
/// `M = (D/ω + L) (D/ω)⁻¹ (D/ω + Lᵀ) · ω/(2-ω)` for symmetric `A = L + D + Lᵀ`.
/// Applied via a forward then a backward triangular sweep.
pub struct SsorPrec {
    a: CsrMatrix,
    diag: Vec<f64>,
    omega: f64,
}

impl SsorPrec {
    pub fn new(a: &CsrMatrix, omega: f64) -> Result<Self, SolverError> {
        if !a.is_square() {
            return Err(SolverError::NotSquare {
                rows: a.n_rows(),
                cols: a.n_cols(),
            });
        }
        assert!(omega > 0.0 && omega < 2.0, "SSOR needs 0 < omega < 2");
        let diag = a.diagonal();
        if let Some((i, &d)) = diag
            .iter()
            .enumerate()
            .find(|(_, &d)| d.abs() < f64::MIN_POSITIVE * 1e16)
        {
            return Err(SolverError::SingularMatrix { pivot: i, value: d });
        }
        Ok(SsorPrec {
            a: a.clone(),
            diag,
            omega,
        })
    }
}

impl Preconditioner for SsorPrec {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        let n = r.len();
        let w = self.omega;
        // Forward sweep: (D/w + L) y = r.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = r[i];
            for (j, v) in self.a.row(i) {
                if j < i {
                    s -= v * y[j];
                }
            }
            y[i] = s * w / self.diag[i];
        }
        // Scale: y <- (D/w) y  => y_i * d_i / w.
        for i in 0..n {
            y[i] *= self.diag[i] / w;
        }
        // Backward sweep: (D/w + U) z = y.
        let mut z = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, v) in self.a.row(i) {
                if j > i {
                    s -= v * z[j];
                }
            }
            z[i] = s * w / self.diag[i];
        }
        // Constant factor w/(2-w) only scales M; CG is invariant to it,
        // but keep M consistent with the textbook definition.
        let scale = (2.0 - w) / w;
        z.iter_mut().for_each(|v| *v *= scale);
        z
    }
    fn name(&self) -> &'static str {
        "ssor"
    }
}

/// Preconditioned CG.
pub fn pcg<A: SerialOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(Vec<f64>, SolveStats), SolverError> {
    pcg_with_observer(a, m, b, stop, max_iters, &mut NullObserver)
}

/// [`pcg`] with a per-iteration telemetry hook. Serial, so samples carry
/// no machine flops/comm/sim-time.
pub fn pcg_with_observer<A: SerialOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    obs: &mut dyn IterObserver,
) -> Result<(Vec<f64>, SolveStats), SolverError> {
    let n = a.dim();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    let mut stats = SolveStats::new();
    let b_norm = norm2(b);
    stats.dots += 1;

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = m.apply(&r);
    let mut p = z.clone();
    let mut rho = dot(&r, &z);
    stats.dots += 1;
    stats.residual_norm = norm2(&r);
    if stop.satisfied(stats.residual_norm, b_norm) {
        stats.converged = true;
        return Ok((x, stats));
    }

    for _ in 0..max_iters {
        let q = a.apply(&p);
        stats.matvecs += 1;
        let pq = dot(&p, &q);
        stats.dots += 1;
        check_breakdown("p.Ap", pq)?;
        let alpha = rho / pq;
        for ((xi, &pi), (ri, &qi)) in x.iter_mut().zip(p.iter()).zip(r.iter_mut().zip(q.iter())) {
            *xi += alpha * pi;
            *ri -= alpha * qi;
        }
        stats.axpys += 2;
        stats.iterations += 1;
        stats.residual_norm = norm2(&r);
        stats.dots += 1;
        let (it, rn) = (stats.iterations, stats.residual_norm);
        let sample = move |beta: f64| IterSample {
            iteration: it,
            residual_norm: rn,
            alpha,
            beta,
            flops: 0,
            comm_words: 0,
            sim_time: 0.0,
            predicted_time: 0.0,
            rollbacks: 0,
        };
        if stop.satisfied(stats.residual_norm, b_norm) {
            // The preconditioned beta is never computed on the converging
            // iteration (it would cost an extra M⁻¹ apply).
            obs.on_iteration(&sample(f64::NAN));
            stats.converged = true;
            return Ok((x, stats));
        }
        z = m.apply(&r);
        let rho_new = dot(&r, &z);
        stats.dots += 1;
        check_breakdown("rho", rho)?;
        let beta = rho_new / rho;
        obs.on_iteration(&sample(beta));
        rho = rho_new;
        for (pi, &zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
        stats.axpys += 1;
    }
    Ok((x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::gen;

    fn relative_error(x: &[f64], y: &[f64]) -> f64 {
        let num: f64 = x
            .iter()
            .zip(y.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        num / norm2(y).max(1e-300)
    }

    #[test]
    fn identity_pcg_equals_cg() {
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (x1, s1) = crate::cg::cg(&a, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        let (x2, s2) = pcg(
            &a,
            &IdentityPrec,
            &b,
            StopCriterion::RelativeResidual(1e-10),
            500,
        )
        .unwrap();
        assert!(s2.converged);
        assert_eq!(s1.iterations, s2.iterations);
        assert!(relative_error(&x1, &x2) < 1e-9);
    }

    #[test]
    fn jacobi_helps_on_badly_scaled_system() {
        // Scale rows/cols of a Poisson matrix wildly: plain CG crawls,
        // Jacobi PCG fixes the scaling immediately.
        let base = gen::poisson_2d(8, 8);
        let n = base.n_rows();
        let mut coo = hpf_sparse::CooMatrix::new(n, n);
        let scale = |i: usize| 10f64.powi((i % 5) as i32 - 2);
        for i in 0..n {
            for (j, v) in base.row(i) {
                coo.push(i, j, v * scale(i) * scale(j)).unwrap();
            }
        }
        let a = hpf_sparse::CsrMatrix::from_coo(&coo);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let stop = StopCriterion::RelativeResidual(1e-8);
        let (_, s_plain) = crate::cg::cg(&a, &b, stop, 5000).unwrap();
        let m = JacobiPrec::new(&a).unwrap();
        let (x, s_pcg) = pcg(&a, &m, &b, stop, 5000).unwrap();
        assert!(s_pcg.converged);
        assert!(
            s_pcg.iterations < s_plain.iterations,
            "jacobi {} vs plain {}",
            s_pcg.iterations,
            s_plain.iterations
        );
        let res = {
            let ax = a.matvec(&x).unwrap();
            let d: f64 = ax
                .iter()
                .zip(b.iter())
                .map(|(u, v)| (u - v) * (u - v))
                .sum::<f64>()
                .sqrt();
            d / norm2(&b)
        };
        assert!(res < 1e-7);
    }

    #[test]
    fn ssor_reduces_iterations_on_poisson() {
        let a = gen::poisson_2d(16, 16);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let stop = StopCriterion::RelativeResidual(1e-8);
        let (_, s_plain) = crate::cg::cg(&a, &b, stop, 5000).unwrap();
        let m = SsorPrec::new(&a, 1.2).unwrap();
        let (_, s_ssor) = pcg(&a, &m, &b, stop, 5000).unwrap();
        assert!(s_ssor.converged);
        assert!(
            s_ssor.iterations < s_plain.iterations,
            "ssor {} vs plain {}",
            s_ssor.iterations,
            s_plain.iterations
        );
    }

    #[test]
    fn jacobi_rejects_zero_diagonal() {
        let coo =
            hpf_sparse::CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let a = hpf_sparse::CsrMatrix::from_coo(&coo);
        assert!(matches!(
            JacobiPrec::new(&a),
            Err(SolverError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn ssor_rejects_bad_omega() {
        let a = gen::poisson_2d(3, 3);
        let result = std::panic::catch_unwind(|| SsorPrec::new(&a, 2.5));
        assert!(result.is_err());
    }

    #[test]
    fn preconditioner_names() {
        let a = gen::poisson_2d(3, 3);
        assert_eq!(IdentityPrec.name(), "identity");
        assert_eq!(JacobiPrec::new(&a).unwrap().name(), "jacobi");
        assert_eq!(SsorPrec::new(&a, 1.0).unwrap().name(), "ssor");
    }
}
