//! The Conjugate Gradient solver — serial and distributed.
//!
//! The iteration structure follows the paper's Section 2 listing and the
//! Figure 2 HPF code verbatim:
//!
//! ```fortran
//! DO k=1,Niter
//!   rho0 = rho
//!   rho  = DOT_PRODUCT(r, r)        ! sdot
//!   beta = rho / rho0
//!   p = beta * p + r                ! saypx
//!   q = 0.0                         ! sparse mat-vect multiply
//!   FORALL( j=1:n ) ...
//!   alpha = rho / DOT_PRODUCT(p, q)
//!   x = x + alpha * p               ! saxpy
//!   r = r - alpha * q               ! saxpy
//!   IF ( stop_criterion ) EXIT
//! END DO
//! ```
//!
//! The distributed version runs the same recurrence over
//! [`DistVector`]s and any [`DistOperator`], so every communication the
//! chosen data layout induces is charged to the simulated machine.

use crate::error::SolverError;
use crate::observer::{IterObserver, IterSample, MachineMark, NullObserver};
use crate::operator::{DistOperator, SerialOperator};
use crate::stopping::{ResidualMonitor, SolveStats, StopCriterion};
use hpf_core::DistVector;
use hpf_machine::{span, Machine};

/// Guard against division by a numerically dead inner product.
pub(crate) fn check_breakdown(what: &'static str, v: f64) -> Result<(), SolverError> {
    if !v.is_finite() || v.abs() < f64::MIN_POSITIVE * 1e16 {
        Err(SolverError::Breakdown { what, value: v })
    } else {
        Ok(())
    }
}

pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

pub(crate) fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Serial (non-preconditioned) CG for SPD systems.
///
/// ```
/// use hpf_solvers::{cg, StopCriterion};
/// use hpf_sparse::gen;
///
/// let a = gen::poisson_2d(8, 8);
/// let (x_true, b) = gen::rhs_for_known_solution(&a);
/// let (x, stats) = cg(&a, &b, StopCriterion::RelativeResidual(1e-10), 1000).unwrap();
/// assert!(stats.converged);
/// assert!(x.iter().zip(&x_true).all(|(u, v)| (u - v).abs() < 1e-6));
/// ```
pub fn cg<A: SerialOperator + ?Sized>(
    a: &A,
    b: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(Vec<f64>, SolveStats), SolverError> {
    cg_with_observer(a, b, stop, max_iters, &mut NullObserver)
}

/// [`cg`] with a per-iteration telemetry hook (see
/// [`crate::observer::IterObserver`]). Serial solves have no machine, so
/// samples carry zero flops/comm/sim-time.
pub fn cg_with_observer<A: SerialOperator + ?Sized>(
    a: &A,
    b: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    obs: &mut dyn IterObserver,
) -> Result<(Vec<f64>, SolveStats), SolverError> {
    let n = a.dim();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    let mut stats = SolveStats::new();
    let b_norm = norm2(b);
    stats.dots += 1;
    let mut monitor = ResidualMonitor::new(stop);

    // Initial guess x = 0, so r = p = b (the paper's initialisation).
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = b.to_vec();
    let mut rho = dot(&r, &r);
    stats.dots += 1;
    stats.residual_norm = rho.sqrt();
    if monitor.observe(stats.residual_norm, b_norm)? {
        stats.converged = true;
        return Ok((x, stats));
    }

    for _k in 0..max_iters {
        let q = a.apply(&p);
        stats.matvecs += 1;
        let pq = dot(&p, &q);
        stats.dots += 1;
        check_breakdown("p.Ap", pq)?;
        let alpha = rho / pq;
        for ((xi, &pi), (ri, &qi)) in x.iter_mut().zip(p.iter()).zip(r.iter_mut().zip(q.iter())) {
            *xi += alpha * pi;
            *ri -= alpha * qi;
        }
        stats.axpys += 2;
        let rho_new = dot(&r, &r);
        stats.dots += 1;
        stats.iterations += 1;
        stats.residual_norm = rho_new.sqrt();
        // beta reported is the one the *next* direction update will use
        // (rho_new / rho), the scalar the paper's saypx line consumes.
        obs.on_iteration(&IterSample {
            iteration: stats.iterations,
            residual_norm: stats.residual_norm,
            alpha,
            beta: rho_new / rho,
            flops: 0,
            comm_words: 0,
            sim_time: 0.0,
            predicted_time: 0.0,
            rollbacks: 0,
        });
        if monitor.observe(stats.residual_norm, b_norm)? {
            stats.converged = true;
            return Ok((x, stats));
        }
        check_breakdown("rho", rho)?;
        let beta = rho_new / rho;
        rho = rho_new;
        for (pi, &ri) in p.iter_mut().zip(r.iter()) {
            *pi = ri + beta * *pi;
        }
        stats.axpys += 1;
    }
    Ok((x, stats))
}

/// Distributed CG (the full Figure 2 program) over any [`DistOperator`].
/// Returns the distributed solution plus solve statistics; all
/// communication is charged to `machine`.
pub fn cg_distributed<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(DistVector, SolveStats), SolverError> {
    cg_distributed_with_observer(machine, a, b_global, stop, max_iters, &mut NullObserver)
}

/// [`cg_distributed`] with per-iteration telemetry. Machine events are
/// span-tagged (`solve/iter=k/matvec`, `.../dot`, `.../axpy`) and each
/// [`IterSample`] carries the flop/word delta the iteration charged.
pub fn cg_distributed_with_observer<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats), SolverError> {
    let _solve_span = span::enter("solve");
    let n = a.dim();
    if b_global.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b_global.len(),
        });
    }
    let desc = a.descriptor();
    let mut stats = SolveStats::new();
    let mut monitor = ResidualMonitor::new(stop);

    // !HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
    let b = DistVector::from_global(desc.clone(), b_global);
    let mut x = DistVector::zeros(desc.clone());
    let mut r = b.clone();
    let mut p = b.clone();

    let b_norm = {
        let _s = span::enter("setup");
        b.dot(machine, &b).sqrt()
    };
    stats.dots += 1;
    let mut rho = {
        let _s = span::enter("setup");
        r.dot(machine, &r)
    };
    stats.dots += 1;
    stats.residual_norm = rho.sqrt();
    if monitor.observe(stats.residual_norm, b_norm)? {
        stats.converged = true;
        return Ok((x, stats));
    }

    let mut mark = MachineMark::take(machine);
    for k in 0..max_iters {
        let _iter_span = span::enter(format!("iter={k}"));
        let q = {
            let _s = span::enter("matvec");
            a.apply(machine, &p)
        };
        stats.matvecs += 1;
        let pq = {
            let _s = span::enter("dot");
            p.dot(machine, &q)
        };
        stats.dots += 1;
        check_breakdown("p.Ap", pq)?;
        let alpha = rho / pq;
        {
            let _s = span::enter("axpy");
            x.axpy(machine, alpha, &p); // x = x + alpha p
            r.axpy(machine, -alpha, &q); // r = r - alpha q
        }
        stats.axpys += 2;
        let rho_new = {
            let _s = span::enter("dot");
            r.dot(machine, &r)
        };
        stats.dots += 1;
        stats.iterations += 1;
        stats.residual_norm = rho_new.sqrt();
        let (d_flops, d_words) = mark.delta(machine);
        obs.on_iteration(&IterSample {
            iteration: stats.iterations,
            residual_norm: stats.residual_norm,
            alpha,
            beta: rho_new / rho,
            flops: d_flops,
            comm_words: d_words,
            sim_time: machine.elapsed(),
            predicted_time: mark.predicted(),
            rollbacks: 0,
        });
        if monitor.observe(stats.residual_norm, b_norm)? {
            stats.converged = true;
            return Ok((x, stats));
        }
        check_breakdown("rho", rho)?;
        let beta = rho_new / rho;
        rho = rho_new;
        {
            let _s = span::enter("axpy");
            p.aypx(machine, beta, &r); // p = beta p + r  (saypx)
        }
        stats.axpys += 1;
    }
    Ok((x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_core::{DataArrayLayout, RowwiseCsr};
    use hpf_machine::{CostModel, EventKind, Topology};
    use hpf_sparse::gen;

    fn relative_error(x: &[f64], y: &[f64]) -> f64 {
        let num: f64 = x
            .iter()
            .zip(y.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den = norm2(y).max(1e-300);
        num / den
    }

    #[test]
    fn cg_solves_poisson_2d() {
        let a = gen::poisson_2d(10, 10);
        let (x_true, b) = gen::rhs_for_known_solution(&a);
        let (x, stats) = cg(&a, &b, StopCriterion::RelativeResidual(1e-10), 1000).unwrap();
        assert!(stats.converged);
        assert!(relative_error(&x, &x_true) < 1e-8);
        // CG structure: one matvec + ~2 dots per iteration.
        assert_eq!(stats.matvecs, stats.iterations);
        assert_eq!(stats.transpose_matvecs, 0);
    }

    #[test]
    fn cg_solves_banded_and_random() {
        for a in [gen::banded_spd(80, 4, 1), gen::random_spd(80, 5, 2)] {
            let (x_true, b) = gen::rhs_for_known_solution(&a);
            let (x, stats) = cg(&a, &b, StopCriterion::RelativeResidual(1e-10), 2000).unwrap();
            assert!(stats.converged, "CG must converge on SPD");
            assert!(relative_error(&x, &x_true) < 1e-7);
        }
    }

    #[test]
    fn cg_dimension_check() {
        let a = gen::poisson_2d(3, 3);
        let err = cg(&a, &[1.0; 5], StopCriterion::RelativeResidual(1e-8), 10).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn cg_zero_rhs_converges_immediately() {
        let a = gen::poisson_2d(4, 4);
        let (x, stats) = cg(&a, &[0.0; 16], StopCriterion::RelativeResidual(1e-8), 10).unwrap();
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cg_reports_nonconvergence() {
        let a = gen::poisson_2d(12, 12);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (_, stats) = cg(&a, &b, StopCriterion::RelativeResidual(1e-14), 3).unwrap();
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 3);
    }

    #[test]
    fn cg_converges_in_ne_iterations_distinct_eigenvalues() {
        // Section 2: "The CG algorithm will generally converge ... in at
        // most n_e iterations, where n_e is the number of distinct
        // eigenvalues."
        for (eigs, n) in [
            (vec![1.0, 10.0], 16),
            (vec![1.0, 4.0, 9.0], 18),
            (vec![2.0, 3.0, 5.0, 7.0, 11.0], 20),
        ] {
            let a = gen::distinct_eigenvalues(n, &eigs, 4 * n, 7);
            let (_, b) = gen::rhs_for_known_solution(&a);
            let (_, stats) = cg(&a, &b, StopCriterion::RelativeResidual(1e-9), 200).unwrap();
            assert!(stats.converged);
            assert!(
                stats.iterations <= eigs.len(),
                "{} eigenvalues but {} iterations",
                eigs.len(),
                stats.iterations
            );
        }
    }

    #[test]
    fn distributed_cg_matches_serial() {
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (x_serial, s_serial) = cg(&a, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();

        let np = 4;
        let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        let (x_dist, s_dist) =
            cg_distributed(&mut m, &op, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        assert!(s_dist.converged);
        assert_eq!(s_dist.iterations, s_serial.iterations);
        assert!(relative_error(&x_dist.to_global(), &x_serial) < 1e-9);
        // The layout induced real communication: allgathers (matvec
        // broadcast) and allreduces (dot merges).
        assert!(m.trace().count(EventKind::AllGather) >= s_dist.matvecs);
        assert!(m.trace().count(EventKind::AllReduce) >= s_dist.dots);
    }

    #[test]
    fn distributed_cg_per_iteration_comm_structure() {
        // Figure 2's loop: per iteration 1 allgather + 2 dot merges.
        let a = gen::poisson_2d(6, 6);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let np = 4;
        let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        let (_, stats) =
            cg_distributed(&mut m, &op, &b, StopCriterion::RelativeResidual(1e-10), 500).unwrap();
        let gathers = m.trace().count(EventKind::AllGather);
        let reduces = m.trace().count(EventKind::AllReduce);
        assert_eq!(gathers, stats.iterations); // one per matvec
        assert_eq!(reduces, stats.dots); // one merge per DOT_PRODUCT
    }

    #[test]
    fn distributed_cg_events_carry_span_paths() {
        let a = gen::poisson_2d(6, 6);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let np = 4;
        let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        let mut obs = crate::observer::RecordingObserver::new();
        let (_, stats) = cg_distributed_with_observer(
            &mut m,
            &op,
            &b,
            StopCriterion::RelativeResidual(1e-10),
            500,
            &mut obs,
        )
        .unwrap();
        assert!(stats.converged);
        // Every event recorded inside the loop carries a
        // solve/iter=k/<phase> path; the setup dots carry solve/setup.
        let evs = m.trace().events();
        assert!(evs.iter().all(|e| e.span.starts_with("solve")));
        assert!(evs.iter().any(|e| e.span == "solve/iter=0/matvec"));
        assert!(evs.iter().any(|e| e.span == "solve/iter=0/dot"));
        assert!(evs.iter().any(|e| e.span == "solve/setup"));
        // One telemetry sample per iteration, residuals decreasing
        // overall and alpha/beta finite.
        assert_eq!(obs.samples.len(), stats.iterations);
        assert!(obs.samples.iter().all(|s| s.alpha.is_finite()));
        assert!(obs.samples.iter().all(|s| s.beta.is_finite()));
        assert!(obs.samples.iter().all(|s| s.comm_words > 0));
        assert!(obs.samples.last().unwrap().residual_norm < obs.samples[0].residual_norm);
        // sim_time is cumulative and nondecreasing.
        assert!(obs
            .samples
            .windows(2)
            .all(|w| w[1].sim_time >= w[0].sim_time));
        // The span stack unwound completely.
        assert_eq!(hpf_machine::span::depth(), 0);
    }

    #[test]
    fn serial_cg_observer_sees_every_iteration() {
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let mut obs = crate::observer::RecordingObserver::new();
        let (_, stats) = cg_with_observer(
            &a,
            &b,
            StopCriterion::RelativeResidual(1e-10),
            1000,
            &mut obs,
        )
        .unwrap();
        assert!(stats.converged);
        assert_eq!(obs.samples.len(), stats.iterations);
        assert_eq!(obs.samples.last().unwrap().iteration, stats.iterations);
        assert!((obs.samples.last().unwrap().residual_norm - stats.residual_norm).abs() < 1e-300);
    }

    #[test]
    fn breakdown_detected_on_indefinite_system() {
        // An indefinite diagonal matrix makes p.Ap hit zero quickly for a
        // crafted rhs; CG must fail loudly, not loop forever.
        use hpf_sparse::{CooMatrix, CsrMatrix};
        let coo = CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, -1.0)]).unwrap();
        let a = CsrMatrix::from_coo(&coo);
        let b = vec![1.0, 1.0];
        let r = cg(&a, &b, StopCriterion::RelativeResidual(1e-12), 50);
        match r {
            Err(SolverError::Breakdown { .. }) => {}
            Ok((_, stats)) => assert!(!stats.converged || stats.residual_norm < 1e-6),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
