//! Per-iteration solver telemetry hooks.
//!
//! Every iterative solver in this crate can report one [`IterSample`] per
//! iteration through an [`IterObserver`] — residual norm, the CG scalars
//! alpha/beta, and (for distributed solves) the machine-charged flops,
//! words and simulated time attributable to that iteration. The protected
//! solvers additionally report rollback and restart events. The hook is
//! how the observability layer (`hpf-obs`) builds convergence histories
//! without the solvers knowing anything about exporters or file formats.
//!
//! Observers are deliberately `&mut dyn` trait objects: the solver inner
//! loops stay monomorphised over the operator only, and passing
//! [`NullObserver`] keeps the un-observed entry points zero-cost in
//! practice (one virtual call per iteration on a no-op body).

/// Telemetry for one solver iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterSample {
    /// 1-based iteration number (matches `SolveStats::iterations` after
    /// the iteration completes).
    pub iteration: usize,
    /// Residual norm after this iteration (`||r||_2`, or the GMRES
    /// residual estimate).
    pub residual_norm: f64,
    /// Step length alpha for this iteration; `NaN` where the method has
    /// no single alpha (e.g. GMRES).
    pub alpha: f64,
    /// Direction-update scalar beta; `NaN` where not applicable.
    pub beta: f64,
    /// Flops charged to the machine *during* this iteration (0 for
    /// serial solves, which do not run on a machine).
    pub flops: u64,
    /// Words sent into the network during this iteration (0 for serial
    /// solves).
    pub comm_words: u64,
    /// Simulated machine time at the *end* of this iteration —
    /// cumulative, so deltas between samples give per-iteration cost.
    /// 0 for serial solves.
    pub sim_time: f64,
    /// What the analytic cost model *predicts* the machine time should
    /// be at the end of this iteration (cumulative, like
    /// [`IterSample::sim_time`]; events with no closed form — faults,
    /// redistributes — count at their measured time, so at zero drift
    /// this equals `sim_time`). 0 for serial solves and when tracing is
    /// disabled on the machine.
    pub predicted_time: f64,
    /// Rollbacks performed so far in a protected solve (0 elsewhere).
    pub rollbacks: usize,
}

impl IterSample {
    /// Network traffic for this iteration in bytes (f64 words).
    pub fn comm_bytes(&self) -> u64 {
        self.comm_words * 8
    }
}

/// Observer of solver progress. All methods have no-op defaults except
/// [`IterObserver::on_iteration`]; implement the fault-path hooks only if
/// you care about protected solves.
pub trait IterObserver {
    /// Called once at the end of every iteration.
    fn on_iteration(&mut self, sample: &IterSample);

    /// A protected solver rolled back to a checkpoint. `iteration` is the
    /// iteration count at the moment of the rollback; `reason` is a short
    /// stable tag (`"non-finite"`, `"divergence"`, `"stagnation"`).
    fn on_rollback(&mut self, iteration: usize, reason: &str) {
        let _ = (iteration, reason);
    }

    /// A protected solver replaced the recurrence residual with the true
    /// residual `b - Ax` (restart-from-truth after repeated rollbacks).
    fn on_restart(&mut self, iteration: usize) {
        let _ = iteration;
    }

    /// An auto-repartitioning driver moved the data layout mid-solve
    /// (`REDISTRIBUTE ... USING <partitioner>`). `iteration` is the
    /// cumulative iteration count at the moment of the move.
    fn on_repartition(&mut self, iteration: usize, partitioner: &str) {
        let _ = (iteration, partitioner);
    }
}

/// The do-nothing observer used by the plain (un-observed) solver entry
/// points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl IterObserver for NullObserver {
    fn on_iteration(&mut self, _sample: &IterSample) {}
}

/// An observer that records everything — the simplest useful
/// implementation, and the one tests assert against.
#[derive(Debug, Default, Clone)]
pub struct RecordingObserver {
    pub samples: Vec<IterSample>,
    /// `(iteration, reason)` pairs, in occurrence order.
    pub rollbacks: Vec<(usize, String)>,
    /// Iterations at which a restart-from-true-residual happened.
    pub restarts: Vec<usize>,
    /// `(iteration, partitioner name)` pairs for mid-solve
    /// `REDISTRIBUTE USING` moves, in occurrence order.
    pub repartitions: Vec<(usize, String)>,
}

impl RecordingObserver {
    pub fn new() -> Self {
        Self::default()
    }

    /// Residual norms in iteration order.
    pub fn residuals(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.residual_norm).collect()
    }
}

impl IterObserver for RecordingObserver {
    fn on_iteration(&mut self, sample: &IterSample) {
        self.samples.push(*sample);
    }

    fn on_rollback(&mut self, iteration: usize, reason: &str) {
        self.rollbacks.push((iteration, reason.to_string()));
    }

    fn on_restart(&mut self, iteration: usize) {
        self.restarts.push(iteration);
    }

    fn on_repartition(&mut self, iteration: usize, partitioner: &str) {
        self.repartitions.push((iteration, partitioner.to_string()));
    }
}

/// A bounded last-N observer: the solver-side arm of the flight
/// recorder. Where [`RecordingObserver`] keeps every sample (fine for
/// tests, unbounded for a service), this ring retains only the tail of
/// the residual series — enough for a post-mortem to detect divergence
/// (non-finite residuals), stagnation (a flat tail) and corruption jumps
/// without the solve's memory footprint growing with its length.
#[derive(Debug, Clone)]
pub struct TailObserver {
    capacity: usize,
    samples: std::collections::VecDeque<IterSample>,
    rollbacks: Vec<(usize, String)>,
    restarts: Vec<usize>,
    overwritten: u64,
}

impl TailObserver {
    pub fn new(capacity: usize) -> Self {
        TailObserver {
            capacity: capacity.max(1),
            samples: std::collections::VecDeque::new(),
            rollbacks: Vec::new(),
            restarts: Vec::new(),
            overwritten: 0,
        }
    }

    /// Retained samples, oldest first.
    pub fn tail(&self) -> Vec<IterSample> {
        self.samples.iter().cloned().collect()
    }

    /// `(iteration, reason)` rollback log (bounded by the same capacity).
    pub fn rollbacks(&self) -> &[(usize, String)] {
        &self.rollbacks
    }

    /// Iterations at which a restart-from-true-residual happened.
    pub fn restarts(&self) -> &[usize] {
        &self.restarts
    }

    /// Samples recorded but pushed out of the bounded ring.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    pub fn last(&self) -> Option<&IterSample> {
        self.samples.back()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty() && self.rollbacks.is_empty()
    }

    /// Reset for the next solve (keeps the capacity).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.rollbacks.clear();
        self.restarts.clear();
        self.overwritten = 0;
    }
}

impl IterObserver for TailObserver {
    fn on_iteration(&mut self, sample: &IterSample) {
        if self.samples.len() >= self.capacity {
            self.samples.pop_front();
            self.overwritten += 1;
        }
        self.samples.push_back(*sample);
    }

    fn on_rollback(&mut self, iteration: usize, reason: &str) {
        if self.rollbacks.len() < self.capacity {
            self.rollbacks.push((iteration, reason.to_string()));
        }
    }

    fn on_restart(&mut self, iteration: usize) {
        if self.restarts.len() < self.capacity {
            self.restarts.push(iteration);
        }
    }
}

/// Snapshot of machine counters used to attribute per-iteration deltas.
/// Internal helper for the distributed solvers.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MachineMark {
    flops: u64,
    words: u64,
    /// Trace length at the mark — new events since it are what the cost
    /// oracle prices for [`MachineMark::predicted`].
    events: usize,
    /// Cumulative analytically predicted machine time (see
    /// [`IterSample::predicted_time`]).
    predicted: f64,
}

impl MachineMark {
    pub(crate) fn take(machine: &hpf_machine::Machine) -> Self {
        MachineMark {
            flops: machine.total_flops(),
            words: machine.total_words_sent(),
            events: machine.trace().len(),
            // Start the predicted clock at the machine's current elapsed
            // time, so cumulative predictions stay comparable to
            // `machine.elapsed()` even on a machine with pre-solve work.
            predicted: machine.elapsed(),
        }
    }

    /// Delta since this mark, advancing the mark to now (and pricing the
    /// events recorded in between with the machine's own cost model).
    pub(crate) fn delta(&mut self, machine: &hpf_machine::Machine) -> (u64, u64) {
        let flops = machine.total_flops();
        let words = machine.total_words_sent();
        let d = (
            flops.saturating_sub(self.flops),
            words.saturating_sub(self.words),
        );
        self.flops = flops;
        self.words = words;
        let events = machine.trace().events();
        if self.events < events.len() {
            self.predicted += hpf_machine::predict::predicted_or_measured_total(
                &events[self.events..],
                machine.topology(),
                machine.cost_model(),
            );
            self.events = events.len();
        }
        d
    }

    /// Cumulative predicted machine time up to the last `delta` call.
    pub(crate) fn predicted(&self) -> f64 {
        self.predicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_observer_accumulates() {
        let mut obs = RecordingObserver::new();
        obs.on_iteration(&IterSample {
            iteration: 1,
            residual_norm: 0.5,
            alpha: 1.0,
            beta: 0.0,
            flops: 10,
            comm_words: 4,
            sim_time: 0.1,
            predicted_time: 0.1,
            rollbacks: 0,
        });
        obs.on_rollback(1, "non-finite");
        obs.on_restart(2);
        obs.on_repartition(3, "greedy-hypergraph");
        assert_eq!(obs.samples.len(), 1);
        assert_eq!(obs.samples[0].comm_bytes(), 32);
        assert_eq!(obs.rollbacks, vec![(1, "non-finite".to_string())]);
        assert_eq!(obs.restarts, vec![2]);
        assert_eq!(obs.repartitions, vec![(3, "greedy-hypergraph".to_string())]);
        assert_eq!(obs.residuals(), vec![0.5]);
    }

    fn sample(iteration: usize, residual: f64) -> IterSample {
        IterSample {
            iteration,
            residual_norm: residual,
            alpha: 1.0,
            beta: 0.0,
            flops: 0,
            comm_words: 0,
            sim_time: 0.0,
            predicted_time: 0.0,
            rollbacks: 0,
        }
    }

    #[test]
    fn tail_observer_keeps_only_the_last_n_samples() {
        let mut obs = TailObserver::new(3);
        for i in 1..=5 {
            obs.on_iteration(&sample(i, 1.0 / i as f64));
        }
        obs.on_rollback(4, "non-finite");
        obs.on_restart(5);
        let tail = obs.tail();
        assert_eq!(
            tail.iter().map(|s| s.iteration).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(obs.overwritten(), 2);
        assert_eq!(obs.last().unwrap().iteration, 5);
        assert_eq!(obs.rollbacks(), &[(4, "non-finite".to_string())]);
        assert_eq!(obs.restarts(), &[5]);
        assert!(!obs.is_empty());
        obs.clear();
        assert!(obs.is_empty());
        assert_eq!(obs.overwritten(), 0);
    }

    #[test]
    fn null_observer_is_a_no_op() {
        let mut obs = NullObserver;
        obs.on_iteration(&IterSample {
            iteration: 1,
            residual_norm: 1.0,
            alpha: f64::NAN,
            beta: f64::NAN,
            flops: 0,
            comm_words: 0,
            sim_time: 0.0,
            predicted_time: 0.0,
            rollbacks: 0,
        });
        obs.on_rollback(0, "x");
        obs.on_restart(0);
    }
}
