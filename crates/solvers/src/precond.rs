//! Distributed preconditioner abstraction for the PCG family.
//!
//! The serial [`crate::pcg::Preconditioner`] applies `z = M⁻¹ r` to plain
//! slices; this trait is its machine-charged counterpart. An application
//! runs over [`DistVector`]s and charges the simulated machine for
//! whatever compute and communication the preconditioner's data layout
//! induces — zero words for an aligned Jacobi scaling, halo exchanges
//! and level transfers for a multigrid V-cycle (`hpf-mg`). The generic
//! entry points ([`crate::pcg_preconditioned_distributed`] and the
//! protected variants in [`crate::recovery`]) accept any implementation,
//! which is how the multigrid crate plugs into the solver family without
//! this crate knowing about grids.
//!
//! CG requires `M` to be symmetric positive definite; implementations
//! must preserve that or the outer recurrence breaks down (surfacing as
//! [`SolverError::Breakdown`] on `rho`).

use crate::error::SolverError;
use crate::operator::DistOperator;
use hpf_core::DistVector;
use hpf_machine::Machine;

/// A symmetric positive-definite preconditioner applied on the simulated
/// machine: `z = M⁻¹ r`, charging the machine for the application.
pub trait DistPreconditioner {
    /// Apply `M⁻¹` to a residual, returning `z` on the same descriptor.
    fn apply(&self, machine: &mut Machine, r: &DistVector) -> DistVector;
    /// Short name for telemetry and report rows.
    fn name(&self) -> &'static str;
}

/// Jacobi (inverse-diagonal) preconditioner: an aligned element-wise
/// multiply, zero communication — the paper's alignment discipline
/// guarantees `D⁻¹ r` never leaves the owning processor.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: DistVector,
}

impl JacobiPreconditioner {
    /// Build from an operator's diagonal, rejecting numerically singular
    /// pivots the same way the serial Jacobi PCG does.
    pub fn from_operator<A: DistOperator + ?Sized>(a: &A) -> Result<Self, SolverError> {
        let diag = a.diagonal();
        if let Some((i, &d)) = diag
            .iter()
            .enumerate()
            .find(|(_, &d)| d.abs() < f64::MIN_POSITIVE * 1e16)
        {
            return Err(SolverError::SingularMatrix { pivot: i, value: d });
        }
        let inv_diag_global: Vec<f64> = diag.iter().map(|d| 1.0 / d).collect();
        Ok(JacobiPreconditioner {
            inv_diag: DistVector::from_global(a.descriptor().clone(), &inv_diag_global),
        })
    }
}

impl DistPreconditioner for JacobiPreconditioner {
    fn apply(&self, machine: &mut Machine, r: &DistVector) -> DistVector {
        let mut z = r.clone();
        z.zip_apply(machine, &self.inv_diag, 1, "jacobi-apply", |ri, di| ri * di);
        z
    }
    fn name(&self) -> &'static str {
        "jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_core::{DataArrayLayout, RowwiseCsr};
    use hpf_machine::{CostModel, Topology};
    use hpf_sparse::{gen, CooMatrix, CsrMatrix};

    #[test]
    fn jacobi_preconditioner_scales_by_inverse_diagonal() {
        let a = gen::poisson_2d(4, 4);
        let np = 2;
        let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        let m = JacobiPreconditioner::from_operator(&op).unwrap();
        assert_eq!(m.name(), "jacobi");
        let mut machine = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let r = DistVector::constant(op.descriptor(), 2.0);
        let z = m.apply(&mut machine, &r);
        for v in z.to_global() {
            assert!((v - 0.5).abs() < 1e-15); // diag of the 5-point stencil is 4
        }
        let words: usize = machine
            .trace()
            .with_label("jacobi-apply")
            .map(|e| e.words)
            .sum();
        assert_eq!(words, 0);
    }

    #[test]
    fn jacobi_preconditioner_rejects_zero_pivot() {
        let coo =
            CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let a = CsrMatrix::from_coo(&coo);
        let op = RowwiseCsr::block(a, 2, DataArrayLayout::RowAligned);
        assert!(matches!(
            JacobiPreconditioner::from_operator(&op),
            Err(SolverError::SingularMatrix { pivot: 1, .. })
        ));
    }
}
