//! # hpf-solvers — the CG solver family
//!
//! Serial and distributed implementations of every algorithm the paper's
//! Section 2 surveys, with the per-iteration operation structure it
//! tabulates:
//!
//! | method | matvecs | Aᵀ matvecs | dots | extra vectors | non-symmetric |
//! |---|---|---|---|---|---|
//! | [`cg`] | 1 | 0 | 2 | 4 | no |
//! | [`bicg`] | 1 | 1 | 2 | +3 over CG | yes |
//! | [`cgs`] | 2 | 0 | 2 | +4 over CG | yes (may diverge) |
//! | [`bicgstab`] | 2 | 0 | 4 | +4 over CG | yes |
//! | [`gmres`]`(m)` | 1 | 0 | j+1 at step j | m+4 | yes |
//!
//! plus Jacobi/SSOR [`pcg`] preconditioning and the dense [`direct`]
//! baselines (LU, Cholesky) CG is compared against.
//!
//! The distributed variants ([`cg::cg_distributed`]) run over
//! `hpf-core`'s distributed vectors and matvec scenarios, charging every
//! induced communication to the simulated machine.

pub mod bicg;
pub mod bicgstab;
pub mod cg;
pub mod cgs;
pub mod direct;
pub mod dist_solvers;
pub mod error;
pub mod gmres;
pub mod history;
pub mod observer;
pub mod operator;
pub mod pcg;
pub mod precond;
pub mod recovery;
pub mod spectral;
pub mod stopping;

pub use bicg::bicg;
pub use bicgstab::bicgstab;
pub use cg::{cg, cg_distributed, cg_distributed_with_observer, cg_with_observer};
pub use cgs::cgs;
pub use dist_solvers::{
    bicg_distributed, bicg_distributed_with_observer, bicgstab_distributed,
    bicgstab_distributed_with_observer, gmres_distributed, gmres_distributed_with_observer,
    pcg_jacobi_distributed, pcg_jacobi_distributed_with_observer, pcg_preconditioned_distributed,
    pcg_preconditioned_distributed_with_observer,
};
pub use error::SolverError;
pub use gmres::{gmres, gmres_storage_vectors};
pub use history::{nonmonotonicity, residual_history, Method};
pub use observer::{IterObserver, IterSample, NullObserver, RecordingObserver, TailObserver};
pub use operator::{ColwiseOperator, CscVariant, DistOperator, SerialOperator};
pub use pcg::{pcg, pcg_with_observer, IdentityPrec, JacobiPrec, Preconditioner, SsorPrec};
pub use precond::{DistPreconditioner, JacobiPreconditioner};
pub use recovery::{
    cg_distributed_protected, cg_distributed_protected_with_observer,
    pcg_jacobi_distributed_protected, pcg_jacobi_distributed_protected_with_observer,
    pcg_preconditioned_distributed_protected,
    pcg_preconditioned_distributed_protected_with_observer, RecoveryConfig, RecoveryStats,
};
pub use spectral::{
    cg_error_bound, cg_iterations_for, estimate_spd_spectrum, power_method, SpdSpectrum,
};
pub use stopping::{
    AlgorithmProfile, ResidualMonitor, SolveStats, StopCriterion, BICGSTAB_PROFILE, BICG_PROFILE,
    CGS_PROFILE, CG_PROFILE,
};
