//! Restarted GMRES — the "longer recurrences" alternative.
//!
//! Section 2.1: "More complex algorithms such as GMRES make use of longer
//! recurrences (which require greater storage)." GMRES(m) builds an
//! m-dimensional Krylov basis with Arnoldi orthogonalisation (m + O(1)
//! stored n-vectors versus CG's four) and minimises the residual over it
//! via Givens rotations on the Hessenberg matrix. Implemented here so
//! the storage/robustness trade-off the paper alludes to is measurable.

use crate::cg::{dot, norm2};
use crate::error::SolverError;
use crate::operator::SerialOperator;
use crate::stopping::{SolveStats, StopCriterion};

/// Restarted GMRES(m).
///
/// `restart` is the Krylov dimension between restarts (the paper's
/// "longer recurrences": storage grows linearly with it).
pub fn gmres<A: SerialOperator + ?Sized>(
    a: &A,
    b: &[f64],
    restart: usize,
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(Vec<f64>, SolveStats), SolverError> {
    let n = a.dim();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    assert!(restart >= 1, "GMRES needs a restart length of at least 1");
    let m = restart.min(n);
    let mut stats = SolveStats::new();
    let b_norm = norm2(b);
    stats.dots += 1;

    let mut x = vec![0.0; n];
    loop {
        // r = b - A x.
        let ax = a.apply(&x);
        stats.matvecs += 1;
        let r: Vec<f64> = b.iter().zip(ax.iter()).map(|(bi, ai)| bi - ai).collect();
        let beta = norm2(&r);
        stats.dots += 1;
        stats.residual_norm = beta;
        if stop.satisfied(beta, b_norm) {
            stats.converged = true;
            return Ok((x, stats));
        }
        if stats.iterations >= max_iters {
            return Ok((x, stats));
        }

        // Arnoldi basis V and Hessenberg H (column-major, m+1 x m).
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        v.push(r.iter().map(|ri| ri / beta).collect());
        let mut h = vec![vec![0.0f64; m + 1]; m]; // h[j][i]
                                                  // Givens rotation parameters and the rotated rhs `g`.
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;

        let mut k_used = 0usize;
        for j in 0..m {
            if stats.iterations >= max_iters {
                break;
            }
            // w = A v_j, then modified Gram–Schmidt.
            let mut w = a.apply(&v[j]);
            stats.matvecs += 1;
            for (i, vi) in v.iter().enumerate() {
                let hij = dot(&w, vi);
                stats.dots += 1;
                h[j][i] = hij;
                for (wk, vk) in w.iter_mut().zip(vi.iter()) {
                    *wk -= hij * vk;
                }
                stats.axpys += 1;
            }
            let h_next = norm2(&w);
            stats.dots += 1;
            h[j][j + 1] = h_next;

            // Apply previous Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * h[j][i] + sn[i] * h[j][i + 1];
                h[j][i + 1] = -sn[i] * h[j][i] + cs[i] * h[j][i + 1];
                h[j][i] = t;
            }
            // New rotation to annihilate h[j][j+1].
            let (c, s) = {
                let (p, q) = (h[j][j], h[j][j + 1]);
                let d = (p * p + q * q).sqrt();
                if d == 0.0 {
                    (1.0, 0.0)
                } else {
                    (p / d, q / d)
                }
            };
            cs[j] = c;
            sn[j] = s;
            h[j][j] = c * h[j][j] + s * h[j][j + 1];
            h[j][j + 1] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;

            stats.iterations += 1;
            k_used = j + 1;
            stats.residual_norm = g[j + 1].abs();
            let lucky_breakdown = h_next < 1e-14 * b_norm.max(1.0);
            if stop.satisfied(stats.residual_norm, b_norm) || lucky_breakdown {
                break;
            }
            v.push(w.iter().map(|wk| wk / h_next).collect());
        }

        // Solve the k x k upper-triangular system H y = g.
        let k = k_used;
        if k == 0 {
            return Ok((x, stats));
        }
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut s = g[i];
            for j in (i + 1)..k {
                s -= h[j][i] * y[j];
            }
            if h[i][i].abs() < f64::MIN_POSITIVE * 1e16 {
                return Err(SolverError::Breakdown {
                    what: "H(i,i)",
                    value: h[i][i],
                });
            }
            y[i] = s / h[i][i];
        }
        // x += V y.
        for (j, yj) in y.iter().enumerate() {
            for (xi, vij) in x.iter_mut().zip(v[j].iter()) {
                *xi += yj * vij;
            }
        }
        stats.axpys += k;

        if stop.satisfied(stats.residual_norm, b_norm) {
            // Recompute the true residual to confirm (restart loop top
            // would do it anyway; this avoids one extra cycle).
            let ax = a.apply(&x);
            stats.matvecs += 1;
            let true_res = b
                .iter()
                .zip(ax.iter())
                .map(|(bi, ai)| (bi - ai) * (bi - ai))
                .sum::<f64>()
                .sqrt();
            stats.residual_norm = true_res;
            if stop.satisfied(true_res, b_norm) {
                stats.converged = true;
                return Ok((x, stats));
            }
        }
    }
}

/// Stored n-vectors of GMRES(m): the basis (m+1) plus x, r, w — the
/// "greater storage" of the paper's remark, versus CG's 4.
pub fn gmres_storage_vectors(restart: usize) -> usize {
    restart + 1 + 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::{gen, CooMatrix, CsrMatrix};

    fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        let d: f64 = ax
            .iter()
            .zip(b.iter())
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        d / norm2(b).max(1e-300)
    }

    fn nonsymmetric(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.8).unwrap();
                coo.push(i + 1, i, -0.2).unwrap();
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn gmres_solves_spd() {
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (x, stats) = gmres(&a, &b, 30, StopCriterion::RelativeResidual(1e-10), 2000).unwrap();
        assert!(stats.converged, "{stats:?}");
        assert!(residual(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn gmres_solves_strongly_nonsymmetric() {
        // A strongly non-normal (but numerically tractable) upper
        // bidiagonal system: GMRES handles what makes CGS misbehave.
        let n = 30;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, 1.5).unwrap();
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let b = vec![1.0; n];
        let (x, stats) = gmres(&a, &b, n, StopCriterion::RelativeResidual(1e-8), 10 * n).unwrap();
        assert!(stats.converged, "{stats:?}");
        assert!(residual(&a, &x, &b) < 1e-6);
    }

    #[test]
    fn gmres_full_converges_within_n_iterations() {
        let a = nonsymmetric(30);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (_, stats) = gmres(&a, &b, 30, StopCriterion::RelativeResidual(1e-12), 60).unwrap();
        assert!(stats.converged);
        assert!(stats.iterations <= 30, "{}", stats.iterations);
    }

    #[test]
    fn restarting_trades_storage_for_iterations() {
        let a = gen::poisson_2d(10, 10);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let stop = StopCriterion::RelativeResidual(1e-8);
        let (_, s_small) = gmres(&a, &b, 5, stop, 10_000).unwrap();
        let (_, s_large) = gmres(&a, &b, 50, stop, 10_000).unwrap();
        assert!(s_small.converged && s_large.converged);
        assert!(
            s_large.iterations <= s_small.iterations,
            "GMRES(50) {} vs GMRES(5) {}",
            s_large.iterations,
            s_small.iterations
        );
        // And the storage ledger shows why (the paper's remark).
        assert!(gmres_storage_vectors(50) > gmres_storage_vectors(5));
        assert_eq!(gmres_storage_vectors(5), 9);
    }

    #[test]
    fn gmres_dimension_check_and_zero_rhs() {
        let a = nonsymmetric(10);
        assert!(matches!(
            gmres(&a, &[1.0; 3], 5, StopCriterion::RelativeResidual(1e-8), 10),
            Err(SolverError::DimensionMismatch { .. })
        ));
        let (x, stats) =
            gmres(&a, &[0.0; 10], 5, StopCriterion::RelativeResidual(1e-8), 10).unwrap();
        assert!(stats.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gmres_nonconvergence_reported() {
        let a = gen::poisson_2d(10, 10);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let (_, stats) = gmres(&a, &b, 3, StopCriterion::RelativeResidual(1e-14), 4).unwrap();
        assert!(!stats.converged);
        assert!(stats.iterations <= 4 + 3);
    }
}
