//! Dense direct solvers — the baseline iterative methods are "preferred
//! over" (Section 1: dense problems "can be solved using direct methods
//! such as Gaussian elimination"; CG wins "if A is very large and
//! sparse", where full storage "would either be impractical or too slow").
//!
//! Gaussian elimination with partial pivoting (LU) and Cholesky for SPD
//! systems, O(n³); used by the benches to show the flop/storage crossover
//! against CG.

use crate::error::SolverError;
use hpf_sparse::DenseMatrix;

/// LU factorisation with partial pivoting; returns the solution of
/// `A x = b`.
pub fn solve_lu(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>, SolverError> {
    if !a.is_square() {
        return Err(SolverError::NotSquare {
            rows: a.n_rows(),
            cols: a.n_cols(),
        });
    }
    let n = a.n_rows();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    // Working copy, row-major.
    let mut m: Vec<Vec<f64>> = (0..n).map(|i| a.row(i).to_vec()).collect();
    let mut x = b.to_vec();

    for k in 0..n {
        // Partial pivot.
        let (piv, pval) = (k..n)
            .map(|i| (i, m[i][k].abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if pval < f64::MIN_POSITIVE * 1e16 {
            return Err(SolverError::SingularMatrix {
                pivot: k,
                value: m[piv][k],
            });
        }
        m.swap(k, piv);
        x.swap(k, piv);
        let pivot = m[k][k];
        for i in (k + 1)..n {
            let factor = m[i][k] / pivot;
            if factor == 0.0 {
                continue;
            }
            let (head, tail) = m.split_at_mut(i);
            let row_k = &head[k];
            let row_i = &mut tail[0];
            for j in k..n {
                row_i[j] -= factor * row_k[j];
            }
            x[i] -= factor * x[k];
        }
    }
    // Back substitution.
    for k in (0..n).rev() {
        let mut s = x[k];
        for j in (k + 1)..n {
            s -= m[k][j] * x[j];
        }
        x[k] = s / m[k][k];
    }
    Ok(x)
}

/// Cholesky factorisation `A = L Lᵀ` of an SPD matrix; returns `L` as a
/// lower-triangular dense matrix.
pub fn cholesky(a: &DenseMatrix) -> Result<DenseMatrix, SolverError> {
    if !a.is_square() {
        return Err(SolverError::NotSquare {
            rows: a.n_rows(),
            cols: a.n_cols(),
        });
    }
    if !a.is_symmetric(1e-10) {
        return Err(SolverError::NotSymmetric);
    }
    let n = a.n_rows();
    let mut l = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(SolverError::SingularMatrix { pivot: i, value: s });
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solve an SPD system via Cholesky (factor + two triangular solves).
pub fn solve_cholesky(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>, SolverError> {
    let n = a.n_rows();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    let l = cholesky(a)?;
    // Forward: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // Backward: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

/// Flop count of dense LU (2n³/3) vs CG (2·nnz + 10n per iteration) — the
/// Section 1 storage/work argument made quantitative.
pub fn lu_flops(n: usize) -> usize {
    2 * n * n * n / 3
}

/// Approximate CG flops for `iters` iterations on a matrix with `nnz`
/// stored entries.
pub fn cg_flops(n: usize, nnz: usize, iters: usize) -> usize {
    iters * (2 * nnz + 10 * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::gen;

    #[test]
    fn lu_solves_poisson() {
        let a = gen::poisson_2d(5, 5).to_dense();
        let x_true: Vec<f64> = (0..25).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = solve_lu(&a, &b).unwrap();
        for (u, v) in x.iter().zip(x_true.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_handles_pivoting() {
        // Zero leading pivot forces a row swap.
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve_lu(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            solve_lu(&a, &[1.0, 2.0]),
            Err(SolverError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn cholesky_factor_reconstructs() {
        let a = gen::poisson_2d(4, 4).to_dense();
        let l = cholesky(&a).unwrap();
        // L Lᵀ == A.
        let lt = l.transpose();
        let mut recon = DenseMatrix::zeros(16, 16);
        for i in 0..16 {
            for j in 0..16 {
                let mut s = 0.0;
                for k in 0..16 {
                    s += l[(i, k)] * lt[(k, j)];
                }
                recon[(i, j)] = s;
            }
        }
        assert!(recon.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_nonsymmetric_and_indefinite() {
        let ns = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(cholesky(&ns).unwrap_err(), SolverError::NotSymmetric);
        let indef = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            cholesky(&indef),
            Err(SolverError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn cholesky_solve_matches_lu() {
        let a = gen::poisson_2d(4, 5).to_dense();
        let b: Vec<f64> = (0..20).map(|i| (i % 3) as f64 + 0.5).collect();
        let x1 = solve_lu(&a, &b).unwrap();
        let x2 = solve_cholesky(&a, &b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn flop_model_crossover() {
        // For a large sparse system CG's flops are far below LU's.
        let n = 10_000;
        let nnz = 5 * n;
        assert!(cg_flops(n, nnz, 100) < lu_flops(n) / 1000);
        // For a tiny dense system LU wins.
        assert!(lu_flops(10) < cg_flops(10, 100, 50));
    }
}
