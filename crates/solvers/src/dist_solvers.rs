//! Distributed variants of the non-symmetric solvers and Jacobi PCG.
//!
//! These run the same recurrences as their serial counterparts over
//! [`DistVector`]s and a [`DistOperator`], so the simulated machine is
//! charged for everything the data layout induces — including the
//! layout-dependent cost of BiCG's `Aᵀ` products (Section 2.1: "any
//! storage distribution optimisations made on the basis of row access
//! vs. column access will be negated with the use of BiCG").

use crate::cg::check_breakdown;
use crate::error::SolverError;
use crate::observer::{IterObserver, IterSample, MachineMark, NullObserver};
use crate::operator::DistOperator;
use crate::precond::{DistPreconditioner, JacobiPreconditioner};
use crate::stopping::{ResidualMonitor, SolveStats, StopCriterion};
use hpf_core::DistVector;
use hpf_machine::{span, Machine};

/// Distributed BiCG.
pub fn bicg_distributed<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(DistVector, SolveStats), SolverError> {
    bicg_distributed_with_observer(machine, a, b_global, stop, max_iters, &mut NullObserver)
}

/// [`bicg_distributed`] with per-iteration telemetry and span-tagged
/// machine events.
pub fn bicg_distributed_with_observer<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats), SolverError> {
    let _solve_span = span::enter("solve");
    let n = a.dim();
    if b_global.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b_global.len(),
        });
    }
    let desc = a.descriptor();
    let mut stats = SolveStats::new();

    let b = DistVector::from_global(desc.clone(), b_global);
    let mut x = DistVector::zeros(desc.clone());
    let mut r = b.clone();
    let mut r_hat = b.clone();
    let mut p = r.clone();
    let mut p_hat = r_hat.clone();

    let b_norm = b.dot(machine, &b).sqrt();
    stats.dots += 1;
    let mut monitor = ResidualMonitor::new(stop);
    let mut rho = r_hat.dot(machine, &r);
    stats.dots += 1;
    stats.residual_norm = r.dot(machine, &r).sqrt();
    stats.dots += 1;
    if monitor.observe(stats.residual_norm, b_norm)? {
        stats.converged = true;
        return Ok((x, stats));
    }

    let mut mark = MachineMark::take(machine);
    for k in 0..max_iters {
        let _iter_span = span::enter(format!("iter={k}"));
        check_breakdown("rho", rho)?;
        let q = {
            let _s = span::enter("matvec");
            a.apply(machine, &p)
        };
        stats.matvecs += 1;
        let q_hat = {
            let _s = span::enter("matvec-transpose");
            a.apply_transpose(machine, &p_hat)
        };
        stats.transpose_matvecs += 1;
        let pq = p_hat.dot(machine, &q);
        stats.dots += 1;
        check_breakdown("p_hat.Ap", pq)?;
        let alpha = rho / pq;
        x.axpy(machine, alpha, &p);
        r.axpy(machine, -alpha, &q);
        r_hat.axpy(machine, -alpha, &q_hat);
        stats.axpys += 3;
        stats.iterations += 1;
        stats.residual_norm = r.dot(machine, &r).sqrt();
        stats.dots += 1;
        let (d_flops, d_words) = mark.delta(machine);
        let sim_time = machine.elapsed();
        let predicted_time = mark.predicted();
        let (it, rn) = (stats.iterations, stats.residual_norm);
        let sample = move |beta: f64| IterSample {
            iteration: it,
            residual_norm: rn,
            alpha,
            beta,
            flops: d_flops,
            comm_words: d_words,
            sim_time,
            predicted_time,
            rollbacks: 0,
        };
        if monitor.observe(stats.residual_norm, b_norm)? {
            obs.on_iteration(&sample(f64::NAN));
            stats.converged = true;
            return Ok((x, stats));
        }
        let rho_new = r_hat.dot(machine, &r);
        stats.dots += 1;
        let beta = rho_new / rho;
        obs.on_iteration(&sample(beta));
        rho = rho_new;
        p.aypx(machine, beta, &r);
        p_hat.aypx(machine, beta, &r_hat);
        stats.axpys += 2;
    }
    Ok((x, stats))
}

/// Distributed BiCGSTAB (no `Aᵀ`; four inner-product merges per
/// iteration — "a greater demand for an efficient intrinsic").
pub fn bicgstab_distributed<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(DistVector, SolveStats), SolverError> {
    bicgstab_distributed_with_observer(machine, a, b_global, stop, max_iters, &mut NullObserver)
}

/// [`bicgstab_distributed`] with per-iteration telemetry and span-tagged
/// machine events.
pub fn bicgstab_distributed_with_observer<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats), SolverError> {
    let _solve_span = span::enter("solve");
    let n = a.dim();
    if b_global.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b_global.len(),
        });
    }
    let desc = a.descriptor();
    let mut stats = SolveStats::new();

    let b = DistVector::from_global(desc.clone(), b_global);
    let mut x = DistVector::zeros(desc.clone());
    let mut r = b.clone();
    let r_hat = b.clone();
    let mut p = r.clone();

    let b_norm = b.dot(machine, &b).sqrt();
    stats.dots += 1;
    let mut monitor = ResidualMonitor::new(stop);
    let mut rho = r_hat.dot(machine, &r);
    stats.dots += 1;
    stats.residual_norm = rho.sqrt().abs();
    if monitor.observe(stats.residual_norm, b_norm)? {
        stats.converged = true;
        return Ok((x, stats));
    }

    let mut mark = MachineMark::take(machine);
    for k in 0..max_iters {
        let _iter_span = span::enter(format!("iter={k}"));
        check_breakdown("rho", rho)?;
        let v = {
            let _s = span::enter("matvec");
            a.apply(machine, &p)
        };
        stats.matvecs += 1;
        let rv = r_hat.dot(machine, &v);
        stats.dots += 1;
        check_breakdown("r_hat.Ap", rv)?;
        let alpha = rho / rv;
        let mut s = r.clone();
        s.axpy(machine, -alpha, &v);
        stats.axpys += 1;
        let s_norm = s.dot(machine, &s).sqrt();
        stats.dots += 1;
        if monitor.observe(s_norm, b_norm)? {
            x.axpy(machine, alpha, &p);
            stats.axpys += 1;
            stats.iterations += 1;
            stats.residual_norm = s_norm;
            let (d_flops, d_words) = mark.delta(machine);
            obs.on_iteration(&IterSample {
                iteration: stats.iterations,
                residual_norm: s_norm,
                alpha,
                beta: f64::NAN,
                flops: d_flops,
                comm_words: d_words,
                sim_time: machine.elapsed(),
                predicted_time: mark.predicted(),
                rollbacks: 0,
            });
            stats.converged = true;
            return Ok((x, stats));
        }
        let t = {
            let _s = span::enter("matvec");
            a.apply(machine, &s)
        };
        stats.matvecs += 1;
        let tt = t.dot(machine, &t);
        stats.dots += 1;
        check_breakdown("t.t", tt)?;
        let omega = t.dot(machine, &s) / tt;
        stats.dots += 1;
        check_breakdown("omega", omega)?;
        x.axpy(machine, alpha, &p);
        x.axpy(machine, omega, &s);
        let mut r_new = s.clone();
        r_new.axpy(machine, -omega, &t);
        r = r_new;
        stats.axpys += 3;
        stats.iterations += 1;
        stats.residual_norm = r.dot(machine, &r).sqrt();
        stats.dots += 1;
        let (d_flops, d_words) = mark.delta(machine);
        let sim_time = machine.elapsed();
        let predicted_time = mark.predicted();
        let (it, rn) = (stats.iterations, stats.residual_norm);
        let sample = move |beta: f64| IterSample {
            iteration: it,
            residual_norm: rn,
            alpha,
            beta,
            flops: d_flops,
            comm_words: d_words,
            sim_time,
            predicted_time,
            rollbacks: 0,
        };
        if monitor.observe(stats.residual_norm, b_norm)? {
            obs.on_iteration(&sample(f64::NAN));
            stats.converged = true;
            return Ok((x, stats));
        }
        let rho_new = r_hat.dot(machine, &r);
        stats.dots += 1;
        let beta = (rho_new / rho) * (alpha / omega);
        obs.on_iteration(&sample(beta));
        rho = rho_new;
        // p = r + beta (p - omega v)
        p.axpy(machine, -omega, &v);
        p.aypx(machine, beta, &r);
        stats.axpys += 2;
    }
    Ok((x, stats))
}

/// Distributed Jacobi-preconditioned CG. The preconditioner application
/// `z = D⁻¹ r` is an aligned element-wise operation — zero communication,
/// as the paper's alignment discipline guarantees.
pub fn pcg_jacobi_distributed<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(DistVector, SolveStats), SolverError> {
    pcg_jacobi_distributed_with_observer(machine, a, b_global, stop, max_iters, &mut NullObserver)
}

/// [`pcg_jacobi_distributed`] with per-iteration telemetry and
/// span-tagged machine events.
pub fn pcg_jacobi_distributed_with_observer<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats), SolverError> {
    let m = JacobiPreconditioner::from_operator(a)?;
    pcg_preconditioned_distributed_with_observer(machine, a, &m, b_global, stop, max_iters, obs)
}

/// Distributed CG preconditioned by any [`DistPreconditioner`] — the
/// entry point multigrid ([`hpf-mg`]'s V-cycle) and other structured
/// preconditioners plug into. The recurrence is the Figure 2 PCG loop;
/// the preconditioner application runs under a `precondition` span so
/// its machine events (smoother compute, halo exchanges, level
/// transfers) are attributable in the trace.
pub fn pcg_preconditioned_distributed<A, M>(
    machine: &mut Machine,
    a: &A,
    m: &M,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(DistVector, SolveStats), SolverError>
where
    A: DistOperator + ?Sized,
    M: DistPreconditioner + ?Sized,
{
    pcg_preconditioned_distributed_with_observer(
        machine,
        a,
        m,
        b_global,
        stop,
        max_iters,
        &mut NullObserver,
    )
}

/// [`pcg_preconditioned_distributed`] with per-iteration telemetry and
/// span-tagged machine events.
pub fn pcg_preconditioned_distributed_with_observer<A, M>(
    machine: &mut Machine,
    a: &A,
    m: &M,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats), SolverError>
where
    A: DistOperator + ?Sized,
    M: DistPreconditioner + ?Sized,
{
    let _solve_span = span::enter("solve");
    let n = a.dim();
    if b_global.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b_global.len(),
        });
    }
    let desc = a.descriptor();
    let mut stats = SolveStats::new();

    let b = DistVector::from_global(desc.clone(), b_global);
    let mut x = DistVector::zeros(desc.clone());
    let mut r = b.clone();
    let precondition = |machine: &mut Machine, r: &DistVector| m.apply(machine, r);
    let mut z = precondition(machine, &r);
    let mut p = z.clone();
    let b_norm = b.dot(machine, &b).sqrt();
    stats.dots += 1;
    let mut monitor = ResidualMonitor::new(stop);
    let mut rho = r.dot(machine, &z);
    stats.dots += 1;
    stats.residual_norm = r.dot(machine, &r).sqrt();
    stats.dots += 1;
    if monitor.observe(stats.residual_norm, b_norm)? {
        stats.converged = true;
        return Ok((x, stats));
    }

    let mut mark = MachineMark::take(machine);
    for k in 0..max_iters {
        let _iter_span = span::enter(format!("iter={k}"));
        let q = {
            let _s = span::enter("matvec");
            a.apply(machine, &p)
        };
        stats.matvecs += 1;
        let pq = {
            let _s = span::enter("dot");
            p.dot(machine, &q)
        };
        stats.dots += 1;
        check_breakdown("p.Ap", pq)?;
        let alpha = rho / pq;
        {
            let _s = span::enter("axpy");
            x.axpy(machine, alpha, &p);
            r.axpy(machine, -alpha, &q);
        }
        stats.axpys += 2;
        stats.iterations += 1;
        stats.residual_norm = {
            let _s = span::enter("dot");
            r.dot(machine, &r).sqrt()
        };
        stats.dots += 1;
        let (d_flops, d_words) = mark.delta(machine);
        let sim_time = machine.elapsed();
        let predicted_time = mark.predicted();
        let (it, rn) = (stats.iterations, stats.residual_norm);
        let sample = move |beta: f64| IterSample {
            iteration: it,
            residual_norm: rn,
            alpha,
            beta,
            flops: d_flops,
            comm_words: d_words,
            sim_time,
            predicted_time,
            rollbacks: 0,
        };
        if monitor.observe(stats.residual_norm, b_norm)? {
            obs.on_iteration(&sample(f64::NAN));
            stats.converged = true;
            return Ok((x, stats));
        }
        z = {
            let _s = span::enter("precondition");
            precondition(machine, &r)
        };
        let rho_new = r.dot(machine, &z);
        stats.dots += 1;
        check_breakdown("rho", rho)?;
        let beta = rho_new / rho;
        obs.on_iteration(&sample(beta));
        rho = rho_new;
        p.aypx(machine, beta, &z);
        stats.axpys += 1;
    }
    Ok((x, stats))
}

/// Distributed restarted GMRES(m) over any [`DistOperator`].
///
/// The paper's "longer recurrences (which require greater storage)"
/// remark becomes concrete here: the Krylov basis is `m + 1` *distributed*
/// vectors, and every Arnoldi step performs `j + 1` inner products —
/// each a `t_startup·log N_P` merge on the simulated machine, so GMRES's
/// per-iteration communication grows with the basis where CG's is flat.
pub fn gmres_distributed<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    restart: usize,
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(DistVector, SolveStats), SolverError> {
    gmres_distributed_with_observer(
        machine,
        a,
        b_global,
        restart,
        stop,
        max_iters,
        &mut NullObserver,
    )
}

/// [`gmres_distributed`] with per-iteration telemetry. One sample per
/// Arnoldi step, carrying the Givens residual estimate; GMRES has no
/// single alpha/beta, so those fields are `NaN`.
pub fn gmres_distributed_with_observer<A: DistOperator + ?Sized>(
    machine: &mut Machine,
    a: &A,
    b_global: &[f64],
    restart: usize,
    stop: StopCriterion,
    max_iters: usize,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats), SolverError> {
    let _solve_span = span::enter("solve");
    let n = a.dim();
    if b_global.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b_global.len(),
        });
    }
    assert!(restart >= 1, "GMRES needs a restart length of at least 1");
    let m = restart.min(n);
    let desc = a.descriptor();
    let mut stats = SolveStats::new();

    let b = DistVector::from_global(desc.clone(), b_global);
    let b_norm = b.dot(machine, &b).sqrt();
    stats.dots += 1;
    let mut monitor = ResidualMonitor::new(stop);
    let mut x = DistVector::zeros(desc.clone());

    loop {
        // r = b - A x.
        let ax = a.apply(machine, &x);
        stats.matvecs += 1;
        let mut r = b.clone();
        r.axpy(machine, -1.0, &ax);
        stats.axpys += 1;
        let beta = r.dot(machine, &r).sqrt();
        stats.dots += 1;
        stats.residual_norm = beta;
        if monitor.observe(beta, b_norm)? {
            stats.converged = true;
            return Ok((x, stats));
        }
        if stats.iterations >= max_iters {
            return Ok((x, stats));
        }

        let mut v: Vec<DistVector> = Vec::with_capacity(m + 1);
        let mut v0 = r.clone();
        v0.scale(machine, 1.0 / beta);
        v.push(v0);
        let mut h = vec![vec![0.0f64; m + 1]; m];
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;

        let mut mark = MachineMark::take(machine);
        let mut k_used = 0usize;
        for j in 0..m {
            if stats.iterations >= max_iters {
                break;
            }
            let _iter_span = span::enter(format!("iter={}", stats.iterations));
            let mut w = {
                let _s = span::enter("matvec");
                a.apply(machine, &v[j])
            };
            stats.matvecs += 1;
            for (i, vi) in v.iter().enumerate() {
                let hij = {
                    let _s = span::enter("dot");
                    w.dot(machine, vi)
                };
                stats.dots += 1;
                h[j][i] = hij;
                w.axpy(machine, -hij, vi);
                stats.axpys += 1;
            }
            let h_next = w.dot(machine, &w).sqrt();
            stats.dots += 1;
            h[j][j + 1] = h_next;
            for i in 0..j {
                let t = cs[i] * h[j][i] + sn[i] * h[j][i + 1];
                h[j][i + 1] = -sn[i] * h[j][i] + cs[i] * h[j][i + 1];
                h[j][i] = t;
            }
            let (c, s) = {
                let (p, q) = (h[j][j], h[j][j + 1]);
                let d = (p * p + q * q).sqrt();
                if d == 0.0 {
                    (1.0, 0.0)
                } else {
                    (p / d, q / d)
                }
            };
            cs[j] = c;
            sn[j] = s;
            h[j][j] = c * h[j][j] + s * h[j][j + 1];
            h[j][j + 1] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;
            stats.iterations += 1;
            k_used = j + 1;
            stats.residual_norm = g[j + 1].abs();
            let (d_flops, d_words) = mark.delta(machine);
            obs.on_iteration(&IterSample {
                iteration: stats.iterations,
                residual_norm: stats.residual_norm,
                alpha: f64::NAN,
                beta: f64::NAN,
                flops: d_flops,
                comm_words: d_words,
                sim_time: machine.elapsed(),
                predicted_time: mark.predicted(),
                rollbacks: 0,
            });
            let lucky = h_next < 1e-14 * b_norm.max(1.0);
            if monitor.observe(stats.residual_norm, b_norm)? || lucky {
                break;
            }
            let mut vn = w;
            vn.scale(machine, 1.0 / h_next);
            v.push(vn);
        }

        let k = k_used;
        if k == 0 {
            return Ok((x, stats));
        }
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut s = g[i];
            for j in (i + 1)..k {
                s -= h[j][i] * y[j];
            }
            check_breakdown("H(i,i)", h[i][i])?;
            y[i] = s / h[i][i];
        }
        for (j, &yj) in y.iter().enumerate() {
            x.axpy(machine, yj, &v[j]);
            stats.axpys += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{ColwiseOperator, CscVariant};
    use hpf_core::{ColwiseCsc, DataArrayLayout, RowwiseCsr};
    use hpf_machine::{CostModel, Topology};
    use hpf_sparse::{gen, CooMatrix, CscMatrix, CsrMatrix};

    fn machine(np: usize) -> Machine {
        Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
    }

    fn nonsymmetric(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.5).unwrap();
                coo.push(i + 1, i, -0.5).unwrap();
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        let num: f64 = ax
            .iter()
            .zip(b.iter())
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        num / den.max(1e-300)
    }

    #[test]
    fn distributed_bicg_matches_serial() {
        let a = nonsymmetric(60);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let stop = StopCriterion::RelativeResidual(1e-8);
        let (x_serial, s_serial) = crate::bicg(&a, &b, stop, 2000).unwrap();

        let np = 4;
        let mut m = machine(np);
        let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        let (x_dist, s_dist) = bicg_distributed(&mut m, &op, &b, stop, 2000).unwrap();
        assert!(s_dist.converged);
        assert_eq!(s_dist.iterations, s_serial.iterations);
        for (u, v) in x_dist.to_global().iter().zip(x_serial.iter()) {
            assert!((u - v).abs() < 1e-7);
        }
        assert_eq!(s_dist.transpose_matvecs, s_dist.matvecs);
    }

    #[test]
    fn distributed_bicg_transpose_cost_depends_on_layout() {
        // §2.1: through the row layout A^T pays a vector merge; through
        // the column layout it's one allgather. Same numerics, different
        // simulated comm time.
        let a = nonsymmetric(128);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let stop = StopCriterion::RelativeResidual(1e-8);
        let np = 8;

        let mut m_row = machine(np);
        let row_op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        let (xr, sr) = bicg_distributed(&mut m_row, &row_op, &b, stop, 2000).unwrap();

        let mut m_col = machine(np);
        let col_op = ColwiseOperator {
            inner: ColwiseCsc::block(CscMatrix::from_csr(&a), np),
            variant: CscVariant::Temp2d,
        };
        let (xc, sc) = bicg_distributed(&mut m_col, &col_op, &b, stop, 2000).unwrap();

        assert!(sr.converged && sc.converged);
        assert!(residual(&a, &xr.to_global(), &b) < 1e-7);
        assert!(residual(&a, &xc.to_global(), &b) < 1e-7);
        // Neither striping escapes: the forward product is cheap where
        // the transpose is dear and vice versa (this is the "negated
        // optimisations" claim — both layouts pay a merge somewhere).
        let t_row_fwd: f64 = m_row.trace().with_label("s1-bcast-p").map(|e| e.time).sum();
        let t_row_t: f64 = m_row
            .trace()
            .with_label("s1t-merge-q")
            .map(|e| e.time)
            .sum();
        assert!(t_row_t > t_row_fwd, "{t_row_t} vs {t_row_fwd}");
    }

    #[test]
    fn distributed_bicgstab_solves_without_transpose() {
        let a = nonsymmetric(80);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let stop = StopCriterion::RelativeResidual(1e-9);
        let np = 4;
        let mut m = machine(np);
        let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        let (x, stats) = bicgstab_distributed(&mut m, &op, &b, stop, 2000).unwrap();
        assert!(stats.converged);
        assert_eq!(stats.transpose_matvecs, 0);
        assert!(residual(&a, &x.to_global(), &b) < 1e-8);
        // Four-plus dot merges per iteration hit the machine.
        let reduces = m.trace().count(hpf_machine::EventKind::AllReduce);
        assert!(reduces >= 4 * stats.iterations);
    }

    #[test]
    fn distributed_jacobi_pcg_no_extra_comm_per_apply() {
        // Badly scaled SPD system.
        let base = gen::poisson_2d(8, 8);
        let n = base.n_rows();
        let mut coo = CooMatrix::new(n, n);
        let scale = |i: usize| 10f64.powi((i % 5) as i32 - 2);
        for i in 0..n {
            for (j, v) in base.row(i) {
                coo.push(i, j, v * scale(i) * scale(j)).unwrap();
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let stop = StopCriterion::RelativeResidual(1e-8);
        let np = 4;

        let mut m_plain = machine(np);
        let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        let (_, s_plain) = crate::cg_distributed(&mut m_plain, &op, &b, stop, 100 * n).unwrap();
        let mut m_pcg = machine(np);
        let (x, s_pcg) = pcg_jacobi_distributed(&mut m_pcg, &op, &b, stop, 100 * n).unwrap();
        assert!(s_pcg.converged);
        assert!(s_pcg.iterations < s_plain.iterations);
        assert!(residual(&a, &x.to_global(), &b) < 1e-7);
        // The Jacobi applications themselves moved zero words.
        let jacobi_words: usize = m_pcg
            .trace()
            .with_label("jacobi-apply")
            .map(|e| e.words)
            .sum();
        assert_eq!(jacobi_words, 0);
    }

    #[test]
    fn distributed_gmres_matches_serial() {
        let a = nonsymmetric(48);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let stop = StopCriterion::RelativeResidual(1e-8);
        let (x_serial, s_serial) = crate::gmres(&a, &b, 12, stop, 2000).unwrap();
        let np = 4;
        let mut m = machine(np);
        let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);
        let (x_dist, s_dist) = gmres_distributed(&mut m, &op, &b, 12, stop, 2000).unwrap();
        assert!(s_serial.converged && s_dist.converged);
        assert_eq!(s_serial.iterations, s_dist.iterations);
        for (u, v) in x_dist.to_global().iter().zip(x_serial.iter()) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn distributed_gmres_dot_merges_grow_with_basis() {
        // GMRES's per-iteration dot count grows with the basis position;
        // on the machine each is an allreduce merge. Compare merges per
        // iteration against distributed CG.
        let a = gen::poisson_2d(8, 8);
        let (_, b) = gen::rhs_for_known_solution(&a);
        let stop = StopCriterion::RelativeResidual(1e-8);
        let np = 4;
        let op = RowwiseCsr::block(a.clone(), np, DataArrayLayout::RowAligned);

        let mut m_cg = machine(np);
        let (_, s_cg) = crate::cg_distributed(&mut m_cg, &op, &b, stop, 2000).unwrap();
        let cg_merges_per_iter =
            m_cg.trace().count(hpf_machine::EventKind::AllReduce) as f64 / s_cg.iterations as f64;

        let mut m_gm = machine(np);
        let (_, s_gm) = gmres_distributed(&mut m_gm, &op, &b, 30, stop, 2000).unwrap();
        let gm_merges_per_iter =
            m_gm.trace().count(hpf_machine::EventKind::AllReduce) as f64 / s_gm.iterations as f64;

        assert!(s_cg.converged && s_gm.converged);
        assert!(
            gm_merges_per_iter > 2.0 * cg_merges_per_iter,
            "GMRES {gm_merges_per_iter} vs CG {cg_merges_per_iter} merges/iter"
        );
    }

    #[test]
    fn distributed_jacobi_rejects_zero_diagonal() {
        let coo = CooMatrix::from_triplets(
            4,
            4,
            vec![(0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0), (3, 3, 1.0)],
        )
        .unwrap();
        let a = CsrMatrix::from_coo(&coo);
        let np = 2;
        let mut m = machine(np);
        let op = RowwiseCsr::block(a, np, DataArrayLayout::RowAligned);
        assert!(matches!(
            pcg_jacobi_distributed(
                &mut m,
                &op,
                &[1.0; 4],
                StopCriterion::RelativeResidual(1e-8),
                10
            ),
            Err(SolverError::SingularMatrix { .. })
        ));
    }
}
