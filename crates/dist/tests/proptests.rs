//! Property tests on the distribution layer: descriptors partition the
//! index space exactly, atom assignments never split atoms, and the
//! balanced partitioner dominates naive layouts.

use hpf_dist::atoms::{AtomAssignment, AtomSpec};
use hpf_dist::partition;
use hpf_dist::redistribute;
use hpf_dist::{ArrayDescriptor, DistSpec};
use proptest::prelude::*;

fn arb_spec(n: usize, np: usize) -> impl Strategy<Value = DistSpec> {
    let max_k = n.max(1);
    prop_oneof![
        Just(DistSpec::Block),
        (n.div_ceil(np).max(1)..=max_k).prop_map(DistSpec::BlockK),
        Just(DistSpec::Cyclic),
        (1usize..=max_k).prop_map(DistSpec::CyclicK),
        proptest::collection::vec(0..=n, np - 1).prop_map(move |mut mids| {
            mids.sort_unstable();
            let mut cuts = vec![0usize];
            cuts.extend(mids);
            cuts.push(n);
            DistSpec::IrregularCuts(cuts)
        }),
    ]
}

proptest! {
    /// Every global index is owned by exactly one processor and appears
    /// exactly once in its owner's local index list at the right offset.
    #[test]
    fn descriptor_partitions_index_space(
        n in 1usize..200,
        np in 1usize..9,
        seed in any::<u64>(),
    ) {
        let spec = {
            // Pick a spec deterministically from the seed to avoid nested
            // strategies over dependent values.
            let np = np.max(1);
            match seed % 5 {
                0 => DistSpec::Block,
                1 => DistSpec::BlockK(n.div_ceil(np).max(1) + (seed as usize % 3)),
                2 => DistSpec::Cyclic,
                3 => DistSpec::CyclicK(1 + (seed as usize % 7)),
                _ => {
                    let mut cuts: Vec<usize> =
                        (0..np - 1).map(|i| (seed as usize + i * 31) % (n + 1)).collect();
                    cuts.sort_unstable();
                    let mut full = vec![0usize];
                    full.extend(cuts);
                    full.push(n);
                    DistSpec::IrregularCuts(full)
                }
            }
        };
        let d = ArrayDescriptor::new(n, np, spec);
        let mut seen = vec![0usize; n];
        for p in 0..np {
            prop_assert_eq!(d.global_indices(p).len(), d.local_len(p));
            for (off, &g) in d.global_indices(p).iter().enumerate() {
                prop_assert_eq!(d.owner(g), p);
                prop_assert_eq!(d.local_offset(g), off);
                seen[g] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each index owned exactly once");
    }

    /// Atom-based assignments never split an atom: all elements of an
    /// atom have the same owner.
    #[test]
    fn atom_assignments_never_split(
        sizes in proptest::collection::vec(0usize..12, 1..40),
        np in 1usize..7,
        cyclic in any::<bool>(),
    ) {
        let mut ptr = vec![0usize];
        for s in &sizes {
            ptr.push(ptr.last().unwrap() + s);
        }
        let spec = AtomSpec::from_pointer_array(&ptr);
        let asg = if cyclic {
            AtomAssignment::atom_cyclic(&spec, np)
        } else {
            AtomAssignment::atom_block(&spec, np)
        };
        // Elements of atom i all map to atom_owner[i]: by construction,
        // so check the element-cut encoding round-trips when contiguous.
        if let Some(cuts) = asg.element_cuts(&spec) {
            prop_assert_eq!(cuts.len(), np + 1);
            prop_assert_eq!(spec.atoms_split_by(&cuts), 0);
            // Cut-based ownership matches atom ownership.
            let d = ArrayDescriptor::new(spec.total_elements(), np, DistSpec::IrregularCuts(cuts));
            for a in 0..spec.n_atoms() {
                for e in spec.atom_range(a) {
                    prop_assert_eq!(d.owner(e), asg.atom_owner[a]);
                }
            }
        }
        // Loads sum to total elements either way.
        prop_assert_eq!(asg.loads(&spec).iter().sum::<usize>(), spec.total_elements());
    }

    /// The balanced contiguous partitioner covers all atoms in order and
    /// its bottleneck is never worse than equal-atom-count BLOCK.
    #[test]
    fn balanced_partitioner_dominates_block(
        weights in proptest::collection::vec(0usize..50, 1..60),
        np in 1usize..8,
    ) {
        let cuts = partition::balanced_contiguous(&weights, np).unwrap();
        prop_assert_eq!(cuts.len(), np + 1);
        prop_assert_eq!(cuts[0], 0);
        prop_assert_eq!(*cuts.last().unwrap(), weights.len());
        prop_assert!(cuts.windows(2).all(|w| w[0] <= w[1]));

        let asg = partition::assignment_from_cuts(&cuts, weights.len());
        let bal = partition::loads(&weights, &asg.atom_owner, np);
        let bal_max = *bal.iter().max().unwrap();

        let bs = weights.len().div_ceil(np);
        let block_owner: Vec<usize> =
            (0..weights.len()).map(|i| (i / bs).min(np - 1)).collect();
        let blk = partition::loads(&weights, &block_owner, np);
        let blk_max = *blk.iter().max().unwrap();

        prop_assert!(bal_max <= blk_max, "balanced {bal_max} vs block {blk_max}");
        prop_assert_eq!(bal.iter().sum::<usize>(), weights.iter().sum::<usize>());
    }

    /// LPT never exceeds (4/3 - 1/3m) * OPT; we check the weaker but
    /// absolute bound: max load <= sum/np + max weight.
    #[test]
    fn lpt_bound(
        weights in proptest::collection::vec(1usize..100, 1..50),
        np in 1usize..8,
    ) {
        let owner = partition::greedy_lpt(&weights, np).unwrap();
        let l = partition::loads(&weights, &owner, np);
        let max = *l.iter().max().unwrap();
        let bound = weights.iter().sum::<usize>() / np + weights.iter().max().unwrap();
        prop_assert!(max <= bound, "LPT load {max} exceeds bound {bound}");
    }

    /// Redistribution conserves data: permuting local data between any
    /// two layouts and back restores it, and the traffic matrix counts
    /// exactly the elements that change owner.
    #[test]
    fn redistribution_conserves_data(
        n in 1usize..120,
        np in 1usize..6,
        seed in any::<u64>(),
    ) {
        let from = match seed % 3 {
            0 => ArrayDescriptor::block(n, np),
            1 => ArrayDescriptor::cyclic(n, np),
            _ => ArrayDescriptor::new(n, np, DistSpec::CyclicK(1 + (seed as usize % 5))),
        };
        let to = match (seed / 3) % 3 {
            0 => ArrayDescriptor::cyclic(n, np),
            1 => ArrayDescriptor::block(n, np),
            _ => ArrayDescriptor::new(n, np, DistSpec::CyclicK(2 + (seed as usize % 4))),
        };
        let local: Vec<Vec<f64>> = (0..np)
            .map(|p| from.global_indices(p).iter().map(|&g| g as f64 + 0.5).collect())
            .collect();
        let moved = redistribute::permute_local_data(&from, &to, &local);
        for p in 0..np {
            for (off, &g) in to.global_indices(p).iter().enumerate() {
                prop_assert_eq!(moved[p][off], g as f64 + 0.5);
            }
        }
        let back = redistribute::permute_local_data(&to, &from, &moved);
        prop_assert_eq!(back, local);

        let words = redistribute::total_words(&from, &to);
        let changed = (0..n).filter(|&i| from.owner(i) != to.owner(i)).count();
        prop_assert_eq!(words, changed);
    }
}

#[test]
fn arb_spec_strategy_is_wired() {
    // Smoke-test the unused-in-proptest helper so it stays correct.
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    let tree = arb_spec(10, 3).new_tree(&mut runner).unwrap();
    let spec = tree.current();
    let d = ArrayDescriptor::new(10, 3, spec);
    assert_eq!(d.local_lens().iter().sum::<usize>(), 10);
}
