//! # hpf-dist — HPF distribution and alignment layer
//!
//! Typed equivalents of the HPF directives the paper builds its CG codes
//! from (`PROCESSORS`, `DISTRIBUTE`, `ALIGN`, `DYNAMIC`, `REDISTRIBUTE`)
//! plus its proposed Section 5.2 extensions (`INDIVISABLE` atoms,
//! `ATOM:BLOCK` / `ATOM:CYCLIC` distributions, and the
//! `CG_BALANCED_PARTITIONER_1` load-balancing partitioner).
//!
//! * [`spec::DistSpec`] — `BLOCK`, `BLOCK(k)`, `CYCLIC`, `CYCLIC(k)`,
//!   replication, and irregular cut-point layouts;
//! * [`descriptor::ArrayDescriptor`] — the runtime Distributed Array
//!   Descriptor (owner / local-offset / global-indices queries);
//! * [`align::AlignmentGraph`] — `ALIGN a(:) WITH b(:)` with ultimate-
//!   target resolution and group redistribution;
//! * [`atoms`] — indivisible entities over pointer arrays;
//! * [`partition`] — load-balancing partitioners and imbalance metrics;
//! * [`redistribute`] — traffic matrices and simulated-cost execution of
//!   layout changes.

pub mod align;
pub mod atoms;
pub mod descriptor;
pub mod graph;
pub mod partition;
pub mod redistribute;
pub mod spec;

pub use align::{AlignError, AlignmentGraph};
pub use atoms::{AtomAssignment, AtomSpec};
pub use descriptor::ArrayDescriptor;
pub use graph::{comm_volume, cut_edges, ConnectivityGraph};
pub use partition::{PartitionError, Partitioner};
pub use spec::{DistSpec, ProcessorGrid};
