//! The HPF `ALIGN` directive as an alignment graph.
//!
//! The paper's CG code aligns every working vector with `p`:
//!
//! ```fortran
//! !HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
//! !HPF$ DISTRIBUTE p(BLOCK)
//! ```
//!
//! "Vector p is chosen as the target of the ultimate alignment thus the
//! distribution of p determines the distribution of all other vectors
//! aligned with it. Whenever its distribution is changed, the others are
//! also automatically redistributed."
//!
//! [`AlignmentGraph`] tracks which arrays are aligned with which target,
//! resolves the *ultimate* alignment target through chains, and, on
//! `REDISTRIBUTE`, reports every array that must move.

use crate::descriptor::ArrayDescriptor;
use crate::spec::DistSpec;
use std::collections::BTreeMap;

/// Error raised by alignment operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    UnknownArray(String),
    /// Aligning `a` with `b` would create a cycle.
    Cycle(String),
    /// Arrays of different lengths cannot be identity-aligned.
    LengthMismatch {
        array: String,
        expected: usize,
        got: usize,
    },
}

impl std::fmt::Display for AlignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignError::UnknownArray(a) => write!(f, "unknown array '{a}'"),
            AlignError::Cycle(a) => write!(f, "aligning '{a}' would create a cycle"),
            AlignError::LengthMismatch {
                array,
                expected,
                got,
            } => write!(
                f,
                "array '{array}' has length {got}, alignment target has {expected}"
            ),
        }
    }
}

impl std::error::Error for AlignError {}

/// One registered array: its length and either an explicit distribution
/// (alignment root) or the name of the array it is aligned with.
#[derive(Debug, Clone)]
struct Entry {
    len: usize,
    aligned_with: Option<String>,
    /// Distribution spec; meaningful only for roots.
    spec: DistSpec,
    /// `DYNAMIC` arrays may be redistributed at runtime (Section 5.2.1).
    dynamic: bool,
}

/// Registry of distributed arrays and their alignment relations.
#[derive(Debug, Default, Clone)]
pub struct AlignmentGraph {
    np: usize,
    entries: BTreeMap<String, Entry>,
}

impl AlignmentGraph {
    pub fn new(np: usize) -> Self {
        assert!(np > 0);
        AlignmentGraph {
            np,
            entries: BTreeMap::new(),
        }
    }

    /// `!HPF$ DISTRIBUTE name(spec)` — register a root array.
    pub fn distribute(&mut self, name: impl Into<String>, len: usize, spec: DistSpec) {
        let name = name.into();
        self.entries.insert(
            name,
            Entry {
                len,
                aligned_with: None,
                spec,
                dynamic: false,
            },
        );
    }

    /// `!HPF$ DYNAMIC, DISTRIBUTE name(spec)` — register a root that may
    /// be redistributed at runtime.
    pub fn distribute_dynamic(&mut self, name: impl Into<String>, len: usize, spec: DistSpec) {
        let name = name.into();
        self.entries.insert(
            name,
            Entry {
                len,
                aligned_with: None,
                spec,
                dynamic: true,
            },
        );
    }

    /// `!HPF$ ALIGN name(:) WITH target(:)` — identity alignment.
    pub fn align(
        &mut self,
        name: impl Into<String>,
        len: usize,
        target: &str,
    ) -> Result<(), AlignError> {
        let name = name.into();
        let root = self.ultimate_target(target)?;
        let root_len = self.entries[&root].len;
        if len != root_len {
            return Err(AlignError::LengthMismatch {
                array: name,
                expected: root_len,
                got: len,
            });
        }
        if name == target || root == name {
            return Err(AlignError::Cycle(name));
        }
        self.entries.insert(
            name,
            Entry {
                len,
                aligned_with: Some(target.to_string()),
                spec: DistSpec::Block, // unused for non-roots
                dynamic: false,
            },
        );
        Ok(())
    }

    /// Resolve the ultimate alignment target of `name` (the paper's
    /// "target of the ultimate alignment").
    pub fn ultimate_target(&self, name: &str) -> Result<String, AlignError> {
        let mut cur = name.to_string();
        let mut steps = 0usize;
        loop {
            let e = self
                .entries
                .get(&cur)
                .ok_or_else(|| AlignError::UnknownArray(cur.clone()))?;
            match &e.aligned_with {
                None => return Ok(cur),
                Some(next) => {
                    cur = next.clone();
                    steps += 1;
                    if steps > self.entries.len() {
                        return Err(AlignError::Cycle(name.to_string()));
                    }
                }
            }
        }
    }

    /// The effective descriptor of `name` (through its ultimate target).
    pub fn descriptor(&self, name: &str) -> Result<ArrayDescriptor, AlignError> {
        let root = self.ultimate_target(name)?;
        let e = &self.entries[&root];
        Ok(ArrayDescriptor::new(
            self.entries[name].len,
            self.np,
            e.spec.clone(),
        ))
    }

    /// Is the array registered as DYNAMIC (directly or via its root)?
    pub fn is_dynamic(&self, name: &str) -> Result<bool, AlignError> {
        let root = self.ultimate_target(name)?;
        Ok(self.entries[&root].dynamic)
    }

    /// `!HPF$ REDISTRIBUTE target(spec)` — change the root's spec and
    /// return the names of *all* arrays whose layout changes (the root
    /// plus everything transitively aligned with it), in sorted order.
    pub fn redistribute(
        &mut self,
        target: &str,
        spec: DistSpec,
    ) -> Result<Vec<String>, AlignError> {
        let root = self.ultimate_target(target)?;
        self.entries.get_mut(&root).unwrap().spec = spec;
        let mut moved: Vec<String> = Vec::new();
        let names: Vec<String> = self.entries.keys().cloned().collect();
        for n in names {
            if self.ultimate_target(&n)? == root {
                moved.push(n);
            }
        }
        moved.sort();
        Ok(moved)
    }

    /// All registered array names.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's Figure 2 alignment set.
    fn paper_graph() -> AlignmentGraph {
        let mut g = AlignmentGraph::new(4);
        let n = 100;
        g.distribute("p", n, DistSpec::Block);
        g.align("q", n, "p").unwrap();
        g.align("r", n, "p").unwrap();
        g.align("x", n, "p").unwrap();
        g.align("b", n, "p").unwrap();
        g
    }

    #[test]
    fn ultimate_target_resolution() {
        let g = paper_graph();
        assert_eq!(g.ultimate_target("q").unwrap(), "p");
        assert_eq!(g.ultimate_target("p").unwrap(), "p");
    }

    #[test]
    fn chained_alignment() {
        let mut g = paper_graph();
        g.align("y", 100, "q").unwrap(); // y -> q -> p
        assert_eq!(g.ultimate_target("y").unwrap(), "p");
        let d = g.descriptor("y").unwrap();
        assert_eq!(d.spec(), &DistSpec::Block);
    }

    #[test]
    fn redistribute_moves_whole_group() {
        let mut g = paper_graph();
        let moved = g.redistribute("p", DistSpec::Cyclic).unwrap();
        assert_eq!(moved, vec!["b", "p", "q", "r", "x"]);
        // All descriptors now cyclic.
        for n in ["p", "q", "r", "x", "b"] {
            assert_eq!(g.descriptor(n).unwrap().spec(), &DistSpec::Cyclic);
        }
    }

    #[test]
    fn redistribute_via_member_affects_root() {
        let mut g = paper_graph();
        // Redistributing through an aligned member targets the root.
        let moved = g.redistribute("r", DistSpec::CyclicK(5)).unwrap();
        assert!(moved.contains(&"p".to_string()));
        assert_eq!(g.descriptor("p").unwrap().spec(), &DistSpec::CyclicK(5));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut g = paper_graph();
        let err = g.align("bad", 50, "p").unwrap_err();
        assert!(matches!(err, AlignError::LengthMismatch { .. }));
    }

    #[test]
    fn unknown_target_rejected() {
        let mut g = AlignmentGraph::new(2);
        assert!(matches!(
            g.align("a", 10, "nope"),
            Err(AlignError::UnknownArray(_))
        ));
        assert!(g.ultimate_target("ghost").is_err());
    }

    #[test]
    fn self_alignment_rejected() {
        let mut g = AlignmentGraph::new(2);
        g.distribute("a", 10, DistSpec::Block);
        assert!(matches!(g.align("a", 10, "a"), Err(AlignError::Cycle(_))));
    }

    #[test]
    fn dynamic_flag_propagates_from_root() {
        let mut g = AlignmentGraph::new(2);
        g.distribute_dynamic("row", 10, DistSpec::Block);
        g.align("a", 10, "row").unwrap();
        assert!(g.is_dynamic("a").unwrap());
        g.distribute("col", 10, DistSpec::Block);
        assert!(!g.is_dynamic("col").unwrap());
    }
}
