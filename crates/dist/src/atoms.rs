//! Indivisible entities ("atoms") — the paper's Section 5.2 extension.
//!
//! "An indivisable entity (atom) is a logical abstraction consisting of a
//! chunk of elements enclosed within two border elements, and it cannot
//! be divided among processors during the data distribution process. It
//! should completely belong to one single processor."
//!
//! ```fortran
//! !EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)
//! !EXT$ REDISTRIBUTE row(ATOM: BLOCK)
//! ```
//!
//! For CSC storage the atoms of the `row`/`a` arrays are the columns: atom
//! `i` spans elements `col(i) .. col(i+1)`. [`AtomSpec`] captures exactly
//! that pointer-array encoding, and [`AtomAssignment`] maps whole atoms to
//! processors (`ATOM:BLOCK`, `ATOM:CYCLIC`, or a partitioner-supplied
//! owner list).

use crate::spec::DistSpec;
use serde::{Deserialize, Serialize};

/// Atom boundaries over a data array of `total_elements()` elements:
/// atom `i` spans `boundaries[i] .. boundaries[i+1]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomSpec {
    boundaries: Vec<usize>,
}

impl AtomSpec {
    /// Build from an HPF-style indirection (pointer) array — the
    /// `INDIVISABLE row(ATOM:i) :: col(i:i+1)` directive, where `col` is
    /// a CSC/CSR pointer array of length `n_atoms + 1`.
    pub fn from_pointer_array(ptr: &[usize]) -> Self {
        assert!(
            ptr.len() >= 2,
            "pointer array needs at least two entries (one atom)"
        );
        assert!(
            ptr.windows(2).all(|w| w[0] <= w[1]),
            "pointer array must be non-decreasing"
        );
        AtomSpec {
            boundaries: ptr.to_vec(),
        }
    }

    /// Uniform atoms of size `k` covering `n_atoms * k` elements.
    pub fn uniform(n_atoms: usize, k: usize) -> Self {
        assert!(n_atoms > 0 && k > 0);
        AtomSpec {
            boundaries: (0..=n_atoms).map(|i| i * k).collect(),
        }
    }

    pub fn n_atoms(&self) -> usize {
        self.boundaries.len() - 1
    }

    pub fn total_elements(&self) -> usize {
        *self.boundaries.last().unwrap()
    }

    /// Element span of atom `i`.
    pub fn atom_range(&self, i: usize) -> std::ops::Range<usize> {
        self.boundaries[i]..self.boundaries[i + 1]
    }

    /// Element count (weight) of atom `i`.
    pub fn atom_size(&self, i: usize) -> usize {
        self.boundaries[i + 1] - self.boundaries[i]
    }

    /// All atom weights.
    pub fn weights(&self) -> Vec<usize> {
        (0..self.n_atoms()).map(|i| self.atom_size(i)).collect()
    }

    /// Which atom contains element `e`?
    pub fn atom_of_element(&self, e: usize) -> usize {
        assert!(e < self.total_elements(), "element {e} out of range");
        match self.boundaries.binary_search(&e) {
            Ok(pos) => {
                // Element at a boundary: belongs to the first non-empty
                // atom starting there.
                let mut a = pos.min(self.n_atoms() - 1);
                while a < self.n_atoms() - 1 && self.boundaries[a + 1] <= e {
                    a += 1;
                }
                a
            }
            Err(pos) => pos - 1,
        }
    }

    /// How many atoms a plain element-wise partition (given as element
    /// cut points) would split across processor boundaries. Plain HPF
    /// `BLOCK` "divides the data array in an even fashion without paying
    /// attention to whether the division point is at the middle of a
    /// column or not" — this counts those torn columns.
    pub fn atoms_split_by(&self, element_cuts: &[usize]) -> usize {
        let mut split = 0usize;
        for &cut in &element_cuts[1..element_cuts.len() - 1] {
            if cut == 0 || cut >= self.total_elements() {
                continue;
            }
            // A cut strictly inside an atom tears it.
            if !self.boundaries.contains(&cut) {
                split += 1;
            }
        }
        split
    }
}

/// Assignment of whole atoms to processors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomAssignment {
    /// `atom_owner[i]` = processor owning atom `i`.
    pub atom_owner: Vec<usize>,
    pub np: usize,
}

impl AtomAssignment {
    /// `REDISTRIBUTE row(ATOM: BLOCK)` — contiguous runs of
    /// `ceil(n_atoms/np)` atoms per processor. "This directive ensures
    /// that the elements of the row vector are distributed in a similar
    /// fashion to the regular HPF BLOCK distribution, yet the atoms
    /// instead of individual elements are used as the basis."
    pub fn atom_block(spec: &AtomSpec, np: usize) -> Self {
        assert!(np > 0);
        let n = spec.n_atoms();
        let bs = n.div_ceil(np).max(1);
        AtomAssignment {
            atom_owner: (0..n).map(|i| (i / bs).min(np - 1)).collect(),
            np,
        }
    }

    /// `REDISTRIBUTE row(ATOM: CYCLIC)` — round-robin atoms.
    pub fn atom_cyclic(spec: &AtomSpec, np: usize) -> Self {
        assert!(np > 0);
        AtomAssignment {
            atom_owner: (0..spec.n_atoms()).map(|i| i % np).collect(),
            np,
        }
    }

    /// From an explicit owner list (e.g. a load-balancing partitioner).
    pub fn from_owners(atom_owner: Vec<usize>, np: usize) -> Self {
        assert!(np > 0);
        assert!(atom_owner.iter().all(|&p| p < np), "owner out of range");
        AtomAssignment { atom_owner, np }
    }

    pub fn n_atoms(&self) -> usize {
        self.atom_owner.len()
    }

    /// Per-processor element loads under this assignment.
    pub fn loads(&self, spec: &AtomSpec) -> Vec<usize> {
        assert_eq!(spec.n_atoms(), self.n_atoms());
        let mut loads = vec![0usize; self.np];
        for (i, &p) in self.atom_owner.iter().enumerate() {
            loads[p] += spec.atom_size(i);
        }
        loads
    }

    /// Load imbalance `max/mean` of element loads (1.0 = perfect).
    pub fn imbalance(&self, spec: &AtomSpec) -> f64 {
        let loads = self.loads(spec);
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<usize>() as f64 / self.np as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Is the assignment contiguous in atom order (each processor owns a
    /// run of consecutive atoms, processors in order)?
    pub fn is_contiguous(&self) -> bool {
        self.atom_owner.windows(2).all(|w| w[0] <= w[1])
    }

    /// For a contiguous assignment, the element cut points (length np+1)
    /// usable as [`DistSpec::IrregularCuts`]. "Since we still keep the
    /// continuity of the column (or row) elements, the compiler avoids
    /// generating a full distribution map of the size of the target
    /// arrays. A small array in the size of the number of processors
    /// keeps the cut-off points."
    pub fn element_cuts(&self, spec: &AtomSpec) -> Option<Vec<usize>> {
        if !self.is_contiguous() {
            return None;
        }
        let mut cuts = vec![0usize; self.np + 1];
        cuts[self.np] = spec.total_elements();
        let mut atom = 0usize;
        for p in 0..self.np {
            cuts[p] = if atom < self.n_atoms() {
                spec.atom_range(atom).start
            } else {
                spec.total_elements()
            };
            while atom < self.n_atoms() && self.atom_owner[atom] == p {
                atom += 1;
            }
        }
        Some(cuts)
    }

    /// Distribution spec for the underlying element array, if contiguous.
    pub fn to_dist_spec(&self, spec: &AtomSpec) -> Option<DistSpec> {
        self.element_cuts(spec).map(DistSpec::IrregularCuts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Atoms from the paper's Figure 1 CSC col pointer (6 columns).
    fn figure1_atoms() -> AtomSpec {
        AtomSpec::from_pointer_array(&[0, 4, 8, 9, 11, 13, 15])
    }

    #[test]
    fn atom_sizes_from_pointer() {
        let a = figure1_atoms();
        assert_eq!(a.n_atoms(), 6);
        assert_eq!(a.total_elements(), 15);
        assert_eq!(a.weights(), vec![4, 4, 1, 2, 2, 2]);
        assert_eq!(a.atom_range(2), 8..9);
    }

    #[test]
    fn atom_of_element_lookup() {
        let a = figure1_atoms();
        assert_eq!(a.atom_of_element(0), 0);
        assert_eq!(a.atom_of_element(3), 0);
        assert_eq!(a.atom_of_element(4), 1);
        assert_eq!(a.atom_of_element(8), 2);
        assert_eq!(a.atom_of_element(14), 5);
    }

    #[test]
    fn plain_block_splits_atoms() {
        let a = figure1_atoms();
        // Element BLOCK over 4 procs: bs = ceil(15/4) = 4 -> cuts 0,4,8,12,15.
        // Cuts at 4 and 8 are atom boundaries; 12 tears atom 4 (11..13).
        assert_eq!(a.atoms_split_by(&[0, 4, 8, 12, 15]), 1);
        // Worse cuts tear more.
        assert_eq!(a.atoms_split_by(&[0, 2, 6, 10, 15]), 3);
        // Atom-aligned cuts tear none.
        assert_eq!(a.atoms_split_by(&[0, 4, 9, 13, 15]), 0);
    }

    #[test]
    fn atom_block_assignment_contiguous() {
        let a = figure1_atoms();
        let asg = AtomAssignment::atom_block(&a, 3);
        assert_eq!(asg.atom_owner, vec![0, 0, 1, 1, 2, 2]);
        assert!(asg.is_contiguous());
        let cuts = asg.element_cuts(&a).unwrap();
        assert_eq!(cuts, vec![0, 8, 11, 15]);
        // No atom split by construction.
        assert_eq!(a.atoms_split_by(&cuts), 0);
    }

    #[test]
    fn atom_cyclic_assignment() {
        let a = figure1_atoms();
        let asg = AtomAssignment::atom_cyclic(&a, 2);
        assert_eq!(asg.atom_owner, vec![0, 1, 0, 1, 0, 1]);
        assert!(!asg.is_contiguous());
        assert!(asg.element_cuts(&a).is_none());
        assert_eq!(asg.loads(&a), vec![4 + 1 + 2, 4 + 2 + 2]);
    }

    #[test]
    fn loads_and_imbalance() {
        let a = AtomSpec::uniform(8, 3);
        let asg = AtomAssignment::atom_block(&a, 4);
        assert_eq!(asg.loads(&a), vec![6, 6, 6, 6]);
        assert!((asg.imbalance(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_assignment_has_imbalance() {
        let a = AtomSpec::from_pointer_array(&[0, 10, 11, 12, 13]);
        let asg = AtomAssignment::atom_block(&a, 2);
        // bs = 2 atoms: p0 gets atoms {0,1} = 11 elements, p1 gets {2,3} = 2.
        assert_eq!(asg.loads(&a), vec![11, 2]);
        assert!(asg.imbalance(&a) > 1.5);
    }

    #[test]
    fn empty_atoms_allowed() {
        let a = AtomSpec::from_pointer_array(&[0, 0, 3, 3, 5]);
        assert_eq!(a.n_atoms(), 4);
        assert_eq!(a.weights(), vec![0, 3, 0, 2]);
        assert_eq!(a.atom_of_element(0), 1);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_pointer_rejected() {
        AtomSpec::from_pointer_array(&[0, 5, 3]);
    }

    #[test]
    fn dist_spec_conversion() {
        let a = figure1_atoms();
        let asg = AtomAssignment::atom_block(&a, 3);
        match asg.to_dist_spec(&a).unwrap() {
            DistSpec::IrregularCuts(c) => assert_eq!(c, vec![0, 8, 11, 15]),
            other => panic!("unexpected spec {other:?}"),
        }
    }
}
