//! Connectivity graph over atoms and the modeled communication metrics
//! partitioners optimise.
//!
//! For a rowwise-distributed sparse matvec `y = A·x`, processor `p` needs
//! `x_j` for every column `j` appearing in a row it owns. With atoms =
//! rows (and square, structurally symmetric `A`), that dependency is the
//! sparsity graph itself: atom `i` is adjacent to atom `j` iff `a_ij ≠ 0`
//! (`i ≠ j`). The hypergraph column-net model of Çatalyürek/Aykanat
//! prices the traffic exactly: `x_j` is owned by one processor and must
//! reach `λ_j − 1` others, where `λ_j` is the number of distinct owners
//! of net `j = {j} ∪ neighbours(j)`. [`comm_volume`] is `Σ_j (λ_j − 1)`
//! in words — the quantity `hpf-machine::predict` then prices in seconds.

use crate::atoms::AtomAssignment;

/// Undirected adjacency over atoms, built from a sparse pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectivityGraph {
    /// `adj[i]` = sorted, deduplicated neighbours of atom `i` (self-loops
    /// removed).
    adj: Vec<Vec<usize>>,
}

impl ConnectivityGraph {
    /// Build from a CSR/CSC pattern with one atom per row: atoms `i` and
    /// `j` are adjacent iff the pattern has an entry `(i, j)` or `(j, i)`.
    /// The pattern need not be symmetric — adjacency is symmetrised.
    pub fn from_pattern(n_atoms: usize, row_ptr: &[usize], col_idx: &[usize]) -> Self {
        assert_eq!(row_ptr.len(), n_atoms + 1, "pointer length mismatch");
        let mut adj = vec![Vec::new(); n_atoms];
        for i in 0..n_atoms {
            for &j in &col_idx[row_ptr[i]..row_ptr[i + 1]] {
                assert!(j < n_atoms, "column index {j} out of range");
                if i != j {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        ConnectivityGraph { adj }
    }

    /// Build from an explicit undirected edge list.
    pub fn from_edges(n_atoms: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n_atoms];
        for &(u, v) in edges {
            assert!(u < n_atoms && v < n_atoms, "edge endpoint out of range");
            if u != v {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        ConnectivityGraph { adj }
    }

    pub fn n_atoms(&self) -> usize {
        self.adj.len()
    }

    /// Sorted neighbours of atom `i` (no self-loop).
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Total undirected edge count.
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }
}

/// Modeled sparse-matvec communication volume in words under the
/// column-net model: `Σ_j (λ_j − 1)` where `λ_j` is the number of
/// distinct processors owning atoms in `{j} ∪ neighbours(j)`. Zero iff
/// no processor ever needs a remote `x_j`.
pub fn comm_volume(graph: &ConnectivityGraph, asg: &AtomAssignment) -> usize {
    assert_eq!(graph.n_atoms(), asg.n_atoms(), "graph/assignment mismatch");
    let np = asg.np;
    // Per-processor "last seen in net j" stamps avoid a HashSet per net.
    let mut stamp = vec![usize::MAX; np];
    let mut volume = 0usize;
    for j in 0..graph.n_atoms() {
        let mut lambda = 0usize;
        let owner_j = asg.atom_owner[j];
        stamp[owner_j] = j;
        lambda += 1;
        for &i in graph.neighbors(j) {
            let p = asg.atom_owner[i];
            if stamp[p] != j {
                stamp[p] = j;
                lambda += 1;
            }
        }
        volume += lambda - 1;
    }
    volume
}

/// Undirected edges whose endpoints live on different processors — the
/// classic graph-cut metric (an upper-bound proxy for comm volume).
pub fn cut_edges(graph: &ConnectivityGraph, asg: &AtomAssignment) -> usize {
    assert_eq!(graph.n_atoms(), asg.n_atoms(), "graph/assignment mismatch");
    let mut cut = 0usize;
    for i in 0..graph.n_atoms() {
        for &j in graph.neighbors(i) {
            if j > i && asg.atom_owner[i] != asg.atom_owner[j] {
                cut += 1;
            }
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::AtomSpec;

    /// 6-atom path graph from a tridiagonal pattern.
    fn path6() -> ConnectivityGraph {
        ConnectivityGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn from_pattern_symmetrises_and_dedups() {
        // Pattern rows: 0 -> {0,1}, 1 -> {1}, 2 -> {0, 0}.
        let g = ConnectivityGraph::from_pattern(3, &[0, 2, 3, 5], &[0, 1, 1, 0, 0]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn path_comm_volume_counts_boundary_nets() {
        let g = path6();
        let spec = AtomSpec::uniform(6, 1);
        // One processor: nothing is remote.
        let one = AtomAssignment::atom_block(&spec, 1);
        assert_eq!(comm_volume(&g, &one), 0);
        // Two contiguous halves: nets 2 and 3 straddle the cut -> λ=2 each.
        let two = AtomAssignment::atom_block(&spec, 2);
        assert_eq!(comm_volume(&g, &two), 2);
        assert_eq!(cut_edges(&g, &two), 1);
        // Cyclic over 2 procs: every net spans both owners.
        let cyc = AtomAssignment::atom_cyclic(&spec, 2);
        assert_eq!(comm_volume(&g, &cyc), 6);
        assert_eq!(cut_edges(&g, &cyc), 5);
    }

    #[test]
    fn volume_invariant_under_relabeling() {
        let g = ConnectivityGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)]);
        let asg = AtomAssignment::from_owners(vec![0, 0, 1, 1, 1], 2);
        let v = comm_volume(&g, &asg);
        // Relabel atoms by permutation π = reverse.
        let perm: Vec<usize> = (0..5).rev().collect();
        let edges: Vec<(usize, usize)> = [(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)]
            .iter()
            .map(|&(u, v)| (perm[u], perm[v]))
            .collect();
        let g2 = ConnectivityGraph::from_edges(5, &edges);
        let mut owner2 = vec![0usize; 5];
        for (a, &p) in asg.atom_owner.iter().enumerate() {
            owner2[perm[a]] = p;
        }
        let asg2 = AtomAssignment::from_owners(owner2, 2);
        assert_eq!(comm_volume(&g2, &asg2), v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_rejected() {
        ConnectivityGraph::from_edges(2, &[(0, 5)]);
    }
}
