//! Distributed Array Descriptors (DADs).
//!
//! The paper (Section 5.2.1): "Distributed array descriptors (DAD) for
//! the dynamically distributed arrays are generated at runtime. DADs
//! contain information about the portions of the arrays residing on each
//! processor. The compiler uses this hint to generate communication calls
//! and to distribute corresponding loop iterations."
//!
//! [`ArrayDescriptor`] answers the three questions every data-parallel
//! operation needs: who owns global index `i`, where does it live in the
//! owner's local storage, and which global indices does processor `p`
//! hold.

use crate::spec::DistSpec;
use serde::{Deserialize, Serialize};

/// Descriptor of a 1-D array of global length `n` distributed over `np`
/// processors according to a [`DistSpec`].
///
/// ```
/// use hpf_dist::ArrayDescriptor;
///
/// // !HPF$ DISTRIBUTE p(BLOCK) over 4 processors, n = 10.
/// let d = ArrayDescriptor::block(10, 4);
/// assert_eq!(d.owner(7), 2);          // block size ceil(10/4) = 3
/// assert_eq!(d.local_offset(7), 1);   // second element of proc 2
/// assert_eq!(d.local_lens(), vec![3, 3, 3, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayDescriptor {
    n: usize,
    np: usize,
    spec: DistSpec,
}

impl ArrayDescriptor {
    pub fn new(n: usize, np: usize, spec: DistSpec) -> Self {
        assert!(np > 0, "descriptor needs at least one processor");
        if let DistSpec::BlockK(k) = spec {
            assert!(k > 0, "BLOCK(k) needs k > 0");
            assert!(
                k * np >= n,
                "BLOCK({k}) over {np} processors cannot hold {n} elements"
            );
        }
        if let DistSpec::CyclicK(k) = spec {
            assert!(k > 0, "CYCLIC(k) needs k > 0");
        }
        if let DistSpec::IrregularCuts(ref cuts) = spec {
            assert_eq!(cuts.len(), np + 1, "cuts must have NP+1 entries");
            assert_eq!(cuts[0], 0, "first cut must be 0");
            assert_eq!(*cuts.last().unwrap(), n, "last cut must be n");
            assert!(
                cuts.windows(2).all(|w| w[0] <= w[1]),
                "cuts must be non-decreasing"
            );
        }
        ArrayDescriptor { n, np, spec }
    }

    /// `DISTRIBUTE a(BLOCK)` over `np` processors.
    pub fn block(n: usize, np: usize) -> Self {
        Self::new(n, np, DistSpec::Block)
    }

    /// `DISTRIBUTE a(CYCLIC)` over `np` processors.
    pub fn cyclic(n: usize, np: usize) -> Self {
        Self::new(n, np, DistSpec::Cyclic)
    }

    /// Replicated array (every processor holds all of it).
    pub fn replicated(n: usize, np: usize) -> Self {
        Self::new(n, np, DistSpec::Replicated)
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn np(&self) -> usize {
        self.np
    }

    pub fn spec(&self) -> &DistSpec {
        &self.spec
    }

    /// Effective block size for the block-family specs.
    fn block_size(&self) -> usize {
        match self.spec {
            DistSpec::Block => self.n.div_ceil(self.np).max(1),
            DistSpec::BlockK(k) => k,
            _ => unreachable!("block_size on non-block spec"),
        }
    }

    /// Owner processor of global index `i`.
    ///
    /// For `Replicated`, ownership is conventional (processor 0) — reads
    /// are local everywhere, writes go through the convention.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n, "global index {i} out of range (n={})", self.n);
        match &self.spec {
            DistSpec::Block | DistSpec::BlockK(_) => (i / self.block_size()).min(self.np - 1),
            DistSpec::Cyclic => i % self.np,
            DistSpec::CyclicK(k) => (i / k) % self.np,
            DistSpec::Replicated => 0,
            DistSpec::IrregularCuts(cuts) => {
                // Binary search for the segment containing i.
                match cuts.binary_search(&i) {
                    Ok(pos) => {
                        // i is exactly a cut: it starts segment `pos`, but
                        // empty segments may follow; find the segment
                        // whose [start, end) contains i.
                        let mut p = pos.min(self.np - 1);
                        while p < self.np - 1 && cuts[p + 1] <= i {
                            p += 1;
                        }
                        p
                    }
                    Err(pos) => pos - 1,
                }
            }
        }
    }

    /// Number of elements processor `p` stores locally.
    pub fn local_len(&self, p: usize) -> usize {
        assert!(p < self.np, "processor {p} out of range");
        match &self.spec {
            DistSpec::Block | DistSpec::BlockK(_) => {
                let bs = self.block_size();
                let start = (p * bs).min(self.n);
                let end = ((p + 1) * bs).min(self.n);
                end - start
            }
            DistSpec::Cyclic => {
                let (q, r) = (self.n / self.np, self.n % self.np);
                q + usize::from(p < r)
            }
            DistSpec::CyclicK(k) => {
                // Count full + partial blocks owned by p.
                let blocks = self.n.div_ceil(*k);
                let mut cnt = 0usize;
                let mut b = p;
                while b < blocks {
                    let start = b * k;
                    let end = ((b + 1) * k).min(self.n);
                    cnt += end - start;
                    b += self.np;
                }
                cnt
            }
            DistSpec::Replicated => self.n,
            DistSpec::IrregularCuts(cuts) => cuts[p + 1] - cuts[p],
        }
    }

    /// Position of global index `i` in its owner's local storage.
    pub fn local_offset(&self, i: usize) -> usize {
        assert!(i < self.n);
        match &self.spec {
            DistSpec::Block | DistSpec::BlockK(_) => {
                let bs = self.block_size();
                let p = self.owner(i);
                i - p * bs
            }
            DistSpec::Cyclic => i / self.np,
            DistSpec::CyclicK(k) => {
                let block = i / k;
                let round = block / self.np;
                round * k + (i % k)
            }
            DistSpec::Replicated => i,
            DistSpec::IrregularCuts(cuts) => i - cuts[self.owner(i)],
        }
    }

    /// Global indices owned by processor `p`, in local-storage order.
    pub fn global_indices(&self, p: usize) -> Vec<usize> {
        assert!(p < self.np);
        match &self.spec {
            DistSpec::Block | DistSpec::BlockK(_) => {
                let bs = self.block_size();
                ((p * bs).min(self.n)..((p + 1) * bs).min(self.n)).collect()
            }
            DistSpec::Cyclic => (p..self.n).step_by(self.np).collect(),
            DistSpec::CyclicK(k) => {
                let blocks = self.n.div_ceil(*k);
                let mut out = Vec::with_capacity(self.local_len(p));
                let mut b = p;
                while b < blocks {
                    let start = b * k;
                    let end = ((b + 1) * k).min(self.n);
                    out.extend(start..end);
                    b += self.np;
                }
                out
            }
            DistSpec::Replicated => (0..self.n).collect(),
            DistSpec::IrregularCuts(cuts) => (cuts[p]..cuts[p + 1]).collect(),
        }
    }

    /// Contiguous global range `[start, end)` owned by `p`, if the layout
    /// is contiguous (block family / irregular cuts).
    pub fn contiguous_range(&self, p: usize) -> Option<std::ops::Range<usize>> {
        match &self.spec {
            DistSpec::Block | DistSpec::BlockK(_) => {
                let bs = self.block_size();
                Some((p * bs).min(self.n)..((p + 1) * bs).min(self.n))
            }
            DistSpec::IrregularCuts(cuts) => Some(cuts[p]..cuts[p + 1]),
            DistSpec::Replicated => Some(0..self.n),
            _ => None,
        }
    }

    /// Per-processor element counts.
    pub fn local_lens(&self) -> Vec<usize> {
        (0..self.np).map(|p| self.local_len(p)).collect()
    }

    /// Do two descriptors place every element identically? (Same owner
    /// for every global index — the "aligned" precondition for
    /// communication-free element-wise operations.)
    pub fn same_layout(&self, other: &ArrayDescriptor) -> bool {
        if self.n != other.n || self.np != other.np {
            return false;
        }
        if self.spec == other.spec {
            return true;
        }
        (0..self.n).all(|i| self.owner(i) == other.owner(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ownership_matches_hpf() {
        // n=10, np=4 -> bs=3: [0..3)->0, [3..6)->1, [6..9)->2, [9..10)->3.
        let d = ArrayDescriptor::block(10, 4);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(2), 0);
        assert_eq!(d.owner(3), 1);
        assert_eq!(d.owner(8), 2);
        assert_eq!(d.owner(9), 3);
        assert_eq!(d.local_lens(), vec![3, 3, 3, 1]);
    }

    #[test]
    fn paper_block_k_places_last_element_on_last_processor() {
        // The paper's BLOCK((n+NP-1)/NP) for row(n+1): with n=8, NP=4 the
        // row array has 9 elements, block size ceil(9/4)=3 ... the paper's
        // intent: the (n+1)th element lands on the last non-empty chunk.
        let n = 9;
        let d = ArrayDescriptor::new(n, 4, DistSpec::paper_block(n, 4));
        assert_eq!(d.owner(8), 2); // ceil(9/4)=3 -> [0..3)(p0) [3..6)(p1) [6..9)(p2)
        assert_eq!(d.local_len(3), 0);
    }

    #[test]
    fn cyclic_round_robin() {
        let d = ArrayDescriptor::cyclic(10, 3);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(1), 1);
        assert_eq!(d.owner(2), 2);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.local_lens(), vec![4, 3, 3]);
        assert_eq!(d.global_indices(0), vec![0, 3, 6, 9]);
        assert_eq!(d.local_offset(6), 2);
    }

    #[test]
    fn cyclic_k_blocks() {
        let d = ArrayDescriptor::new(12, 2, DistSpec::CyclicK(3));
        // Blocks: [0..3)->0, [3..6)->1, [6..9)->0, [9..12)->1.
        assert_eq!(d.owner(1), 0);
        assert_eq!(d.owner(4), 1);
        assert_eq!(d.owner(7), 0);
        assert_eq!(d.owner(10), 1);
        assert_eq!(d.global_indices(0), vec![0, 1, 2, 6, 7, 8]);
        assert_eq!(d.local_offset(7), 4);
        assert_eq!(d.local_len(0), 6);
    }

    #[test]
    fn replicated_everyone_has_all() {
        let d = ArrayDescriptor::replicated(5, 4);
        for p in 0..4 {
            assert_eq!(d.local_len(p), 5);
        }
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.local_offset(3), 3);
    }

    #[test]
    fn irregular_cuts_ownership() {
        let d = ArrayDescriptor::new(10, 3, DistSpec::IrregularCuts(vec![0, 4, 4, 10]));
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.owner(4), 2); // segment 1 is empty
        assert_eq!(d.owner(9), 2);
        assert_eq!(d.local_lens(), vec![4, 0, 6]);
        assert_eq!(d.local_offset(5), 1);
    }

    #[test]
    fn local_global_inverse_for_all_specs() {
        let specs = vec![
            DistSpec::Block,
            DistSpec::BlockK(4),
            DistSpec::Cyclic,
            DistSpec::CyclicK(2),
            DistSpec::IrregularCuts(vec![0, 2, 7, 11]),
        ];
        for spec in specs {
            let d = ArrayDescriptor::new(11, 3, spec.clone());
            for p in 0..3 {
                for (local, &g) in d.global_indices(p).iter().enumerate() {
                    assert_eq!(d.owner(g), p, "{spec:?} owner of {g}");
                    assert_eq!(d.local_offset(g), local, "{spec:?} offset of {g}");
                }
            }
            let total: usize = d.local_lens().iter().sum();
            assert_eq!(total, 11, "{spec:?} covers all elements");
        }
    }

    #[test]
    fn same_layout_detects_equivalence() {
        let a = ArrayDescriptor::block(12, 4);
        let b = ArrayDescriptor::new(12, 4, DistSpec::BlockK(3));
        assert!(a.same_layout(&b)); // block size ceil(12/4)=3 == BLOCK(3)
        let c = ArrayDescriptor::cyclic(12, 4);
        assert!(!a.same_layout(&c));
        let cuts = ArrayDescriptor::new(12, 4, DistSpec::IrregularCuts(vec![0, 3, 6, 9, 12]));
        assert!(a.same_layout(&cuts));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn too_small_block_rejected() {
        ArrayDescriptor::new(100, 4, DistSpec::BlockK(10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_bounds_checked() {
        ArrayDescriptor::block(10, 2).owner(10);
    }

    #[test]
    fn empty_array_ok() {
        let d = ArrayDescriptor::block(0, 4);
        assert!(d.is_empty());
        assert_eq!(d.local_lens(), vec![0, 0, 0, 0]);
    }
}
