//! Load-balancing sparse partitioners — the paper's
//! `REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1` extension.
//!
//! "It is possible to specify a load-balancing heuristic that is applied
//! to the A, row and col arrays to cluster the rows in a way that can be
//! distributed among the processors in an almost even-load fashion."
//! (Section 5.2.2)
//!
//! Two partitioners are provided:
//!
//! * [`balanced_contiguous`] — keeps atoms (columns/rows) in order and
//!   chooses cut points minimising the bottleneck load (exact, via binary
//!   search over the bottleneck + greedy feasibility check). Contiguity
//!   preserves the cheap `O(NP)` cut-points representation.
//! * [`greedy_lpt`] — Longest-Processing-Time bin packing; atoms may be
//!   scattered, achieving tighter balance at the price of a full
//!   atom→processor map (and lost locality).

use crate::atoms::{AtomAssignment, AtomSpec};

/// Per-processor loads for an owner assignment and weights.
pub fn loads(weights: &[usize], owners: &[usize], np: usize) -> Vec<usize> {
    assert_eq!(weights.len(), owners.len());
    let mut l = vec![0usize; np];
    for (&w, &p) in weights.iter().zip(owners.iter()) {
        l[p] += w;
    }
    l
}

/// `max/mean` imbalance of a load vector (1.0 = perfect balance).
pub fn imbalance(loads: &[usize]) -> f64 {
    assert!(!loads.is_empty());
    let max = *loads.iter().max().unwrap() as f64;
    let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Can `weights` be split into `np` contiguous groups, each of total
/// weight at most `cap`?
fn feasible(weights: &[usize], np: usize, cap: usize) -> bool {
    if weights.iter().any(|&w| w > cap) {
        return false;
    }
    let mut groups = 1usize;
    let mut cur = 0usize;
    for &w in weights {
        if cur + w > cap {
            groups += 1;
            cur = w;
            if groups > np {
                return false;
            }
        } else {
            cur += w;
        }
    }
    true
}

/// Contiguous bottleneck-minimising partition of `weights` into `np`
/// ordered groups. Returns atom cut points of length `np + 1`
/// (`cuts[p]..cuts[p+1]` = atoms of processor `p`). This is
/// `CG_BALANCED_PARTITIONER_1`.
pub fn balanced_contiguous(weights: &[usize], np: usize) -> Vec<usize> {
    assert!(np > 0);
    let n = weights.len();
    if n == 0 {
        return vec![0; np + 1];
    }
    // Binary search the minimal feasible bottleneck.
    let mut lo = *weights.iter().max().unwrap();
    let mut hi = weights.iter().sum::<usize>();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(weights, np, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let cap = lo;
    // Greedy assignment with that bottleneck, leaving later groups room.
    let mut cuts = Vec::with_capacity(np + 1);
    cuts.push(0usize);
    let mut cur = 0usize;
    let mut i = 0usize;
    for _ in 0..np - 1 {
        while i < n && cur + weights[i] <= cap {
            cur += weights[i];
            i += 1;
        }
        cuts.push(i);
        cur = 0;
    }
    cuts.push(n);
    cuts
}

/// Turn atom cut points into an [`AtomAssignment`].
pub fn assignment_from_cuts(cuts: &[usize], n_atoms: usize) -> AtomAssignment {
    let np = cuts.len() - 1;
    let mut owner = vec![0usize; n_atoms];
    for p in 0..np {
        for a in cuts[p]..cuts[p + 1] {
            owner[a] = p;
        }
    }
    AtomAssignment::from_owners(owner, np)
}

/// Longest-Processing-Time greedy bin packing: sort atoms by weight
/// descending, place each on the least-loaded processor. Returns the
/// owner of each atom. 4/3-approximation of the optimal makespan.
pub fn greedy_lpt(weights: &[usize], np: usize) -> Vec<usize> {
    assert!(np > 0);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut load = vec![0usize; np];
    let mut owner = vec![0usize; weights.len()];
    for i in order {
        let p = (0..np).min_by_key(|&p| load[p]).unwrap();
        owner[i] = p;
        load[p] += weights[i];
    }
    owner
}

/// Convenience: run `CG_BALANCED_PARTITIONER_1` over a sparse pointer
/// array (atoms = columns/rows) and return the [`AtomAssignment`].
pub fn cg_balanced_partitioner_1(spec: &AtomSpec, np: usize) -> AtomAssignment {
    let cuts = balanced_contiguous(&spec.weights(), np);
    assignment_from_cuts(&cuts, spec.n_atoms())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_contiguous_uniform_weights() {
        let w = vec![1usize; 12];
        let cuts = balanced_contiguous(&w, 4);
        assert_eq!(cuts, vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn balanced_contiguous_skewed_weights() {
        // One huge atom: it must sit alone; the rest spread out.
        let w = vec![100, 1, 1, 1, 1, 1, 1];
        let cuts = balanced_contiguous(&w, 3);
        let asg = assignment_from_cuts(&cuts, w.len());
        let l = loads(&w, &asg.atom_owner, 3);
        assert_eq!(*l.iter().max().unwrap(), 100);
        // All atoms covered exactly once.
        assert_eq!(l.iter().sum::<usize>(), 106);
    }

    #[test]
    fn balanced_contiguous_is_optimal_bottleneck() {
        let w = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let cuts = balanced_contiguous(&w, 3);
        let asg = assignment_from_cuts(&cuts, w.len());
        let l = loads(&w, &asg.atom_owner, 3);
        let bottleneck = *l.iter().max().unwrap();
        // Exhaustive check: no contiguous 3-partition beats it.
        let n = w.len();
        let mut best = usize::MAX;
        for c1 in 0..=n {
            for c2 in c1..=n {
                let s1: usize = w[..c1].iter().sum();
                let s2: usize = w[c1..c2].iter().sum();
                let s3: usize = w[c2..].iter().sum();
                best = best.min(s1.max(s2).max(s3));
            }
        }
        assert_eq!(bottleneck, best);
    }

    #[test]
    fn feasible_respects_cap() {
        assert!(feasible(&[2, 2, 2], 3, 2));
        assert!(!feasible(&[3, 2, 2], 3, 2));
        assert!(feasible(&[1, 1, 1, 1], 2, 2));
        assert!(!feasible(&[1, 1, 1, 1], 2, 1));
    }

    #[test]
    fn greedy_lpt_balances_better_than_block() {
        // Power-law-ish weights.
        let w: Vec<usize> = (1..=32).map(|i| 256 / i).collect();
        let np = 4;
        let lpt_owner = greedy_lpt(&w, np);
        let lpt_imb = imbalance(&loads(&w, &lpt_owner, np));
        // Plain contiguous equal-count blocks.
        let bs = w.len().div_ceil(np);
        let block_owner: Vec<usize> = (0..w.len()).map(|i| (i / bs).min(np - 1)).collect();
        let block_imb = imbalance(&loads(&w, &block_owner, np));
        assert!(
            lpt_imb < block_imb,
            "LPT {lpt_imb} should beat BLOCK {block_imb}"
        );
        assert!(lpt_imb < 1.4);
    }

    #[test]
    fn lpt_covers_every_atom_once() {
        let w = vec![5, 3, 8, 1, 9, 2];
        let owner = greedy_lpt(&w, 3);
        assert_eq!(owner.len(), 6);
        assert!(owner.iter().all(|&p| p < 3));
        let l = loads(&w, &owner, 3);
        assert_eq!(l.iter().sum::<usize>(), 28);
    }

    #[test]
    fn cg_partitioner_over_atoms() {
        let spec = AtomSpec::from_pointer_array(&[0, 10, 11, 12, 22, 23, 24]);
        let asg = cg_balanced_partitioner_1(&spec, 3);
        assert!(asg.is_contiguous());
        let imb = asg.imbalance(&spec);
        // Atom-count BLOCK would pair the two heavy atoms badly; the
        // balanced partitioner keeps bottleneck minimal (12 of 24 total).
        assert!(imb <= 1.51, "imbalance {imb}");
    }

    #[test]
    fn empty_weights() {
        let cuts = balanced_contiguous(&[], 3);
        assert_eq!(cuts, vec![0, 0, 0, 0]);
        assert_eq!(imbalance(&[0, 0]), 1.0);
    }

    #[test]
    fn single_processor_takes_all() {
        let w = vec![4, 5, 6];
        let cuts = balanced_contiguous(&w, 1);
        assert_eq!(cuts, vec![0, 3]);
        let owner = greedy_lpt(&w, 1);
        assert!(owner.iter().all(|&p| p == 0));
    }
}
