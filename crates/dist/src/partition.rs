//! Load-balancing sparse partitioners — the paper's
//! `REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1` extension.
//!
//! "It is possible to specify a load-balancing heuristic that is applied
//! to the A, row and col arrays to cluster the rows in a way that can be
//! distributed among the processors in an almost even-load fashion."
//! (Section 5.2.2)
//!
//! Two free-function partitioners are provided here:
//!
//! * [`balanced_contiguous`] — keeps atoms (columns/rows) in order and
//!   chooses cut points minimising the bottleneck load (exact, via binary
//!   search over the bottleneck + greedy feasibility check). Contiguity
//!   preserves the cheap `O(NP)` cut-points representation.
//! * [`greedy_lpt`] — Longest-Processing-Time bin packing; atoms may be
//!   scattered, achieving tighter balance at the price of a full
//!   atom→processor map (and lost locality).
//!
//! The [`Partitioner`] trait is the pluggable `USING <name>` hook: any
//! heuristic that maps `(AtomSpec, ConnectivityGraph, NP)` to an
//! [`AtomAssignment`] can sit behind `REDISTRIBUTE ... USING <name>`.
//! Communication-aware implementations (hypergraph-inspired, spectral)
//! live in the `hpf-partition` crate; this crate defines the contract so
//! `redistribute` can accept a `&dyn Partitioner` without a dependency
//! cycle.

use crate::atoms::{AtomAssignment, AtomSpec};
use crate::graph::{comm_volume, ConnectivityGraph};
use std::fmt;

/// Typed failure of a partitioning request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// `np == 0`: there is no processor to own anything.
    ZeroProcessors,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroProcessors => {
                write!(f, "cannot partition onto zero processors")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A pluggable sparse partitioner — the heuristic named by the paper's
/// proposed `REDISTRIBUTE smA USING <name>` directive.
///
/// Implementations receive the atom boundaries (row/column weights), the
/// sparsity connectivity graph over atoms, and the processor count, and
/// must return a total assignment of atoms to processors. The assignment
/// need not be contiguous; scattered layouts cost a full owner map (see
/// [`AtomAssignment::element_cuts`]) but can cut communication volume.
pub trait Partitioner {
    /// Stable lowercase identifier. It becomes the `<name>` in
    /// `REDISTRIBUTE ... USING <name>` trace labels and is part of the
    /// solver-service plan-cache key, so it must be unique per heuristic.
    fn name(&self) -> &'static str;

    /// Assign every atom to a processor `< np`. Implementations may
    /// panic on `np == 0` (the typed-error path is the free functions);
    /// callers reaching this from user input should validate first.
    fn partition(&self, spec: &AtomSpec, graph: &ConnectivityGraph, np: usize) -> AtomAssignment;

    /// Modeled communication volume (words per sparse matvec) of the
    /// layout this partitioner produces — the column-net connectivity
    /// metric `Σ_j (λ_j − 1)` priced later by `hpf-machine::predict`.
    fn modeled_comm_volume(&self, spec: &AtomSpec, graph: &ConnectivityGraph, np: usize) -> usize {
        comm_volume(graph, &self.partition(spec, graph, np))
    }
}

/// Per-processor loads for an owner assignment and weights.
pub fn loads(weights: &[usize], owners: &[usize], np: usize) -> Vec<usize> {
    assert_eq!(weights.len(), owners.len());
    let mut l = vec![0usize; np];
    for (&w, &p) in weights.iter().zip(owners.iter()) {
        l[p] += w;
    }
    l
}

/// `max/mean` imbalance of a load vector (1.0 = perfect balance).
///
/// Degenerate inputs are defined, not errors: an empty or all-zero load
/// vector has nothing out of balance, so the imbalance is 0.0 (there is
/// no overloaded processor to speak of, and callers gating on
/// `imbalance > threshold` must not fire on idle machines).
pub fn imbalance(loads: &[usize]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = *loads.iter().max().unwrap() as f64;
    let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        max / mean
    }
}

/// Can `weights` be split into `np` contiguous groups, each of total
/// weight at most `cap`?
fn feasible(weights: &[usize], np: usize, cap: usize) -> bool {
    if weights.iter().any(|&w| w > cap) {
        return false;
    }
    let mut groups = 1usize;
    let mut cur = 0usize;
    for &w in weights {
        if cur + w > cap {
            groups += 1;
            cur = w;
            if groups > np {
                return false;
            }
        } else {
            cur += w;
        }
    }
    true
}

/// Contiguous bottleneck-minimising partition of `weights` into `np`
/// ordered groups. Returns atom cut points of length `np + 1`
/// (`cuts[p]..cuts[p+1]` = atoms of processor `p`). This is
/// `CG_BALANCED_PARTITIONER_1`.
pub fn balanced_contiguous(weights: &[usize], np: usize) -> Result<Vec<usize>, PartitionError> {
    if np == 0 {
        return Err(PartitionError::ZeroProcessors);
    }
    let n = weights.len();
    if n == 0 {
        return Ok(vec![0; np + 1]);
    }
    // Binary search the minimal feasible bottleneck.
    let mut lo = *weights.iter().max().unwrap();
    let mut hi = weights.iter().sum::<usize>();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(weights, np, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let cap = lo;
    // Greedy assignment with that bottleneck, leaving later groups room.
    let mut cuts = Vec::with_capacity(np + 1);
    cuts.push(0usize);
    let mut cur = 0usize;
    let mut i = 0usize;
    for _ in 0..np - 1 {
        while i < n && cur + weights[i] <= cap {
            cur += weights[i];
            i += 1;
        }
        cuts.push(i);
        cur = 0;
    }
    cuts.push(n);
    Ok(cuts)
}

/// Turn atom cut points into an [`AtomAssignment`].
pub fn assignment_from_cuts(cuts: &[usize], n_atoms: usize) -> AtomAssignment {
    let np = cuts.len() - 1;
    let mut owner = vec![0usize; n_atoms];
    for p in 0..np {
        for a in cuts[p]..cuts[p + 1] {
            owner[a] = p;
        }
    }
    AtomAssignment::from_owners(owner, np)
}

/// Longest-Processing-Time greedy bin packing: sort atoms by weight
/// descending, place each on the least-loaded processor. Returns the
/// owner of each atom. 4/3-approximation of the optimal makespan.
pub fn greedy_lpt(weights: &[usize], np: usize) -> Result<Vec<usize>, PartitionError> {
    if np == 0 {
        return Err(PartitionError::ZeroProcessors);
    }
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut load = vec![0usize; np];
    let mut owner = vec![0usize; weights.len()];
    for i in order {
        let p = (0..np).min_by_key(|&p| load[p]).unwrap();
        owner[i] = p;
        load[p] += weights[i];
    }
    Ok(owner)
}

/// Convenience: run `CG_BALANCED_PARTITIONER_1` over a sparse pointer
/// array (atoms = columns/rows) and return the [`AtomAssignment`].
///
/// Panics on `np == 0`; use [`balanced_contiguous`] directly for the
/// typed-error path.
pub fn cg_balanced_partitioner_1(spec: &AtomSpec, np: usize) -> AtomAssignment {
    let cuts = balanced_contiguous(&spec.weights(), np).expect("np must be > 0");
    assignment_from_cuts(&cuts, spec.n_atoms())
}

/// Project an arbitrary (possibly scattered) atom assignment onto the
/// contiguous cut-point form the cheap `O(NP)` descriptors and the
/// rowwise distributed operator require. Returns *atom* cut points of
/// length `np + 1` (`cuts[p]..cuts[p+1]` = atoms of processor `p`); with
/// atoms = matrix rows these feed `RowwiseCsr::with_row_cuts` directly.
///
/// A contiguous assignment round-trips exactly. A scattered one keeps the
/// *load profile* of the original: target per-processor element loads are
/// taken from the assignment, processors are ordered by the mean index of
/// the atoms they own (so the cut order follows the partitioner's
/// geometry), and atoms are then dealt out in order to match the targets.
pub fn contiguous_projection(spec: &AtomSpec, asg: &AtomAssignment) -> Vec<usize> {
    assert_eq!(spec.n_atoms(), asg.n_atoms(), "spec/assignment mismatch");
    let np = asg.np;
    let n = spec.n_atoms();
    if asg.is_contiguous() {
        // Owner runs are already cuts.
        let mut cuts = vec![0usize; np + 1];
        cuts[np] = n;
        let mut a = 0usize;
        for (p, cut) in cuts.iter_mut().enumerate().take(np) {
            *cut = a;
            while a < n && asg.atom_owner[a] == p {
                a += 1;
            }
        }
        return cuts;
    }
    // Order processors by the mean atom index they own.
    let mut centroid: Vec<(f64, usize)> = (0..np).map(|p| (f64::MAX, p)).collect();
    let mut sum = vec![0usize; np];
    let mut cnt = vec![0usize; np];
    for (a, &p) in asg.atom_owner.iter().enumerate() {
        sum[p] += a;
        cnt[p] += 1;
    }
    for p in 0..np {
        if cnt[p] > 0 {
            centroid[p].0 = sum[p] as f64 / cnt[p] as f64;
        }
    }
    centroid.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let loads = asg.loads(spec);
    let targets: Vec<usize> = centroid.iter().map(|&(_, p)| loads[p]).collect();

    let mut cuts = Vec::with_capacity(np + 1);
    cuts.push(0usize);
    let mut atom = 0usize;
    for (g, &target) in targets.iter().enumerate().take(np - 1) {
        let remaining_groups = np - 1 - g;
        let mut acc = 0usize;
        // Fill to the target but always leave one atom per later group
        // when enough atoms exist.
        while atom < n && acc < target && n - atom > remaining_groups {
            acc += spec.atom_size(atom);
            atom += 1;
        }
        cuts.push(atom);
    }
    cuts.push(n);
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_contiguous_uniform_weights() {
        let w = vec![1usize; 12];
        let cuts = balanced_contiguous(&w, 4).unwrap();
        assert_eq!(cuts, vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn balanced_contiguous_skewed_weights() {
        // One huge atom: it must sit alone; the rest spread out.
        let w = vec![100, 1, 1, 1, 1, 1, 1];
        let cuts = balanced_contiguous(&w, 3).unwrap();
        let asg = assignment_from_cuts(&cuts, w.len());
        let l = loads(&w, &asg.atom_owner, 3);
        assert_eq!(*l.iter().max().unwrap(), 100);
        // All atoms covered exactly once.
        assert_eq!(l.iter().sum::<usize>(), 106);
    }

    #[test]
    fn balanced_contiguous_is_optimal_bottleneck() {
        let w = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let cuts = balanced_contiguous(&w, 3).unwrap();
        let asg = assignment_from_cuts(&cuts, w.len());
        let l = loads(&w, &asg.atom_owner, 3);
        let bottleneck = *l.iter().max().unwrap();
        // Exhaustive check: no contiguous 3-partition beats it.
        let n = w.len();
        let mut best = usize::MAX;
        for c1 in 0..=n {
            for c2 in c1..=n {
                let s1: usize = w[..c1].iter().sum();
                let s2: usize = w[c1..c2].iter().sum();
                let s3: usize = w[c2..].iter().sum();
                best = best.min(s1.max(s2).max(s3));
            }
        }
        assert_eq!(bottleneck, best);
    }

    #[test]
    fn feasible_respects_cap() {
        assert!(feasible(&[2, 2, 2], 3, 2));
        assert!(!feasible(&[3, 2, 2], 3, 2));
        assert!(feasible(&[1, 1, 1, 1], 2, 2));
        assert!(!feasible(&[1, 1, 1, 1], 2, 1));
    }

    #[test]
    fn greedy_lpt_balances_better_than_block() {
        // Power-law-ish weights.
        let w: Vec<usize> = (1..=32).map(|i| 256 / i).collect();
        let np = 4;
        let lpt_owner = greedy_lpt(&w, np).unwrap();
        let lpt_imb = imbalance(&loads(&w, &lpt_owner, np));
        // Plain contiguous equal-count blocks.
        let bs = w.len().div_ceil(np);
        let block_owner: Vec<usize> = (0..w.len()).map(|i| (i / bs).min(np - 1)).collect();
        let block_imb = imbalance(&loads(&w, &block_owner, np));
        assert!(
            lpt_imb < block_imb,
            "LPT {lpt_imb} should beat BLOCK {block_imb}"
        );
        assert!(lpt_imb < 1.4);
    }

    #[test]
    fn lpt_covers_every_atom_once() {
        let w = vec![5, 3, 8, 1, 9, 2];
        let owner = greedy_lpt(&w, 3).unwrap();
        assert_eq!(owner.len(), 6);
        assert!(owner.iter().all(|&p| p < 3));
        let l = loads(&w, &owner, 3);
        assert_eq!(l.iter().sum::<usize>(), 28);
    }

    #[test]
    fn cg_partitioner_over_atoms() {
        let spec = AtomSpec::from_pointer_array(&[0, 10, 11, 12, 22, 23, 24]);
        let asg = cg_balanced_partitioner_1(&spec, 3);
        assert!(asg.is_contiguous());
        let imb = asg.imbalance(&spec);
        // Atom-count BLOCK would pair the two heavy atoms badly; the
        // balanced partitioner keeps bottleneck minimal (12 of 24 total).
        assert!(imb <= 1.51, "imbalance {imb}");
    }

    #[test]
    fn empty_weights() {
        let cuts = balanced_contiguous(&[], 3).unwrap();
        assert_eq!(cuts, vec![0, 0, 0, 0]);
    }

    #[test]
    fn imbalance_of_degenerate_loads_is_zero() {
        // Empty and all-zero load vectors are perfectly idle, not
        // "imbalanced": the auto-repartitioner gates on this value.
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0]), 0.0);
        assert_eq!(imbalance(&[0]), 0.0);
        // Normal case unchanged.
        assert!((imbalance(&[2, 2]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[3, 1]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_processors_is_a_typed_error() {
        assert_eq!(
            balanced_contiguous(&[1, 2, 3], 0),
            Err(PartitionError::ZeroProcessors)
        );
        assert_eq!(
            greedy_lpt(&[1, 2, 3], 0),
            Err(PartitionError::ZeroProcessors)
        );
        let msg = PartitionError::ZeroProcessors.to_string();
        assert!(msg.contains("zero processors"));
    }

    #[test]
    fn single_processor_takes_all() {
        let w = vec![4, 5, 6];
        let cuts = balanced_contiguous(&w, 1).unwrap();
        assert_eq!(cuts, vec![0, 3]);
        let owner = greedy_lpt(&w, 1).unwrap();
        assert!(owner.iter().all(|&p| p == 0));
    }

    #[test]
    fn contiguous_projection_roundtrips_contiguous() {
        let spec = AtomSpec::from_pointer_array(&[0, 4, 8, 9, 11, 13, 15]);
        let asg = AtomAssignment::atom_block(&spec, 3);
        // atom_block over 6 atoms, 3 procs: 2 atoms each.
        assert_eq!(contiguous_projection(&spec, &asg), vec![0, 2, 4, 6]);
    }

    #[test]
    fn contiguous_projection_of_scattered_keeps_profile() {
        let spec = AtomSpec::uniform(8, 2);
        // Cyclic over 2 procs: each owns 8 elements (4 atoms).
        let asg = AtomAssignment::atom_cyclic(&spec, 2);
        let cuts = contiguous_projection(&spec, &asg);
        // Balanced halves: the projection preserves the 8/8 load split.
        assert_eq!(cuts, vec![0, 4, 8]);
        let projected = assignment_from_cuts(&cuts, 8);
        assert_eq!(projected.loads(&spec), asg.loads(&spec));
    }
}
