//! HPF distribution specifications.
//!
//! These are the typed equivalents of the paper's directives:
//!
//! ```fortran
//! !HPF$ PROCESSORS :: PROCS(NP)
//! !HPF$ DISTRIBUTE p(BLOCK)
//! !HPF$ DISTRIBUTE row(BLOCK( (n+NP-1)/NP ))
//! !HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))
//! ```
//!
//! plus the paper's proposed extensions (Section 5.2): `ATOM:BLOCK` /
//! `ATOM:CYCLIC` distributions that never split an indivisible entity,
//! and `REDISTRIBUTE ... USING <partitioner>` load-balanced layouts.

use serde::{Deserialize, Serialize};

/// An HPF distribution directive for a one-dimensional array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistSpec {
    /// `DISTRIBUTE a(BLOCK)`: contiguous blocks of size `ceil(n/NP)`.
    Block,
    /// `DISTRIBUTE a(BLOCK(k))`: contiguous blocks of explicit size `k`.
    /// The paper uses `BLOCK((n+NP-1)/NP)` "to ensure that the (n+1)'th
    /// element of row is placed in the last processor".
    BlockK(usize),
    /// `DISTRIBUTE a(CYCLIC)`: round-robin single elements.
    Cyclic,
    /// `DISTRIBUTE a(CYCLIC(k))`: round-robin blocks of `k`.
    CyclicK(usize),
    /// Replicated on every processor (HPF `ALIGN` with `*`).
    Replicated,
    /// Extension (Section 5.2.1): block distribution over *atoms* —
    /// contiguous, but cut only at the given atom boundaries. The vector
    /// holds the element index at which each processor's part starts
    /// (length NP+1, first 0, last n). "A small array in the size of the
    /// number of processors keeps the cut-off points."
    IrregularCuts(Vec<usize>),
}

impl DistSpec {
    /// Short HPF-style rendering for reports.
    pub fn directive(&self) -> String {
        match self {
            DistSpec::Block => "BLOCK".to_string(),
            DistSpec::BlockK(k) => format!("BLOCK({k})"),
            DistSpec::Cyclic => "CYCLIC".to_string(),
            DistSpec::CyclicK(k) => format!("CYCLIC({k})"),
            DistSpec::Replicated => "*".to_string(),
            DistSpec::IrregularCuts(_) => "ATOM-CUTS".to_string(),
        }
    }

    /// The paper's explicit block size `(n+NP-1)/NP`.
    pub fn paper_block(n: usize, np: usize) -> DistSpec {
        DistSpec::BlockK(n.div_ceil(np))
    }
}

/// The `PROCESSORS` directive: a named 1-D processor arrangement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorGrid {
    pub name: String,
    pub np: usize,
}

impl ProcessorGrid {
    pub fn new(name: impl Into<String>, np: usize) -> Self {
        assert!(np > 0, "PROCESSORS grid needs at least one processor");
        ProcessorGrid {
            name: name.into(),
            np,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_rendering() {
        assert_eq!(DistSpec::Block.directive(), "BLOCK");
        assert_eq!(DistSpec::BlockK(25).directive(), "BLOCK(25)");
        assert_eq!(DistSpec::Cyclic.directive(), "CYCLIC");
        assert_eq!(DistSpec::CyclicK(4).directive(), "CYCLIC(4)");
        assert_eq!(DistSpec::Replicated.directive(), "*");
    }

    #[test]
    fn paper_block_size() {
        // (n + NP - 1) / NP with n=10, NP=4 -> 3.
        assert_eq!(DistSpec::paper_block(10, 4), DistSpec::BlockK(3));
        assert_eq!(DistSpec::paper_block(12, 4), DistSpec::BlockK(3));
        assert_eq!(DistSpec::paper_block(13, 4), DistSpec::BlockK(4));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_grid_rejected() {
        ProcessorGrid::new("PROCS", 0);
    }
}
