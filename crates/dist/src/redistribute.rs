//! `REDISTRIBUTE` — data movement between two layouts.
//!
//! "The REDISTRIBUTE directive indicates that the data is available for
//! use in the partitioning of the data arrays. The user is responsible
//! for putting the REDISTRIBUTE directive in the proper place to improve
//! the performance." (Section 5.2.1)
//!
//! Given the old and new [`ArrayDescriptor`]s this module computes the
//! exact processor-to-processor traffic matrix and charges it to the
//! simulated [`Machine`] as an irregular exchange.

use crate::descriptor::ArrayDescriptor;
use hpf_machine::Machine;

/// Words each processor must send to each other processor to move an
/// array from `from` to `to` layout. `matrix[s][d]` = elements owned by
/// `s` under `from` that `d` owns under `to`.
pub fn traffic_matrix(from: &ArrayDescriptor, to: &ArrayDescriptor) -> Vec<Vec<usize>> {
    assert_eq!(from.len(), to.len(), "redistribute length mismatch");
    assert_eq!(from.np(), to.np(), "redistribute processor-count mismatch");
    let np = from.np();
    let mut m = vec![vec![0usize; np]; np];
    for i in 0..from.len() {
        let s = from.owner(i);
        let d = to.owner(i);
        if s != d {
            m[s][d] += 1;
        }
    }
    m
}

/// Total words moved by a redistribution.
pub fn total_words(from: &ArrayDescriptor, to: &ArrayDescriptor) -> usize {
    traffic_matrix(from, to)
        .iter()
        .map(|row| row.iter().sum::<usize>())
        .sum()
}

/// Execute the redistribution on the simulated machine (charging the
/// modeled exchange cost) and return the simulated time.
pub fn redistribute(
    machine: &mut Machine,
    from: &ArrayDescriptor,
    to: &ArrayDescriptor,
    label: &str,
) -> f64 {
    assert_eq!(machine.np(), from.np(), "machine size mismatch");
    let m = traffic_matrix(from, to);
    machine.exchange(&m, label)
}

/// Permute a globally-indexed data vector from one local layout to the
/// other: given per-processor local data under `from`, produce the
/// per-processor local data under `to`. (The simulator holds real data;
/// this performs the actual movement the traffic matrix models.)
pub fn permute_local_data(
    from: &ArrayDescriptor,
    to: &ArrayDescriptor,
    local: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    assert_eq!(from.np(), local.len());
    let np = from.np();
    let mut out: Vec<Vec<f64>> = (0..np).map(|p| vec![0.0; to.local_len(p)]).collect();
    for p in 0..np {
        for (off, &g) in from.global_indices(p).iter().enumerate() {
            let d = to.owner(g);
            out[d][to.local_offset(g)] = local[p][off];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DistSpec;
    use hpf_machine::{CostModel, Topology};

    #[test]
    fn block_to_same_block_is_free() {
        let d = ArrayDescriptor::block(16, 4);
        assert_eq!(total_words(&d, &d), 0);
    }

    #[test]
    fn block_to_cyclic_moves_most_elements() {
        let from = ArrayDescriptor::block(16, 4);
        let to = ArrayDescriptor::cyclic(16, 4);
        // Under block, p owns 4 consecutive; under cyclic only 1 of each 4
        // stays home.
        assert_eq!(total_words(&from, &to), 12);
    }

    #[test]
    fn traffic_matrix_rows_match_ownership() {
        let from = ArrayDescriptor::block(8, 2);
        let to = ArrayDescriptor::cyclic(8, 2);
        let m = traffic_matrix(&from, &to);
        // p0 owns 0..4 under block; odd ones (1,3) go to p1.
        assert_eq!(m[0][1], 2);
        assert_eq!(m[1][0], 2);
        assert_eq!(m[0][0], 0);
    }

    #[test]
    fn machine_charged_for_exchange() {
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        let from = ArrayDescriptor::block(64, 4);
        let to = ArrayDescriptor::cyclic(64, 4);
        let t = redistribute(&mut m, &from, &to, "block->cyclic");
        assert!(t > 0.0);
        assert!(m.total_words_sent() > 0);
        assert_eq!(m.trace().count(hpf_machine::EventKind::Redistribute), 1);
    }

    #[test]
    fn permute_moves_values_correctly() {
        let from = ArrayDescriptor::block(6, 2);
        let to = ArrayDescriptor::cyclic(6, 2);
        // Global data 10,11,12,13,14,15 laid out under `from`.
        let local = vec![vec![10.0, 11.0, 12.0], vec![13.0, 14.0, 15.0]];
        let out = permute_local_data(&from, &to, &local);
        // Cyclic: p0 owns 0,2,4 -> 10,12,14; p1 owns 1,3,5 -> 11,13,15.
        assert_eq!(out[0], vec![10.0, 12.0, 14.0]);
        assert_eq!(out[1], vec![11.0, 13.0, 15.0]);
    }

    #[test]
    fn permute_roundtrip_restores() {
        let a = ArrayDescriptor::block(10, 3);
        let b = ArrayDescriptor::new(10, 3, DistSpec::IrregularCuts(vec![0, 1, 9, 10]));
        let local: Vec<Vec<f64>> = (0..3)
            .map(|p| {
                a.global_indices(p)
                    .iter()
                    .map(|&g| g as f64 * 2.0)
                    .collect()
            })
            .collect();
        let moved = permute_local_data(&a, &b, &local);
        let back = permute_local_data(&b, &a, &moved);
        assert_eq!(back, local);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let a = ArrayDescriptor::block(10, 2);
        let b = ArrayDescriptor::block(12, 2);
        traffic_matrix(&a, &b);
    }
}
