//! `REDISTRIBUTE` — data movement between two layouts.
//!
//! "The REDISTRIBUTE directive indicates that the data is available for
//! use in the partitioning of the data arrays. The user is responsible
//! for putting the REDISTRIBUTE directive in the proper place to improve
//! the performance." (Section 5.2.1)
//!
//! Given the old and new [`ArrayDescriptor`]s this module computes the
//! exact processor-to-processor traffic matrix and charges it to the
//! simulated [`Machine`] as an irregular exchange.

use crate::atoms::{AtomAssignment, AtomSpec};
use crate::descriptor::ArrayDescriptor;
use hpf_machine::Machine;

/// Words each processor must send to each other processor to move an
/// array from `from` to `to` layout. `matrix[s][d]` = elements owned by
/// `s` under `from` that `d` owns under `to`.
pub fn traffic_matrix(from: &ArrayDescriptor, to: &ArrayDescriptor) -> Vec<Vec<usize>> {
    assert_eq!(from.len(), to.len(), "redistribute length mismatch");
    assert_eq!(from.np(), to.np(), "redistribute processor-count mismatch");
    let np = from.np();
    let mut m = vec![vec![0usize; np]; np];
    for i in 0..from.len() {
        let s = from.owner(i);
        let d = to.owner(i);
        if s != d {
            m[s][d] += 1;
        }
    }
    m
}

/// Total words moved by a redistribution.
pub fn total_words(from: &ArrayDescriptor, to: &ArrayDescriptor) -> usize {
    traffic_matrix(from, to)
        .iter()
        .map(|row| row.iter().sum::<usize>())
        .sum()
}

/// Execute the redistribution on the simulated machine (charging the
/// modeled exchange cost) and return the simulated time.
pub fn redistribute(
    machine: &mut Machine,
    from: &ArrayDescriptor,
    to: &ArrayDescriptor,
    label: &str,
) -> f64 {
    assert_eq!(machine.np(), from.np(), "machine size mismatch");
    let m = traffic_matrix(from, to);
    machine.exchange(&m, label)
}

/// Processor-to-processor traffic for moving whole atoms between two
/// atom assignments. Each moved atom carries `atom_size * words_per_element`
/// words (e.g. 2 for a CSC/CSR trio's `idx` + `values` arrays) plus
/// `words_per_atom` fixed words (pointer entry, per-row vector elements).
pub fn atom_traffic_matrix(
    spec: &AtomSpec,
    from: &AtomAssignment,
    to: &AtomAssignment,
    words_per_element: usize,
    words_per_atom: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(from.n_atoms(), to.n_atoms(), "atom-count mismatch");
    assert_eq!(spec.n_atoms(), from.n_atoms(), "spec/assignment mismatch");
    assert_eq!(from.np, to.np, "processor-count mismatch");
    let np = from.np;
    let mut m = vec![vec![0usize; np]; np];
    for a in 0..spec.n_atoms() {
        let s = from.atom_owner[a];
        let d = to.atom_owner[a];
        if s != d {
            m[s][d] += spec.atom_size(a) * words_per_element + words_per_atom;
        }
    }
    m
}

/// Total words moved by an atom-granularity redistribution.
pub fn total_atom_words(
    spec: &AtomSpec,
    from: &AtomAssignment,
    to: &AtomAssignment,
    words_per_element: usize,
    words_per_atom: usize,
) -> usize {
    atom_traffic_matrix(spec, from, to, words_per_element, words_per_atom)
        .iter()
        .map(|row| row.iter().sum::<usize>())
        .sum()
}

/// `REDISTRIBUTE ... USING <partitioner>` — run a pluggable partitioner,
/// charge the machine for moving every atom whose owner changes, and
/// return the new assignment plus the words moved. The trace event is
/// labeled `REDISTRIBUTE USING <name>` so observability tooling can
/// attribute solve segments to the partitioner that laid them out.
///
/// Works for scattered target layouts too: traffic is computed at atom
/// granularity, no contiguous descriptor is required.
pub fn redistribute_using(
    machine: &mut Machine,
    spec: &AtomSpec,
    graph: &crate::graph::ConnectivityGraph,
    current: &AtomAssignment,
    partitioner: &dyn crate::partition::Partitioner,
    words_per_element: usize,
    words_per_atom: usize,
) -> (AtomAssignment, usize) {
    assert_eq!(machine.np(), current.np, "machine size mismatch");
    let next = partitioner.partition(spec, graph, current.np);
    let m = atom_traffic_matrix(spec, current, &next, words_per_element, words_per_atom);
    let words: usize = m.iter().map(|row| row.iter().sum::<usize>()).sum();
    let label = format!("REDISTRIBUTE USING {}", partitioner.name());
    machine.exchange(&m, &label);
    (next, words)
}

/// Permute a globally-indexed data vector from one local layout to the
/// other: given per-processor local data under `from`, produce the
/// per-processor local data under `to`. (The simulator holds real data;
/// this performs the actual movement the traffic matrix models.)
pub fn permute_local_data(
    from: &ArrayDescriptor,
    to: &ArrayDescriptor,
    local: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    assert_eq!(from.np(), local.len());
    let np = from.np();
    let mut out: Vec<Vec<f64>> = (0..np).map(|p| vec![0.0; to.local_len(p)]).collect();
    for p in 0..np {
        for (off, &g) in from.global_indices(p).iter().enumerate() {
            let d = to.owner(g);
            out[d][to.local_offset(g)] = local[p][off];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DistSpec;
    use hpf_machine::{CostModel, Topology};

    #[test]
    fn block_to_same_block_is_free() {
        let d = ArrayDescriptor::block(16, 4);
        assert_eq!(total_words(&d, &d), 0);
    }

    #[test]
    fn block_to_cyclic_moves_most_elements() {
        let from = ArrayDescriptor::block(16, 4);
        let to = ArrayDescriptor::cyclic(16, 4);
        // Under block, p owns 4 consecutive; under cyclic only 1 of each 4
        // stays home.
        assert_eq!(total_words(&from, &to), 12);
    }

    #[test]
    fn traffic_matrix_rows_match_ownership() {
        let from = ArrayDescriptor::block(8, 2);
        let to = ArrayDescriptor::cyclic(8, 2);
        let m = traffic_matrix(&from, &to);
        // p0 owns 0..4 under block; odd ones (1,3) go to p1.
        assert_eq!(m[0][1], 2);
        assert_eq!(m[1][0], 2);
        assert_eq!(m[0][0], 0);
    }

    #[test]
    fn machine_charged_for_exchange() {
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        let from = ArrayDescriptor::block(64, 4);
        let to = ArrayDescriptor::cyclic(64, 4);
        let t = redistribute(&mut m, &from, &to, "block->cyclic");
        assert!(t > 0.0);
        assert!(m.total_words_sent() > 0);
        assert_eq!(m.trace().count(hpf_machine::EventKind::Redistribute), 1);
    }

    #[test]
    fn permute_moves_values_correctly() {
        let from = ArrayDescriptor::block(6, 2);
        let to = ArrayDescriptor::cyclic(6, 2);
        // Global data 10,11,12,13,14,15 laid out under `from`.
        let local = vec![vec![10.0, 11.0, 12.0], vec![13.0, 14.0, 15.0]];
        let out = permute_local_data(&from, &to, &local);
        // Cyclic: p0 owns 0,2,4 -> 10,12,14; p1 owns 1,3,5 -> 11,13,15.
        assert_eq!(out[0], vec![10.0, 12.0, 14.0]);
        assert_eq!(out[1], vec![11.0, 13.0, 15.0]);
    }

    #[test]
    fn permute_roundtrip_restores() {
        let a = ArrayDescriptor::block(10, 3);
        let b = ArrayDescriptor::new(10, 3, DistSpec::IrregularCuts(vec![0, 1, 9, 10]));
        let local: Vec<Vec<f64>> = (0..3)
            .map(|p| {
                a.global_indices(p)
                    .iter()
                    .map(|&g| g as f64 * 2.0)
                    .collect()
            })
            .collect();
        let moved = permute_local_data(&a, &b, &local);
        let back = permute_local_data(&b, &a, &moved);
        assert_eq!(back, local);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let a = ArrayDescriptor::block(10, 2);
        let b = ArrayDescriptor::block(12, 2);
        traffic_matrix(&a, &b);
    }

    #[test]
    fn atom_traffic_counts_moved_atoms_only() {
        let spec = AtomSpec::from_pointer_array(&[0, 4, 8, 9, 11]);
        let from = AtomAssignment::from_owners(vec![0, 0, 1, 1], 2);
        let to = AtomAssignment::from_owners(vec![0, 1, 1, 0], 2);
        // Atom 1 (4 elems) moves 0->1; atom 3 (2 elems) moves 1->0.
        let m = atom_traffic_matrix(&spec, &from, &to, 2, 1);
        assert_eq!(m[0][1], 4 * 2 + 1);
        assert_eq!(m[1][0], 2 * 2 + 1);
        assert_eq!(m[0][0] + m[1][1], 0);
        assert_eq!(total_atom_words(&spec, &from, &to, 2, 1), 14);
        // Identity move is free.
        assert_eq!(total_atom_words(&spec, &from, &from, 2, 1), 0);
    }

    #[test]
    fn redistribute_using_charges_machine_with_named_label() {
        use crate::graph::ConnectivityGraph;
        use crate::partition::Partitioner;

        struct ToCyclic;
        impl Partitioner for ToCyclic {
            fn name(&self) -> &'static str {
                "to-cyclic"
            }
            fn partition(
                &self,
                spec: &AtomSpec,
                _graph: &ConnectivityGraph,
                np: usize,
            ) -> AtomAssignment {
                AtomAssignment::atom_cyclic(spec, np)
            }
        }

        let mut machine = Machine::new(2, Topology::Hypercube, CostModel::mpp_1995());
        let spec = AtomSpec::uniform(8, 3);
        let graph = ConnectivityGraph::from_edges(8, &[]);
        let from = AtomAssignment::atom_block(&spec, 2);
        let (next, words) = redistribute_using(&mut machine, &spec, &graph, &from, &ToCyclic, 1, 0);
        assert!(!next.is_contiguous());
        assert!(words > 0);
        let trace = machine.trace();
        assert_eq!(trace.count(hpf_machine::EventKind::Redistribute), 1);
        let ev = &trace.events()[0];
        assert_eq!(ev.label, "REDISTRIBUTE USING to-cyclic");
    }
}
