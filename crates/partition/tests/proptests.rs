//! Property tests on the partitioner registry: the trait contract
//! (total coverage, valid owners, nonempty parts) holds for every
//! registered heuristic on arbitrary sparse structures, and the
//! column-net volume model is invariant under atom relabeling.

use hpf_dist::atoms::AtomSpec;
use hpf_dist::graph::{comm_volume, ConnectivityGraph};
use hpf_dist::AtomAssignment;
use hpf_partition::partitioners::all_partitioners;
use proptest::prelude::*;

/// Deterministic pointer array from per-atom weights (nnz counts).
fn ptr_of(weights: &[usize]) -> Vec<usize> {
    let mut ptr = vec![0usize];
    for w in weights {
        ptr.push(ptr.last().unwrap() + w);
    }
    ptr
}

/// Deterministic sparse symmetric adjacency from a seed: each atom gets a
/// few pseudo-random neighbors (xorshift stream, no rand dependency).
fn graph_of(n: usize, seed: u64) -> ConnectivityGraph {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut edges = Vec::new();
    for i in 0..n {
        let deg = (next() % 4) as usize;
        for _ in 0..deg {
            let j = (next() % n as u64) as usize;
            if j != i {
                edges.push((i, j));
            }
        }
    }
    ConnectivityGraph::from_edges(n, &edges)
}

/// Deterministic permutation of `0..n` (Fisher-Yates over an xorshift
/// stream).
fn permutation_of(n: usize, seed: u64) -> Vec<usize> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    /// Every registered partitioner assigns each atom exactly once to a
    /// valid owner, and leaves no processor empty when `np <= n_atoms`.
    #[test]
    fn partitioners_honor_the_trait_contract(
        weights in proptest::collection::vec(1usize..40, 1..50),
        np in 1usize..9,
        seed in any::<u64>(),
    ) {
        let ptr = ptr_of(&weights);
        let spec = AtomSpec::from_pointer_array(&ptr);
        let n = spec.n_atoms();
        let graph = graph_of(n, seed);
        for p in all_partitioners() {
            let asg = p.partition(&spec, &graph, np);
            prop_assert_eq!(asg.np, np, "{}", p.name());
            prop_assert_eq!(asg.atom_owner.len(), n, "{}", p.name());
            prop_assert!(
                asg.atom_owner.iter().all(|&o| o < np),
                "{}: owner out of range",
                p.name()
            );
            if np <= n {
                let mut seen = vec![false; np];
                for &o in &asg.atom_owner {
                    seen[o] = true;
                }
                prop_assert!(
                    seen.iter().all(|&s| s),
                    "{}: empty part with np {} <= n {}",
                    p.name(),
                    np,
                    n
                );
            }
        }
    }

    /// `Σ_j (λ_j − 1)` depends only on the partition structure, not on
    /// atom numbering: relabeling atoms (and the assignment with them)
    /// leaves the modeled comm volume unchanged.
    #[test]
    fn comm_volume_is_relabeling_invariant(
        n in 2usize..60,
        np in 1usize..7,
        graph_seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        let graph = graph_of(n, graph_seed);
        // Any assignment works for the invariance; use a cheap scattered one.
        let owner: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % np).collect();
        let asg = AtomAssignment::from_owners(owner.clone(), np);
        let vol = comm_volume(&graph, &asg);

        let perm = permutation_of(n, perm_seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for &j in graph.neighbors(i) {
                edges.push((perm[i], perm[j]));
            }
        }
        let relabeled_graph = ConnectivityGraph::from_edges(n, &edges);
        let mut relabeled_owner = vec![0usize; n];
        for (i, &o) in owner.iter().enumerate() {
            relabeled_owner[perm[i]] = o;
        }
        let relabeled = AtomAssignment::from_owners(relabeled_owner, np);
        prop_assert_eq!(vol, comm_volume(&relabeled_graph, &relabeled));
    }
}
