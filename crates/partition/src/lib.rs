//! # hpf-partition — pluggable sparse partitioners behind `REDISTRIBUTE USING`
//!
//! The paper proposes extending HPF's `REDISTRIBUTE` with a named
//! load-balancing heuristic:
//!
//! ```fortran
//! !EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
//! ```
//!
//! `hpf-dist` defines the [`Partitioner`] contract and the atom-level
//! redistribution machinery; this crate supplies the heuristics and the
//! policy layer:
//!
//! * [`partitioners`] — four deterministic, dependency-free
//!   implementations: `balanced-rows` (the paper's own), `nnz-bisect`,
//!   `greedy-hypergraph` (column-net volume minimisation), and
//!   `spectral` (power-iteration Fiedler bisection), plus the name
//!   registry ([`by_name`], [`all_partitioners`]).
//! * [`volume`] — modeled comm volume priced in oracle seconds through
//!   `hpf-machine::predict` ([`PartitionAssessment`]).
//! * [`auto`] — the auto-repartitioner: [`RepartitionPolicy`] watches
//!   measured load imbalance and oracle drift per solve segment and
//!   fires typed `REDISTRIBUTE USING <name>` events mid-solve
//!   ([`cg_auto_repartition`]).

pub mod auto;
pub mod partitioners;
pub mod volume;

pub use auto::{
    cg_auto_repartition, segment_drift, segment_imbalance, AutoRepartitionOutcome,
    RepartitionEvent, RepartitionPolicy,
};
pub use hpf_dist::{comm_volume, cut_edges, ConnectivityGraph, PartitionError, Partitioner};
pub use partitioners::{
    all_partitioners, by_name, connectivity_of, partitioner_names, BalancedContiguous,
    GreedyHypergraph, NnzBisection, SpectralBisection, DEFAULT_PARTITIONER,
};
pub use volume::{assess, assess_assignment, modeled_seconds, PartitionAssessment};
