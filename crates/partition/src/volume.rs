//! Pricing modeled partition quality in oracle seconds.
//!
//! [`comm_volume`] counts words; this module turns those words into
//! simulated seconds using the same closed forms the §4 cost oracle
//! applies to real traced events (`hpf_machine::predict`): the volume is
//! presented as the per-processor payload of one synthetic all-gather —
//! exactly how the rowwise SpMV moves remote `x` entries every iteration.

use hpf_dist::atoms::{AtomAssignment, AtomSpec};
use hpf_dist::graph::{comm_volume, cut_edges, ConnectivityGraph};
use hpf_dist::Partitioner;
use hpf_machine::predict::predicted_time;
use hpf_machine::{CostModel, Event, EventKind, Topology};

/// Modeled quality of one partitioner's layout, priced by the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionAssessment {
    /// `USING <name>` identifier.
    pub partitioner: String,
    pub np: usize,
    /// Column-net comm volume `Σ_j (λ_j − 1)` in words per matvec.
    pub comm_volume_words: usize,
    /// Graph edges crossing processor boundaries.
    pub cut_edges: usize,
    /// `max/mean` element (nnz) load imbalance of the layout.
    pub load_imbalance: f64,
    /// The oracle's closed-form price of moving the volume once.
    pub modeled_seconds: f64,
}

impl PartitionAssessment {
    /// One-line JSON object (same hand-rolled dialect as the bench
    /// records; the build is offline, so no serde_json).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"partitioner\":\"{}\",\"np\":{},\"comm_volume_words\":{},\"cut_edges\":{},\"load_imbalance\":{:.6},\"modeled_seconds\":{:.9e}}}",
            self.partitioner,
            self.np,
            self.comm_volume_words,
            self.cut_edges,
            self.load_imbalance,
            self.modeled_seconds
        )
    }
}

/// Price `volume_words` of matvec traffic on an `np`-processor machine in
/// oracle seconds, via a synthetic [`EventKind::AllGather`] event fed to
/// [`predicted_time`] (volume split evenly across processors, the way the
/// rowwise operator gathers remote `x`).
pub fn modeled_seconds(
    volume_words: usize,
    np: usize,
    topology: Topology,
    cost: &CostModel,
) -> f64 {
    if volume_words == 0 || np <= 1 {
        return 0.0;
    }
    let payload = volume_words.div_ceil(np);
    let event = Event {
        kind: EventKind::AllGather,
        participants: np,
        words: volume_words,
        flops: 0,
        time: 0.0,
        start: 0.0,
        span: String::new(),
        label: "modeled-comm-volume".into(),
        proc_times: Vec::new(),
        payload_words: payload,
        hops: 0,
    };
    predicted_time(&event, topology, cost).unwrap_or(0.0)
}

/// Assess the layout `asg` (already produced by `partitioner_name`).
pub fn assess_assignment(
    partitioner_name: &str,
    spec: &AtomSpec,
    graph: &ConnectivityGraph,
    asg: &AtomAssignment,
    topology: Topology,
    cost: &CostModel,
) -> PartitionAssessment {
    let volume = comm_volume(graph, asg);
    PartitionAssessment {
        partitioner: partitioner_name.to_string(),
        np: asg.np,
        comm_volume_words: volume,
        cut_edges: cut_edges(graph, asg),
        load_imbalance: asg.imbalance(spec),
        modeled_seconds: modeled_seconds(volume, asg.np, topology, cost),
    }
}

/// Run `partitioner` and assess the layout it produces.
pub fn assess(
    partitioner: &dyn Partitioner,
    spec: &AtomSpec,
    graph: &ConnectivityGraph,
    np: usize,
    topology: Topology,
    cost: &CostModel,
) -> PartitionAssessment {
    let asg = partitioner.partition(spec, graph, np);
    assess_assignment(partitioner.name(), spec, graph, &asg, topology, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioners::{connectivity_of, BalancedContiguous};
    use hpf_sparse::gen;

    #[test]
    fn zero_volume_and_serial_machines_cost_nothing() {
        let cost = CostModel::mpp_1995();
        assert_eq!(modeled_seconds(0, 8, Topology::Hypercube, &cost), 0.0);
        assert_eq!(modeled_seconds(100, 1, Topology::Hypercube, &cost), 0.0);
    }

    #[test]
    fn seconds_grow_with_volume_and_match_the_oracle_form() {
        let cost = CostModel::mpp_1995();
        let small = modeled_seconds(64, 8, Topology::Hypercube, &cost);
        let large = modeled_seconds(64 * 1024, 8, Topology::Hypercube, &cost);
        assert!(small > 0.0);
        assert!(large > small);
        // Exactly the topology's allgather closed form.
        let direct = Topology::Hypercube.allgather_time(8, 64 * 1024 / 8, &cost);
        assert!((large - direct).abs() <= 1e-15 * direct.max(1.0));
    }

    #[test]
    fn assessment_is_json_renderable_and_consistent() {
        let a = gen::poisson_2d(8, 8);
        let spec = hpf_dist::AtomSpec::from_pointer_array(a.row_ptr());
        let graph = connectivity_of(&a);
        let report = assess(
            &BalancedContiguous,
            &spec,
            &graph,
            4,
            Topology::Hypercube,
            &CostModel::mpp_1995(),
        );
        assert_eq!(report.partitioner, "balanced-rows");
        assert_eq!(report.np, 4);
        assert!(report.comm_volume_words > 0);
        assert!(report.modeled_seconds > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"partitioner\":\"balanced-rows\""));
        assert!(json.contains("\"comm_volume_words\":"));
    }
}
