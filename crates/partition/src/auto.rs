//! The oracle-driven auto-repartitioner.
//!
//! A [`RepartitionPolicy`] watches a distributed CG solve in segments of
//! `check_every` iterations. After each segment it reads two signals off
//! the machine trace:
//!
//! * **measured load imbalance** — `max/mean` per-processor busy time of
//!   the segment's bulk-compute events (the same statistic
//!   `hpf-obs::analysis::load_imbalance` reports);
//! * **oracle drift** — `(measured − predicted) / predicted` over the
//!   segment, where predicted is `hpf-machine::predict`'s closed forms.
//!   Because the oracle predicts the *balanced* compute time, drift is
//!   dominated by exactly the load-imbalance penalty §5.2 of the paper
//!   reasons about.
//!
//! When either signal crosses its threshold the driver charges a
//! `REDISTRIBUTE USING <name>` exchange on the machine (atom-granularity
//! traffic for the trio + solver vectors), rebuilds the distributed
//! operator under the new layout, notifies the observer via
//! [`IterObserver::on_repartition`], and continues the solve from the
//! current iterate by residual correction (`A·e = r`, `x ← x + e` — exact
//! for CG's Krylov restart semantics).

use crate::partitioners::connectivity_of;
use hpf_core::matvec::RowwiseCsr;
use hpf_dist::atoms::{AtomAssignment, AtomSpec};
use hpf_dist::partition::contiguous_projection;
use hpf_dist::redistribute::redistribute_using;
use hpf_dist::Partitioner;
use hpf_machine::predict::predicted_or_measured_total;
use hpf_machine::{Event, EventKind, Machine};
use hpf_solvers::cg::cg_distributed_with_observer;
use hpf_solvers::{IterObserver, SolveStats, SolverError, StopCriterion};
use hpf_sparse::CsrMatrix;

/// Thresholds and cadence for mid-solve repartitioning.
#[derive(Debug, Clone, Copy)]
pub struct RepartitionPolicy {
    /// Iterations per observation segment.
    pub check_every: usize,
    /// Fire when measured per-processor busy-time imbalance (`max/mean`)
    /// exceeds this.
    pub imbalance_threshold: f64,
    /// Fire when relative oracle drift over the segment exceeds this.
    pub drift_threshold: f64,
    /// Cap on `REDISTRIBUTE USING` events per solve.
    pub max_repartitions: usize,
}

impl Default for RepartitionPolicy {
    fn default() -> Self {
        RepartitionPolicy {
            check_every: 8,
            imbalance_threshold: 1.25,
            drift_threshold: 0.5,
            max_repartitions: 2,
        }
    }
}

/// One `REDISTRIBUTE USING` fired by the policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RepartitionEvent {
    /// Cumulative iteration count when the move happened.
    pub at_iteration: usize,
    /// Partitioner that produced the new layout.
    pub partitioner: String,
    /// Words charged for moving the trio + solver vectors.
    pub words_moved: usize,
    /// Measured busy-time imbalance of the segment that triggered it.
    pub imbalance_before: f64,
    /// Measured busy-time imbalance of the first segment after the move
    /// (`NaN` if the solve converged before another segment completed).
    pub imbalance_after: f64,
}

/// Result of an auto-repartitioned solve.
#[derive(Debug, Clone)]
pub struct AutoRepartitionOutcome {
    /// Global solution vector.
    pub x: Vec<f64>,
    /// Aggregate statistics across all segments.
    pub stats: SolveStats,
    /// Every layout move, in order.
    pub repartitions: Vec<RepartitionEvent>,
    /// Measured busy-time imbalance per completed segment.
    pub segment_imbalances: Vec<f64>,
    /// Final atom assignment (the layout the solve finished on).
    pub assignment: AtomAssignment,
}

/// `max/mean` per-processor busy time over bulk-compute events in a
/// trace slice — `None` when no event carries per-processor durations.
pub fn segment_imbalance(events: &[Event]) -> Option<f64> {
    let mut busy: Vec<f64> = Vec::new();
    for e in events {
        if e.kind != EventKind::Compute || e.proc_times.is_empty() {
            continue;
        }
        if busy.len() < e.proc_times.len() {
            busy.resize(e.proc_times.len(), 0.0);
        }
        for (b, t) in busy.iter_mut().zip(e.proc_times.iter()) {
            *b += t;
        }
    }
    if busy.is_empty() {
        return None;
    }
    let max = busy.iter().cloned().fold(0.0f64, f64::max);
    let mean = busy.iter().sum::<f64>() / busy.len() as f64;
    if mean <= 0.0 {
        Some(0.0)
    } else {
        Some(max / mean)
    }
}

/// Relative oracle drift `(measured − predicted) / predicted` over a
/// trace slice; 0.0 when the slice predicts to zero time.
pub fn segment_drift(events: &[Event], machine: &Machine) -> f64 {
    let measured: f64 = events.iter().map(|e| e.time).sum();
    let predicted = predicted_or_measured_total(events, machine.topology(), machine.cost_model());
    if predicted <= 0.0 {
        0.0
    } else {
        (measured - predicted) / predicted
    }
}

/// Distributed CG with mid-flight `REDISTRIBUTE USING <partitioner>`.
///
/// Starts from `initial` (atoms = rows of `matrix`, weights = nnz), runs
/// CG in segments of `policy.check_every` iterations, and lets the policy
/// move the layout between segments. Scattered target layouts are lowered
/// to contiguous row cuts for the operator (preserving the partitioner's
/// load profile — see [`contiguous_projection`]); the redistribution
/// traffic itself is charged at atom granularity.
#[allow(clippy::too_many_arguments)]
pub fn cg_auto_repartition(
    machine: &mut Machine,
    matrix: &CsrMatrix,
    b: &[f64],
    rel_tol: f64,
    max_iters: usize,
    initial: &AtomAssignment,
    partitioner: &dyn Partitioner,
    policy: &RepartitionPolicy,
    obs: &mut dyn IterObserver,
) -> Result<AutoRepartitionOutcome, SolverError> {
    let n = matrix.n_rows();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    assert!(policy.check_every > 0, "check_every must be positive");
    let np = machine.np();
    assert_eq!(initial.np, np, "assignment/machine size mismatch");

    let spec = AtomSpec::from_pointer_array(matrix.row_ptr());
    let graph = connectivity_of(matrix);

    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let mut stats = SolveStats::new();
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut r_norm = b_norm;
    let mut assignment = initial.clone();
    let mut repartitions: Vec<RepartitionEvent> = Vec::new();
    let mut segment_imbalances: Vec<f64> = Vec::new();
    // Index into `repartitions` of the event still waiting for its
    // "after" segment measurement.
    let mut pending_after: Option<usize> = None;

    if b_norm == 0.0 {
        stats.converged = true;
        stats.residual_norm = 0.0;
        return Ok(AutoRepartitionOutcome {
            x,
            stats,
            repartitions,
            segment_imbalances,
            assignment,
        });
    }
    let target_abs = rel_tol * b_norm;

    while stats.iterations < max_iters {
        let row_cuts = contiguous_projection(&spec, &assignment);
        let op = RowwiseCsr::with_row_cuts(matrix.clone(), np, row_cuts);
        let segment_iters = policy.check_every.min(max_iters - stats.iterations);
        let mark = machine.trace().len();

        // Residual-correction restart: solve A·e = r to the *global*
        // absolute target, so the segment's recurrence residual tracks
        // ‖b − A(x+e)‖ directly.
        let (e_dist, seg) = cg_distributed_with_observer(
            machine,
            &op,
            &r,
            StopCriterion::AbsoluteResidual(target_abs),
            segment_iters,
            obs,
        )?;
        let e = e_dist.to_global();
        for (xi, ei) in x.iter_mut().zip(e.iter()) {
            *xi += ei;
        }
        stats.iterations += seg.iterations;
        stats.matvecs += seg.matvecs;
        stats.dots += seg.dots;
        stats.axpys += seg.axpys;

        // True residual (serial recompute; not charged — it models the
        // host-side convergence check the driver owns).
        let ax = matrix.matvec(&x).expect("dimension verified above");
        for ((ri, bi), axi) in r.iter_mut().zip(b.iter()).zip(ax.iter()) {
            *ri = bi - axi;
        }
        r_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        stats.residual_norm = r_norm;

        let events = &machine.trace().events()[mark..];
        let imbalance = segment_imbalance(events).unwrap_or(0.0);
        let drift = segment_drift(events, machine);
        segment_imbalances.push(imbalance);
        if let Some(idx) = pending_after.take() {
            repartitions[idx].imbalance_after = imbalance;
        }

        if r_norm <= target_abs {
            stats.converged = true;
            break;
        }
        if seg.iterations == 0 {
            // Stagnated segment; avoid spinning forever.
            break;
        }

        let should_fire = repartitions.len() < policy.max_repartitions
            && (imbalance > policy.imbalance_threshold || drift > policy.drift_threshold);
        if should_fire {
            // Trio (idx + values per element, ptr entry per atom) plus
            // the x and r vector elements riding along: 2 words/element
            // + 3 words/atom.
            let (next, words) =
                redistribute_using(machine, &spec, &graph, &assignment, partitioner, 2, 3);
            if next != assignment {
                obs.on_repartition(stats.iterations, partitioner.name());
                repartitions.push(RepartitionEvent {
                    at_iteration: stats.iterations,
                    partitioner: partitioner.name().to_string(),
                    words_moved: words,
                    imbalance_before: imbalance,
                    imbalance_after: f64::NAN,
                });
                pending_after = Some(repartitions.len() - 1);
                assignment = next;
            }
        }
    }
    stats.residual_norm = r_norm;
    Ok(AutoRepartitionOutcome {
        x,
        stats,
        repartitions,
        segment_imbalances,
        assignment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioners::{BalancedContiguous, NnzBisection};
    use hpf_machine::{CostModel, Topology};
    use hpf_solvers::RecordingObserver;
    use hpf_sparse::gen;

    fn block_matrix() -> CsrMatrix {
        // Very uneven dense blocks: equal-row-count layouts are badly
        // imbalanced in nnz (one 40-row dense block vs five 4-row ones).
        gen::block_irregular_mesh(&[40, 4, 4, 4, 4, 4], 9)
    }

    #[test]
    fn solves_to_tolerance_without_firing_on_balanced_layouts() {
        let a = gen::poisson_2d(8, 8);
        let n = a.n_rows();
        let b = vec![1.0; n];
        let spec = AtomSpec::from_pointer_array(a.row_ptr());
        let initial = BalancedContiguous.partition(&spec, &connectivity_of(&a), 4);
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        let mut obs = RecordingObserver::new();
        let out = cg_auto_repartition(
            &mut m,
            &a,
            &b,
            1e-8,
            500,
            &initial,
            &NnzBisection,
            &RepartitionPolicy::default(),
            &mut obs,
        )
        .unwrap();
        assert!(out.stats.converged, "residual {}", out.stats.residual_norm);
        // Verify the actual solution.
        let ax = a.matvec(&out.x).unwrap();
        let err = ax
            .iter()
            .zip(b.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(err <= 1e-6, "‖Ax−b‖ = {err}");
        // Balanced from the start: the policy must not fire.
        assert!(out.repartitions.is_empty());
        assert!(obs.repartitions.is_empty());
    }

    #[test]
    fn fires_on_imbalanced_block_matrix_and_reduces_imbalance() {
        let a = block_matrix();
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let spec = AtomSpec::from_pointer_array(a.row_ptr());
        // Deliberately bad start: equal row counts ignore the huge block.
        let initial = AtomAssignment::atom_block(&spec, 4);
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        let mut obs = RecordingObserver::new();
        let policy = RepartitionPolicy {
            check_every: 4,
            imbalance_threshold: 1.25,
            drift_threshold: 0.5,
            max_repartitions: 1,
        };
        let out = cg_auto_repartition(
            &mut m,
            &a,
            &b,
            1e-10,
            400,
            &initial,
            &NnzBisection,
            &policy,
            &mut obs,
        )
        .unwrap();
        assert!(out.stats.converged);
        assert_eq!(
            out.repartitions.len(),
            1,
            "policy should fire exactly once; segment imbalances {:?}",
            out.segment_imbalances
        );
        let ev = &out.repartitions[0];
        assert!(ev.words_moved > 0);
        assert!(ev.imbalance_before > policy.imbalance_threshold);
        assert!(
            ev.imbalance_after < ev.imbalance_before,
            "imbalance {} -> {}",
            ev.imbalance_before,
            ev.imbalance_after
        );
        // The machine carries the typed trace event.
        let redists: Vec<_> = m
            .trace()
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Redistribute)
            .collect();
        assert_eq!(redists.len(), 1);
        assert_eq!(redists[0].label, "REDISTRIBUTE USING nnz-bisect");
        // Observer heard about it at the same iteration.
        assert_eq!(obs.repartitions.len(), 1);
        assert_eq!(obs.repartitions[0].1, "nnz-bisect");
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let a = gen::poisson_2d(4, 4);
        let spec = AtomSpec::from_pointer_array(a.row_ptr());
        let initial = AtomAssignment::atom_block(&spec, 2);
        let mut m = Machine::new(2, Topology::Hypercube, CostModel::mpp_1995());
        let out = cg_auto_repartition(
            &mut m,
            &a,
            &vec![0.0; a.n_rows()],
            1e-8,
            10,
            &initial,
            &NnzBisection,
            &RepartitionPolicy::default(),
            &mut hpf_solvers::NullObserver,
        )
        .unwrap();
        assert!(out.stats.converged);
        assert_eq!(out.stats.iterations, 0);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }
}
