//! The pluggable partitioner implementations behind
//! `REDISTRIBUTE ... USING <name>`.
//!
//! All four are deterministic and dependency-free (the build is offline;
//! no external graph-partitioning library exists in-tree), and all honor
//! the [`Partitioner`] trait contract: every atom assigned exactly once,
//! owners `< np`, and no empty processor when `np <= n_atoms`.
//!
//! * [`BalancedContiguous`] (`balanced-rows`) — the paper's
//!   `CG_BALANCED_PARTITIONER_1`: contiguous bottleneck-minimising row
//!   cuts. Ignores communication entirely.
//! * [`NnzBisection`] (`nnz-bisect`) — recursive weight bisection: split
//!   the atom range so each side's nnz matches its processor share, then
//!   recurse. Contiguous, cheaper than the exact bottleneck search.
//! * [`GreedyHypergraph`] (`greedy-hypergraph`) — greedy graph growing in
//!   the column-net spirit of Çatalyürek/Aykanat: parts absorb the
//!   unassigned atom with the most neighbours already inside, shrinking
//!   boundary nets (and thus `Σ_j (λ_j − 1)`). Scattered layout.
//! * [`SpectralBisection`] (`spectral`) — recursive bisection along an
//!   approximate Fiedler vector obtained by deflated power iteration on
//!   `cI − L` of the connectivity Laplacian. Scattered layout.

use hpf_dist::atoms::{AtomAssignment, AtomSpec};
use hpf_dist::graph::ConnectivityGraph;
use hpf_dist::partition::{assignment_from_cuts, balanced_contiguous};
use hpf_dist::Partitioner;
use hpf_sparse::CsrMatrix;

/// Name of the partitioner used when a request does not pick one — the
/// paper's own heuristic.
pub const DEFAULT_PARTITIONER: &str = "balanced-rows";

/// Connectivity graph of a square CSR matrix with one atom per row.
pub fn connectivity_of(matrix: &CsrMatrix) -> ConnectivityGraph {
    ConnectivityGraph::from_pattern(matrix.n_rows(), matrix.row_ptr(), matrix.col_idx())
}

/// All registered partitioners, in registry order.
pub fn all_partitioners() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(BalancedContiguous),
        Box::new(NnzBisection),
        Box::new(GreedyHypergraph),
        Box::new(SpectralBisection),
    ]
}

/// Registered partitioner names, in registry order.
pub fn partitioner_names() -> Vec<&'static str> {
    all_partitioners().iter().map(|p| p.name()).collect()
}

/// Look a partitioner up by its `USING <name>` identifier.
pub fn by_name(name: &str) -> Option<Box<dyn Partitioner>> {
    all_partitioners().into_iter().find(|p| p.name() == name)
}

/// Repair pass shared by the contiguous partitioners: shift cut points so
/// no group is empty while another holds more than one atom (the trait
/// guarantees nonempty parts whenever `np <= n_atoms`).
fn ensure_nonempty_cuts(cuts: &mut [usize], n_atoms: usize) {
    let np = cuts.len() - 1;
    if n_atoms < np {
        return;
    }
    let mut sizes: Vec<usize> = cuts.windows(2).map(|w| w[1] - w[0]).collect();
    while let Some(z) = sizes.iter().position(|&s| s == 0) {
        // Nearest donor with atoms to spare.
        let donor = (0..np)
            .filter(|&p| sizes[p] > 1)
            .min_by_key(|&p| p.abs_diff(z));
        let Some(d) = donor else { break };
        sizes[d] -= 1;
        sizes[z] += 1;
    }
    let mut acc = 0usize;
    for (p, &s) in sizes.iter().enumerate() {
        cuts[p] = acc;
        acc += s;
        cuts[p + 1] = acc;
    }
}

/// `CG_BALANCED_PARTITIONER_1` behind the trait: contiguous cuts with the
/// minimal bottleneck nnz load.
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancedContiguous;

impl Partitioner for BalancedContiguous {
    fn name(&self) -> &'static str {
        "balanced-rows"
    }

    fn partition(&self, spec: &AtomSpec, _graph: &ConnectivityGraph, np: usize) -> AtomAssignment {
        let mut cuts = balanced_contiguous(&spec.weights(), np).expect("np must be > 0");
        ensure_nonempty_cuts(&mut cuts, spec.n_atoms());
        assignment_from_cuts(&cuts, spec.n_atoms())
    }
}

/// Contiguous nnz-balanced recursive bisection.
#[derive(Debug, Clone, Copy, Default)]
pub struct NnzBisection;

impl NnzBisection {
    /// Split `weights[lo..hi]` for processors `p0..p0+k` in place.
    fn bisect(weights: &[usize], lo: usize, hi: usize, p0: usize, k: usize, owner: &mut [usize]) {
        if k <= 1 {
            for o in &mut owner[lo..hi] {
                *o = p0;
            }
            return;
        }
        let k1 = k / 2;
        let k2 = k - k1;
        let total: usize = weights[lo..hi].iter().sum();
        let target = (total as f64 * k1 as f64 / k as f64).round() as usize;
        // Walk to the prefix closest to the proportional target.
        let mut cut = lo;
        let mut acc = 0usize;
        while cut < hi && acc + weights[cut] <= target {
            acc += weights[cut];
            cut += 1;
        }
        if cut < hi && (acc + weights[cut]).abs_diff(target) < target.abs_diff(acc) {
            cut += 1;
        }
        // Keep both sides populatable: at least one atom per processor
        // when the range is large enough.
        let n = hi - lo;
        if n >= k {
            cut = cut.clamp(lo + k1, hi - k2);
        } else if n >= 2 {
            cut = cut.clamp(lo + 1, hi - 1);
        }
        Self::bisect(weights, lo, cut, p0, k1, owner);
        Self::bisect(weights, cut, hi, p0 + k1, k2, owner);
    }
}

impl Partitioner for NnzBisection {
    fn name(&self) -> &'static str {
        "nnz-bisect"
    }

    fn partition(&self, spec: &AtomSpec, _graph: &ConnectivityGraph, np: usize) -> AtomAssignment {
        assert!(np > 0, "np must be > 0");
        let weights = spec.weights();
        let mut owner = vec![0usize; spec.n_atoms()];
        Self::bisect(&weights, 0, spec.n_atoms(), 0, np, &mut owner);
        AtomAssignment::from_owners(owner, np)
    }
}

/// Greedy hypergraph-inspired graph growing: each part absorbs the atom
/// with the highest connectivity into the part (ties: heavier atom, then
/// lower index), bounded by the proportional nnz target. Minimising newly
/// exposed boundary keeps column nets internal, which is exactly the
/// `Σ_j (λ_j − 1)` volume the cost oracle prices.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyHypergraph;

impl Partitioner for GreedyHypergraph {
    fn name(&self) -> &'static str {
        "greedy-hypergraph"
    }

    fn partition(&self, spec: &AtomSpec, graph: &ConnectivityGraph, np: usize) -> AtomAssignment {
        assert!(np > 0, "np must be > 0");
        let n = spec.n_atoms();
        assert_eq!(graph.n_atoms(), n, "graph/spec mismatch");
        let weights = spec.weights();
        let total: usize = weights.iter().sum();
        let target = total.div_ceil(np).max(1);
        const UNASSIGNED: usize = usize::MAX;
        let mut owner = vec![UNASSIGNED; n];
        let mut unassigned = n;
        // gain[i] = neighbours of i already inside the part being grown;
        // epoch-stamped so switching parts resets it in O(1).
        let mut gain = vec![0usize; n];
        let mut epoch = vec![usize::MAX; n];

        for p in 0..np {
            if unassigned == 0 {
                break;
            }
            if p == np - 1 {
                // Last processor takes the remainder; the loop ends here,
                // so the unassigned counter no longer needs maintaining.
                for o in &mut owner {
                    if *o == UNASSIGNED {
                        *o = p;
                    }
                }
                break;
            }
            let mut load = 0usize;
            let mut part_atoms = 0usize;
            let remaining_parts = np - p - 1;
            loop {
                if unassigned == 0 {
                    break;
                }
                // Stop growing once at the target, or when later parts
                // would starve.
                if part_atoms > 0 && (load >= target || unassigned <= remaining_parts) {
                    break;
                }
                // Deterministic pick: max gain, then max weight (heavy
                // atoms anchor parts), then min index. Gain 0 for every
                // candidate means this picks a fresh seed.
                let mut best = UNASSIGNED;
                for i in 0..n {
                    if owner[i] != UNASSIGNED {
                        continue;
                    }
                    let gi = if epoch[i] == p { gain[i] } else { 0 };
                    if best == UNASSIGNED {
                        best = i;
                        continue;
                    }
                    let gb = if epoch[best] == p { gain[best] } else { 0 };
                    if gi > gb || (gi == gb && weights[i] > weights[best]) {
                        best = i;
                    }
                }
                owner[best] = p;
                unassigned -= 1;
                load += weights[best];
                part_atoms += 1;
                for &j in graph.neighbors(best) {
                    if owner[j] == UNASSIGNED {
                        if epoch[j] != p {
                            epoch[j] = p;
                            gain[j] = 0;
                        }
                        gain[j] += 1;
                    }
                }
            }
        }
        // np > n leaves trailing processors empty — legal; atoms all have
        // owners either way.
        for o in &mut owner {
            if *o == UNASSIGNED {
                *o = np - 1;
            }
        }
        AtomAssignment::from_owners(owner, np)
    }
}

/// Spectral-ish recursive bisection: order each sub-range by an
/// approximate Fiedler vector (deflated power iteration on `cI − L`, no
/// external eigensolver), then split by proportional weight.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectralBisection;

impl SpectralBisection {
    const POWER_ITERS: usize = 40;

    /// Approximate Fiedler order of the subgraph induced by `atoms`.
    fn fiedler_order(graph: &ConnectivityGraph, atoms: &[usize]) -> Vec<usize> {
        let ns = atoms.len();
        if ns <= 2 {
            return atoms.to_vec();
        }
        // Local index of each member atom (usize::MAX = outside).
        let mut local = vec![usize::MAX; graph.n_atoms()];
        for (li, &a) in atoms.iter().enumerate() {
            local[a] = li;
        }
        let deg: Vec<usize> = atoms
            .iter()
            .map(|&a| {
                graph
                    .neighbors(a)
                    .iter()
                    .filter(|&&b| local[b] != usize::MAX)
                    .count()
            })
            .collect();
        let c = (*deg.iter().max().unwrap() + 1) as f64;
        // Deterministic non-constant start vector (Knuth hash phase).
        let mut v: Vec<f64> = (0..ns)
            .map(|i| ((i as u64).wrapping_mul(2654435761) % 1009) as f64 / 1009.0 - 0.5)
            .collect();
        let mut w = vec![0.0f64; ns];
        for _ in 0..Self::POWER_ITERS {
            // w = (cI − L) v = (c − deg) v + Σ_neigh v
            for (li, &a) in atoms.iter().enumerate() {
                let mut acc = (c - deg[li] as f64) * v[li];
                for &b in graph.neighbors(a) {
                    let lb = local[b];
                    if lb != usize::MAX {
                        acc += v[lb];
                    }
                }
                w[li] = acc;
            }
            // Deflate the constant eigenvector, then normalise.
            let mean = w.iter().sum::<f64>() / ns as f64;
            for x in &mut w {
                *x -= mean;
            }
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-30 {
                break; // disconnected/degenerate: keep current order
            }
            for (vi, wi) in v.iter_mut().zip(w.iter()) {
                *vi = wi / norm;
            }
        }
        // Clean up the scratch map and emit atoms by Fiedler value.
        let mut order: Vec<usize> = (0..ns).collect();
        order.sort_by(|&i, &j| {
            v[i].partial_cmp(&v[j])
                .unwrap()
                .then(atoms[i].cmp(&atoms[j]))
        });
        order.into_iter().map(|li| atoms[li]).collect()
    }

    fn bisect(
        spec: &AtomSpec,
        graph: &ConnectivityGraph,
        atoms: &[usize],
        p0: usize,
        k: usize,
        owner: &mut [usize],
    ) {
        if k <= 1 {
            for &a in atoms {
                owner[a] = p0;
            }
            return;
        }
        let k1 = k / 2;
        let k2 = k - k1;
        let ordered = Self::fiedler_order(graph, atoms);
        let total: usize = ordered.iter().map(|&a| spec.atom_size(a)).sum();
        let target = (total as f64 * k1 as f64 / k as f64).round() as usize;
        let mut cut = 0usize;
        let mut acc = 0usize;
        while cut < ordered.len() && acc + spec.atom_size(ordered[cut]) <= target {
            acc += spec.atom_size(ordered[cut]);
            cut += 1;
        }
        let n = ordered.len();
        if n >= k {
            cut = cut.clamp(k1, n - k2);
        } else if n >= 2 {
            cut = cut.clamp(1, n - 1);
        }
        Self::bisect(spec, graph, &ordered[..cut], p0, k1, owner);
        Self::bisect(spec, graph, &ordered[cut..], p0 + k1, k2, owner);
    }
}

impl Partitioner for SpectralBisection {
    fn name(&self) -> &'static str {
        "spectral"
    }

    fn partition(&self, spec: &AtomSpec, graph: &ConnectivityGraph, np: usize) -> AtomAssignment {
        assert!(np > 0, "np must be > 0");
        assert_eq!(graph.n_atoms(), spec.n_atoms(), "graph/spec mismatch");
        let atoms: Vec<usize> = (0..spec.n_atoms()).collect();
        let mut owner = vec![0usize; spec.n_atoms()];
        Self::bisect(spec, graph, &atoms, 0, np, &mut owner);
        AtomAssignment::from_owners(owner, np)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_dist::graph::comm_volume;
    use hpf_sparse::gen;

    fn setup(n: usize) -> (AtomSpec, ConnectivityGraph) {
        let a = gen::poisson_2d(n, n);
        (
            AtomSpec::from_pointer_array(a.row_ptr()),
            connectivity_of(&a),
        )
    }

    #[test]
    fn registry_has_four_unique_names() {
        let names = partitioner_names();
        assert_eq!(names.len(), 4);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        assert!(names.contains(&DEFAULT_PARTITIONER));
        assert!(by_name("greedy-hypergraph").is_some());
        assert!(by_name("no-such-heuristic").is_none());
    }

    #[test]
    fn every_partitioner_covers_all_atoms_with_nonempty_parts() {
        let (spec, graph) = setup(8); // 64 atoms
        for p in all_partitioners() {
            for np in [1usize, 3, 4, 7, 16] {
                let asg = p.partition(&spec, &graph, np);
                assert_eq!(asg.n_atoms(), spec.n_atoms(), "{}", p.name());
                assert!(asg.atom_owner.iter().all(|&o| o < np), "{}", p.name());
                let mut count = vec![0usize; np];
                for &o in &asg.atom_owner {
                    count[o] += 1;
                }
                assert!(
                    count.iter().all(|&c| c > 0),
                    "{} np={np} left a processor empty: {count:?}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn partitioners_are_deterministic() {
        let (spec, graph) = setup(7);
        for p in all_partitioners() {
            let a = p.partition(&spec, &graph, 6);
            let b = p.partition(&spec, &graph, 6);
            assert_eq!(a, b, "{}", p.name());
        }
    }

    #[test]
    fn hypergraph_beats_balanced_rows_on_power_law_volume() {
        let a = gen::power_law_spd(256, 32, 0.9, 7);
        let spec = AtomSpec::from_pointer_array(a.row_ptr());
        let graph = connectivity_of(&a);
        let np = 16;
        let rows = BalancedContiguous.modeled_comm_volume(&spec, &graph, np);
        let hyper = GreedyHypergraph.modeled_comm_volume(&spec, &graph, np);
        assert!(
            hyper < rows,
            "hypergraph volume {hyper} should beat balanced rows {rows}"
        );
    }

    #[test]
    fn spectral_recovers_a_mesh_split() {
        // 2D Poisson grid: spectral bisection should find a low-volume cut
        // competitive with (or better than) naive contiguous halves.
        let a = gen::poisson_2d(12, 12); // 144 atoms
        let spec = AtomSpec::from_pointer_array(a.row_ptr());
        let graph = connectivity_of(&a);
        let asg = SpectralBisection.partition(&spec, &graph, 2);
        let vol = comm_volume(&graph, &asg);
        // A straight half split of a 12x12 5-point grid exposes one row of
        // 12 nodes on each side: volume 24. Allow slack but require the
        // same order of magnitude, far below a scattered layout.
        assert!(vol <= 48, "spectral volume {vol} too high");
        let imb = asg.imbalance(&spec);
        assert!(imb < 1.2, "spectral imbalance {imb}");
    }

    #[test]
    fn bisection_balances_nnz() {
        let a = gen::power_law_spd(200, 24, 1.0, 3);
        let spec = AtomSpec::from_pointer_array(a.row_ptr());
        let graph = connectivity_of(&a);
        let asg = NnzBisection.partition(&spec, &graph, 8);
        assert!(asg.is_contiguous());
        let imb = asg.imbalance(&spec);
        assert!(imb < 1.5, "nnz-bisect imbalance {imb}");
    }
}
