//! # hpf-mg — distributed multigrid-preconditioned CG
//!
//! The HPCG-class workload on the simulated HPF machine: conjugate
//! gradients preconditioned by one geometric multigrid V-cycle per
//! iteration, the benchmark shape the GraphBLAS HPCG work uses where
//! the paper's study stopped at Jacobi PCG.
//!
//! The pieces, each priced on the machine:
//!
//! * [`MgHierarchy`] — 2–4 levels over the Poisson generators (5-point
//!   2-D / 7-point 3-D), Galerkin coarse operators `Pᵀ A P` of
//!   bilinear / trilinear interpolation, `(BLOCK)` descriptors per
//!   level, precomputed halo and transfer traffic matrices, dense
//!   Cholesky at the bottom.
//! * Block symmetric Gauss-Seidel smoothing — forward+backward sweeps
//!   over each processor's diagonal block (pure local compute), with
//!   cross-block couplings handled by the residual's priced boundary
//!   exchange.
//! * [`MgPreconditioner`] — the V(1,1)-cycle as a
//!   [`DistPreconditioner`](hpf_solvers::DistPreconditioner), plugging
//!   into every `pcg_*` entry point including the protected
//!   checkpoint/rollback variants. Restriction and prolongation are
//!   typed `Redistribute` events between level descriptors; all events
//!   carry `vcycle/level=l/...` span paths.
//!
//! ```
//! use hpf_mg::{pcg_mg_distributed, GridDims, MgHierarchy, MgPreconditioner};
//! use hpf_machine::{CostModel, Machine, Topology};
//! use hpf_solvers::StopCriterion;
//! use hpf_sparse::gen;
//!
//! let h = MgHierarchy::build(GridDims::d2(15, 15), 3, 4).unwrap();
//! let (_, b) = gen::rhs_for_known_solution(h.fine_matrix());
//! let pre = MgPreconditioner::new(h);
//! let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
//! let (x, stats) =
//!     pcg_mg_distributed(&mut m, &pre, &b, StopCriterion::RelativeResidual(1e-8), 200).unwrap();
//! assert!(stats.converged);
//! assert_eq!(x.len(), 225);
//! ```

pub mod hierarchy;
mod smoother;
pub mod vcycle;

pub use hierarchy::{GridDims, MgError, MgHierarchy};
pub use vcycle::MgPreconditioner;

use hpf_core::DistVector;
use hpf_machine::Machine;
use hpf_solvers::{
    pcg_preconditioned_distributed_protected_with_observer,
    pcg_preconditioned_distributed_with_observer, IterObserver, NullObserver, RecoveryConfig,
    RecoveryStats, SolveStats, SolverError, StopCriterion,
};

/// Multigrid-preconditioned CG over the hierarchy's finest operator.
pub fn pcg_mg_distributed(
    machine: &mut Machine,
    pre: &MgPreconditioner,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
) -> Result<(DistVector, SolveStats), SolverError> {
    pcg_mg_distributed_with_observer(machine, pre, b_global, stop, max_iters, &mut NullObserver)
}

/// [`pcg_mg_distributed`] with per-iteration telemetry.
pub fn pcg_mg_distributed_with_observer(
    machine: &mut Machine,
    pre: &MgPreconditioner,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats), SolverError> {
    let op = pre.hierarchy().fine_operator();
    pcg_preconditioned_distributed_with_observer(machine, &op, pre, b_global, stop, max_iters, obs)
}

/// Fault-tolerant multigrid-preconditioned CG (checkpoint/rollback).
pub fn pcg_mg_distributed_protected(
    machine: &mut Machine,
    pre: &MgPreconditioner,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    config: RecoveryConfig,
) -> Result<(DistVector, SolveStats, RecoveryStats), SolverError> {
    pcg_mg_distributed_protected_with_observer(
        machine,
        pre,
        b_global,
        stop,
        max_iters,
        config,
        &mut NullObserver,
    )
}

/// [`pcg_mg_distributed_protected`] with per-iteration telemetry.
pub fn pcg_mg_distributed_protected_with_observer(
    machine: &mut Machine,
    pre: &MgPreconditioner,
    b_global: &[f64],
    stop: StopCriterion,
    max_iters: usize,
    config: RecoveryConfig,
    obs: &mut dyn IterObserver,
) -> Result<(DistVector, SolveStats, RecoveryStats), SolverError> {
    let op = pre.hierarchy().fine_operator();
    pcg_preconditioned_distributed_protected_with_observer(
        machine, &op, pre, b_global, stop, max_iters, config, obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, FaultPlan, FaultRates, Topology};
    use hpf_solvers::{pcg_jacobi_distributed, RecordingObserver};
    use hpf_sparse::gen;
    use proptest::prelude::*;

    fn machine(np: usize) -> Machine {
        Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
    }

    #[test]
    fn mg_pcg_cuts_iterations_at_least_5x_vs_jacobi() {
        let np = 4;
        let h = MgHierarchy::build(GridDims::d2(31, 31), 3, np).unwrap();
        let (_, b) = gen::rhs_for_known_solution(h.fine_matrix());
        let op = h.fine_operator();
        let stop = StopCriterion::RelativeResidual(1e-8);

        let mut m_j = machine(np);
        let (_, s_j) = pcg_jacobi_distributed(&mut m_j, &op, &b, stop, 5000).unwrap();
        let pre = MgPreconditioner::new(h);
        let mut m_mg = machine(np);
        let (x, s_mg) = pcg_mg_distributed(&mut m_mg, &pre, &b, stop, 5000).unwrap();

        assert!(s_j.converged && s_mg.converged);
        assert!(
            5 * s_mg.iterations <= s_j.iterations,
            "MG {} vs Jacobi {} iterations",
            s_mg.iterations,
            s_j.iterations
        );
        // And the answer is right.
        let ax = pre
            .hierarchy()
            .fine_matrix()
            .matvec(&x.to_global())
            .unwrap();
        let rel: f64 = ax
            .iter()
            .zip(&b)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt()
            / b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rel < 1e-7);
    }

    #[test]
    fn protected_mg_pcg_survives_faults() {
        let np = 4;
        let h = MgHierarchy::build(GridDims::d2(15, 15), 3, np).unwrap();
        let (x_true, b) = gen::rhs_for_known_solution(h.fine_matrix());
        let pre = MgPreconditioner::new(h);
        let stop = StopCriterion::RelativeResidual(1e-10);

        let mut m = machine(np);
        m.set_fault_plan(FaultPlan::new().with_bit_flip(40, 1, 62, 3));
        let (x, s, rec) =
            pcg_mg_distributed_protected(&mut m, &pre, &b, stop, 500, RecoveryConfig::default())
                .unwrap();
        assert!(s.converged, "{s:?} {rec:?}");
        let err: f64 = x
            .to_global()
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-7 * x_true.len() as f64);
    }

    /// Satellite: two MG-PCG runs under the same `FaultPlan` seed
    /// produce byte-identical convergence CSVs.
    #[test]
    fn mg_pcg_convergence_csv_is_deterministic_under_seeded_faults() {
        let run = || {
            let np = 4;
            let h = MgHierarchy::build(GridDims::d2(15, 15), 2, np).unwrap();
            let (_, b) = gen::rhs_for_known_solution(h.fine_matrix());
            let pre = MgPreconditioner::new(h);
            let mut m = machine(np);
            m.set_fault_plan(FaultPlan::random(
                42,
                np,
                4000,
                FaultRates::transient(0.002),
            ));
            let mut obs = RecordingObserver::new();
            let (_, s, _) = pcg_mg_distributed_protected_with_observer(
                &mut m,
                &pre,
                &b,
                StopCriterion::RelativeResidual(1e-9),
                500,
                RecoveryConfig::default(),
                &mut obs,
            )
            .unwrap();
            assert!(s.converged);
            let mut csv = String::from("iteration,residual_norm,sim_time,rollbacks\n");
            for s in &obs.samples {
                csv.push_str(&format!(
                    "{},{:.17e},{:.17e},{}\n",
                    s.iteration, s.residual_norm, s.sim_time, s.rollbacks
                ));
            }
            csv
        };
        let (a, b) = (run(), run());
        assert!(a.lines().count() > 2);
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn mg_pcg_works_in_3d() {
        let np = 8;
        let h = MgHierarchy::build(GridDims::d3(7, 7, 7), 2, np).unwrap();
        let (_, b) = gen::rhs_for_known_solution(h.fine_matrix());
        let op = h.fine_operator();
        let stop = StopCriterion::RelativeResidual(1e-8);
        let mut m_j = machine(np);
        let (_, s_j) = pcg_jacobi_distributed(&mut m_j, &op, &b, stop, 5000).unwrap();
        let pre = MgPreconditioner::new(h);
        let mut m = machine(np);
        let (_, s) = pcg_mg_distributed(&mut m, &pre, &b, stop, 5000).unwrap();
        assert!(s.converged);
        assert!(s.iterations < s_j.iterations);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Satellite: one V-cycle on a random SPD Poisson instance is a
        /// symmetric positive operator — probe with unit vectors eᵢ/eⱼ
        /// and compare the cross terms.
        #[test]
        fn vcycle_probe_symmetry(
            nx in 5usize..12,
            ny in 5usize..12,
            np in 1usize..6,
            seed in 0usize..1000,
        ) {
            use hpf_solvers::DistPreconditioner;
            let h = MgHierarchy::build(GridDims::d2(nx, ny), 2, np).unwrap();
            let n = h.fine_matrix().n_rows();
            let desc = h.levels[0].desc.clone();
            let pre = MgPreconditioner::new(h);
            let i = seed % n;
            let j = (seed * 7 + 3) % n;
            let mut m = machine(np);
            let mut ei = vec![0.0; n];
            ei[i] = 1.0;
            let bi = pre
                .apply(&mut m, &DistVector::from_global(desc.clone(), &ei))
                .to_global();
            let mut ej = vec![0.0; n];
            ej[j] = 1.0;
            let bj = pre
                .apply(&mut m, &DistVector::from_global(desc, &ej))
                .to_global();
            let scale = bi[j].abs().max(bj[i].abs()).max(1e-30);
            prop_assert!((bi[j] - bj[i]).abs() <= 1e-10 * scale);
            prop_assert!(bi[i] > 0.0);
        }
    }
}
