//! Geometric multigrid hierarchy over the Poisson generators.
//!
//! A hierarchy is a chain of level descriptors, finest first. Each level
//! holds the operator at that resolution, the `(BLOCK)` descriptor its
//! vectors live on, and the *precomputed* communication shapes the
//! V-cycle charges to the simulated machine: a per-processor halo
//! traffic matrix for the residual matvec, and per-processor transfer
//! traffic matrices for restriction and prolongation. Coarse operators
//! are the Galerkin products `A_{l+1} = Pᵀ A_l P` of bilinear /
//! trilinear interpolation `P`, so restriction `R = Pᵀ` (full weighting
//! scaled by `2^d`) makes every level exactly symmetric — the property
//! the outer CG needs from its preconditioner. The coarsest operator is
//! factored once by dense Cholesky at build time.
//!
//! Grid dims of the form `2^k − 1` per axis coarsen cleanly (every
//! coarse node coincides with a fine node); other sizes work but leave
//! the last fine plane interpolated one-sidedly.

use hpf_core::{DataArrayLayout, RowwiseCsr};
use hpf_dist::ArrayDescriptor;
use hpf_sparse::{CooMatrix, CsrMatrix};
use std::collections::BTreeMap;
use std::fmt;

/// Interior-node grid extents; `nz == 1` means a 2-D (5-point) problem,
/// `nz > 1` a 3-D (7-point) one. The global index map matches the
/// Poisson generators: `(i·ny + j)·nz + k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDims {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl GridDims {
    /// A 2-D grid (5-point stencil).
    pub fn d2(nx: usize, ny: usize) -> Self {
        GridDims { nx, ny, nz: 1 }
    }

    /// A 3-D grid (7-point stencil).
    pub fn d3(nx: usize, ny: usize, nz: usize) -> Self {
        GridDims { nx, ny, nz }
    }

    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn is_3d(&self) -> bool {
        self.nz > 1
    }

    fn index(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.ny + j) * self.nz + k
    }

    /// The Poisson operator this grid discretises (5-point in 2-D,
    /// 7-point in 3-D) — the matrix [`MgHierarchy::build`] takes as its
    /// finest level.
    pub fn poisson(&self) -> hpf_sparse::CsrMatrix {
        if self.is_3d() {
            hpf_sparse::gen::poisson_3d(self.nx, self.ny, self.nz)
        } else {
            hpf_sparse::gen::poisson_2d(self.nx, self.ny)
        }
    }

    /// Whether a `levels`-deep hierarchy can be built over this grid
    /// (every level above the coarsest must coarsen again). Cheap —
    /// walks the dims only, no operators are formed.
    pub fn supports_levels(&self, levels: usize) -> bool {
        let mut dims = *self;
        for _ in 1..levels {
            match dims.coarsen() {
                Some(c) => dims = c,
                None => return false,
            }
        }
        levels >= 2
    }

    /// Standard vertex-centred coarsening: every active axis drops to
    /// `(d − 1) / 2` (coarse node `I` sits on fine node `2I + 1`).
    /// `None` when an axis of extent 2 cannot halve again, or the grid
    /// is already a single point.
    pub fn coarsen(&self) -> Option<GridDims> {
        if self.n() == 1 {
            return None;
        }
        let c = |d: usize| match d {
            1 => Some(1),
            2 => None,
            d => Some((d - 1) / 2),
        };
        Some(GridDims {
            nx: c(self.nx)?,
            ny: c(self.ny)?,
            nz: c(self.nz)?,
        })
    }
}

impl fmt::Display for GridDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_3d() {
            write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
        } else {
            write!(f, "{}x{}", self.nx, self.ny)
        }
    }
}

/// Why a hierarchy could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MgError {
    /// Fewer than two levels is not a hierarchy.
    BadLevels { levels: usize },
    /// A level's grid could not be coarsened again.
    TooCoarse { level: usize, dims: GridDims },
    /// The coarsest operator failed its Cholesky factorisation (cannot
    /// happen for Galerkin-coarsened Poisson; guards future operators).
    NotSpd { level: usize, pivot: usize },
}

impl fmt::Display for MgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgError::BadLevels { levels } => {
                write!(f, "a multigrid hierarchy needs >= 2 levels, got {levels}")
            }
            MgError::TooCoarse { level, dims } => write!(
                f,
                "grid {dims} at level {level} is too coarse to halve again"
            ),
            MgError::NotSpd { level, pivot } => write!(
                f,
                "coarsest operator (level {level}) is not SPD at pivot {pivot}"
            ),
        }
    }
}

impl std::error::Error for MgError {}

/// Inter-level transfer: the interpolation matrix and the communication
/// shapes its two directions induce under `(BLOCK)` ownership.
pub(crate) struct Transfer {
    /// `n_fine × n_coarse` bilinear / trilinear interpolation.
    pub p: CsrMatrix,
    /// `restrict_traffic[p][q]`: words processor `p` sends `q` so `q`
    /// can form its coarse entries of `rc = Pᵀ rr`.
    pub restrict_traffic: Vec<Vec<usize>>,
    /// `prolong_traffic[p][q]`: words `p` sends `q` so `q` can form its
    /// fine entries of `P zc`.
    pub prolong_traffic: Vec<Vec<usize>>,
    pub restrict_flops: Vec<usize>,
    pub prolong_flops: Vec<usize>,
}

/// One level of the hierarchy.
pub(crate) struct Level {
    pub dims: GridDims,
    pub a: CsrMatrix,
    pub desc: ArrayDescriptor,
    /// Boundary-exchange traffic for one matvec at this level.
    pub halo: Vec<Vec<usize>>,
    pub smooth_flops: Vec<usize>,
    pub residual_flops: Vec<usize>,
    /// Transfer towards the next-coarser level; `None` on the coarsest.
    pub down: Option<Transfer>,
}

/// Dense Cholesky factor of the coarsest operator, solved serially at
/// the V-cycle's bottom.
pub(crate) struct DenseCholesky {
    n: usize,
    l: Vec<f64>, // row-major lower factor
}

impl DenseCholesky {
    fn factor(a: &CsrMatrix, level: usize) -> Result<Self, MgError> {
        let n = a.n_rows();
        let mut m = vec![0.0f64; n * n];
        for i in 0..n {
            for (j, v) in a.row(i) {
                m[i * n + j] = v;
            }
        }
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = m[i * n + j];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(MgError::NotSpd { level, pivot: i });
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        Ok(DenseCholesky { n, l })
    }

    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[i * n + k] * y[k];
            }
            y[i] = s / self.l[i * n + i];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[k * n + i] * y[k];
            }
            y[i] = s / self.l[i * n + i];
        }
        y
    }

    /// Flops of one solve (two dense triangular sweeps).
    pub fn solve_flops(&self) -> usize {
        2 * self.n * self.n
    }
}

/// A built multigrid hierarchy: level operators, descriptors,
/// communication shapes, and the factored coarsest solve.
pub struct MgHierarchy {
    pub(crate) levels: Vec<Level>,
    pub(crate) coarse: DenseCholesky,
    np: usize,
}

impl MgHierarchy {
    /// Build a `levels`-deep hierarchy over the Poisson problem on
    /// `dims`, distributed `(BLOCK)` across `np` processors.
    pub fn build(dims: GridDims, levels: usize, np: usize) -> Result<Self, MgError> {
        if levels < 2 {
            return Err(MgError::BadLevels { levels });
        }
        let mut mats = vec![dims.poisson()];
        let mut all_dims = vec![dims];
        let mut interps: Vec<CsrMatrix> = Vec::new();
        for l in 0..levels - 1 {
            let f = all_dims[l];
            let c = f
                .coarsen()
                .ok_or(MgError::TooCoarse { level: l, dims: f })?;
            let p = interpolation(f, c);
            let a_c = galerkin(&mats[l], &p);
            interps.push(p);
            mats.push(a_c);
            all_dims.push(c);
        }
        let coarse = DenseCholesky::factor(&mats[levels - 1], levels - 1)?;

        let mut built: Vec<Level> = Vec::with_capacity(levels);
        for l in 0..levels {
            let a = mats[l].clone();
            let desc = ArrayDescriptor::block(a.n_rows(), np);
            let down = if l + 1 < levels {
                let cdesc = ArrayDescriptor::block(mats[l + 1].n_rows(), np);
                Some(transfer(&interps[l], &desc, &cdesc))
            } else {
                None
            };
            let halo = halo_traffic(&a, &desc);
            let (smooth_flops, residual_flops) = level_flops(&a, &desc);
            built.push(Level {
                dims: all_dims[l],
                a,
                desc,
                halo,
                smooth_flops,
                residual_flops,
                down,
            });
        }
        Ok(MgHierarchy {
            levels: built,
            coarse,
            np,
        })
    }

    /// Number of levels (finest = 0).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    pub fn np(&self) -> usize {
        self.np
    }

    /// Grid extents at one level.
    pub fn level_dims(&self, level: usize) -> GridDims {
        self.levels[level].dims
    }

    /// The finest-level operator matrix.
    pub fn fine_matrix(&self) -> &CsrMatrix {
        &self.levels[0].a
    }

    /// A rowwise `(BLOCK, *)` distributed operator over the finest
    /// level, ready for the `pcg_*` entry points.
    pub fn fine_operator(&self) -> RowwiseCsr {
        RowwiseCsr::block(
            self.levels[0].a.clone(),
            self.np,
            DataArrayLayout::RowAligned,
        )
    }

    /// Total stored nonzeros across all level operators.
    pub fn total_nnz(&self) -> usize {
        self.levels.iter().map(|l| l.a.nnz()).sum()
    }
}

/// 1-D interpolation weights for fine node `i`: coincident coarse nodes
/// (fine position `2I + 1`) carry weight 1, in-between fine nodes
/// average their two coarse neighbours (a missing neighbour is the
/// homogeneous Dirichlet boundary).
fn weights_1d(i: usize, nf: usize, nc: usize) -> Vec<(usize, f64)> {
    if nf == 1 {
        return vec![(0, 1.0)];
    }
    if i % 2 == 1 {
        let ii = (i - 1) / 2;
        return if ii < nc { vec![(ii, 1.0)] } else { Vec::new() };
    }
    let mut w = Vec::with_capacity(2);
    let k = i / 2;
    if k >= 1 {
        w.push((k - 1, 0.5));
    }
    if k < nc {
        w.push((k, 0.5));
    }
    w
}

/// Bilinear (2-D) / trilinear (3-D) interpolation `P: coarse → fine` as
/// the tensor product of the 1-D weights.
fn interpolation(fine: GridDims, coarse: GridDims) -> CsrMatrix {
    let mut coo = CooMatrix::new(fine.n(), coarse.n());
    for i in 0..fine.nx {
        let wx = weights_1d(i, fine.nx, coarse.nx);
        for j in 0..fine.ny {
            let wy = weights_1d(j, fine.ny, coarse.ny);
            for k in 0..fine.nz {
                let wz = weights_1d(k, fine.nz, coarse.nz);
                let row = fine.index(i, j, k);
                for &(ix, vx) in &wx {
                    for &(jy, vy) in &wy {
                        for &(kz, vz) in &wz {
                            coo.push(row, coarse.index(ix, jy, kz), vx * vy * vz)
                                .expect("indices in range by construction");
                        }
                    }
                }
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Galerkin triple product `Pᵀ A P` (exact, deterministic: BTreeMap
/// accumulators keep summation order fixed).
fn galerkin(a: &CsrMatrix, p: &CsrMatrix) -> CsrMatrix {
    let nf = a.n_rows();
    let nc = p.n_cols();
    // B = A·P, one accumulator row at a time.
    let mut b: Vec<Vec<(usize, f64)>> = Vec::with_capacity(nf);
    for i in 0..nf {
        let mut acc: BTreeMap<usize, f64> = BTreeMap::new();
        for (j, aij) in a.row(i) {
            for (jj, pj) in p.row(j) {
                *acc.entry(jj).or_insert(0.0) += aij * pj;
            }
        }
        b.push(acc.into_iter().collect());
    }
    // C = Pᵀ·B.
    let mut c: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); nc];
    for i in 0..nf {
        for (ii, pi) in p.row(i) {
            for &(jj, v) in &b[i] {
                *c[ii].entry(jj).or_insert(0.0) += pi * v;
            }
        }
    }
    let mut coo = CooMatrix::new(nc, nc);
    for (i, row) in c.iter().enumerate() {
        for (&j, &v) in row {
            if v != 0.0 {
                coo.push(i, j, v).expect("indices in range");
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn proc_rows(desc: &ArrayDescriptor, p: usize) -> std::ops::Range<usize> {
    desc.contiguous_range(p).unwrap_or(0..0)
}

/// Words each processor must send each other so every processor holds
/// the off-block vector entries its rows of `a` reference — the
/// boundary exchange one matvec at this level costs.
fn halo_traffic(a: &CsrMatrix, desc: &ArrayDescriptor) -> Vec<Vec<usize>> {
    let np = desc.np();
    let n = a.n_rows();
    let mut t = vec![vec![0usize; np]; np];
    for q in 0..np {
        let mut seen = vec![false; n];
        for i in proc_rows(desc, q) {
            for (j, _) in a.row(i) {
                let p = desc.owner(j);
                if p != q && !seen[j] {
                    seen[j] = true;
                    t[p][q] += 1;
                }
            }
        }
    }
    t
}

/// Per-processor flop counts for one SymGS sweep pair and one residual
/// evaluation at this level.
fn level_flops(a: &CsrMatrix, desc: &ArrayDescriptor) -> (Vec<usize>, Vec<usize>) {
    let np = desc.np();
    let mut smooth = vec![0usize; np];
    let mut residual = vec![0usize; np];
    for q in 0..np {
        let range = proc_rows(desc, q);
        let (lo, hi) = (range.start, range.end);
        for i in lo..hi {
            let mut in_block = 0usize;
            let mut row_nnz = 0usize;
            for (j, _) in a.row(i) {
                row_nnz += 1;
                if j >= lo && j < hi {
                    in_block += 1;
                }
            }
            // Forward + backward sweep over the block entries, plus the
            // diagonal divides and the D·y scaling.
            smooth[q] += 4 * in_block + 4;
            residual[q] += 2 * row_nnz + 1;
        }
    }
    (smooth, residual)
}

/// Communication shapes and flop counts for one interpolation matrix
/// under `(BLOCK)` ownership on both sides.
fn transfer(p: &CsrMatrix, fdesc: &ArrayDescriptor, cdesc: &ArrayDescriptor) -> Transfer {
    let np = fdesc.np();
    let nf = p.n_rows();
    let mut restrict_traffic = vec![vec![0usize; np]; np];
    let mut prolong_traffic = vec![vec![0usize; np]; np];
    let mut restrict_flops = vec![0usize; np];
    let mut prolong_flops = vec![0usize; np];
    // Restriction rc = Pᵀ rr: the owner of coarse entry I consumes fine
    // entries i with P[i,I] ≠ 0; each off-processor fine entry moves
    // once per destination.
    for i in 0..nf {
        let pf = fdesc.owner(i);
        let mut dests: Vec<usize> = Vec::new();
        for (ii, _) in p.row(i) {
            let qc = cdesc.owner(ii);
            restrict_flops[qc] += 2;
            prolong_flops[pf] += 2;
            if qc != pf && !dests.contains(&qc) {
                dests.push(qc);
            }
        }
        for &q in &dests {
            restrict_traffic[pf][q] += 1;
        }
    }
    // Prolongation z += P zc: the owner of fine entry i consumes the
    // coarse entries its interpolation row references.
    for q in 0..np {
        let mut seen = vec![false; p.n_cols()];
        for i in proc_rows(fdesc, q) {
            for (ii, _) in p.row(i) {
                let pc = cdesc.owner(ii);
                if pc != q && !seen[ii] {
                    seen[ii] = true;
                    prolong_traffic[pc][q] += 1;
                }
            }
        }
    }
    Transfer {
        p: p.clone(),
        restrict_traffic,
        prolong_traffic,
        restrict_flops,
        prolong_flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarsening_halves_pow2_minus_1_dims_exactly() {
        let d = GridDims::d2(15, 15);
        assert_eq!(d.coarsen(), Some(GridDims::d2(7, 7)));
        assert_eq!(GridDims::d3(7, 7, 7).coarsen(), Some(GridDims::d3(3, 3, 3)));
        assert_eq!(GridDims::d2(2, 15).coarsen(), None);
        // The z = 1 axis of a 2-D problem stays inactive.
        assert_eq!(GridDims::d2(15, 15).coarsen().unwrap().nz, 1);
    }

    #[test]
    fn hierarchy_build_validates_inputs() {
        assert!(matches!(
            MgHierarchy::build(GridDims::d2(15, 15), 1, 4),
            Err(MgError::BadLevels { levels: 1 })
        ));
        assert!(matches!(
            MgHierarchy::build(GridDims::d2(7, 7), 4, 4),
            Err(MgError::TooCoarse { level: 2, .. })
        ));
        let h = MgHierarchy::build(GridDims::d2(15, 15), 3, 4).unwrap();
        assert_eq!(h.depth(), 3);
        assert_eq!(h.level_dims(2), GridDims::d2(3, 3));
        assert_eq!(h.fine_matrix().n_rows(), 225);
    }

    #[test]
    fn galerkin_coarse_operators_stay_symmetric_spd() {
        for (dims, levels) in [(GridDims::d2(15, 15), 3), (GridDims::d3(7, 7, 7), 2)] {
            let h = MgHierarchy::build(dims, levels, 4).unwrap();
            for l in 0..h.depth() {
                let a = &h.levels[l].a;
                assert!(a.is_symmetric(1e-12), "level {l} not symmetric");
                for (i, d) in a.diagonal().iter().enumerate() {
                    assert!(*d > 0.0, "level {l} diagonal {i} not positive");
                }
            }
        }
    }

    #[test]
    fn interpolation_rows_partition_unity_away_from_boundary() {
        // Interior fine nodes interpolate with weights summing to 1;
        // boundary-adjacent rows lose weight to the Dirichlet boundary.
        let f = GridDims::d2(7, 7);
        let c = f.coarsen().unwrap();
        let p = interpolation(f, c);
        let row = f.index(3, 3, 0); // coincident with coarse (1,1)
        let entries: Vec<_> = p.row(row).collect();
        assert_eq!(entries, vec![(c.index(1, 1, 0), 1.0)]);
        let mid = f.index(2, 3, 0); // between two coarse nodes in x
        let s: f64 = p.row(mid).map(|(_, v)| v).sum();
        assert!((s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn halo_traffic_is_symmetric_for_symmetric_operators() {
        let h = MgHierarchy::build(GridDims::d2(15, 15), 2, 4).unwrap();
        let t = &h.levels[0].halo;
        for p in 0..4 {
            for q in 0..4 {
                assert_eq!(t[p][q], t[q][p], "halo asymmetric at ({p},{q})");
            }
            assert_eq!(t[p][p], 0);
        }
        // A (BLOCK) split of a 15x15 5-point grid exchanges whole
        // boundary rows between neighbours.
        assert!(t[0][1] > 0);
    }

    #[test]
    fn cholesky_solves_the_coarsest_operator() {
        let h = MgHierarchy::build(GridDims::d2(15, 15), 3, 4).unwrap();
        let a = &h.levels[2].a;
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = h.coarse.solve(&b);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-10);
        }
        assert_eq!(h.coarse.solve_flops(), 2 * n * n);
    }
}
