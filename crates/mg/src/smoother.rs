//! Block symmetric Gauss-Seidel smoothing.
//!
//! Each processor sweeps its own `(BLOCK)` diagonal block — forward
//! `(D + L) y = r`, then backward `(D + U) z = D y` — using only
//! in-block couplings, so one application is pure local compute: the
//! paper's alignment discipline again, applied to the smoother. The
//! induced operator `M = (D + L) D⁻¹ (D + U)` restricted blockwise is
//! symmetric positive definite whenever `A` is, which is what keeps the
//! V-cycle a legal CG preconditioner. Couplings that cross the block
//! boundary are deferred to the residual evaluation, whose halo
//! exchange *is* priced (label `mg-halo`).

use hpf_dist::ArrayDescriptor;
use hpf_sparse::CsrMatrix;

/// One symmetric Gauss-Seidel sweep pair over every processor's
/// diagonal block: returns `z ≈ M⁻¹ r`.
pub(crate) fn symgs(a: &CsrMatrix, desc: &ArrayDescriptor, r: &[f64]) -> Vec<f64> {
    let n = a.n_rows();
    let mut y = vec![0.0f64; n];
    let mut z = vec![0.0f64; n];
    for q in 0..desc.np() {
        let range = desc.contiguous_range(q).unwrap_or(0..0);
        let (lo, hi) = (range.start, range.end);
        // Forward: (D + L) y = r over the block.
        for i in lo..hi {
            let mut s = r[i];
            let mut d = 0.0;
            for (j, v) in a.row(i) {
                if j == i {
                    d = v;
                } else if j >= lo && j < i {
                    s -= v * y[j];
                }
            }
            y[i] = s / d;
        }
        // Backward: (D + U) z = D y over the block.
        for i in (lo..hi).rev() {
            let mut s = 0.0;
            let mut d = 0.0;
            for (j, v) in a.row(i) {
                if j == i {
                    d = v;
                } else if j > i && j < hi {
                    s -= v * z[j];
                }
            }
            z[i] = (d * y[i] + s) / d;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_sparse::gen;

    /// On one processor the block is the whole matrix, so SymGS must
    /// satisfy M z = r with M = (D+L) D⁻¹ (D+U) exactly.
    #[test]
    fn single_block_symgs_inverts_the_symgs_matrix() {
        let a = gen::poisson_2d(5, 5);
        let n = a.n_rows();
        let desc = ArrayDescriptor::block(n, 1);
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos()).collect();
        let z = symgs(&a, &desc, &r);
        // Rebuild M z by hand: u = (D+U) z, then M z = (D+L) D⁻¹ u.
        let d: Vec<f64> = a.diagonal();
        let mut u = vec![0.0; n];
        for i in 0..n {
            for (j, v) in a.row(i) {
                if j >= i {
                    u[i] += v * z[j];
                }
            }
        }
        for i in 0..n {
            let mut s = d[i] * (u[i] / d[i]);
            for (j, v) in a.row(i) {
                if j < i {
                    s += v * (u[j] / d[j]);
                }
            }
            assert!((s - r[i]).abs() < 1e-12, "row {i}: {s} vs {}", r[i]);
        }
    }

    /// The blockwise smoother is symmetric: rᵀ S r' == r'ᵀ S r.
    #[test]
    fn block_symgs_is_a_symmetric_operator() {
        let a = gen::poisson_2d(6, 6);
        let n = a.n_rows();
        let desc = ArrayDescriptor::block(n, 3);
        let r1: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let r2: Vec<f64> = (0..n).map(|i| ((i * 5 % 13) as f64) - 6.0).collect();
        let s1 = symgs(&a, &desc, &r1);
        let s2 = symgs(&a, &desc, &r2);
        let d1: f64 = r2.iter().zip(&s1).map(|(a, b)| a * b).sum();
        let d2: f64 = r1.iter().zip(&s2).map(|(a, b)| a * b).sum();
        assert!((d1 - d2).abs() < 1e-10 * d1.abs().max(1.0));
    }
}
