//! The V-cycle preconditioner: one multigrid cycle per CG iteration.
//!
//! `apply` runs one V(1,1) cycle — pre-smooth, restrict the residual,
//! recurse, prolong the correction, post-smooth — charging the machine
//! at every step: smoother and residual compute as per-processor
//! [`Machine::compute_all`] phases, boundary exchange and level
//! transfers as typed `Redistribute` events ([`Machine::exchange`]),
//! and the coarsest solve as a gather / serial-Cholesky / scatter
//! sequence, so unequal coarse block sizes exercise the varying-payload
//! gather pricing. Every event lands under a
//! `vcycle/level=l/{smooth,residual,restrict,prolong,coarse}` span
//! path; level spans are entered per *phase* (never nested across
//! levels), so `span::level_of` always reads the level the work
//! actually ran on.
//!
//! The cycle is symmetric — SymGS pre- and post-smoothing are adjoint,
//! restriction is exactly `Pᵀ`, coarse operators are Galerkin — so the
//! induced operator `B ≈ A⁻¹` is symmetric positive definite and CG's
//! convergence theory applies unchanged.

use crate::hierarchy::MgHierarchy;
use crate::smoother;
use hpf_core::DistVector;
use hpf_machine::{span, Machine};
use hpf_solvers::DistPreconditioner;

/// A [`DistPreconditioner`] applying one V(1,1)-cycle of the owned
/// hierarchy per call.
pub struct MgPreconditioner {
    h: MgHierarchy,
}

impl MgPreconditioner {
    pub fn new(h: MgHierarchy) -> Self {
        MgPreconditioner { h }
    }

    pub fn hierarchy(&self) -> &MgHierarchy {
        &self.h
    }

    /// `rr = r − A z` at one level, charging the boundary exchange and
    /// the matvec compute.
    fn residual(&self, machine: &mut Machine, level: usize, r: &[f64], z: &[f64]) -> Vec<f64> {
        let lvl = &self.h.levels[level];
        let _s = span::enter("residual");
        machine.exchange(&lvl.halo, "mg-halo");
        machine.compute_all(&lvl.residual_flops, "mg-residual");
        let az = lvl.a.matvec(z).expect("level dims fixed at build");
        r.iter().zip(&az).map(|(ri, ai)| ri - ai).collect()
    }

    fn smooth(&self, machine: &mut Machine, level: usize, r: &[f64]) -> Vec<f64> {
        let lvl = &self.h.levels[level];
        let _s = span::enter("smooth");
        machine.compute_all(&lvl.smooth_flops, "mg-smooth");
        smoother::symgs(&lvl.a, &lvl.desc, r)
    }

    /// Exact solve at the bottom: funnel the coarse residual to the
    /// root, back-substitute through the prebuilt Cholesky factor, fan
    /// the correction back out.
    fn coarse_solve(&self, machine: &mut Machine, level: usize, r: &[f64]) -> Vec<f64> {
        let _lv = span::enter(format!("level={level}"));
        let _s = span::enter("coarse");
        let lens = self.h.levels[level].desc.local_lens();
        machine.gather_varying(0, &lens, "mg-coarse-gather");
        machine.compute_serial(self.h.coarse.solve_flops(), "mg-coarse-solve");
        let z = self.h.coarse.solve(r);
        machine.scatter_varying(0, &lens, "mg-coarse-scatter");
        z
    }

    fn cycle(&self, machine: &mut Machine, level: usize, r: &[f64]) -> Vec<f64> {
        if level + 1 == self.h.levels.len() {
            return self.coarse_solve(machine, level, r);
        }
        let lvl = &self.h.levels[level];
        let t = lvl
            .down
            .as_ref()
            .expect("non-coarsest level has a transfer");
        let mut z;
        let rc;
        {
            let _lv = span::enter(format!("level={level}"));
            z = self.smooth(machine, level, r);
            let rr = self.residual(machine, level, r, &z);
            rc = {
                let _s = span::enter("restrict");
                machine.exchange(&t.restrict_traffic, "mg-restrict");
                machine.compute_all(&t.restrict_flops, "mg-restrict-apply");
                t.p.matvec_transpose(&rr)
                    .expect("transfer dims fixed at build")
            };
        }
        let zc = self.cycle(machine, level + 1, &rc);
        {
            let _lv = span::enter(format!("level={level}"));
            {
                let _s = span::enter("prolong");
                machine.exchange(&t.prolong_traffic, "mg-prolong");
                machine.compute_all(&t.prolong_flops, "mg-prolong-apply");
                let pz = t.p.matvec(&zc).expect("transfer dims fixed at build");
                for (zi, pi) in z.iter_mut().zip(&pz) {
                    *zi += pi;
                }
            }
            let rr = self.residual(machine, level, r, &z);
            let dz = self.smooth(machine, level, &rr);
            for (zi, di) in z.iter_mut().zip(&dz) {
                *zi += di;
            }
        }
        z
    }
}

impl std::fmt::Debug for MgPreconditioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MgPreconditioner")
            .field("depth", &self.h.depth())
            .field("fine", &self.h.level_dims(0))
            .field("np", &self.h.np())
            .finish()
    }
}

impl DistPreconditioner for MgPreconditioner {
    fn apply(&self, machine: &mut Machine, r: &DistVector) -> DistVector {
        let _v = span::enter("vcycle");
        let rg = r.to_global();
        let zg = self.cycle(machine, 0, &rg);
        DistVector::from_global(self.h.levels[0].desc.clone(), &zg)
    }

    fn name(&self) -> &'static str {
        "mg-vcycle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::GridDims;
    use hpf_machine::{CostModel, EventKind, Topology};

    fn machine(np: usize) -> Machine {
        Machine::new(np, Topology::Hypercube, CostModel::mpp_1995())
    }

    fn vcycle_matrix(dims: GridDims, levels: usize, np: usize) -> Vec<Vec<f64>> {
        let h = MgHierarchy::build(dims, levels, np).unwrap();
        let n = h.fine_matrix().n_rows();
        let desc = h.levels[0].desc.clone();
        let pre = MgPreconditioner::new(h);
        let mut m = machine(np);
        let mut cols = Vec::with_capacity(n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let r = DistVector::from_global(desc.clone(), &e);
            cols.push(pre.apply(&mut m, &r).to_global());
        }
        cols
    }

    /// The V-cycle operator B is symmetric: eᵢᵀ B eⱼ == eⱼᵀ B eᵢ, and
    /// positive on the diagonal — the contract CG relies on.
    #[test]
    fn vcycle_operator_is_symmetric_positive() {
        let b = vcycle_matrix(GridDims::d2(9, 9), 3, 4);
        let n = b.len();
        for i in 0..n {
            assert!(b[i][i] > 0.0, "B[{i}][{i}] = {} not positive", b[i][i]);
            for j in (i + 1)..n {
                let diff = (b[j][i] - b[i][j]).abs();
                let scale = b[j][i].abs().max(b[i][j].abs()).max(1e-30);
                assert!(diff <= 1e-10 * scale, "B asymmetric at ({i},{j}): {diff}");
            }
        }
    }

    /// One V-cycle is a strong approximate inverse: applying it to A x
    /// for a smooth x recovers most of x (error contraction well below
    /// 1, where a Jacobi application leaves O(1) error).
    #[test]
    fn vcycle_contracts_the_error() {
        let h = MgHierarchy::build(GridDims::d2(15, 15), 3, 4).unwrap();
        let a = h.fine_matrix().clone();
        let n = a.n_rows();
        let desc = h.levels[0].desc.clone();
        let pre = MgPreconditioner::new(h);
        let x: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 * 0.21).sin()).collect();
        let b = a.matvec(&x).unwrap();
        let mut m = machine(4);
        let z = pre
            .apply(&mut m, &DistVector::from_global(desc, &b))
            .to_global();
        let err: f64 = z
            .iter()
            .zip(&x)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            err < 0.2 * norm,
            "one V-cycle left {:.1}% of the error",
            100.0 * err / norm
        );
    }

    /// Every machine event of an application lands under a
    /// `vcycle/level=l/...` span, levels are never nested, and the
    /// typed event kinds appear where the design says they should.
    #[test]
    fn vcycle_events_carry_per_level_spans() {
        let h = MgHierarchy::build(GridDims::d2(9, 9), 3, 4).unwrap();
        let desc = h.levels[0].desc.clone();
        let pre = MgPreconditioner::new(h);
        let mut m = machine(4);
        let r = DistVector::constant(desc, 1.0);
        pre.apply(&mut m, &r);
        assert!(!m.trace().is_empty());
        for e in m.trace().events() {
            assert!(e.span.starts_with("vcycle/level="), "span {}", e.span);
            assert_eq!(
                e.span.matches("level=").count(),
                1,
                "nested level spans in {}",
                e.span
            );
        }
        let levels_seen: std::collections::BTreeSet<usize> = m
            .trace()
            .events()
            .iter()
            .filter_map(|e| span::level_of(&e.span))
            .collect();
        assert_eq!(levels_seen.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        // Transfers and halos are typed Redistribute events; the coarse
        // solve funnels through gather/scatter.
        for label in ["mg-halo", "mg-restrict", "mg-prolong"] {
            assert!(
                m.trace()
                    .with_label(label)
                    .all(|e| e.kind == EventKind::Redistribute),
                "{label} should be Redistribute"
            );
            assert!(m.trace().with_label(label).count() > 0);
        }
        assert_eq!(m.trace().count(EventKind::Gather), 1);
        assert_eq!(m.trace().count(EventKind::Scatter), 1);
    }

    /// Two applications on the same inputs produce identical events and
    /// identical numbers — the determinism the convergence-CSV test at
    /// the solver level builds on.
    #[test]
    fn vcycle_application_is_deterministic() {
        let run = || {
            let h = MgHierarchy::build(GridDims::d3(7, 7, 7), 2, 4).unwrap();
            let desc = h.levels[0].desc.clone();
            let pre = MgPreconditioner::new(h);
            let mut m = machine(4);
            let n = desc.len();
            let r: Vec<f64> = (0..n).map(|i| ((i * 31 % 101) as f64) / 101.0).collect();
            let z = pre
                .apply(&mut m, &DistVector::from_global(desc, &r))
                .to_global();
            (z, m.trace().to_jsonl())
        };
        let (z1, t1) = run();
        let (z2, t2) = run();
        assert_eq!(t1, t2);
        assert!(z1.iter().zip(&z2).all(|(a, b)| a == b));
    }
}
