//! Recursive-descent parser for directive lines.
//!
//! A program is a sequence of lines; lines beginning with `!HPF$` or
//! `!EXT$` (case-insensitive) are directives, a trailing `&` continues a
//! directive onto the next line (whose sentinel is stripped), and
//! everything else — Fortran statements, `C --` comments, blanks — is
//! skipped. This is exactly enough to parse the paper's listings
//! (Figures 2 and 5 and the Section 4/5 fragments) verbatim.

use crate::ast::{AlignPattern, Directive, DistFormat, MergeSpec, PrivateSpec, SparseFmt};
use crate::expr::Expr;
use crate::lexer::{lex, Token, TokenKind};
use std::fmt;

/// Parse error with line/column context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a whole source text, returning the directives in order.
pub fn parse_program(src: &str) -> Result<Vec<Directive>, ParseError> {
    let mut directives = Vec::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let Some(mut body) = directive_body(raw) else {
            continue;
        };
        let logical_line = lineno + 1;
        // Splice continuations: a trailing '&' joins the next directive
        // line (with its sentinel and optional leading '&' removed).
        while body.trim_end().ends_with('&') {
            let trimmed = body.trim_end();
            body = trimmed[..trimmed.len() - 1].to_string();
            match lines.next() {
                Some((_, next_raw)) => {
                    let next = directive_body(next_raw).unwrap_or_else(|| next_raw.to_string());
                    body.push(' ');
                    body.push_str(next.trim_start().trim_start_matches('&'));
                }
                None => {
                    return Err(ParseError {
                        line: logical_line,
                        col: body.len(),
                        message: "continuation '&' at end of input".into(),
                    })
                }
            }
        }
        let tokens = lex(&body).map_err(|e| ParseError {
            line: logical_line,
            col: e.col,
            message: e.message,
        })?;
        let mut p = Parser {
            tokens,
            pos: 0,
            line: logical_line,
        };
        directives.push(p.directive()?);
        p.expect_end()?;
    }
    Ok(directives)
}

/// Parse a single directive (no sentinel).
pub fn parse_directive(body: &str) -> Result<Directive, ParseError> {
    let tokens = lex(body).map_err(|e| ParseError {
        line: 1,
        col: e.col,
        message: e.message,
    })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        line: 1,
    };
    let d = p.directive()?;
    p.expect_end()?;
    Ok(d)
}

/// Extract the directive body from a raw source line, if it is one.
fn directive_body(raw: &str) -> Option<String> {
    let t = raw.trim_start();
    for sentinel in ["!HPF$", "!EXT$", "$HPF$", "$EXT$", "CHPF$", "CEXT$"] {
        if t.len() >= sentinel.len() && t[..sentinel.len()].eq_ignore_ascii_case(sentinel) {
            return Some(t[sentinel.len()..].to_string());
        }
    }
    None
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    line: usize,
}

impl Parser {
    fn err(&self, col: usize, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn col(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.col)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.col + 1).unwrap_or(1))
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(
                self.col(),
                format!(
                    "expected '{kind}', found {}",
                    self.peek()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of line".into())
                ),
            ))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(self.col(), format!("expected keyword '{kw}'")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let col = self.col();
        match self.bump() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(self.err(
                col,
                format!(
                    "expected identifier, found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of line".into())
                ),
            )),
        }
    }

    fn expect_end(&mut self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err(self.col(), "unexpected trailing tokens"))
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence: +- over */, unary minus)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
            } else if self.eat(&TokenKind::Minus) {
                lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat(&TokenKind::Star) {
                lhs = Expr::Mul(Box::new(lhs), Box::new(self.factor()?));
            } else if self.eat(&TokenKind::Slash) {
                lhs = Expr::Div(Box::new(lhs), Box::new(self.factor()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let col = self.col();
        if self.eat(&TokenKind::Minus) {
            return Ok(Expr::Neg(Box::new(self.factor()?)));
        }
        if self.eat(&TokenKind::LParen) {
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(e);
        }
        match self.bump() {
            Some(TokenKind::Int(v)) => Ok(Expr::Num(v as i64)),
            Some(TokenKind::Ident(s)) => Ok(Expr::Var(s)),
            other => Err(self.err(
                col,
                format!(
                    "expected expression, found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of line".into())
                ),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Directives
    // ------------------------------------------------------------------

    fn directive(&mut self) -> Result<Directive, ParseError> {
        let mut dynamic = false;
        if self.eat_kw("DYNAMIC") {
            dynamic = true;
            self.expect(&TokenKind::Comma)?;
        }
        let col = self.col();
        if self.eat_kw("PROCESSORS") {
            self.processors()
        } else if self.eat_kw("DISTRIBUTE") {
            self.distribute(dynamic)
        } else if self.eat_kw("ALIGN") {
            self.align(dynamic)
        } else if self.eat_kw("REDISTRIBUTE") {
            self.redistribute()
        } else if self.eat_kw("INDIVISABLE") || self.eat_kw("INDIVISIBLE") {
            self.indivisable()
        } else if self.eat_kw("SPARSE_MATRIX") {
            self.sparse_matrix()
        } else if self.eat_kw("ITERATION") {
            self.iteration()
        } else {
            Err(self.err(col, "unknown directive"))
        }
    }

    /// `PROCESSORS [::] PROCS(extent)`
    fn processors(&mut self) -> Result<Directive, ParseError> {
        let _ = self.eat(&TokenKind::DoubleColon);
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let extent = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Directive::Processors { name, extent })
    }

    /// `array ( format )`
    fn distribute(&mut self, dynamic: bool) -> Result<Directive, ParseError> {
        let array = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let format = self.dist_format()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Directive::Distribute {
            dynamic,
            array,
            format,
        })
    }

    fn redistribute(&mut self) -> Result<Directive, ParseError> {
        let array = self.ident()?;
        if self.eat_kw("USING") {
            let partitioner = self.ident()?;
            return Ok(Directive::RedistributeUsing { array, partitioner });
        }
        self.expect(&TokenKind::LParen)?;
        let format = self.dist_format()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Directive::Redistribute { array, format })
    }

    fn dist_format(&mut self) -> Result<DistFormat, ParseError> {
        let col = self.col();
        if self.eat(&TokenKind::Star) {
            return Ok(DistFormat::Replicated);
        }
        if self.eat_kw("ATOM") {
            self.expect(&TokenKind::Colon)?;
            if self.eat_kw("BLOCK") {
                return Ok(DistFormat::AtomBlock);
            }
            if self.eat_kw("CYCLIC") {
                return Ok(DistFormat::AtomCyclic);
            }
            return Err(self.err(self.col(), "expected BLOCK or CYCLIC after ATOM:"));
        }
        if self.eat_kw("BLOCK") {
            let size = self.optional_size()?;
            return Ok(DistFormat::Block(size));
        }
        if self.eat_kw("CYCLIC") {
            let size = self.optional_size()?;
            return Ok(DistFormat::Cyclic(size));
        }
        Err(self.err(col, "expected BLOCK, CYCLIC, ATOM:..., or *"))
    }

    fn optional_size(&mut self) -> Result<Option<Expr>, ParseError> {
        if self.eat(&TokenKind::LParen) {
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            Ok(Some(e))
        } else {
            Ok(None)
        }
    }

    /// `ALIGN <source> WITH target(:) [:: a, b, c]`
    fn align(&mut self, dynamic: bool) -> Result<Directive, ParseError> {
        // Source pattern: either "(:)" (group form) or "name(<pattern>)".
        let (mut arrays, pattern) = if self.peek() == Some(&TokenKind::LParen) {
            // Group form: the subscript comes first, arrays trail `::`.
            self.expect(&TokenKind::LParen)?;
            self.expect(&TokenKind::Colon)?;
            self.expect(&TokenKind::RParen)?;
            (Vec::new(), AlignPattern::Identity)
        } else {
            let name = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let pattern = self.align_pattern()?;
            self.expect(&TokenKind::RParen)?;
            (vec![name], pattern)
        };
        self.expect_kw("WITH")?;
        let target = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        // Target subscript: `(:)` or `(i)` for the atom form.
        if !self.eat(&TokenKind::Colon) {
            let _ = self.ident()?; // the atom index variable reference
        }
        self.expect(&TokenKind::RParen)?;
        if self.eat(&TokenKind::DoubleColon) {
            loop {
                arrays.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if arrays.is_empty() {
            return Err(self.err(self.col(), "ALIGN names no source arrays"));
        }
        Ok(Directive::Align {
            dynamic,
            arrays,
            pattern,
            target,
        })
    }

    fn align_pattern(&mut self) -> Result<AlignPattern, ParseError> {
        let col = self.col();
        if self.eat_kw("ATOM") {
            self.expect(&TokenKind::Colon)?;
            let var = self.ident()?;
            return Ok(AlignPattern::Atom(var));
        }
        if self.eat(&TokenKind::Colon) {
            if self.eat(&TokenKind::Comma) {
                self.expect(&TokenKind::Star)?;
                return Ok(AlignPattern::FirstDim);
            }
            return Ok(AlignPattern::Identity);
        }
        if self.eat(&TokenKind::Star) {
            self.expect(&TokenKind::Comma)?;
            self.expect(&TokenKind::Colon)?;
            return Ok(AlignPattern::SecondDim);
        }
        Err(self.err(
            col,
            "expected ':', ':,*', '*,:' or 'ATOM:i' in ALIGN subscript",
        ))
    }

    /// `row(ATOM:i) :: col(i:i+1)`
    fn indivisable(&mut self) -> Result<Directive, ParseError> {
        let array = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        self.expect_kw("ATOM")?;
        self.expect(&TokenKind::Colon)?;
        let index_var = self.ident()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::DoubleColon)?;
        let bound_array = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let lo = self.expr()?;
        self.expect(&TokenKind::Colon)?;
        let hi = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Directive::Indivisable {
            array,
            index_var,
            bound_array,
            lo,
            hi,
        })
    }

    /// `(CSR) :: smA(row, col, a)`
    fn sparse_matrix(&mut self) -> Result<Directive, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let col = self.col();
        let fmt = self.ident()?;
        let format = if fmt.eq_ignore_ascii_case("csr") {
            SparseFmt::Csr
        } else if fmt.eq_ignore_ascii_case("csc") {
            SparseFmt::Csc
        } else {
            return Err(self.err(col, format!("unknown sparse format '{fmt}'")));
        };
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::DoubleColon)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let ptr = self.ident()?;
        self.expect(&TokenKind::Comma)?;
        let idx = self.ident()?;
        self.expect(&TokenKind::Comma)?;
        let values = self.ident()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Directive::SparseMatrix {
            format,
            name,
            ptr,
            idx,
            values,
        })
    }

    /// `j ON PROCESSOR(expr) [, PRIVATE(q(n)) WITH MERGE(+) | WITH DISCARD] [, NEW(a, b)] ...`
    fn iteration(&mut self) -> Result<Directive, ParseError> {
        let loop_var = self.ident()?;
        self.expect_kw("ON")?;
        self.expect_kw("PROCESSOR")?;
        self.expect(&TokenKind::LParen)?;
        let on_expr = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let mut privates = Vec::new();
        let mut news = Vec::new();
        while self.eat(&TokenKind::Comma) {
            if self.eat_kw("PRIVATE") {
                self.expect(&TokenKind::LParen)?;
                let array = self.ident()?;
                self.expect(&TokenKind::LParen)?;
                let extent = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::RParen)?;
                let merge = if self.eat_kw("WITH") {
                    if self.eat_kw("MERGE") {
                        self.expect(&TokenKind::LParen)?;
                        let col = self.col();
                        let m = if self.eat(&TokenKind::Plus) {
                            MergeSpec::Sum
                        } else if self.eat_kw("MAX") {
                            MergeSpec::Max
                        } else if self.eat_kw("MIN") {
                            MergeSpec::Min
                        } else {
                            return Err(self.err(col, "expected '+', MAX or MIN in MERGE"));
                        };
                        self.expect(&TokenKind::RParen)?;
                        m
                    } else if self.eat_kw("DISCARD") {
                        MergeSpec::Discard
                    } else {
                        return Err(self.err(self.col(), "expected MERGE(...) or DISCARD"));
                    }
                } else {
                    MergeSpec::Discard
                };
                // De-duplicate repeated PRIVATE clauses for the same
                // array (the paper's Figure 5 listing repeats one).
                if !privates
                    .iter()
                    .any(|p: &PrivateSpec| p.array.eq_ignore_ascii_case(&array))
                {
                    privates.push(PrivateSpec {
                        array,
                        extent,
                        merge,
                    });
                }
            } else if self.eat_kw("NEW") {
                self.expect(&TokenKind::LParen)?;
                loop {
                    news.push(self.ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            } else {
                return Err(self.err(self.col(), "expected PRIVATE or NEW clause"));
            }
        }
        Ok(Directive::IterationMapping {
            loop_var,
            on_expr,
            privates,
            news,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Env;

    #[test]
    fn parses_figure2_directive_block() {
        // The exact directive block of the paper's Figure 2.
        let src = "\
REAL, dimension(1:nz) :: a
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
DO k=1,Niter
";
        let ds = parse_program(src).unwrap();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds[0].kind(), "PROCESSORS");
        match &ds[1] {
            Directive::Align {
                arrays,
                pattern,
                target,
                ..
            } => {
                assert_eq!(arrays, &["q", "r", "x", "b"]);
                assert_eq!(pattern, &AlignPattern::Identity);
                assert_eq!(target, "p");
            }
            other => panic!("{other:?}"),
        }
        match &ds[3] {
            Directive::Distribute {
                array,
                format: DistFormat::Cyclic(Some(e)),
                ..
            } => {
                assert_eq!(array, "row");
                let env = Env::new().bind("n", 10).bind("np", 4);
                assert_eq!(e.eval(&env).unwrap(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_scenario_align_patterns() {
        match parse_directive("ALIGN A(:, *) WITH p(:)").unwrap() {
            Directive::Align { pattern, .. } => assert_eq!(pattern, AlignPattern::FirstDim),
            other => panic!("{other:?}"),
        }
        match parse_directive("ALIGN A(*, :) WITH p(:)").unwrap() {
            Directive::Align { pattern, .. } => assert_eq!(pattern, AlignPattern::SecondDim),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_dynamic_prefix() {
        match parse_directive("DYNAMIC, DISTRIBUTE row(BLOCK)").unwrap() {
            Directive::Distribute { dynamic, .. } => assert!(dynamic),
            other => panic!("{other:?}"),
        }
        match parse_directive("DYNAMIC, ALIGN a(:) WITH col(:)").unwrap() {
            Directive::Align { dynamic, .. } => assert!(dynamic),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_paper_block_size_form() {
        // $HPF$ DISTRIBUTE row(BLOCK( (n+NP-1)/NP ))
        match parse_directive("DISTRIBUTE row(BLOCK( (n+NP-1)/NP ))").unwrap() {
            Directive::Distribute {
                format: DistFormat::Block(Some(e)),
                ..
            } => {
                let env = Env::new().bind("n", 100).bind("np", 8);
                assert_eq!(e.eval(&env).unwrap(), 13);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_atom_redistribute() {
        match parse_directive("REDISTRIBUTE row(ATOM: BLOCK)").unwrap() {
            Directive::Redistribute {
                format: DistFormat::AtomBlock,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        match parse_directive("REDISTRIBUTE row(ATOM: CYCLIC)").unwrap() {
            Directive::Redistribute {
                format: DistFormat::AtomCyclic,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_redistribute_using_partitioner() {
        match parse_directive("REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1").unwrap() {
            Directive::RedistributeUsing { array, partitioner } => {
                assert_eq!(array, "smA");
                assert_eq!(partitioner, "CG_BALANCED_PARTITIONER_1");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_indivisable() {
        match parse_directive("INDIVISABLE row(ATOM:i) :: col(i:i+1)").unwrap() {
            Directive::Indivisable {
                array,
                index_var,
                bound_array,
                lo,
                hi,
            } => {
                assert_eq!(array, "row");
                assert_eq!(index_var, "i");
                assert_eq!(bound_array, "col");
                let env = Env::new().bind("i", 5);
                assert_eq!(lo.eval(&env).unwrap(), 5);
                assert_eq!(hi.eval(&env).unwrap(), 6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_sparse_matrix_directive() {
        match parse_directive("SPARSE_MATRIX (CSR) :: smA(row, col, a)").unwrap() {
            Directive::SparseMatrix {
                format,
                name,
                ptr,
                idx,
                values,
            } => {
                assert_eq!(format, SparseFmt::Csr);
                assert_eq!(name, "smA");
                assert_eq!(
                    (ptr.as_str(), idx.as_str(), values.as_str()),
                    ("row", "col", "a")
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_directive("SPARSE_MATRIX (XYZ) :: m(a,b,c)").is_err());
    }

    #[test]
    fn parses_figure5_iteration_mapping_with_continuations() {
        // The paper's Figure 5 listing, verbatim including the '&'
        // continuations and the duplicated PRIVATE clause.
        let src = "\
!EXT$ ITERATION j ON PROCESSOR(j/np), &
!EXT$ PRIVATE(q(n)) WITH MERGE(+), &
!EXT$ NEW(pj, k), PRIVATE(q(n))
";
        let ds = parse_program(src).unwrap();
        assert_eq!(ds.len(), 1);
        match &ds[0] {
            Directive::IterationMapping {
                loop_var,
                on_expr,
                privates,
                news,
            } => {
                assert_eq!(loop_var, "j");
                let env = Env::new().bind("j", 10).bind("np", 4);
                assert_eq!(on_expr.eval(&env).unwrap(), 2);
                assert_eq!(privates.len(), 1); // duplicate collapsed
                assert_eq!(privates[0].array, "q");
                assert_eq!(privates[0].merge, MergeSpec::Sum);
                assert_eq!(news, &["pj", "k"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_merge_variants() {
        let d =
            parse_directive("ITERATION i ON PROCESSOR(i), PRIVATE(v(8)) WITH MERGE(MAX)").unwrap();
        match d {
            Directive::IterationMapping { privates, .. } => {
                assert_eq!(privates[0].merge, MergeSpec::Max)
            }
            other => panic!("{other:?}"),
        }
        let d = parse_directive("ITERATION i ON PROCESSOR(i), PRIVATE(v(8)) WITH DISCARD").unwrap();
        match d {
            Directive::IterationMapping { privates, .. } => {
                assert_eq!(privates[0].merge, MergeSpec::Discard)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_atom_alignment_extension() {
        match parse_directive("ALIGN row(ATOM:i) WITH col(i)").unwrap() {
            Directive::Align { pattern, .. } => {
                assert_eq!(pattern, AlignPattern::Atom("i".into()))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn skips_non_directive_lines() {
        let src = "REAL :: x(10)\nC -- comment\n\n!HPF$ DISTRIBUTE x(BLOCK)\nq = 0.0\n";
        let ds = parse_program(src).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn error_messages_carry_location() {
        let err = parse_directive("DISTRIBUTE p(NONSENSE)").unwrap_err();
        assert!(err.message.contains("BLOCK"));
        assert!(err.col > 0);
        let err = parse_program("!HPF$ DISTRIBUTE p(BLOCK) extra\n").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn dollar_sentinel_accepted() {
        // The paper uses `$HPF$` in some fragments.
        let ds = parse_program("$HPF$ DISTRIBUTE row(BLOCK( (n+NP-1)/NP ))\n").unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn dangling_continuation_rejected() {
        let err = parse_program("!HPF$ DISTRIBUTE p(BLOCK), &\n").unwrap_err();
        assert!(err.message.contains("continuation"));
    }
}
