//! Abstract syntax of the directive language: HPF-1 directives plus the
//! paper's proposed `!EXT$` extensions.

use crate::expr::Expr;
use serde::{Deserialize, Serialize};

/// A distribution format inside `DISTRIBUTE`/`REDISTRIBUTE`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistFormat {
    /// `BLOCK` or `BLOCK(expr)`.
    Block(Option<Expr>),
    /// `CYCLIC` or `CYCLIC(expr)`.
    Cyclic(Option<Expr>),
    /// `ATOM: BLOCK` (extension, Section 5.2.1).
    AtomBlock,
    /// `ATOM: CYCLIC` (extension).
    AtomCyclic,
    /// `*` — replicated / serial dimension.
    Replicated,
}

/// The source-side subscript pattern of an `ALIGN`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlignPattern {
    /// `a(:) WITH t(:)` — identity element alignment (also the bare
    /// `(:) WITH t(:) :: list` form).
    Identity,
    /// `A(:, *) WITH t(:)` — first dimension follows the target (row
    /// alignment; the paper's Scenario 1).
    FirstDim,
    /// `A(*, :) WITH t(:)` — second dimension follows the target
    /// (column alignment; Scenario 2).
    SecondDim,
    /// `row(ATOM:i) WITH col(i)` — atoms of the source aligned with
    /// elements of the target (extension, Section 5.2.1).
    Atom(String),
}

/// `WITH MERGE(op)` / `WITH DISCARD` in the PRIVATE extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeSpec {
    Sum,
    Max,
    Min,
    Discard,
}

/// One `PRIVATE(q(n)) WITH ...` clause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivateSpec {
    pub array: String,
    pub extent: Expr,
    pub merge: MergeSpec,
}

/// Sparse storage scheme named in `SPARSE_MATRIX (fmt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SparseFmt {
    Csr,
    Csc,
}

/// One parsed directive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Directive {
    /// `PROCESSORS :: PROCS(NP)`
    Processors { name: String, extent: Expr },
    /// `[DYNAMIC,] DISTRIBUTE array(format)`
    Distribute {
        dynamic: bool,
        array: String,
        format: DistFormat,
    },
    /// `[DYNAMIC,] ALIGN <pattern> WITH target(:) [:: a, b, c]`
    Align {
        dynamic: bool,
        arrays: Vec<String>,
        pattern: AlignPattern,
        target: String,
    },
    /// `REDISTRIBUTE array(format)`
    Redistribute { array: String, format: DistFormat },
    /// `REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1` (extension)
    RedistributeUsing { array: String, partitioner: String },
    /// `INDIVISABLE row(ATOM:i) :: col(i:i+1)` (extension)
    Indivisable {
        array: String,
        index_var: String,
        bound_array: String,
        lo: Expr,
        hi: Expr,
    },
    /// `SPARSE_MATRIX (CSR) :: smA(row, col, a)` (extension)
    SparseMatrix {
        format: SparseFmt,
        name: String,
        ptr: String,
        idx: String,
        values: String,
    },
    /// `ITERATION j ON PROCESSOR(f(j)), PRIVATE(...) WITH ..., NEW(...)`
    /// (extension, Section 5.1)
    IterationMapping {
        loop_var: String,
        on_expr: Expr,
        privates: Vec<PrivateSpec>,
        news: Vec<String>,
    },
}

impl Directive {
    /// Short tag for reports/tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Directive::Processors { .. } => "PROCESSORS",
            Directive::Distribute { .. } => "DISTRIBUTE",
            Directive::Align { .. } => "ALIGN",
            Directive::Redistribute { .. } => "REDISTRIBUTE",
            Directive::RedistributeUsing { .. } => "REDISTRIBUTE USING",
            Directive::Indivisable { .. } => "INDIVISABLE",
            Directive::SparseMatrix { .. } => "SPARSE_MATRIX",
            Directive::IterationMapping { .. } => "ITERATION",
        }
    }

    /// Is this one of the paper's proposed extensions (vs HPF-1)?
    pub fn is_extension(&self) -> bool {
        matches!(
            self,
            Directive::RedistributeUsing { .. }
                | Directive::Indivisable { .. }
                | Directive::SparseMatrix { .. }
                | Directive::IterationMapping { .. }
        ) || matches!(
            self,
            Directive::Distribute {
                format: DistFormat::AtomBlock | DistFormat::AtomCyclic,
                ..
            } | Directive::Redistribute {
                format: DistFormat::AtomBlock | DistFormat::AtomCyclic,
                ..
            } | Directive::Align {
                pattern: AlignPattern::Atom(_),
                ..
            }
        )
    }
}

impl std::fmt::Display for DistFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistFormat::Block(None) => write!(f, "BLOCK"),
            DistFormat::Block(Some(e)) => write!(f, "BLOCK({e})"),
            DistFormat::Cyclic(None) => write!(f, "CYCLIC"),
            DistFormat::Cyclic(Some(e)) => write!(f, "CYCLIC({e})"),
            DistFormat::AtomBlock => write!(f, "ATOM: BLOCK"),
            DistFormat::AtomCyclic => write!(f, "ATOM: CYCLIC"),
            DistFormat::Replicated => write!(f, "*"),
        }
    }
}

impl std::fmt::Display for MergeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeSpec::Sum => write!(f, "MERGE(+)"),
            MergeSpec::Max => write!(f, "MERGE(MAX)"),
            MergeSpec::Min => write!(f, "MERGE(MIN)"),
            MergeSpec::Discard => write!(f, "DISCARD"),
        }
    }
}

impl std::fmt::Display for Directive {
    /// Render back to canonical directive text (no sentinel); parseable
    /// by [`crate::parser::parse_directive`] — the round-trip property
    /// is enforced by tests.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Directive::Processors { name, extent } => {
                write!(f, "PROCESSORS :: {name}({extent})")
            }
            Directive::Distribute {
                dynamic,
                array,
                format,
            } => {
                if *dynamic {
                    write!(f, "DYNAMIC, ")?;
                }
                write!(f, "DISTRIBUTE {array}({format})")
            }
            Directive::Align {
                dynamic,
                arrays,
                pattern,
                target,
            } => {
                if *dynamic {
                    write!(f, "DYNAMIC, ")?;
                }
                match pattern {
                    AlignPattern::Identity if arrays.len() > 1 => {
                        write!(f, "ALIGN (:) WITH {target}(:) :: {}", arrays.join(", "))
                    }
                    AlignPattern::Identity => {
                        write!(f, "ALIGN {}(:) WITH {target}(:)", arrays[0])
                    }
                    AlignPattern::FirstDim => {
                        write!(f, "ALIGN {}(:, *) WITH {target}(:)", arrays[0])
                    }
                    AlignPattern::SecondDim => {
                        write!(f, "ALIGN {}(*, :) WITH {target}(:)", arrays[0])
                    }
                    AlignPattern::Atom(i) => {
                        write!(f, "ALIGN {}(ATOM:{i}) WITH {target}({i})", arrays[0])
                    }
                }
            }
            Directive::Redistribute { array, format } => {
                write!(f, "REDISTRIBUTE {array}({format})")
            }
            Directive::RedistributeUsing { array, partitioner } => {
                write!(f, "REDISTRIBUTE {array} USING {partitioner}")
            }
            Directive::Indivisable {
                array,
                index_var,
                bound_array,
                lo,
                hi,
            } => write!(
                f,
                "INDIVISABLE {array}(ATOM:{index_var}) :: {bound_array}({lo}:{hi})"
            ),
            Directive::SparseMatrix {
                format,
                name,
                ptr,
                idx,
                values,
            } => {
                let fmt_name = match format {
                    SparseFmt::Csr => "CSR",
                    SparseFmt::Csc => "CSC",
                };
                write!(
                    f,
                    "SPARSE_MATRIX ({fmt_name}) :: {name}({ptr}, {idx}, {values})"
                )
            }
            Directive::IterationMapping {
                loop_var,
                on_expr,
                privates,
                news,
            } => {
                write!(f, "ITERATION {loop_var} ON PROCESSOR({on_expr})")?;
                for p in privates {
                    write!(f, ", PRIVATE({}({})) WITH {}", p.array, p.extent, p.merge)?;
                }
                if !news.is_empty() {
                    write!(f, ", NEW({})", news.join(", "))?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_classification() {
        let d = Directive::Distribute {
            dynamic: false,
            array: "p".into(),
            format: DistFormat::Block(None),
        };
        assert!(!d.is_extension());
        assert_eq!(d.kind(), "DISTRIBUTE");

        let e = Directive::Redistribute {
            array: "row".into(),
            format: DistFormat::AtomBlock,
        };
        assert!(e.is_extension());

        let s = Directive::SparseMatrix {
            format: SparseFmt::Csr,
            name: "smA".into(),
            ptr: "row".into(),
            idx: "col".into(),
            values: "a".into(),
        };
        assert!(s.is_extension());
        assert_eq!(s.kind(), "SPARSE_MATRIX");
    }
}
