//! Tokenizer for HPF/EXT directive lines.
//!
//! The paper writes its programs as Fortran with directive comments:
//!
//! ```fortran
//! !HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
//! !EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
//! ```
//!
//! The lexer handles one logical directive line (continuations already
//! spliced by the parser), case-insensitive keywords, identifiers,
//! integer literals, and the punctuation the directive grammar needs.

use std::fmt;

/// One token with its starting column (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (stored in original case; compare via
    /// [`TokenKind::is_kw`]).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    LParen,
    RParen,
    Comma,
    Colon,
    DoubleColon,
    Star,
    Plus,
    Minus,
    Slash,
}

impl TokenKind {
    /// Case-insensitive keyword test.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::DoubleColon => write!(f, "::"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Slash => write!(f, "/"),
        }
    }
}

/// Lexing error with column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub col: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "column {}: {}", self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize one directive body (the text after `!HPF$` / `!EXT$`).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let col = i + 1;
        match c {
            ' ' | '\t' => {
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    col,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    col,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    col,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    col,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    col,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    col,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    col,
                });
                i += 1;
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b':' {
                    out.push(Token {
                        kind: TokenKind::DoubleColon,
                        col,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Colon,
                        col,
                    });
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v = text.parse::<u64>().map_err(|e| LexError {
                    col,
                    message: format!("bad integer '{text}': {e}"),
                })?;
                out.push(Token {
                    kind: TokenKind::Int(v),
                    col,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    col,
                });
            }
            other => {
                return Err(LexError {
                    col,
                    message: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_distribute_directive() {
        let toks = kinds("DISTRIBUTE p(BLOCK)");
        assert_eq!(toks.len(), 5);
        assert!(toks[0].is_kw("distribute"));
        assert_eq!(toks[1], TokenKind::Ident("p".into()));
        assert_eq!(toks[2], TokenKind::LParen);
        assert!(toks[3].is_kw("BLOCK"));
        assert_eq!(toks[4], TokenKind::RParen);
    }

    #[test]
    fn lexes_block_size_expression() {
        let toks = kinds("BLOCK((n+NP-1)/NP)");
        assert!(toks.contains(&TokenKind::Plus));
        assert!(toks.contains(&TokenKind::Minus));
        assert!(toks.contains(&TokenKind::Slash));
        assert!(toks.contains(&TokenKind::Int(1)));
    }

    #[test]
    fn double_colon_vs_colon() {
        let toks = kinds("ALIGN (:) WITH p(:) :: q, r");
        let dc = toks
            .iter()
            .filter(|t| matches!(t, TokenKind::DoubleColon))
            .count();
        let sc = toks
            .iter()
            .filter(|t| matches!(t, TokenKind::Colon))
            .count();
        assert_eq!(dc, 1);
        assert_eq!(sc, 2);
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = kinds("distribute P(block)");
        assert!(toks[0].is_kw("DISTRIBUTE"));
        assert!(toks[3].is_kw("Block"));
    }

    #[test]
    fn columns_reported() {
        let toks = lex("AB  CD").unwrap();
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[1].col, 5);
    }

    #[test]
    fn rejects_strange_characters() {
        let err = lex("DISTRIBUTE p@q").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.col, 13);
    }

    #[test]
    fn lexes_star_patterns() {
        let toks = kinds("ALIGN A(:, *) WITH p(:)");
        assert!(toks.contains(&TokenKind::Star));
    }
}
