//! Integer expressions inside directives.
//!
//! The paper's directives size blocks with expressions over problem
//! parameters: `DISTRIBUTE row(BLOCK( (n+NP-1)/NP ))`. Expressions are
//! parsed into [`Expr`] and evaluated against an environment binding the
//! free identifiers (`n`, `NP`, ...) at elaboration time.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An integer expression over named parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    Num(i64),
    Var(String),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    /// Integer (truncating) division, as Fortran's `/` on integers.
    Div(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

/// Evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    UnboundVariable(String),
    DivisionByZero,
    Negative(i64),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound parameter '{v}'"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::Negative(v) => write!(f, "expression evaluated to negative value {v}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Parameter bindings, case-insensitive on lookup (Fortran heritage:
/// `NP` and `np` are the same name in the paper's listings).
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: BTreeMap<String, i64>,
}

impl Env {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn bind(mut self, name: &str, value: i64) -> Self {
        self.vars.insert(name.to_ascii_lowercase(), value);
        self
    }

    pub fn set(&mut self, name: &str, value: i64) {
        self.vars.insert(name.to_ascii_lowercase(), value);
    }

    pub fn get(&self, name: &str) -> Option<i64> {
        self.vars.get(&name.to_ascii_lowercase()).copied()
    }
}

impl Expr {
    /// Evaluate against `env`.
    pub fn eval(&self, env: &Env) -> Result<i64, EvalError> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Var(name) => env
                .get(name)
                .ok_or_else(|| EvalError::UnboundVariable(name.clone()))?,
            Expr::Add(a, b) => a.eval(env)? + b.eval(env)?,
            Expr::Sub(a, b) => a.eval(env)? - b.eval(env)?,
            Expr::Mul(a, b) => a.eval(env)? * b.eval(env)?,
            Expr::Div(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                a.eval(env)? / d
            }
            Expr::Neg(a) => -a.eval(env)?,
        })
    }

    /// Evaluate, requiring a non-negative result (extents, block sizes).
    pub fn eval_unsigned(&self, env: &Env) -> Result<usize, EvalError> {
        let v = self.eval(env)?;
        if v < 0 {
            Err(EvalError::Negative(v))
        } else {
            Ok(v as usize)
        }
    }

    /// Free variables referenced (lowercased), in order of appearance.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(v) => {
                let lower = v.to_ascii_lowercase();
                if !out.contains(&lower) {
                    out.push(lower);
                }
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Neg(a) => a.collect_vars(out),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a}+{b})"),
            Expr::Sub(a, b) => write!(f, "({a}-{b})"),
            Expr::Mul(a, b) => write!(f, "({a}*{b})"),
            Expr::Div(a, b) => write!(f, "({a}/{b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: i64) -> Expr {
        Expr::Num(v)
    }
    fn var(s: &str) -> Expr {
        Expr::Var(s.into())
    }

    #[test]
    fn evaluates_paper_block_size() {
        // (n + NP - 1) / NP with n = 10, NP = 4 -> 3.
        let e = Expr::Div(
            Box::new(Expr::Sub(
                Box::new(Expr::Add(Box::new(var("n")), Box::new(var("NP")))),
                Box::new(n(1)),
            )),
            Box::new(var("NP")),
        );
        let env = Env::new().bind("n", 10).bind("np", 4);
        assert_eq!(e.eval(&env).unwrap(), 3);
    }

    #[test]
    fn case_insensitive_lookup() {
        let env = Env::new().bind("NP", 8);
        assert_eq!(var("np").eval(&env).unwrap(), 8);
        assert_eq!(var("Np").eval(&env).unwrap(), 8);
    }

    #[test]
    fn unbound_variable_error() {
        let err = var("ghost").eval(&Env::new()).unwrap_err();
        assert_eq!(err, EvalError::UnboundVariable("ghost".into()));
    }

    #[test]
    fn division_by_zero_detected() {
        let e = Expr::Div(Box::new(n(5)), Box::new(n(0)));
        assert_eq!(e.eval(&Env::new()).unwrap_err(), EvalError::DivisionByZero);
    }

    #[test]
    fn unsigned_rejects_negative() {
        let e = Expr::Sub(Box::new(n(1)), Box::new(n(5)));
        assert_eq!(
            e.eval_unsigned(&Env::new()).unwrap_err(),
            EvalError::Negative(-4)
        );
        assert_eq!(n(7).eval_unsigned(&Env::new()).unwrap(), 7);
    }

    #[test]
    fn negation_and_display() {
        let e = Expr::Neg(Box::new(Expr::Add(Box::new(n(2)), Box::new(var("k")))));
        assert_eq!(e.eval(&Env::new().bind("k", 3)).unwrap(), -5);
        assert_eq!(e.to_string(), "(-(2+k))");
    }

    #[test]
    fn free_vars_deduplicated_lowercase() {
        let e = Expr::Add(
            Box::new(var("NP")),
            Box::new(Expr::Mul(Box::new(var("np")), Box::new(var("n")))),
        );
        assert_eq!(e.free_vars(), vec!["np".to_string(), "n".to_string()]);
    }

    #[test]
    fn integer_division_truncates() {
        let e = Expr::Div(Box::new(n(7)), Box::new(n(2)));
        assert_eq!(e.eval(&Env::new()).unwrap(), 3);
    }
}
