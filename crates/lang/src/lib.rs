//! # hpf-lang — HPF directive front-end
//!
//! Parses the directive language the paper writes its programs in —
//! HPF-1 directives (`PROCESSORS`, `DISTRIBUTE`, `ALIGN`, `DYNAMIC`,
//! `REDISTRIBUTE`) plus the proposed `!EXT$` extensions (`INDIVISABLE`,
//! `ATOM:` distributions, `SPARSE_MATRIX`, `REDISTRIBUTE ... USING`,
//! `ITERATION ... ON PROCESSOR ... PRIVATE ... WITH MERGE`) — and
//! elaborates it against problem parameters into the typed
//! distribution layer of `hpf-dist`.
//!
//! The paper's own Figure 2 directive block parses verbatim:
//!
//! ```
//! use hpf_lang::{parse_program, elaborate, Env};
//! use std::collections::BTreeMap;
//!
//! let src = "
//! !HPF$ PROCESSORS :: PROCS(NP)
//! !HPF$ DISTRIBUTE p(BLOCK)
//! !HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
//! ";
//! let directives = parse_program(src).unwrap();
//! let env = Env::new().bind("np", 8);
//! let extents: BTreeMap<String, usize> =
//!     ["p", "q", "r", "x", "b"].iter().map(|s| (s.to_string(), 128)).collect();
//! let elab = elaborate(&directives, &env, &extents).unwrap();
//! assert_eq!(elab.np, 8);
//! assert_eq!(elab.graph.ultimate_target("r").unwrap(), "p");
//! ```

pub mod ast;
pub mod elaborate;
pub mod expr;
pub mod lexer;
pub mod parser;

pub use ast::{AlignPattern, Directive, DistFormat, MergeSpec, PrivateSpec, SparseFmt};
pub use elaborate::{elaborate, ElabError, Elaboration, IterationMap, SparseBinding};
pub use expr::{Env, EvalError, Expr};
pub use parser::{parse_directive, parse_program, ParseError};
