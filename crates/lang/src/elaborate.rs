//! Elaboration: from parsed directives to the typed distribution layer.
//!
//! What an HPF compiler's front-end does with the directive block: given
//! the problem parameters (`n`, `NP`, array extents), produce the
//! [`AlignmentGraph`], the processor arrangement, the `SPARSE_MATRIX`
//! trio bindings, `INDIVISABLE` atom declarations, and the iteration
//! mappings — ready for the runtime crates to execute.

use crate::ast::{AlignPattern, Directive, DistFormat, MergeSpec, PrivateSpec, SparseFmt};
use crate::expr::{Env, EvalError, Expr};
use hpf_dist::{AlignError, AlignmentGraph, DistSpec};
use std::collections::BTreeMap;
use std::fmt;

/// Elaboration error.
#[derive(Debug, Clone, PartialEq)]
pub enum ElabError {
    /// No `PROCESSORS` directive and no `np` binding supplied.
    NoProcessors,
    /// An array is distributed/aligned but its extent is unknown.
    UnknownArrayExtent(String),
    /// Expression evaluation failed.
    Eval(EvalError),
    /// Alignment failed (unknown target, cycle, length mismatch).
    Align(AlignError),
    /// A `REDISTRIBUTE`/`ALIGN` names an array never declared.
    UnknownArray(String),
    /// An unknown partitioner name in `REDISTRIBUTE ... USING`.
    UnknownPartitioner(String),
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::NoProcessors => write!(f, "no PROCESSORS directive or np binding"),
            ElabError::UnknownArrayExtent(a) => {
                write!(f, "extent of array '{a}' not supplied")
            }
            ElabError::Eval(e) => write!(f, "expression: {e}"),
            ElabError::Align(e) => write!(f, "alignment: {e}"),
            ElabError::UnknownArray(a) => write!(f, "unknown array '{a}'"),
            ElabError::UnknownPartitioner(p) => write!(f, "unknown partitioner '{p}'"),
        }
    }
}

impl std::error::Error for ElabError {}

impl From<EvalError> for ElabError {
    fn from(e: EvalError) -> Self {
        ElabError::Eval(e)
    }
}

impl From<AlignError> for ElabError {
    fn from(e: AlignError) -> Self {
        ElabError::Align(e)
    }
}

/// A declared `SPARSE_MATRIX` trio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseBinding {
    pub name: String,
    pub format: SparseFmt,
    pub ptr: String,
    pub idx: String,
    pub values: String,
}

/// A declared `INDIVISABLE` atom relation: atoms of `array` are bounded
/// by consecutive entries of `bound_array`.
#[derive(Debug, Clone, PartialEq)]
pub struct IndivisableBinding {
    pub array: String,
    pub bound_array: String,
}

/// A pending `REDISTRIBUTE ... USING <partitioner>` (resolved against
/// runtime data by the caller).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionerRequest {
    pub array: String,
    pub partitioner: String,
}

/// A pending `ATOM:` distribution (needs the runtime pointer array).
#[derive(Debug, Clone, PartialEq)]
pub struct AtomDistribution {
    pub array: String,
    pub cyclic: bool,
}

/// An elaborated `ITERATION ... ON PROCESSOR(f(j))` mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationMap {
    pub loop_var: String,
    pub on_expr: Expr,
    pub privates: Vec<PrivateSpec>,
    pub news: Vec<String>,
    np: usize,
}

impl IterationMap {
    /// Evaluate the mapping for iteration `j` under `base_env`
    /// (the loop variable is bound automatically; result clamped to the
    /// processor range as the runtime would).
    pub fn processor_of(&self, j: usize, base_env: &Env) -> Result<usize, EvalError> {
        let mut env = base_env.clone();
        env.set(&self.loop_var, j as i64);
        let v = self.on_expr.eval(&env)?;
        Ok((v.max(0) as usize).min(self.np - 1))
    }

    /// Does the mapping privatise `array`?
    pub fn privatises(&self, array: &str) -> Option<MergeSpec> {
        self.privates
            .iter()
            .find(|p| p.array.eq_ignore_ascii_case(array))
            .map(|p| p.merge)
    }
}

/// The result of elaborating a directive block.
#[derive(Debug)]
pub struct Elaboration {
    /// Processor count (from `PROCESSORS` or the `np` binding).
    pub np: usize,
    /// Name of the processor grid, if declared.
    pub grid_name: Option<String>,
    /// The alignment/distribution registry.
    pub graph: AlignmentGraph,
    pub sparse_matrices: Vec<SparseBinding>,
    pub indivisables: Vec<IndivisableBinding>,
    pub partitioner_requests: Vec<PartitionerRequest>,
    pub atom_distributions: Vec<AtomDistribution>,
    pub iteration_maps: Vec<IterationMap>,
    /// Atom-pattern alignments (`row(ATOM:i) WITH col(i)`).
    pub atom_alignments: Vec<(String, String)>,
}

/// Elaborate `directives` with the given parameter environment and
/// array extents (name → length, case-insensitive).
pub fn elaborate(
    directives: &[Directive],
    env: &Env,
    extents: &BTreeMap<String, usize>,
) -> Result<Elaboration, ElabError> {
    let lookup = |name: &str| -> Result<usize, ElabError> {
        extents
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, &v)| v)
            .ok_or_else(|| ElabError::UnknownArrayExtent(name.to_string()))
    };

    // Pass 1: find NP.
    let mut np = env.get("np").map(|v| v.max(1) as usize);
    let mut grid_name = None;
    for d in directives {
        if let Directive::Processors { name, extent } = d {
            let v = extent.eval_unsigned(env)?;
            np = Some(v.max(1));
            grid_name = Some(name.clone());
        }
    }
    let np = np.ok_or(ElabError::NoProcessors)?;

    let mut out = Elaboration {
        np,
        grid_name,
        graph: AlignmentGraph::new(np),
        sparse_matrices: Vec::new(),
        indivisables: Vec::new(),
        partitioner_requests: Vec::new(),
        atom_distributions: Vec::new(),
        iteration_maps: Vec::new(),
        atom_alignments: Vec::new(),
    };

    let to_spec = |format: &DistFormat, len: usize| -> Result<Option<DistSpec>, ElabError> {
        Ok(match format {
            DistFormat::Block(None) => Some(DistSpec::Block),
            DistFormat::Block(Some(e)) => {
                let k = e.eval_unsigned(env)?.max(1);
                // Clamp up so the block family can hold the array, as an
                // HPF compiler would diagnose/adjust.
                let k = k.max(len.div_ceil(np));
                Some(DistSpec::BlockK(k))
            }
            DistFormat::Cyclic(None) => Some(DistSpec::Cyclic),
            DistFormat::Cyclic(Some(e)) => Some(DistSpec::CyclicK(e.eval_unsigned(env)?.max(1))),
            DistFormat::Replicated => Some(DistSpec::Replicated),
            DistFormat::AtomBlock | DistFormat::AtomCyclic => None,
        })
    };

    // Pass 2: register every DISTRIBUTE first — HPF directive blocks may
    // forward-reference a target distributed later in the block (the
    // paper's Figure 2 aligns `a` with `col` two lines before
    // `DISTRIBUTE col(BLOCK)`).
    for d in directives {
        if let Directive::Distribute {
            dynamic,
            array,
            format,
        } = d
        {
            let len = lookup(array)?;
            match to_spec(format, len)? {
                Some(spec) => {
                    if *dynamic {
                        out.graph.distribute_dynamic(array.clone(), len, spec);
                    } else {
                        out.graph.distribute(array.clone(), len, spec);
                    }
                }
                None => {
                    // ATOM: forms need runtime pointer data; register
                    // a provisional BLOCK and record the request.
                    out.graph
                        .distribute_dynamic(array.clone(), len, DistSpec::Block);
                    out.atom_distributions.push(AtomDistribution {
                        array: array.clone(),
                        cyclic: matches!(format, DistFormat::AtomCyclic),
                    });
                }
            }
        }
    }

    // Pass 3: everything else, in source order.
    for d in directives {
        match d {
            Directive::Processors { .. } | Directive::Distribute { .. } => {}
            Directive::Align {
                arrays,
                pattern,
                target,
                ..
            } => match pattern {
                AlignPattern::Atom(_) => {
                    for a in arrays {
                        out.atom_alignments.push((a.clone(), target.clone()));
                    }
                }
                // Identity / FirstDim / SecondDim all make the source's
                // distributed axis follow the target's distribution.
                _ => {
                    for a in arrays {
                        let len = lookup(a)?;
                        out.graph.align(a.clone(), len, target)?;
                    }
                }
            },
            Directive::Redistribute { array, format } => {
                let len = lookup(array)?;
                match to_spec(format, len)? {
                    Some(spec) => {
                        out.graph.redistribute(array, spec)?;
                    }
                    None => {
                        out.atom_distributions.push(AtomDistribution {
                            array: array.clone(),
                            cyclic: matches!(format, DistFormat::AtomCyclic),
                        });
                    }
                }
            }
            Directive::RedistributeUsing { array, partitioner } => {
                if !partitioner.eq_ignore_ascii_case("CG_BALANCED_PARTITIONER_1")
                    && !partitioner.eq_ignore_ascii_case("GREEDY_LPT")
                {
                    return Err(ElabError::UnknownPartitioner(partitioner.clone()));
                }
                out.partitioner_requests.push(PartitionerRequest {
                    array: array.clone(),
                    partitioner: partitioner.clone(),
                });
            }
            Directive::Indivisable {
                array, bound_array, ..
            } => {
                out.indivisables.push(IndivisableBinding {
                    array: array.clone(),
                    bound_array: bound_array.clone(),
                });
            }
            Directive::SparseMatrix {
                format,
                name,
                ptr,
                idx,
                values,
            } => {
                out.sparse_matrices.push(SparseBinding {
                    name: name.clone(),
                    format: *format,
                    ptr: ptr.clone(),
                    idx: idx.clone(),
                    values: values.clone(),
                });
            }
            Directive::IterationMapping {
                loop_var,
                on_expr,
                privates,
                news,
            } => {
                out.iteration_maps.push(IterationMap {
                    loop_var: loop_var.clone(),
                    on_expr: on_expr.clone(),
                    privates: privates.clone(),
                    news: news.clone(),
                    np,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use hpf_dist::DistSpec;

    fn extents(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// The full Figure 2 directive block, elaborated with real sizes.
    #[test]
    fn elaborates_figure2() {
        let src = "\
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
";
        let ds = parse_program(src).unwrap();
        let n = 100usize;
        let nz = 480usize;
        let env = Env::new().bind("np", 4).bind("n", n as i64);
        let ext = extents(&[
            ("p", n),
            ("q", n),
            ("r", n),
            ("x", n),
            ("b", n),
            ("row", n + 1),
            ("col", nz),
            ("a", nz),
        ]);
        // Figure 2's directive order has ALIGNs before the targets'
        // DISTRIBUTEs; the two-pass elaboration accepts it verbatim.
        let elab = elaborate(&ds, &env, &ext).unwrap();
        assert_eq!(elab.np, 4);
        assert_eq!(elab.grid_name.as_deref(), Some("PROCS"));
        // Everything aligned with p shares its BLOCK layout.
        for name in ["q", "r", "x", "b"] {
            let d = elab.graph.descriptor(name).unwrap();
            assert_eq!(d.spec(), &DistSpec::Block);
        }
        // row is CYCLIC(ceil((n+NP-1)/NP)) = CYCLIC(25).
        let row = elab.graph.descriptor("row").unwrap();
        assert_eq!(row.spec(), &DistSpec::CyclicK(25));
        // a follows col.
        assert_eq!(elab.graph.ultimate_target("a").unwrap(), "col");
    }

    #[test]
    fn elaborates_sparse_and_partitioner_extensions() {
        let src = "\
!HPF$ PROCESSORS :: PROCS(8)
!HPF$ DISTRIBUTE col(BLOCK)
!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)
!HPF$ SPARSE_MATRIX (CSC) :: smA(col, row, a)
!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
";
        let ds = parse_program(src).unwrap();
        let env = Env::new();
        let ext = extents(&[("col", 65), ("row", 300), ("a", 300)]);
        let elab = elaborate(&ds, &env, &ext).unwrap();
        assert_eq!(elab.np, 8);
        assert_eq!(elab.sparse_matrices.len(), 1);
        assert_eq!(elab.sparse_matrices[0].ptr, "col");
        assert_eq!(elab.indivisables[0].bound_array, "col");
        assert_eq!(
            elab.partitioner_requests[0].partitioner,
            "CG_BALANCED_PARTITIONER_1"
        );
    }

    #[test]
    fn unknown_partitioner_rejected() {
        let src = "\
!HPF$ PROCESSORS :: PROCS(2)
!EXT$ REDISTRIBUTE smA USING MAGIC_PARTITIONER
";
        let ds = parse_program(src).unwrap();
        let err = elaborate(&ds, &Env::new(), &extents(&[])).unwrap_err();
        assert!(matches!(err, ElabError::UnknownPartitioner(_)));
    }

    #[test]
    fn missing_processors_rejected_unless_bound() {
        let src = "!HPF$ DISTRIBUTE p(BLOCK)\n";
        let ds = parse_program(src).unwrap();
        let err = elaborate(&ds, &Env::new(), &extents(&[("p", 10)])).unwrap_err();
        assert_eq!(err, ElabError::NoProcessors);
        // Binding np in the env is an accepted alternative.
        let elab = elaborate(&ds, &Env::new().bind("np", 4), &extents(&[("p", 10)])).unwrap();
        assert_eq!(elab.np, 4);
    }

    #[test]
    fn missing_extent_reported() {
        let src = "!HPF$ PROCESSORS :: P(2)\n!HPF$ DISTRIBUTE ghost(BLOCK)\n";
        let ds = parse_program(src).unwrap();
        let err = elaborate(&ds, &Env::new(), &extents(&[])).unwrap_err();
        assert_eq!(err, ElabError::UnknownArrayExtent("ghost".into()));
    }

    #[test]
    fn iteration_map_evaluates() {
        let src = "\
!HPF$ PROCESSORS :: P(4)
!EXT$ ITERATION j ON PROCESSOR(j/25), PRIVATE(q(100)) WITH MERGE(+)
";
        let ds = parse_program(src).unwrap();
        let elab = elaborate(&ds, &Env::new(), &extents(&[])).unwrap();
        let im = &elab.iteration_maps[0];
        assert_eq!(im.processor_of(0, &Env::new()).unwrap(), 0);
        assert_eq!(im.processor_of(26, &Env::new()).unwrap(), 1);
        assert_eq!(im.processor_of(99, &Env::new()).unwrap(), 3);
        // Clamped at the top.
        assert_eq!(im.processor_of(1000, &Env::new()).unwrap(), 3);
        assert_eq!(im.privatises("q"), Some(MergeSpec::Sum));
        assert_eq!(im.privatises("z"), None);
    }

    #[test]
    fn atom_distribution_recorded_pending() {
        let src = "\
!HPF$ PROCESSORS :: P(4)
!EXT$ REDISTRIBUTE row(ATOM: BLOCK)
";
        let ds = parse_program(src).unwrap();
        let elab = elaborate(&ds, &Env::new(), &extents(&[("row", 33)])).unwrap();
        assert_eq!(elab.atom_distributions.len(), 1);
        assert!(!elab.atom_distributions[0].cyclic);
    }

    #[test]
    fn dynamic_flag_reaches_graph() {
        let src = "\
!HPF$ PROCESSORS :: P(2)
!HPF$ DYNAMIC, DISTRIBUTE row(BLOCK)
";
        let ds = parse_program(src).unwrap();
        let elab = elaborate(&ds, &Env::new(), &extents(&[("row", 11)])).unwrap();
        assert!(elab.graph.is_dynamic("row").unwrap());
    }
}
