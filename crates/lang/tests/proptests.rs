//! Property tests for the directive front-end: every well-formed AST
//! renders to text that parses back to the identical AST, and the
//! elaborator's descriptors always partition the index space.

use hpf_lang::{parse_directive, AlignPattern, Directive, DistFormat, Expr, MergeSpec, SparseFmt};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Identifiers that are not directive keywords (keywords are
    // contextual in Fortran, but the renderer/parser pair stays simpler
    // if we avoid them as array names).
    "[a-z][a-z0-9_]{0,6}".prop_filter("avoid keywords", |s| {
        ![
            "block",
            "cyclic",
            "atom",
            "with",
            "using",
            "new",
            "private",
            "merge",
            "discard",
            "on",
            "processor",
            "distribute",
            "align",
            "redistribute",
            "processors",
            "dynamic",
            "indivisable",
            "indivisible",
            "sparse_matrix",
            "iteration",
            "max",
            "min",
        ]
        .contains(&s.as_str())
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(Expr::Num),
        arb_ident().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Div(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_dist_format() -> impl Strategy<Value = DistFormat> {
    prop_oneof![
        Just(DistFormat::Block(None)),
        arb_expr().prop_map(|e| DistFormat::Block(Some(e))),
        Just(DistFormat::Cyclic(None)),
        arb_expr().prop_map(|e| DistFormat::Cyclic(Some(e))),
        Just(DistFormat::AtomBlock),
        Just(DistFormat::AtomCyclic),
        Just(DistFormat::Replicated),
    ]
}

fn arb_directive() -> impl Strategy<Value = Directive> {
    prop_oneof![
        (arb_ident(), arb_expr()).prop_map(|(name, extent)| Directive::Processors { name, extent }),
        (any::<bool>(), arb_ident(), arb_dist_format()).prop_map(|(dynamic, array, format)| {
            Directive::Distribute {
                dynamic,
                array,
                format,
            }
        }),
        (
            any::<bool>(),
            proptest::collection::vec(arb_ident(), 1..4),
            prop_oneof![
                Just(AlignPattern::Identity),
                Just(AlignPattern::FirstDim),
                Just(AlignPattern::SecondDim),
                arb_ident().prop_map(AlignPattern::Atom),
            ],
            arb_ident()
        )
            .prop_filter(
                "single-array non-identity patterns",
                |(_, arrays, pattern, _)| {
                    // FirstDim/SecondDim/Atom renderings name exactly one array.
                    matches!(pattern, AlignPattern::Identity) || arrays.len() == 1
                }
            )
            .prop_map(|(dynamic, arrays, pattern, target)| Directive::Align {
                dynamic,
                arrays,
                pattern,
                target,
            }),
        (arb_ident(), arb_dist_format())
            .prop_map(|(array, format)| Directive::Redistribute { array, format }),
        (arb_ident(), Just("CG_BALANCED_PARTITIONER_1".to_string()))
            .prop_map(|(array, partitioner)| Directive::RedistributeUsing { array, partitioner }),
        (
            arb_ident(),
            arb_ident(),
            arb_ident(),
            arb_expr(),
            arb_expr()
        )
            .prop_map(
                |(array, index_var, bound_array, lo, hi)| Directive::Indivisable {
                    array,
                    index_var,
                    bound_array,
                    lo,
                    hi,
                }
            ),
        (
            prop_oneof![Just(SparseFmt::Csr), Just(SparseFmt::Csc)],
            arb_ident(),
            arb_ident(),
            arb_ident(),
            arb_ident()
        )
            .prop_map(|(format, name, ptr, idx, values)| Directive::SparseMatrix {
                format,
                name,
                ptr,
                idx,
                values,
            }),
        (
            arb_ident(),
            arb_expr(),
            proptest::collection::vec(
                (
                    arb_ident(),
                    arb_expr(),
                    prop_oneof![
                        Just(MergeSpec::Sum),
                        Just(MergeSpec::Max),
                        Just(MergeSpec::Min),
                        Just(MergeSpec::Discard)
                    ]
                ),
                0..3
            ),
            proptest::collection::vec(arb_ident(), 0..3)
        )
            .prop_map(|(loop_var, on_expr, privs, news)| {
                // De-duplicate private arrays (the parser collapses them).
                let mut seen = Vec::new();
                let privates = privs
                    .into_iter()
                    .filter(|(a, _, _)| {
                        let lower = a.to_ascii_lowercase();
                        if seen.contains(&lower) {
                            false
                        } else {
                            seen.push(lower);
                            true
                        }
                    })
                    .map(|(array, extent, merge)| hpf_lang::PrivateSpec {
                        array,
                        extent,
                        merge,
                    })
                    .collect();
                Directive::IterationMapping {
                    loop_var,
                    on_expr,
                    privates,
                    news,
                }
            }),
    ]
}

proptest! {
    /// Render → parse is the identity on directive ASTs.
    #[test]
    fn directive_roundtrip(d in arb_directive()) {
        let text = d.to_string();
        let back = parse_directive(&text)
            .unwrap_or_else(|e| panic!("failed to reparse '{text}': {e}"));
        prop_assert_eq!(back, d, "text was '{}'", text);
    }

    /// Rendered expressions parse back to an expression with the same
    /// value under any environment (checked at a few sample bindings).
    #[test]
    fn expr_roundtrip_preserves_value(e in arb_expr(), a in 1i64..50, b in 1i64..50) {
        // Embed in a directive to reuse the public parser.
        let d = Directive::Processors { name: "procs".into(), extent: e.clone() };
        let text = d.to_string();
        let back = parse_directive(&text).unwrap();
        let Directive::Processors { extent, .. } = back else { panic!() };
        // Evaluate both under a common environment; all free vars bound.
        let mut env = hpf_lang::Env::new().bind("dummy", 1);
        for v in e.free_vars() {
            env.set(&v, a);
        }
        env.set("n", b);
        match (e.eval(&env), extent.eval(&env)) {
            (Ok(v1), Ok(v2)) => prop_assert_eq!(v1, v2),
            (Err(_), Err(_)) => {} // division by zero both ways is fine
            (r1, r2) => prop_assert!(false, "asymmetric eval {r1:?} vs {r2:?}"),
        }
    }
}

#[test]
fn figure2_and_figure5_decks_roundtrip() {
    let decks = [
        "PROCESSORS :: PROCS(NP)",
        "ALIGN (:) WITH p(:) :: q, r, x, b",
        "DISTRIBUTE p(BLOCK)",
        "DISTRIBUTE row(CYCLIC((n+NP-1)/np))",
        "ALIGN a(:) WITH col(:)",
        "DISTRIBUTE col(BLOCK)",
        "REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1",
        "INDIVISABLE row(ATOM:i) :: col(i:i+1)",
        "SPARSE_MATRIX (CSR) :: smA(row, col, a)",
        "ITERATION j ON PROCESSOR(j/np), PRIVATE(q(n)) WITH MERGE(+), NEW(pj, k)",
    ];
    for deck in decks {
        let d = parse_directive(deck).unwrap();
        let rendered = d.to_string();
        let back = parse_directive(&rendered).unwrap();
        assert_eq!(back, d, "deck '{deck}' rendered as '{rendered}'");
    }
}
