//! Analytic communication/computation cost model.
//!
//! The paper evaluates HPF data layouts with the classic two-parameter
//! linear communication model of the era (Section 4):
//!
//! > "This all-to-all broadcast of messages containing n/N_P vector
//! > elements among N_P processors takes
//! > `t_startup * log N_P + t_comm * n/N_P` time ... Here `t_startup`
//! > is the start-up time, and `t_comm` is the transfer time per byte."
//!
//! [`CostModel`] carries those two parameters plus a per-flop cost so that
//! computation/communication ratios can be reported. All times are in
//! abstract "seconds" of simulated machine time; only ratios and shapes
//! matter for the reproduction.

use serde::{Deserialize, Serialize};

/// Linear cost model: a message of `w` words costs
/// `t_startup + t_word * w`; a floating-point operation costs `t_flop`.
///
/// Words are 8-byte elements (one `f64`). The paper quotes `t_comm` per
/// byte; we fold the factor of 8 into [`CostModel::t_word`] so callers
/// think in elements, matching how the paper counts `n/N_P` *vector
/// elements*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Message start-up latency (`t_startup` in the paper).
    pub t_startup: f64,
    /// Per-element transfer time (`t_comm * 8` in the paper's notation).
    pub t_word: f64,
    /// Time per floating-point operation (multiply or add).
    pub t_flop: f64,
}

impl CostModel {
    /// A model typical of mid-1990s MPPs (e.g. an iPSC/Paragon-class
    /// machine): start-up latency vastly dominates per-word cost, and a
    /// flop is much cheaper than moving a word. These are the regimes in
    /// which the paper's trade-offs (owner-computes, minimising message
    /// counts) are interesting.
    pub fn mpp_1995() -> Self {
        CostModel {
            t_startup: 100e-6, // 100 microseconds per message
            t_word: 0.5e-6,    // ~16 MB/s for 8-byte words
            t_flop: 0.02e-6,   // ~50 Mflop/s per node
        }
    }

    /// A latency-dominated model (slow network, e.g. Ethernet cluster).
    pub fn lan_cluster() -> Self {
        CostModel {
            t_startup: 1000e-6,
            t_word: 8e-6,
            t_flop: 0.02e-6,
        }
    }

    /// A bandwidth-rich, low-latency model (tightly coupled MPP).
    pub fn tight_mpp() -> Self {
        CostModel {
            t_startup: 10e-6,
            t_word: 0.05e-6,
            t_flop: 0.01e-6,
        }
    }

    /// A free-communication model. Useful in tests to isolate the
    /// computation term of a formula.
    pub fn zero_comm() -> Self {
        CostModel {
            t_startup: 0.0,
            t_word: 0.0,
            t_flop: 0.02e-6,
        }
    }

    /// Cost of a single point-to-point message of `words` elements over
    /// `hops` network hops (store-and-forward per-hop latency model; with
    /// `hops == 1` this is the paper's `t_startup + t_comm * w`).
    pub fn message(&self, words: usize, hops: usize) -> f64 {
        let hops = hops.max(1) as f64;
        hops * self.t_startup + self.t_word * words as f64
    }

    /// Cost of `n` floating-point operations.
    pub fn flops(&self, n: usize) -> f64 {
        self.t_flop * n as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::mpp_1995()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_is_affine_in_words() {
        let m = CostModel::mpp_1995();
        let c0 = m.message(0, 1);
        let c1 = m.message(1000, 1);
        let c2 = m.message(2000, 1);
        assert!((c2 - c1) - (c1 - c0) < 1e-12);
        assert!((c0 - m.t_startup).abs() < 1e-15);
    }

    #[test]
    fn message_cost_scales_with_hops() {
        let m = CostModel::mpp_1995();
        assert!(m.message(10, 4) > m.message(10, 1));
        // Only the start-up term is per-hop.
        let diff = m.message(10, 4) - m.message(10, 1);
        assert!((diff - 3.0 * m.t_startup).abs() < 1e-12);
    }

    #[test]
    fn zero_hops_counts_as_one() {
        let m = CostModel::mpp_1995();
        assert_eq!(m.message(5, 0), m.message(5, 1));
    }

    #[test]
    fn flop_cost_linear() {
        let m = CostModel::default();
        assert!((m.flops(100) - 100.0 * m.t_flop).abs() < 1e-15);
        assert_eq!(m.flops(0), 0.0);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        // A LAN cluster has worse latency than a tight MPP.
        assert!(CostModel::lan_cluster().t_startup > CostModel::tight_mpp().t_startup);
        assert!(CostModel::zero_comm().t_startup == 0.0);
    }
}
