//! Thread-local span stack — hierarchical context for traced events.
//!
//! Observability needs to know *why* the machine performed an operation,
//! not just what it cost: the same `dot-merge` allreduce means something
//! different inside iteration 3 of a solve than inside convergence
//! verification after a fault. Spans provide that context. A caller
//! enters a scope ([`enter`] or [`Span::enter`]), every event the
//! [`crate::Machine`] records while the guard lives is stamped with the
//! current span *path* (segments joined by `/`, e.g.
//! `solve/iter=12/matvec`), and the scope pops when the guard drops.
//!
//! The stack is thread-local, so concurrent solves on worker threads
//! (the `hpf-service` pool) each carry their own paths with zero
//! synchronisation. The fast path — no spans entered — is a single
//! thread-local borrow returning an empty string.
//!
//! ```
//! use hpf_machine::span;
//!
//! assert_eq!(span::current_path(), "");
//! let _solve = span::enter("solve");
//! {
//!     let _iter = span::enter("iter=12");
//!     let _mv = span::enter("matvec");
//!     assert_eq!(span::current_path(), "solve/iter=12/matvec");
//! }
//! assert_eq!(span::current_path(), "solve");
//! ```

use std::cell::RefCell;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A named span segment, ready to be entered. Mostly useful when a span
/// is constructed in one place and entered in another; for the common
/// case use the free function [`enter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    segment: String,
}

impl Span {
    /// Create a span with one path segment. Slashes are replaced by `:`
    /// so a segment can never fake extra path levels.
    pub fn new(segment: impl Into<String>) -> Self {
        let mut segment = segment.into();
        if segment.contains('/') {
            segment = segment.replace('/', ":");
        }
        Span { segment }
    }

    pub fn segment(&self) -> &str {
        &self.segment
    }

    /// Push this span onto the current thread's stack; it pops when the
    /// returned guard drops.
    pub fn enter(self) -> ScopeGuard {
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(self.segment);
            s.len()
        });
        ScopeGuard { depth }
    }
}

/// RAII guard for an entered span: pops its segment (and, defensively,
/// anything entered after it that leaked) on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    /// Stack depth *including* this span's segment.
    depth: usize,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.truncate(self.depth.saturating_sub(1));
        });
    }
}

/// Enter a span scope: `let _g = span::enter("solve");`.
pub fn enter(segment: impl Into<String>) -> ScopeGuard {
    Span::new(segment).enter()
}

/// The current span path — segments joined with `/`, empty when no span
/// is active. This is the string stamped on every traced [`crate::Event`].
pub fn current_path() -> String {
    STACK.with(|s| s.borrow().join("/"))
}

/// Number of active spans on this thread.
pub fn depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// The trace id on the *current* thread's span stack — the first
/// `trace=<hex>` segment, scanned in place without building the joined
/// path. The streaming tap consults this before constructing an event,
/// so head-sampled-out jobs pay no allocation per machine operation.
pub fn current_trace() -> Option<u64> {
    STACK.with(|s| {
        s.borrow()
            .iter()
            .find_map(|seg| u64::from_str_radix(seg.strip_prefix("trace=")?, 16).ok())
    })
}

/// The multigrid level of a span path: the numeric suffix of its first
/// `level=L` segment (`solve/iter=3/vcycle/level=2/smooth` → `Some(2)`).
/// `None` when no such segment exists or the suffix is not a number.
pub fn level_of(span: &str) -> Option<usize> {
    span.split('/')
        .find_map(|seg| seg.strip_prefix("level=")?.parse().ok())
}

/// The trace id of a span path: the hex suffix of its first
/// `trace=<hex>` segment (`trace=00c0ffee/solve/matvec` →
/// `Some(0x00c0ffee)`). `None` when no such segment exists or the
/// suffix is not hex. The service stamps this segment on the worker
/// thread so every event a solve records carries the request's id.
pub fn trace_of(span: &str) -> Option<u64> {
    span.split('/')
        .find_map(|seg| u64::from_str_radix(seg.strip_prefix("trace=")?, 16).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stack_yields_empty_path() {
        assert_eq!(current_path(), "");
        assert_eq!(depth(), 0);
    }

    #[test]
    fn nesting_builds_slash_separated_paths() {
        let _a = enter("solve");
        assert_eq!(current_path(), "solve");
        {
            let _b = enter("iter=3");
            let _c = enter("matvec");
            assert_eq!(current_path(), "solve/iter=3/matvec");
            assert_eq!(depth(), 3);
        }
        assert_eq!(current_path(), "solve");
    }

    #[test]
    fn guard_drop_restores_depth_even_out_of_order() {
        let a = enter("outer");
        let b = enter("inner");
        // Dropping the outer guard first truncates past the inner one.
        drop(a);
        assert_eq!(current_path(), "");
        drop(b);
        assert_eq!(current_path(), "");
    }

    #[test]
    fn segments_cannot_inject_separators() {
        let s = Span::new("a/b");
        assert_eq!(s.segment(), "a:b");
    }

    #[test]
    fn trace_of_parses_first_hex_trace_segment() {
        assert_eq!(trace_of("trace=00c0ffee/solve/matvec"), Some(0x00c0_ffee));
        assert_eq!(trace_of("job=3/trace=ff/iter=1"), Some(0xff));
        assert_eq!(trace_of("solve/iter=3/matvec"), None);
        assert_eq!(trace_of("trace=not-hex/solve"), None);
        assert_eq!(trace_of(""), None);
    }

    #[test]
    fn current_trace_reads_the_live_stack_without_joining() {
        assert_eq!(current_trace(), None);
        let _t = enter("trace=00c0ffee");
        let _s = enter("solve");
        assert_eq!(current_trace(), Some(0x00c0_ffee));
        assert_eq!(trace_of(&current_path()), current_trace());
    }

    #[test]
    fn spans_are_thread_local() {
        let _main = enter("main-thread");
        std::thread::spawn(|| {
            assert_eq!(current_path(), "");
            let _w = enter("worker");
            assert_eq!(current_path(), "worker");
        })
        .join()
        .unwrap();
        assert_eq!(current_path(), "main-thread");
    }
}
