//! Event trace of simulated machine activity.
//!
//! Every communication or bulk-compute operation performed through a
//! [`crate::machine::Machine`] is appended to a trace, so tests and
//! benchmark reports can assert *which* collectives an HPF layout induced
//! and how much traffic each moved — the quantities the paper reasons
//! about in Section 4.

use serde::{Deserialize, Serialize};

/// The kind of a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Point-to-point message.
    Send,
    /// One-to-all broadcast.
    Broadcast,
    /// All-to-all broadcast (allgather).
    AllGather,
    /// Reduction to a root.
    Reduce,
    /// All-reduce (reduction + replication of the result).
    AllReduce,
    /// Personalised all-to-all exchange.
    AllToAll,
    /// Scatter from a root.
    Scatter,
    /// Gather to a root.
    Gather,
    /// Bulk local computation (flops across processors).
    Compute,
    /// Data redistribution between two layouts.
    Redistribute,
    /// Synchronisation barrier.
    Barrier,
    /// An injected fault (bit flip, message drop, straggler, crash).
    Fault,
}

impl EventKind {
    /// Stable lowercase name, used by the JSONL export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Send => "send",
            EventKind::Broadcast => "broadcast",
            EventKind::AllGather => "allgather",
            EventKind::Reduce => "reduce",
            EventKind::AllReduce => "allreduce",
            EventKind::AllToAll => "alltoall",
            EventKind::Scatter => "scatter",
            EventKind::Gather => "gather",
            EventKind::Compute => "compute",
            EventKind::Redistribute => "redistribute",
            EventKind::Barrier => "barrier",
            EventKind::Fault => "fault",
        }
    }
}

/// One traced event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Event {
    pub kind: EventKind,
    /// Number of processors participating.
    pub participants: usize,
    /// Total elements moved over the network (0 for pure compute).
    pub words: usize,
    /// Total flops executed (0 for pure communication).
    pub flops: usize,
    /// Simulated elapsed time added by this event (max over participants).
    pub time: f64,
    /// Free-form label ("dot-merge", "matvec-bcast", ...).
    pub label: String,
}

/// Append-only event log with summary accessors.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, ev: Event) {
        self.events.push(ev);
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn clear(&mut self) {
        self.events.clear();
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events of a given kind.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Total words moved by events of a given kind.
    pub fn words(&self, kind: EventKind) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.words)
            .sum()
    }

    /// Total words moved by all communication events.
    pub fn total_comm_words(&self) -> usize {
        self.events
            .iter()
            .filter(|e| !matches!(e.kind, EventKind::Compute))
            .map(|e| e.words)
            .sum()
    }

    /// Total simulated time of all events (communication + compute).
    pub fn total_time(&self) -> f64 {
        self.events.iter().map(|e| e.time).sum()
    }

    /// Total simulated communication time.
    pub fn comm_time(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| !matches!(e.kind, EventKind::Compute))
            .map(|e| e.time)
            .sum()
    }

    /// Total simulated computation time.
    pub fn compute_time(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Compute))
            .map(|e| e.time)
            .sum()
    }

    /// Events carrying a given label.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.label == label)
    }

    /// Aggregate the trace per label, in first-appearance order. This is
    /// the per-operation breakdown a solve produces ("dot-merge" cost vs
    /// "matvec-bcast" cost, ...), compact enough to ship in a response.
    pub fn summary_by_label(&self) -> Vec<LabelSummary> {
        let mut order: Vec<String> = Vec::new();
        let mut agg: std::collections::HashMap<&str, LabelSummary> =
            std::collections::HashMap::new();
        for e in &self.events {
            if !agg.contains_key(e.label.as_str()) {
                order.push(e.label.clone());
                agg.insert(
                    e.label.as_str(),
                    LabelSummary {
                        label: e.label.clone(),
                        count: 0,
                        words: 0,
                        flops: 0,
                        time: 0.0,
                    },
                );
            }
            let s = agg.get_mut(e.label.as_str()).unwrap();
            s.count += 1;
            s.words += e.words;
            s.flops += e.flops;
            s.time += e.time;
        }
        order.iter().map(|l| agg[l.as_str()].clone()).collect()
    }

    /// Export as JSON Lines: one object per event, in record order.
    /// Written by hand so it works with the offline no-op serde stub and
    /// stays a stable, diffable external format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"participants\":{},\"words\":{},\"flops\":{},\"time\":{},\"label\":\"{}\"}}\n",
                e.kind.name(),
                e.participants,
                e.words,
                e.flops,
                json_f64(e.time),
                json_escape(&e.label),
            ));
        }
        out
    }
}

/// Per-label aggregate over a trace (see [`Trace::summary_by_label`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelSummary {
    pub label: String,
    /// Number of events with this label.
    pub count: usize,
    /// Total words moved.
    pub words: usize,
    /// Total flops executed.
    pub flops: usize,
    /// Total simulated time.
    pub time: f64,
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // Rust renders whole floats without a fraction ("3"); both forms
        // are valid JSON numbers.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, words: usize, flops: usize, time: f64, label: &str) -> Event {
        Event {
            kind,
            participants: 4,
            words,
            flops,
            time,
            label: label.to_string(),
        }
    }

    #[test]
    fn counts_and_sums() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllGather, 100, 0, 1.0, "bcast-p"));
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::Compute, 0, 2000, 2.0, "local-matvec"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(EventKind::AllGather), 1);
        assert_eq!(t.words(EventKind::AllGather), 100);
        assert_eq!(t.total_comm_words(), 101);
        assert!((t.total_time() - 3.5).abs() < 1e-12);
        assert!((t.comm_time() - 1.5).abs() < 1e-12);
        assert!((t.compute_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn label_filter() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::AllGather, 8, 0, 0.7, "bcast-p"));
        assert_eq!(t.with_label("dot-merge").count(), 2);
        assert_eq!(t.with_label("bcast-p").count(), 1);
        assert_eq!(t.with_label("nope").count(), 0);
    }

    #[test]
    fn summary_by_label_aggregates_in_first_seen_order() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::Compute, 0, 2000, 2.0, "local-matvec"));
        t.record(ev(EventKind::AllReduce, 1, 0, 0.25, "dot-merge"));
        let s = t.summary_by_label();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].label, "dot-merge");
        assert_eq!(s[0].count, 2);
        assert_eq!(s[0].words, 2);
        assert!((s[0].time - 0.75).abs() < 1e-12);
        assert_eq!(s[1].label, "local-matvec");
        assert_eq!(s[1].flops, 2000);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_event() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllGather, 100, 0, 1.5, "bcast-p"));
        t.record(ev(EventKind::Compute, 0, 64, 2.0, "he said \"go\"\n"));
        let out = t.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"kind\":\"allgather\",\"participants\":4,\"words\":100,\
             \"flops\":0,\"time\":1.5,\"label\":\"bcast-p\"}"
        );
        // Quotes and newline in the label are escaped, keeping each
        // record on one line.
        assert!(lines[1].contains("\\\"go\\\""));
        assert!(lines[1].contains("\\n"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn every_kind_has_a_name() {
        for k in [
            EventKind::Send,
            EventKind::Broadcast,
            EventKind::AllGather,
            EventKind::Reduce,
            EventKind::AllReduce,
            EventKind::AllToAll,
            EventKind::Scatter,
            EventKind::Gather,
            EventKind::Compute,
            EventKind::Redistribute,
            EventKind::Barrier,
            EventKind::Fault,
        ] {
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::new();
        t.record(ev(EventKind::Barrier, 0, 0, 0.1, "b"));
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.total_time(), 0.0);
    }
}
