//! Event trace of simulated machine activity.
//!
//! Every communication or bulk-compute operation performed through a
//! [`crate::machine::Machine`] is appended to a trace, so tests and
//! benchmark reports can assert *which* collectives an HPF layout induced
//! and how much traffic each moved — the quantities the paper reasons
//! about in Section 4.

use serde::{Deserialize, Serialize};

/// The kind of a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Point-to-point message.
    Send,
    /// One-to-all broadcast.
    Broadcast,
    /// All-to-all broadcast (allgather).
    AllGather,
    /// Reduction to a root.
    Reduce,
    /// All-reduce (reduction + replication of the result).
    AllReduce,
    /// Personalised all-to-all exchange.
    AllToAll,
    /// Scatter from a root.
    Scatter,
    /// Gather to a root.
    Gather,
    /// Bulk local computation (flops across processors).
    Compute,
    /// Data redistribution between two layouts.
    Redistribute,
    /// Synchronisation barrier.
    Barrier,
    /// An injected fault (bit flip, message drop, straggler, crash).
    Fault,
}

impl EventKind {
    /// Every kind, in declaration order (used by exporters and tests).
    pub const ALL: [EventKind; 12] = [
        EventKind::Send,
        EventKind::Broadcast,
        EventKind::AllGather,
        EventKind::Reduce,
        EventKind::AllReduce,
        EventKind::AllToAll,
        EventKind::Scatter,
        EventKind::Gather,
        EventKind::Compute,
        EventKind::Redistribute,
        EventKind::Barrier,
        EventKind::Fault,
    ];

    /// Stable lowercase name, used by the JSONL export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Send => "send",
            EventKind::Broadcast => "broadcast",
            EventKind::AllGather => "allgather",
            EventKind::Reduce => "reduce",
            EventKind::AllReduce => "allreduce",
            EventKind::AllToAll => "alltoall",
            EventKind::Scatter => "scatter",
            EventKind::Gather => "gather",
            EventKind::Compute => "compute",
            EventKind::Redistribute => "redistribute",
            EventKind::Barrier => "barrier",
            EventKind::Fault => "fault",
        }
    }

    /// Inverse of [`EventKind::name`], used by the JSONL import.
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One traced event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Event {
    pub kind: EventKind,
    /// Number of processors participating.
    pub participants: usize,
    /// Total elements moved over the network (0 for pure compute).
    pub words: usize,
    /// Total flops executed (0 for pure communication).
    pub flops: usize,
    /// Simulated elapsed time added by this event (max over participants).
    pub time: f64,
    /// Simulated clock at which the event began — for collectives this is
    /// the synchronisation point all participants reached first; together
    /// with [`Event::time`] it places the event on a timeline.
    pub start: f64,
    /// Span path active when the event was recorded
    /// (`solve/iter=12/matvec`, see [`crate::span`]); empty when no span
    /// was entered.
    pub span: String,
    /// Free-form label ("dot-merge", "matvec-bcast", ...).
    pub label: String,
    /// Per-processor durations for phases where processors finish at
    /// different times (bulk compute). Empty means every participant was
    /// busy for the full [`Event::time`]. When present, its length is the
    /// participant count and `time == max(proc_times)`.
    pub proc_times: Vec<f64>,
    /// The *formula argument* of the operation — the per-unit message
    /// size `w` that the analytic cost formulas take (`words_each` for
    /// allgather / reduce-scatter / alltoall / group collectives,
    /// `words` for send / broadcast / reduce / allreduce, and the
    /// *total* transferred volume for gather / scatter, stamped at the
    /// emitting site so unequal per-processor counts price correctly).
    /// [`Event::words`] records the aggregate network volume instead, so
    /// the two differ by a kind-specific multiplier; `payload_words` is
    /// what a cost oracle feeds back into the closed forms. 0 for pure
    /// compute, barriers, faults, and traces that predate this field.
    pub payload_words: usize,
    /// Network distance between the endpoints of a point-to-point
    /// message (`Send` only; 0 for collectives, whose routing is part of
    /// the topology formula).
    pub hops: usize,
}

/// Append-only event log with summary accessors.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, ev: Event) {
        self.events.push(ev);
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn clear(&mut self) {
        self.events.clear();
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events of a given kind.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Total words moved by events of a given kind.
    pub fn words(&self, kind: EventKind) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.words)
            .sum()
    }

    /// Total words moved by all communication events.
    pub fn total_comm_words(&self) -> usize {
        self.events
            .iter()
            .filter(|e| !matches!(e.kind, EventKind::Compute))
            .map(|e| e.words)
            .sum()
    }

    /// Total simulated time of all events (communication + compute).
    pub fn total_time(&self) -> f64 {
        self.events.iter().map(|e| e.time).sum()
    }

    /// Total simulated communication time.
    pub fn comm_time(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| !matches!(e.kind, EventKind::Compute))
            .map(|e| e.time)
            .sum()
    }

    /// Total simulated computation time.
    pub fn compute_time(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Compute))
            .map(|e| e.time)
            .sum()
    }

    /// Events carrying a given label.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.label == label)
    }

    /// Aggregate the trace per label, in first-appearance order. This is
    /// the per-operation breakdown a solve produces ("dot-merge" cost vs
    /// "matvec-bcast" cost, ...), compact enough to ship in a response.
    ///
    /// # Aggregation rules
    ///
    /// *Every* event kind participates — data-moving collectives,
    /// `Compute` phases, and also `Barrier` and `Fault` events (a fault's
    /// retransmit/restart penalty is real simulated time and must not
    /// vanish from per-label totals). Per label the summary accumulates
    /// the event count, the total words moved, the total flops executed,
    /// and the total simulated time; labels appear in the order the
    /// trace first saw them. Events with distinct span paths but the
    /// same label aggregate together — use
    /// [`Trace::summary_by_span`] for the span-oriented view — with one
    /// exception: `Redistribute` events recorded under a `level=L` span
    /// segment (multigrid restriction/prolongation between hierarchy
    /// levels) keep one row *per level*, keyed `label [level=L]`, so a
    /// V-cycle's per-level transfer costs stay readable instead of
    /// collapsing into a single row.
    pub fn summary_by_label(&self) -> Vec<LabelSummary> {
        self.summarise(|e| {
            if e.kind == EventKind::Redistribute {
                if let Some(l) = crate::span::level_of(&e.span) {
                    return format!("{} [level={l}]", e.label);
                }
            }
            e.label.clone()
        })
    }

    /// Aggregate the trace per span path (see [`crate::span`]), in
    /// first-appearance order. Events recorded outside any span land
    /// under the empty path `""`. Follows the same aggregation rules as
    /// [`Trace::summary_by_label`]: all kinds, including `Barrier` and
    /// `Fault`, are counted.
    pub fn summary_by_span(&self) -> Vec<LabelSummary> {
        self.summarise(|e| e.span.clone())
    }

    fn summarise(&self, key: impl Fn(&Event) -> String) -> Vec<LabelSummary> {
        let mut order: Vec<String> = Vec::new();
        let mut agg: std::collections::HashMap<String, LabelSummary> =
            std::collections::HashMap::new();
        for e in &self.events {
            let k = key(e);
            let s = agg.entry(k.clone()).or_insert_with(|| {
                order.push(k.clone());
                LabelSummary {
                    label: k,
                    count: 0,
                    words: 0,
                    flops: 0,
                    time: 0.0,
                }
            });
            s.count += 1;
            s.words += e.words;
            s.flops += e.flops;
            s.time += e.time;
        }
        order.iter().map(|l| agg[l.as_str()].clone()).collect()
    }

    /// Export as JSON Lines: one object per event, in record order.
    /// Written by hand so it works with the offline no-op serde stub and
    /// stays a stable, diffable external format. `proc_times` is emitted
    /// only when per-processor durations were recorded.
    /// [`Trace::from_jsonl`] is the exact inverse.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"participants\":{},\"words\":{},\"flops\":{},\"time\":{},\"start\":{},\"span\":\"{}\",\"label\":\"{}\"",
                e.kind.name(),
                e.participants,
                e.words,
                e.flops,
                json_f64(e.time),
                json_f64(e.start),
                json_escape(&e.span),
                json_escape(&e.label),
            ));
            if !e.proc_times.is_empty() {
                let ts: Vec<String> = e.proc_times.iter().map(|&t| json_f64(t)).collect();
                out.push_str(&format!(",\"proc_times\":[{}]", ts.join(",")));
            }
            // Emitted only when set, so pre-oracle traces (and their
            // byte-exact fixtures) keep the original line format.
            if e.payload_words != 0 {
                out.push_str(&format!(",\"payload_words\":{}", e.payload_words));
            }
            if e.hops != 0 {
                out.push_str(&format!(",\"hops\":{}", e.hops));
            }
            out.push_str("}\n");
        }
        out
    }

    /// Parse a JSONL export back into a trace — the inverse of
    /// [`Trace::to_jsonl`], so traces survive a file round-trip into the
    /// `trace-report` tooling. Blank lines are skipped; any malformed
    /// line is a typed error naming its (1-based) line number.
    pub fn from_jsonl(text: &str) -> Result<Trace, TraceParseError> {
        let mut trace = Trace::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ev =
                parse_event_line(line).map_err(|why| TraceParseError { line: idx + 1, why })?;
            trace.record(ev);
        }
        Ok(trace)
    }
}

/// A malformed line in a JSONL trace import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    pub why: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.why)
    }
}

impl std::error::Error for TraceParseError {}

/// Parse one `to_jsonl` line. A dedicated scanner (rather than a general
/// JSON parser) because the schema is fixed and the offline serde stub
/// cannot deserialize.
fn parse_event_line(line: &str) -> Result<Event, String> {
    let mut s = Scanner::new(line);
    s.expect('{')?;
    let mut kind: Option<EventKind> = None;
    let mut participants = 0usize;
    let mut words = 0usize;
    let mut flops = 0usize;
    let mut time = 0.0f64;
    let mut start = 0.0f64;
    let mut span = String::new();
    let mut label = String::new();
    let mut proc_times: Vec<f64> = Vec::new();
    let mut payload_words = 0usize;
    let mut hops = 0usize;
    loop {
        let key = s.string()?;
        s.expect(':')?;
        match key.as_str() {
            "kind" => {
                let name = s.string()?;
                kind = Some(EventKind::from_name(&name).ok_or(format!("unknown kind '{name}'"))?);
            }
            "participants" => participants = s.number()? as usize,
            "words" => words = s.number()? as usize,
            "flops" => flops = s.number()? as usize,
            "time" => time = s.number()?,
            "start" => start = s.number()?,
            "span" => span = s.string()?,
            "label" => label = s.string()?,
            "proc_times" => proc_times = s.number_array()?,
            "payload_words" => payload_words = s.number()? as usize,
            "hops" => hops = s.number()? as usize,
            other => return Err(format!("unexpected key '{other}'")),
        }
        if s.eat(',') {
            continue;
        }
        s.expect('}')?;
        break;
    }
    s.end()?;
    Ok(Event {
        kind: kind.ok_or("missing 'kind'")?,
        participants,
        words,
        flops,
        time,
        start,
        span,
        label,
        proc_times,
        payload_words,
        hops,
    })
}

/// Character-level scanner over one JSONL line.
struct Scanner<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Scanner<'a> {
    fn new(line: &'a str) -> Self {
        Scanner {
            chars: line.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected '{c}', got '{got}'")),
            None => Err(format!("expected '{c}', got end of line")),
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.chars.peek() == Some(&c) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            None => Ok(()),
            Some(c) => Err(format!("trailing content starting at '{c}'")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16 + d.to_digit(16).ok_or("bad \\u escape digit")?;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        // `to_jsonl` writes non-finite times as `null`; accept it back.
        if self.chars.peek() == Some(&'n') {
            for want in "null".chars() {
                if self.chars.next() != Some(want) {
                    return Err("bad literal (expected null)".into());
                }
            }
            return Ok(f64::NAN);
        }
        let mut buf = String::new();
        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit() || "+-.eE".contains(*c)) {
            buf.push(self.chars.next().unwrap());
        }
        buf.parse::<f64>()
            .map_err(|e| format!("bad number '{buf}': {e}"))
    }

    fn number_array(&mut self) -> Result<Vec<f64>, String> {
        self.expect('[')?;
        let mut out = Vec::new();
        if self.eat(']') {
            return Ok(out);
        }
        loop {
            out.push(self.number()?);
            if self.eat(',') {
                continue;
            }
            self.expect(']')?;
            return Ok(out);
        }
    }
}

/// Per-label aggregate over a trace (see [`Trace::summary_by_label`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelSummary {
    pub label: String,
    /// Number of events with this label.
    pub count: usize,
    /// Total words moved.
    pub words: usize,
    /// Total flops executed.
    pub flops: usize,
    /// Total simulated time.
    pub time: f64,
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // Rust renders whole floats without a fraction ("3"); both forms
        // are valid JSON numbers.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, words: usize, flops: usize, time: f64, label: &str) -> Event {
        Event {
            kind,
            participants: 4,
            words,
            flops,
            time,
            start: 0.0,
            span: String::new(),
            label: label.to_string(),
            proc_times: Vec::new(),
            payload_words: 0,
            hops: 0,
        }
    }

    #[test]
    fn counts_and_sums() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllGather, 100, 0, 1.0, "bcast-p"));
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::Compute, 0, 2000, 2.0, "local-matvec"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(EventKind::AllGather), 1);
        assert_eq!(t.words(EventKind::AllGather), 100);
        assert_eq!(t.total_comm_words(), 101);
        assert!((t.total_time() - 3.5).abs() < 1e-12);
        assert!((t.comm_time() - 1.5).abs() < 1e-12);
        assert!((t.compute_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn label_filter() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::AllGather, 8, 0, 0.7, "bcast-p"));
        assert_eq!(t.with_label("dot-merge").count(), 2);
        assert_eq!(t.with_label("bcast-p").count(), 1);
        assert_eq!(t.with_label("nope").count(), 0);
    }

    #[test]
    fn summary_by_label_aggregates_in_first_seen_order() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::Compute, 0, 2000, 2.0, "local-matvec"));
        t.record(ev(EventKind::AllReduce, 1, 0, 0.25, "dot-merge"));
        let s = t.summary_by_label();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].label, "dot-merge");
        assert_eq!(s[0].count, 2);
        assert_eq!(s[0].words, 2);
        assert!((s[0].time - 0.75).abs() < 1e-12);
        assert_eq!(s[1].label, "local-matvec");
        assert_eq!(s[1].flops, 2000);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_event() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllGather, 100, 0, 1.5, "bcast-p"));
        t.record(ev(EventKind::Compute, 0, 64, 2.0, "he said \"go\"\n"));
        let out = t.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"kind\":\"allgather\",\"participants\":4,\"words\":100,\
             \"flops\":0,\"time\":1.5,\"start\":0,\"span\":\"\",\
             \"label\":\"bcast-p\"}"
        );
        // Quotes and newline in the label are escaped, keeping each
        // record on one line.
        assert!(lines[1].contains("\\\"go\\\""));
        assert!(lines[1].contains("\\n"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn every_kind_has_a_name() {
        for k in [
            EventKind::Send,
            EventKind::Broadcast,
            EventKind::AllGather,
            EventKind::Reduce,
            EventKind::AllReduce,
            EventKind::AllToAll,
            EventKind::Scatter,
            EventKind::Gather,
            EventKind::Compute,
            EventKind::Redistribute,
            EventKind::Barrier,
            EventKind::Fault,
        ] {
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn summary_includes_fault_and_barrier_events() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::Barrier, 0, 0, 0.2, "sync"));
        t.record(ev(EventKind::Fault, 3, 0, 1.1, "fault-retransmit"));
        t.record(ev(EventKind::Fault, 0, 0, 0.9, "fault-retransmit"));
        let s = t.summary_by_label();
        assert_eq!(s.len(), 3, "barrier and fault labels must appear");
        assert_eq!(s[1].label, "sync");
        assert_eq!(s[1].count, 1);
        assert!((s[1].time - 0.2).abs() < 1e-12);
        assert_eq!(s[2].label, "fault-retransmit");
        assert_eq!(s[2].count, 2);
        assert_eq!(s[2].words, 3);
        assert!((s[2].time - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_by_label_keeps_redistribute_rows_per_level() {
        let mut t = Trace::new();
        let mut fine = ev(EventKind::Redistribute, 100, 0, 1.0, "mg-restrict");
        fine.span = "solve/iter=0/vcycle/level=0/restrict".into();
        let mut coarse = ev(EventKind::Redistribute, 25, 0, 0.5, "mg-restrict");
        coarse.span = "solve/iter=0/vcycle/level=1/restrict".into();
        let mut fine2 = fine.clone();
        fine2.span = "solve/iter=1/vcycle/level=0/restrict".into();
        // A redistribute with no level segment keeps its bare label.
        let plain = ev(EventKind::Redistribute, 7, 0, 0.1, "mg-restrict");
        // A *compute* event under a level span is NOT split: only
        // redistributes get the per-level treatment.
        let mut smooth = ev(EventKind::Compute, 0, 50, 0.2, "mg-smooth");
        smooth.span = "solve/iter=0/vcycle/level=1/smooth".into();
        t.record(fine);
        t.record(coarse);
        t.record(fine2);
        t.record(plain);
        t.record(smooth);
        let s = t.summary_by_label();
        let labels: Vec<&str> = s.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "mg-restrict [level=0]",
                "mg-restrict [level=1]",
                "mg-restrict",
                "mg-smooth"
            ]
        );
        assert_eq!(s[0].count, 2, "both iterations' level-0 rows merge");
        assert_eq!(s[0].words, 200);
        assert_eq!(s[1].words, 25);
        assert_eq!(s[2].words, 7);
    }

    #[test]
    fn summary_by_span_groups_by_span_path() {
        let mut t = Trace::new();
        let mut a = ev(EventKind::Compute, 0, 100, 1.0, "local-matvec");
        a.span = "solve/iter=0/matvec".into();
        let mut b = ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge");
        b.span = "solve/iter=0/dot".into();
        let mut c = ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge");
        c.span = "solve/iter=0/dot".into();
        t.record(a);
        t.record(b);
        t.record(c);
        t.record(ev(EventKind::Barrier, 0, 0, 0.1, "outside"));
        let s = t.summary_by_span();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].label, "solve/iter=0/matvec");
        assert_eq!(s[1].label, "solve/iter=0/dot");
        assert_eq!(s[1].count, 2);
        assert_eq!(s[2].label, "", "unspanned events land under ''");
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let mut t = Trace::new();
        for (i, k) in EventKind::ALL.into_iter().enumerate() {
            let mut e = ev(k, i * 3, i * 7, 0.25 * i as f64, &format!("label-{i}"));
            e.start = 1.5 * i as f64;
            e.span = format!("solve/iter={i}/{}", k.name());
            if k == EventKind::Compute {
                e.proc_times = vec![0.1, 0.2, 0.3, 0.25 * i as f64];
            }
            e.payload_words = i * 3;
            if k == EventKind::Send {
                e.hops = 2;
            }
            t.record(e);
        }
        let text = t.to_jsonl();
        let back = Trace::from_jsonl(&text).expect("round-trip parse");
        assert_eq!(back.len(), t.len());
        for (orig, parsed) in t.events().iter().zip(back.events()) {
            assert_eq!(parsed.kind.name(), orig.kind.name());
            assert_eq!(parsed.participants, orig.participants);
            assert_eq!(parsed.words, orig.words);
            assert_eq!(parsed.flops, orig.flops);
            assert!((parsed.time - orig.time).abs() < 1e-12);
            assert!((parsed.start - orig.start).abs() < 1e-12);
            assert_eq!(parsed.span, orig.span);
            assert_eq!(parsed.label, orig.label);
            assert_eq!(parsed.proc_times.len(), orig.proc_times.len());
            assert_eq!(parsed.payload_words, orig.payload_words);
            assert_eq!(parsed.hops, orig.hops);
        }
        // Re-serialising the parsed trace reproduces the bytes exactly.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn jsonl_parse_escapes_and_blank_lines() {
        let mut t = Trace::new();
        t.record(ev(EventKind::Compute, 0, 64, 2.0, "he said \"go\"\n"));
        let text = format!("\n{}\n", t.to_jsonl());
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.events()[0].label, "he said \"go\"\n");
    }

    #[test]
    fn jsonl_parse_reports_line_numbers() {
        let mut t = Trace::new();
        t.record(ev(EventKind::Barrier, 0, 0, 0.1, "ok"));
        let text = format!("{}{}", t.to_jsonl(), "{\"kind\":\"warp\"}\n");
        let err = Trace::from_jsonl(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.why.contains("unknown kind"), "got: {}", err.why);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::new();
        t.record(ev(EventKind::Barrier, 0, 0, 0.1, "b"));
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.total_time(), 0.0);
    }
}
