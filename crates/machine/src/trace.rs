//! Event trace of simulated machine activity.
//!
//! Every communication or bulk-compute operation performed through a
//! [`crate::machine::Machine`] is appended to a trace, so tests and
//! benchmark reports can assert *which* collectives an HPF layout induced
//! and how much traffic each moved — the quantities the paper reasons
//! about in Section 4.

use serde::{Deserialize, Serialize};

/// The kind of a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Point-to-point message.
    Send,
    /// One-to-all broadcast.
    Broadcast,
    /// All-to-all broadcast (allgather).
    AllGather,
    /// Reduction to a root.
    Reduce,
    /// All-reduce (reduction + replication of the result).
    AllReduce,
    /// Personalised all-to-all exchange.
    AllToAll,
    /// Scatter from a root.
    Scatter,
    /// Gather to a root.
    Gather,
    /// Bulk local computation (flops across processors).
    Compute,
    /// Data redistribution between two layouts.
    Redistribute,
    /// Synchronisation barrier.
    Barrier,
}

/// One traced event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Event {
    pub kind: EventKind,
    /// Number of processors participating.
    pub participants: usize,
    /// Total elements moved over the network (0 for pure compute).
    pub words: usize,
    /// Total flops executed (0 for pure communication).
    pub flops: usize,
    /// Simulated elapsed time added by this event (max over participants).
    pub time: f64,
    /// Free-form label ("dot-merge", "matvec-bcast", ...).
    pub label: String,
}

/// Append-only event log with summary accessors.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, ev: Event) {
        self.events.push(ev);
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn clear(&mut self) {
        self.events.clear();
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events of a given kind.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Total words moved by events of a given kind.
    pub fn words(&self, kind: EventKind) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.words)
            .sum()
    }

    /// Total words moved by all communication events.
    pub fn total_comm_words(&self) -> usize {
        self.events
            .iter()
            .filter(|e| !matches!(e.kind, EventKind::Compute))
            .map(|e| e.words)
            .sum()
    }

    /// Total simulated time of all events (communication + compute).
    pub fn total_time(&self) -> f64 {
        self.events.iter().map(|e| e.time).sum()
    }

    /// Total simulated communication time.
    pub fn comm_time(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| !matches!(e.kind, EventKind::Compute))
            .map(|e| e.time)
            .sum()
    }

    /// Total simulated computation time.
    pub fn compute_time(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Compute))
            .map(|e| e.time)
            .sum()
    }

    /// Events carrying a given label.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, words: usize, flops: usize, time: f64, label: &str) -> Event {
        Event {
            kind,
            participants: 4,
            words,
            flops,
            time,
            label: label.to_string(),
        }
    }

    #[test]
    fn counts_and_sums() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllGather, 100, 0, 1.0, "bcast-p"));
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::Compute, 0, 2000, 2.0, "local-matvec"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(EventKind::AllGather), 1);
        assert_eq!(t.words(EventKind::AllGather), 100);
        assert_eq!(t.total_comm_words(), 101);
        assert!((t.total_time() - 3.5).abs() < 1e-12);
        assert!((t.comm_time() - 1.5).abs() < 1e-12);
        assert!((t.compute_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn label_filter() {
        let mut t = Trace::new();
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::AllReduce, 1, 0, 0.5, "dot-merge"));
        t.record(ev(EventKind::AllGather, 8, 0, 0.7, "bcast-p"));
        assert_eq!(t.with_label("dot-merge").count(), 2);
        assert_eq!(t.with_label("bcast-p").count(), 1);
        assert_eq!(t.with_label("nope").count(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::new();
        t.record(ev(EventKind::Barrier, 0, 0, 0.1, "b"));
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.total_time(), 0.0);
    }
}
