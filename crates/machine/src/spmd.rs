//! A real message-passing SPMD substrate.
//!
//! The paper contrasts HPF programs with hand-coded message-passing SPMD
//! implementations ("If we used the message-passing SPMD model, then each
//! processor would have a private copy of the vector q ... and a merge
//! operation would be employed at the end"). To make that comparison
//! concrete this module provides a miniature MPI-like world: `NP` ranks
//! running as real OS threads, exchanging typed messages over crossbeam
//! channels, with per-rank traffic counters that can be compared against
//! the simulated HPF machine's counters.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, Barrier};

/// A tagged message between ranks.
struct Msg {
    src: usize,
    tag: u32,
    payload: Bytes,
}

/// Per-rank traffic statistics, mirroring [`crate::machine::ProcStats`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SpmdStats {
    /// Messages sent by this rank.
    pub messages: u64,
    /// `f64` elements sent by this rank.
    pub words_sent: u64,
}

/// The communicator handed to each rank's node program.
pub struct Comm {
    rank: usize,
    np: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    /// Out-of-order messages parked until a matching recv.
    parked: VecDeque<Msg>,
    barrier: Arc<Barrier>,
    stats: Arc<Mutex<Vec<SpmdStats>>>,
}

impl Comm {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn np(&self) -> usize {
        self.np
    }

    fn encode(data: &[f64]) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 * data.len());
        for &x in data {
            buf.put_f64_le(x);
        }
        buf.freeze()
    }

    fn decode(mut payload: Bytes) -> Vec<f64> {
        let mut out = Vec::with_capacity(payload.len() / 8);
        while payload.remaining() >= 8 {
            out.push(payload.get_f64_le());
        }
        out
    }

    /// Send `data` to rank `to` with message tag `tag`.
    pub fn send(&self, to: usize, tag: u32, data: &[f64]) {
        assert!(to < self.np, "destination rank out of range");
        assert_ne!(to, self.rank, "self-sends are not modelled");
        {
            let mut stats = self.stats.lock();
            stats[self.rank].messages += 1;
            stats[self.rank].words_sent += data.len() as u64;
        }
        self.senders[to]
            .send(Msg {
                src: self.rank,
                tag,
                payload: Self::encode(data),
            })
            .expect("receiver hung up");
    }

    /// Blocking selective receive of a message from `from` with tag `tag`.
    pub fn recv(&mut self, from: usize, tag: u32) -> Vec<f64> {
        // First check messages that arrived earlier but did not match.
        if let Some(pos) = self
            .parked
            .iter()
            .position(|m| m.src == from && m.tag == tag)
        {
            let msg = self.parked.remove(pos).unwrap();
            return Self::decode(msg.payload);
        }
        loop {
            let msg = self.receiver.recv().expect("all senders hung up");
            if msg.src == from && msg.tag == tag {
                return Self::decode(msg.payload);
            }
            self.parked.push_back(msg);
        }
    }

    /// Synchronise all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Sum-allreduce of a scalar via a binomial tree to rank 0 and a
    /// broadcast back — the "merge phase" of a distributed dot product.
    pub fn allreduce_sum(&mut self, x: f64) -> f64 {
        let v = self.reduce_sum_vec(&[x]);
        self.bcast_from0(v)[0]
    }

    /// Element-wise sum-reduction of a vector to rank 0 (other ranks get
    /// an empty vec). This is the explicit merge of private `q` copies in
    /// the paper's SPMD comparison.
    pub fn reduce_sum_vec(&mut self, data: &[f64]) -> Vec<f64> {
        let mut acc = data.to_vec();
        let np = self.np;
        let rank = self.rank;
        // Binomial tree: in round d, ranks with bit d set send to
        // rank - 2^d, then retire.
        let mut d = 1usize;
        while d < np {
            if rank & d != 0 {
                self.send(rank - d, TAG_REDUCE + d as u32, &acc);
                return Vec::new();
            } else if rank + d < np {
                let other = self.recv(rank + d, TAG_REDUCE + d as u32);
                for (a, b) in acc.iter_mut().zip(other.iter()) {
                    *a += b;
                }
            }
            d <<= 1;
        }
        acc
    }

    /// Broadcast `data` (significant on rank 0) to all ranks.
    pub fn bcast_from0(&mut self, data: Vec<f64>) -> Vec<f64> {
        let np = self.np;
        let rank = self.rank;
        let mut acc = data;
        // Binomial tree mirror of reduce: highest round first.
        let mut d = 1usize;
        while d < np {
            d <<= 1;
        }
        d >>= 1;
        while d >= 1 {
            if rank & (d - 1) == 0 {
                // Active at this round.
                if rank & d != 0 {
                    acc = self.recv(rank - d, TAG_BCAST + d as u32);
                } else if rank + d < np {
                    self.send(rank + d, TAG_BCAST + d as u32, &acc);
                }
            }
            if d == 1 {
                break;
            }
            d >>= 1;
        }
        acc
    }

    /// Allgather: each rank contributes `data`; all ranks receive the
    /// concatenation in rank order. Implemented as an all-to-all of the
    /// local block — the paper's "all-to-all broadcast of the local
    /// vector elements" in Scenario 1.
    pub fn allgather(&mut self, data: &[f64]) -> Vec<Vec<f64>> {
        let np = self.np;
        let rank = self.rank;
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); np];
        out[rank] = data.to_vec();
        for other in 0..np {
            if other == rank {
                continue;
            }
            self.send(other, TAG_ALLGATHER, data);
        }
        for _ in 0..np - 1 {
            // Selective receive in arbitrary arrival order.
            let msg = self.recv_any(TAG_ALLGATHER);
            out[msg.0] = msg.1;
        }
        out
    }

    /// Receive any message with the given tag, returning `(src, data)`.
    fn recv_any(&mut self, tag: u32) -> (usize, Vec<f64>) {
        if let Some(pos) = self.parked.iter().position(|m| m.tag == tag) {
            let msg = self.parked.remove(pos).unwrap();
            return (msg.src, Self::decode(msg.payload));
        }
        loop {
            let msg = self.receiver.recv().expect("all senders hung up");
            if msg.tag == tag {
                return (msg.src, Self::decode(msg.payload));
            }
            self.parked.push_back(msg);
        }
    }
}

const TAG_REDUCE: u32 = 1 << 16;
const TAG_BCAST: u32 = 2 << 16;
const TAG_ALLGATHER: u32 = 3 << 16;

/// The SPMD world: spawns `np` ranks as scoped threads and runs the node
/// program on each.
pub struct SpmdWorld;

/// Result of an SPMD run: per-rank return values plus traffic statistics.
pub struct SpmdRun<R> {
    pub results: Vec<R>,
    pub stats: Vec<SpmdStats>,
}

impl<R> SpmdRun<R> {
    pub fn total_messages(&self) -> u64 {
        self.stats.iter().map(|s| s.messages).sum()
    }

    pub fn total_words_sent(&self) -> u64 {
        self.stats.iter().map(|s| s.words_sent).sum()
    }
}

impl SpmdWorld {
    /// Launch `np` ranks, each running `node(comm)`, and collect results
    /// in rank order.
    pub fn run<R: Send, F: Fn(Comm) -> R + Sync>(np: usize, node: F) -> SpmdRun<R> {
        assert!(np > 0);
        let stats = Arc::new(Mutex::new(vec![SpmdStats::default(); np]));
        let barrier = Arc::new(Barrier::new(np));

        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(np);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(np);
        for _ in 0..np {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        let comms: Vec<Comm> = (0..np)
            .map(|rank| Comm {
                rank,
                np,
                senders: senders.clone(),
                receiver: receivers[rank].take().unwrap(),
                parked: VecDeque::new(),
                barrier: barrier.clone(),
                stats: stats.clone(),
            })
            .collect();
        drop(senders);

        let results = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let node = &node;
                    s.spawn(move || node(comm))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("SPMD rank panicked"))
                .collect::<Vec<_>>()
        });

        let stats = stats.lock().clone();
        SpmdRun { results, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let data = [1.5, -2.25, 0.0, f64::MAX];
        let b = Comm::encode(&data);
        assert_eq!(Comm::decode(b), data.to_vec());
    }

    #[test]
    fn point_to_point_delivery() {
        let run = SpmdWorld::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[3.0, 4.0]);
                Vec::new()
            } else {
                comm.recv(0, 7)
            }
        });
        assert_eq!(run.results[1], vec![3.0, 4.0]);
        assert_eq!(run.total_messages(), 1);
        assert_eq!(run.total_words_sent(), 2);
    }

    #[test]
    fn selective_receive_reorders() {
        // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let run = SpmdWorld::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, &[2.0]);
                comm.send(1, 1, &[1.0]);
                vec![]
            } else {
                let a = comm.recv(0, 1);
                let b = comm.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(run.results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn allreduce_sums_over_all_ranks() {
        for np in [1, 2, 3, 4, 7, 8] {
            let run = SpmdWorld::run(np, |mut comm| comm.allreduce_sum((comm.rank() + 1) as f64));
            let expect = (np * (np + 1) / 2) as f64;
            for r in &run.results {
                assert_eq!(*r, expect, "np={np}");
            }
        }
    }

    #[test]
    fn reduce_sum_vec_merges_private_copies() {
        // Each rank holds a private q; merged q = elementwise sum.
        let run = SpmdWorld::run(4, |mut comm| {
            let q_private = vec![comm.rank() as f64; 3];
            comm.reduce_sum_vec(&q_private)
        });
        assert_eq!(run.results[0], vec![6.0, 6.0, 6.0]);
        assert!(run.results[1].is_empty());
    }

    #[test]
    fn bcast_from0_replicates() {
        for np in [1, 2, 5, 8] {
            let run = SpmdWorld::run(np, |mut comm| {
                let data = if comm.rank() == 0 {
                    vec![9.0, 8.0]
                } else {
                    Vec::new()
                };
                comm.bcast_from0(data)
            });
            for r in &run.results {
                assert_eq!(*r, vec![9.0, 8.0], "np={np}");
            }
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let run = SpmdWorld::run(4, |mut comm| {
            let local = vec![comm.rank() as f64 * 10.0];
            comm.allgather(&local)
        });
        for r in &run.results {
            let flat: Vec<f64> = r.iter().flatten().cloned().collect();
            assert_eq!(flat, vec![0.0, 10.0, 20.0, 30.0]);
        }
    }

    #[test]
    fn barrier_does_not_deadlock() {
        let run = SpmdWorld::run(8, |comm| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(run.results, (0..8).collect::<Vec<_>>());
    }
}
