//! Closed-form cost prediction for traced events.
//!
//! The machine *charges* every operation with the analytic formulas from
//! the paper's Section 4 ([`Topology`] collectives over a [`CostModel`]),
//! and the trace records what was actually charged — including fault
//! penalties, straggler skew, and load imbalance, none of which the
//! formulas know about. [`predicted_time`] re-evaluates the clean closed
//! form for one event from the metadata stamped on it
//! ([`Event::payload_words`], [`Event::participants`], [`Event::hops`]),
//! so an observer can compare *predicted* against *measured* time and
//! attribute the drift. This module lives in `hpf-machine` because only
//! the machine knows its own recording conventions (e.g. that
//! reduce-scatter events land under [`EventKind::Reduce`] with an
//! aggregate-volume `words` of `w·p·(p-1)`).

use crate::cost::CostModel;
use crate::topology::Topology;
use crate::trace::{Event, EventKind};

/// The closed-form time the cost model predicts for `event`, or `None`
/// when no analytic prediction exists:
///
/// * [`EventKind::Redistribute`] — the exchange cost is data-dependent
///   (per-processor traffic matrices), not a closed form of one size;
/// * [`EventKind::Fault`] — injected penalties are drift by definition;
/// * data-moving events whose `payload_words` is 0 while `words` is not —
///   traces written before the metadata existed.
///
/// For parallel [`EventKind::Compute`] phases (non-empty `proc_times`)
/// the prediction is the *balanced* time `t_flop · flops / p`: measured
/// minus predicted is then exactly the load-imbalance penalty, the
/// quantity Section 5.2 of the paper reasons about. Serial compute
/// phases (empty `proc_times`) are predicted at their full `t_flop ·
/// flops`.
pub fn predicted_time(event: &Event, topology: Topology, cost: &CostModel) -> Option<f64> {
    let p = event.participants;
    let w = event.payload_words;
    match event.kind {
        EventKind::Compute => {
            let flops = event.flops as f64;
            if event.proc_times.is_empty() {
                Some(cost.t_flop * flops)
            } else {
                Some(cost.t_flop * flops / p.max(1) as f64)
            }
        }
        EventKind::Barrier => Some(topology.allreduce_time(p, 0, cost)),
        EventKind::Redistribute | EventKind::Fault => None,
        _ if event.words > 0 && w == 0 => None, // pre-metadata trace
        EventKind::Send => Some(cost.message(w, event.hops)),
        EventKind::Broadcast => Some(topology.broadcast_time(p, w, cost)),
        EventKind::AllGather => Some(topology.allgather_time(p, w, cost)),
        EventKind::AllReduce => Some(topology.allreduce_time(p, w, cost)),
        EventKind::AllToAll => Some(topology.alltoall_time(p, w, cost)),
        EventKind::Reduce => {
            // Reduce and reduce-scatter share a kind; the aggregate
            // volume separates them (w·(p-1) vs w·p·(p-1)).
            if event.words == w * p * p.saturating_sub(1) && p > 1 {
                Some(topology.reduce_scatter_time(p, w, cost))
            } else {
                Some(topology.reduce_time(p, w, cost))
            }
        }
        EventKind::Gather | EventKind::Scatter => {
            // Binomial tree, mirroring `Machine::gather_varying` /
            // `scatter_varying`: the emitting site stamps
            // `payload_words` with the *total* words funnelled through
            // the root, so unequal per-processor block sizes (multigrid
            // coarse levels) are priced from what actually moved.
            Some(if p <= 1 {
                0.0
            } else {
                Topology::log2_ceil(p) as f64 * cost.t_startup + cost.t_word * w as f64
            })
        }
    }
}

/// Closed-form simulated seconds for one rowwise-CG iteration on an
/// `np`-processor machine: the §4 pricing of the iteration's phases
/// *before any job runs*, usable by admission control at submit time.
///
/// The rowwise `(BLOCK, *)` iteration is: replicate the direction vector
/// (allgather of `n/np` per processor), the local matvec (`2·nnz/np`
/// flops balanced), two dot products (`2·n/np` flops each plus a
/// one-word allreduce merge), and three saxpys (`2·n/np` flops each).
/// This is deliberately the *ideal* price — no faults, no imbalance — so
/// admission errs toward accepting; the calibration layer above scales
/// it to observed wall time.
pub fn cg_iteration_seconds(
    n: usize,
    nnz: usize,
    np: usize,
    topology: Topology,
    cost: &CostModel,
) -> f64 {
    let np = np.max(1);
    let block = n.div_ceil(np);
    let gather = topology.allgather_time(np, block, cost);
    let matvec = cost.t_flop * (2 * nnz).div_ceil(np) as f64;
    let dots = 2.0 * (cost.t_flop * (2 * block) as f64 + topology.allreduce_time(np, 1, cost));
    let saxpys = 3.0 * cost.t_flop * (2 * block) as f64;
    gather + matvec + dots + saxpys
}

/// Sum of [`predicted_time`] over `events`, counting events with no
/// prediction at their *measured* time (so the total stays comparable to
/// the trace's measured total, and unpredictable events contribute zero
/// drift rather than phantom savings).
pub fn predicted_or_measured_total(events: &[Event], topology: Topology, cost: &CostModel) -> f64 {
    events
        .iter()
        .map(|e| predicted_time(e, topology, cost).unwrap_or(e.time))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::machine::Machine;

    fn drive(machine: &mut Machine) {
        machine.compute_all(&[250, 250, 250, 250], "balanced");
        machine.compute_serial(123, "serial");
        machine.send(0, 3, 40, "msg");
        machine.barrier("sync");
        machine.broadcast(1, 64, "bcast");
        machine.allgather(32, "ag");
        machine.reduce(0, 16, "red");
        machine.allreduce(8, "ared");
        machine.reduce_scatter(4, "rs");
        machine.alltoall(2, "a2a");
        machine.gather(0, 8, "gat");
        machine.scatter(0, 8, "sca");
        machine.group_collective(&[0, 1], EventKind::AllGather, 5, "row-ag");
        machine.group_collective(&[0, 2], EventKind::Reduce, 5, "col-rs");
        machine.group_collective(&[1, 3], EventKind::AllReduce, 3, "col-ar");
        machine.group_collective(&[0, 1, 2], EventKind::Broadcast, 7, "row-bc");
    }

    /// On a clean machine (no faults, no skew, balanced compute) the
    /// oracle's closed forms reproduce the recorded times exactly — this
    /// pins the per-kind recording conventions to the formulas.
    #[test]
    fn clean_machine_predictions_match_recorded_times_on_every_topology() {
        for topology in [
            Topology::Hypercube,
            Topology::Mesh2D,
            Topology::Ring,
            Topology::FullyConnected,
            Topology::Bus,
        ] {
            let mut m = Machine::new(4, topology, CostModel::mpp_1995());
            drive(&mut m);
            assert!(!m.trace().is_empty());
            for e in m.trace().events() {
                let predicted = predicted_time(e, topology, m.cost_model())
                    .unwrap_or_else(|| panic!("no prediction for {:?} '{}'", e.kind, e.label));
                assert!(
                    (predicted - e.time).abs() <= 1e-12 * e.time.max(1.0),
                    "{topology:?} {:?} '{}': predicted {predicted}, recorded {}",
                    e.kind,
                    e.label,
                    e.time
                );
            }
        }
    }

    #[test]
    fn imbalanced_compute_predicts_the_balanced_time() {
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        m.compute_all(&[1000, 0, 0, 0], "skewed");
        let e = &m.trace().events()[0];
        let predicted = predicted_time(e, Topology::Hypercube, m.cost_model()).unwrap();
        // Balanced prediction: 1000 flops / 4 procs; measured is the
        // slowest processor's full 1000.
        assert!((predicted - m.cost_model().flops(250)).abs() < 1e-15);
        assert!(e.time > predicted);
    }

    #[test]
    fn straggler_penalty_shows_up_as_drift_not_prediction() {
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        m.set_fault_plan(FaultPlan::new().with_straggler(0, 2, 8.0, 10));
        let mut clean = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        for machine in [&mut m, &mut clean] {
            machine.compute_uniform(100, "warm");
            machine.allreduce(1, "dot");
            machine.compute_uniform(500, "work"); // op 2: skewed on m
        }
        let skewed = m.trace().events().last().unwrap();
        let predicted = predicted_time(skewed, Topology::Hypercube, m.cost_model()).unwrap();
        let clean_t = clean.trace().events().last().unwrap().time;
        assert!(
            (predicted - clean_t).abs() < 1e-15,
            "prediction stays clean"
        );
        assert!(skewed.time > 4.0 * predicted, "straggler is pure drift");
    }

    #[test]
    fn faults_and_redistributes_have_no_prediction() {
        let mut m = Machine::new(4, Topology::Hypercube, CostModel::mpp_1995());
        m.set_fault_plan(FaultPlan::new().with_message_drop(0, 0));
        m.allreduce(1, "dot");
        let mat = vec![vec![0, 9, 0, 0], vec![0; 4], vec![0; 4], vec![0; 4]];
        m.exchange(&mat, "redist");
        let fault = m
            .trace()
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Fault)
            .unwrap();
        let redist = m
            .trace()
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Redistribute)
            .unwrap();
        assert!(predicted_time(fault, Topology::Hypercube, m.cost_model()).is_none());
        assert!(predicted_time(redist, Topology::Hypercube, m.cost_model()).is_none());
        // The lenient total counts both at their measured time.
        let total =
            predicted_or_measured_total(m.trace().events(), Topology::Hypercube, m.cost_model());
        assert!((total - m.trace().total_time()).abs() < 1e-12 * total);
    }

    /// The admission estimate is the same price the machine charges when
    /// the rowwise iteration's phases are driven by hand.
    #[test]
    fn cg_iteration_estimate_matches_a_driven_iteration() {
        let (np, n, nnz) = (8usize, 1024usize, 5 * 1024usize);
        let cost = CostModel::mpp_1995();
        let mut m = Machine::new(np, Topology::Hypercube, cost);
        let block = n.div_ceil(np);
        m.allgather(block, "replicate-p");
        m.compute_uniform((2 * nnz).div_ceil(np), "matvec");
        for _ in 0..2 {
            m.compute_uniform(2 * block, "dot-local");
            m.allreduce(1, "dot-merge");
        }
        for _ in 0..3 {
            m.compute_uniform(2 * block, "saxpy");
        }
        let driven = m.elapsed();
        let est = cg_iteration_seconds(n, nnz, np, Topology::Hypercube, &cost);
        assert!(
            (est - driven).abs() <= 1e-9 * driven,
            "estimate {est} vs driven {driven}"
        );
        assert!(cg_iteration_seconds(0, 0, 0, Topology::Hypercube, &cost) >= 0.0);
    }

    #[test]
    fn pre_metadata_events_are_not_predicted() {
        let mut e = Event {
            kind: EventKind::AllGather,
            participants: 8,
            words: 800,
            flops: 0,
            time: 1.0,
            start: 0.0,
            span: String::new(),
            label: "old".into(),
            proc_times: Vec::new(),
            payload_words: 0,
            hops: 0,
        };
        let c = CostModel::mpp_1995();
        assert!(predicted_time(&e, Topology::Hypercube, &c).is_none());
        e.payload_words = 100;
        assert!(predicted_time(&e, Topology::Hypercube, &c).is_some());
    }
}
