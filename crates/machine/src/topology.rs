//! Interconnect topologies and their collective-operation timing.
//!
//! The paper's cost analysis (Section 4) is parameterised by the network:
//!
//! > "the communication or merge phase changes according to the network
//! > architecture type. For example on a hypercube architecture it is
//! > done in `t_startup * log N_P` time."
//!
//! Each [`Topology`] provides hop distances and the *number of message
//! start-ups* and *per-element traffic* of the classic collective
//! algorithms on that network, so that a [`CostModel`] can turn them into
//! simulated times.

use crate::cost::CostModel;
use serde::{Deserialize, Serialize};

/// Supported interconnect topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Binary hypercube of dimension `ceil(log2 P)`. The paper's primary
    /// example network; collectives use recursive doubling.
    Hypercube,
    /// 2-D square-ish mesh (no wraparound).
    Mesh2D,
    /// Unidirectional ring.
    Ring,
    /// Fully connected crossbar (every pair one hop).
    FullyConnected,
    /// Bus / shared medium: all traffic serialises.
    Bus,
}

impl Topology {
    /// ceil(log2(p)), with `log2(1) == 0`.
    pub fn log2_ceil(p: usize) -> u32 {
        assert!(p > 0, "processor count must be positive");
        usize::BITS - (p - 1).leading_zeros()
    }

    /// Hop distance between processors `a` and `b` for a machine of `p`
    /// processors (used for point-to-point message timing).
    pub fn hops(&self, a: usize, b: usize, p: usize) -> usize {
        assert!(a < p && b < p, "rank out of range");
        if a == b {
            return 0;
        }
        match self {
            Topology::Hypercube => (a ^ b).count_ones() as usize,
            Topology::Mesh2D => {
                let side = (p as f64).sqrt().ceil() as usize;
                let (ax, ay) = (a % side, a / side);
                let (bx, by) = (b % side, b / side);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            Topology::Ring => {
                // Unidirectional: must travel forward.
                (b + p - a) % p
            }
            Topology::FullyConnected | Topology::Bus => 1,
        }
    }

    /// Network diameter for `p` processors.
    pub fn diameter(&self, p: usize) -> usize {
        match self {
            Topology::Hypercube => Self::log2_ceil(p) as usize,
            Topology::Mesh2D => {
                let side = (p as f64).sqrt().ceil() as usize;
                2 * (side.saturating_sub(1))
            }
            Topology::Ring => p.saturating_sub(1),
            Topology::FullyConnected | Topology::Bus => usize::from(p > 1),
        }
    }

    /// Time for a one-to-all broadcast of `words` elements from one root
    /// to all `p` processors.
    ///
    /// Hypercube / fully connected use a binomial tree (`log P` rounds,
    /// the paper's "tree-like broadcasting mechanism"); the mesh uses
    /// `2(sqrt P - 1)` store-and-forward steps; the ring pipelines around
    /// `P - 1` links; the bus is a single serialised transmission heard by
    /// all.
    pub fn broadcast_time(&self, p: usize, words: usize, cost: &CostModel) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let w = words as f64;
        match self {
            Topology::Hypercube | Topology::FullyConnected => {
                let rounds = Self::log2_ceil(p) as f64;
                rounds * (cost.t_startup + cost.t_word * w)
            }
            Topology::Mesh2D => {
                let steps = self.diameter(p) as f64;
                steps * (cost.t_startup + cost.t_word * w)
            }
            Topology::Ring => (p as f64 - 1.0) * (cost.t_startup + cost.t_word * w),
            Topology::Bus => cost.t_startup + cost.t_word * w,
        }
    }

    /// Time for an all-to-all broadcast (allgather) in which every
    /// processor contributes `words_each` elements and ends holding all
    /// `p * words_each`.
    ///
    /// This is the operation Scenario 1 of the paper needs to replicate
    /// the distributed vector `p`: "all-to-all broadcast of messages
    /// containing n/N_P vector elements among N_P processors takes
    /// `t_startup * log N_P + t_comm * n/N_P` time" — the hypercube
    /// recursive-doubling bound, where the bandwidth term telescopes to
    /// the total received data `(p-1) * words_each ~ n`.
    pub fn allgather_time(&self, p: usize, words_each: usize, cost: &CostModel) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let w = words_each as f64;
        let pf = p as f64;
        match self {
            Topology::Hypercube | Topology::FullyConnected => {
                // Recursive doubling: log P start-ups; data doubles each
                // round, total transferred (p-1) * w.
                let rounds = Self::log2_ceil(p) as f64;
                rounds * cost.t_startup + cost.t_word * (pf - 1.0) * w
            }
            Topology::Mesh2D => {
                // Row allgather then column allgather.
                let side = (pf).sqrt().ceil();
                2.0 * (side - 1.0) * cost.t_startup + cost.t_word * (pf - 1.0) * w
            }
            Topology::Ring => (pf - 1.0) * (cost.t_startup + cost.t_word * w),
            Topology::Bus => pf * (cost.t_startup + cost.t_word * w),
        }
    }

    /// Time for a reduction (e.g. the merge phase of `DOT_PRODUCT`) of
    /// `words` elements to a single root, including the per-element
    /// combine flops.
    ///
    /// On the hypercube this is the paper's `t_startup * log N_P` merge
    /// term (plus bandwidth/compute terms that vanish for scalar dots).
    pub fn reduce_time(&self, p: usize, words: usize, cost: &CostModel) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let w = words as f64;
        let per_round = cost.t_startup + cost.t_word * w + cost.t_flop * w;
        match self {
            Topology::Hypercube | Topology::FullyConnected => Self::log2_ceil(p) as f64 * per_round,
            Topology::Mesh2D => self.diameter(p) as f64 * per_round,
            Topology::Ring => (p as f64 - 1.0) * per_round,
            Topology::Bus => (p as f64 - 1.0) * per_round,
        }
    }

    /// Time for an allreduce = reduce + broadcast (or butterfly on the
    /// hypercube, same asymptotic cost).
    pub fn allreduce_time(&self, p: usize, words: usize, cost: &CostModel) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        match self {
            // Butterfly allreduce: log P rounds, each exchanging + adding.
            Topology::Hypercube | Topology::FullyConnected => self.reduce_time(p, words, cost),
            _ => self.reduce_time(p, words, cost) + self.broadcast_time(p, words, cost),
        }
    }

    /// Time for a reduce-scatter: every processor contributes a vector of
    /// `p * words_each` elements; each ends with its own `words_each`
    /// block of the element-wise sum. The dual of the allgather — on the
    /// hypercube, recursive *halving*: `log P` start-ups, `(P-1)/P` of
    /// the vector transferred, plus the combine flops.
    pub fn reduce_scatter_time(&self, p: usize, words_each: usize, cost: &CostModel) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let w = words_each as f64;
        let pf = p as f64;
        let moved = (pf - 1.0) * w;
        match self {
            Topology::Hypercube | Topology::FullyConnected => {
                let rounds = Self::log2_ceil(p) as f64;
                rounds * cost.t_startup + (cost.t_word + cost.t_flop) * moved
            }
            Topology::Mesh2D => {
                let side = pf.sqrt().ceil();
                2.0 * (side - 1.0) * cost.t_startup + (cost.t_word + cost.t_flop) * moved
            }
            Topology::Ring => (pf - 1.0) * (cost.t_startup + (cost.t_word + cost.t_flop) * w),
            Topology::Bus => pf * (cost.t_startup + (cost.t_word + cost.t_flop) * w),
        }
    }

    /// Time for a personalised all-to-all (each processor sends a distinct
    /// `words_each` block to every other). Used by redistribution.
    pub fn alltoall_time(&self, p: usize, words_each: usize, cost: &CostModel) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let w = words_each as f64;
        let pf = p as f64;
        match self {
            Topology::Hypercube => {
                // Hypercube personalised exchange: log P rounds, each
                // moving p/2 * w words.
                let rounds = Self::log2_ceil(p) as f64;
                rounds * (cost.t_startup + cost.t_word * w * pf / 2.0)
            }
            Topology::FullyConnected => (pf - 1.0) * (cost.t_startup + cost.t_word * w),
            Topology::Mesh2D => {
                let side = pf.sqrt().ceil();
                2.0 * (side - 1.0) * cost.t_startup + cost.t_word * w * pf * side / 2.0
            }
            Topology::Ring => (pf - 1.0) * (cost.t_startup + cost.t_word * w * pf / 2.0),
            Topology::Bus => pf * (pf - 1.0) * (cost.t_startup + cost.t_word * w),
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Hypercube => "hypercube",
            Topology::Mesh2D => "mesh2d",
            Topology::Ring => "ring",
            Topology::FullyConnected => "fully-connected",
            Topology::Bus => "bus",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(Topology::log2_ceil(1), 0);
        assert_eq!(Topology::log2_ceil(2), 1);
        assert_eq!(Topology::log2_ceil(3), 2);
        assert_eq!(Topology::log2_ceil(4), 2);
        assert_eq!(Topology::log2_ceil(5), 3);
        assert_eq!(Topology::log2_ceil(8), 3);
        assert_eq!(Topology::log2_ceil(9), 4);
    }

    #[test]
    fn hypercube_hops_is_hamming_distance() {
        let t = Topology::Hypercube;
        assert_eq!(t.hops(0, 7, 8), 3);
        assert_eq!(t.hops(5, 5, 8), 0);
        assert_eq!(t.hops(0b101, 0b110, 8), 2);
    }

    #[test]
    fn mesh_hops_is_manhattan() {
        let t = Topology::Mesh2D;
        // 16 procs, side 4. 0=(0,0), 15=(3,3).
        assert_eq!(t.hops(0, 15, 16), 6);
        assert_eq!(t.hops(0, 3, 16), 3);
        assert_eq!(t.hops(0, 4, 16), 1);
    }

    #[test]
    fn ring_is_unidirectional() {
        let t = Topology::Ring;
        assert_eq!(t.hops(0, 1, 8), 1);
        assert_eq!(t.hops(1, 0, 8), 7);
    }

    #[test]
    fn broadcast_on_hypercube_is_logarithmic_in_startups() {
        let c = CostModel {
            t_startup: 1.0,
            t_word: 0.0,
            t_flop: 0.0,
        };
        let t = Topology::Hypercube;
        assert_eq!(t.broadcast_time(8, 100, &c), 3.0);
        assert_eq!(t.broadcast_time(16, 100, &c), 4.0);
        assert_eq!(t.broadcast_time(1, 100, &c), 0.0);
    }

    #[test]
    fn allgather_matches_paper_formula_on_hypercube() {
        // Paper: t_startup * log NP + t_comm * n/NP ... with the
        // bandwidth term actually telescoping to (NP-1) * n/NP ~ n.
        let c = CostModel {
            t_startup: 2.0,
            t_word: 0.5,
            t_flop: 0.0,
        };
        let p = 8;
        let each = 100;
        let t = Topology::Hypercube.allgather_time(p, each, &c);
        let expect = 3.0 * 2.0 + 0.5 * (7 * 100) as f64;
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn reduce_merge_term_matches_paper_on_hypercube() {
        // Scalar dot-product merge: t_startup * log NP dominates.
        let c = CostModel {
            t_startup: 1.0,
            t_word: 0.0,
            t_flop: 0.0,
        };
        assert_eq!(Topology::Hypercube.reduce_time(32, 1, &c), 5.0);
    }

    #[test]
    fn ring_collectives_are_linear_in_p() {
        let c = CostModel {
            t_startup: 1.0,
            t_word: 0.0,
            t_flop: 0.0,
        };
        assert_eq!(Topology::Ring.broadcast_time(8, 1, &c), 7.0);
        assert_eq!(Topology::Ring.broadcast_time(16, 1, &c), 15.0);
    }

    #[test]
    fn single_processor_is_free() {
        let c = CostModel::mpp_1995();
        for t in [
            Topology::Hypercube,
            Topology::Mesh2D,
            Topology::Ring,
            Topology::FullyConnected,
            Topology::Bus,
        ] {
            assert_eq!(t.broadcast_time(1, 1000, &c), 0.0);
            assert_eq!(t.allgather_time(1, 1000, &c), 0.0);
            assert_eq!(t.reduce_time(1, 1000, &c), 0.0);
            assert_eq!(t.allreduce_time(1, 1000, &c), 0.0);
            assert_eq!(t.alltoall_time(1, 1000, &c), 0.0);
        }
    }

    #[test]
    fn hypercube_beats_ring_for_large_p() {
        let c = CostModel::mpp_1995();
        let hc = Topology::Hypercube.allreduce_time(64, 1, &c);
        let ring = Topology::Ring.allreduce_time(64, 1, &c);
        assert!(hc < ring);
    }

    #[test]
    fn diameters() {
        assert_eq!(Topology::Hypercube.diameter(8), 3);
        assert_eq!(Topology::Ring.diameter(8), 7);
        assert_eq!(Topology::Mesh2D.diameter(16), 6);
        assert_eq!(Topology::FullyConnected.diameter(8), 1);
        assert_eq!(Topology::FullyConnected.diameter(1), 0);
    }
}
