//! Deterministic fault injection for the simulated machine.
//!
//! Long CG runs on real distributed-memory machines see transient value
//! corruption, lost messages, slow ("straggler") processors, and outright
//! node crashes. This module models all four as a *plan*: a sorted list of
//! faults keyed to the machine's global operation counter, so a given
//! seed reproduces exactly the same fault sequence on every run — the
//! property the recovery tests and the E23 fault sweep rely on.
//!
//! The machine consults a [`FaultInjector`] at the start of every public
//! operation (compute phase, collective, message). Faults take effect in
//! two ways:
//!
//! * **Timing faults** (message drop, straggler, crash restart) charge
//!   extra simulated time directly inside the machine.
//! * **Value faults** (bit flip, crash losing an in-flight contribution)
//!   *arm* a pending corruption which the next value-producing layer —
//!   `DistVector::dot` or the sparse matvec — drains through
//!   [`crate::Machine::corrupt_scalar`] / [`crate::Machine::corrupt_slice`].
//!
//! Every fault that fires is recorded as a typed
//! [`crate::EventKind::Fault`] event in the trace, so traces double as a
//! fault log (and the determinism test can compare them byte for byte).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extra start-ups charged when a dropped message is detected and
/// retransmitted (timeout + resend).
pub const DROP_RETRANSMIT_STARTUPS: f64 = 8.0;

/// Start-ups charged machine-wide when a crashed processor is restarted
/// and rejoins the computation (fail-stop + immediate restart model).
pub const CRASH_RESTART_STARTUPS: f64 = 256.0;

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Transient value corruption: flip `bit` (0..=63) of the IEEE-754
    /// representation of the next reduction or matvec result; for bulk
    /// results, `target` selects the corrupted element (mod length).
    BitFlip { bit: u8, target: usize },
    /// A message is lost and must be retransmitted after a timeout;
    /// costs [`DROP_RETRANSMIT_STARTUPS`] extra start-ups.
    MessageDrop,
    /// Processor `proc` runs slow: its compute time is multiplied by
    /// `factor` for the next `ops` machine operations.
    Straggler { factor: f64, ops: usize },
    /// Fail-stop crash with immediate restart: the processor's in-flight
    /// contribution is lost (the next drained value becomes NaN) and the
    /// whole machine stalls for [`CRASH_RESTART_STARTUPS`] start-ups
    /// while it rejoins.
    Crash,
    /// The *host thread* servicing the machine freezes for `millis` of
    /// wall-clock time (simulated clocks do not advance). Models a hung
    /// worker — a deadlocked lock, an OS-level stall — rather than slow
    /// simulated compute, so supervision tests and the chaos soak can
    /// exercise hang detection deterministically.
    Stall { millis: u64 },
}

impl FaultKind {
    /// Stable lowercase tag used in trace labels.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::BitFlip { .. } => "bitflip",
            FaultKind::MessageDrop => "drop",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::Crash => "crash",
            FaultKind::Stall { .. } => "stall",
        }
    }
}

/// One planned fault: `kind` strikes processor `proc` when the machine's
/// operation counter reaches `op`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    pub op: usize,
    pub proc: usize,
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, sorted by operation index.
///
/// Build one explicitly with the `with_*` builders, or derive one from a
/// seed with [`FaultPlan::random`]; either way the plan is pure data and
/// two machines given equal plans inject identical faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a bit-flip corruption at operation `op` on processor `proc`.
    pub fn with_bit_flip(mut self, op: usize, proc: usize, bit: u8, target: usize) -> Self {
        assert!(bit < 64, "f64 has 64 bits");
        self.push(Fault {
            op,
            proc,
            kind: FaultKind::BitFlip { bit, target },
        });
        self
    }

    /// Add a dropped-message fault at operation `op` on processor `proc`.
    pub fn with_message_drop(mut self, op: usize, proc: usize) -> Self {
        self.push(Fault {
            op,
            proc,
            kind: FaultKind::MessageDrop,
        });
        self
    }

    /// Slow processor `proc` down by `factor` for `ops` operations
    /// starting at operation `op`.
    pub fn with_straggler(mut self, op: usize, proc: usize, factor: f64, ops: usize) -> Self {
        assert!(factor >= 1.0, "a straggler is slower, not faster");
        self.push(Fault {
            op,
            proc,
            kind: FaultKind::Straggler { factor, ops },
        });
        self
    }

    /// Crash (and restart) processor `proc` at operation `op`.
    pub fn with_crash(mut self, op: usize, proc: usize) -> Self {
        self.push(Fault {
            op,
            proc,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Freeze the host thread for `millis` wall-clock milliseconds at
    /// operation `op` (a hung-worker fault; never drawn by
    /// [`FaultPlan::random`], only planted explicitly).
    pub fn with_stall(mut self, op: usize, proc: usize, millis: u64) -> Self {
        self.push(Fault {
            op,
            proc,
            kind: FaultKind::Stall { millis },
        });
        self
    }

    fn push(&mut self, f: Fault) {
        self.faults.push(f);
        self.faults.sort_by_key(|f| f.op);
    }

    /// Draw a random plan from a seed: over the first `horizon_ops`
    /// machine operations on an `np`-processor machine, each fault class
    /// fires with the per-operation probability given in `rates`.
    /// Identical `(seed, np, horizon_ops, rates)` always produce an
    /// identical plan.
    pub fn random(seed: u64, np: usize, horizon_ops: usize, rates: FaultRates) -> Self {
        assert!(np > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for op in 0..horizon_ops {
            if rates.bit_flip > 0.0 && rng.gen_bool(rates.bit_flip) {
                let proc = rng.gen_range(0..np);
                // Bias toward high mantissa / exponent bits so the
                // corruption is large enough to matter.
                let bit = rng.gen_range(40u8..63);
                let target = rng.gen_range(0..usize::MAX);
                plan = plan.with_bit_flip(op, proc, bit, target);
            }
            if rates.message_drop > 0.0 && rng.gen_bool(rates.message_drop) {
                plan = plan.with_message_drop(op, rng.gen_range(0..np));
            }
            if rates.straggler > 0.0 && rng.gen_bool(rates.straggler) {
                let proc = rng.gen_range(0..np);
                let factor = rng.gen_range(2.0f64..8.0);
                let ops = rng.gen_range(4usize..32);
                plan = plan.with_straggler(op, proc, factor, ops);
            }
            if rates.crash > 0.0 && rng.gen_bool(rates.crash) {
                plan = plan.with_crash(op, rng.gen_range(0..np));
            }
        }
        plan
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn len(&self) -> usize {
        self.faults.len()
    }

    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// Per-operation fault probabilities for [`FaultPlan::random`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    pub bit_flip: f64,
    pub message_drop: f64,
    pub straggler: f64,
    pub crash: f64,
}

impl FaultRates {
    /// A mix of transient corruption and timing faults, no crashes.
    pub fn transient(rate: f64) -> Self {
        FaultRates {
            bit_flip: rate,
            message_drop: rate / 2.0,
            straggler: rate / 4.0,
            crash: 0.0,
        }
    }
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            bit_flip: 0.01,
            message_drop: 0.005,
            straggler: 0.002,
            crash: 0.0005,
        }
    }
}

/// A value corruption armed by the injector and drained by the next
/// value-producing operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum PendingCorruption {
    /// Flip one bit of the value (element `target % len` for slices).
    Flip { bit: u8, target: usize },
    /// The contribution was lost entirely (crash): poison with NaN.
    Lost { target: usize },
}

impl PendingCorruption {
    pub(crate) fn apply_scalar(self, v: f64) -> f64 {
        match self {
            PendingCorruption::Flip { bit, .. } => f64::from_bits(v.to_bits() ^ (1u64 << bit)),
            PendingCorruption::Lost { .. } => f64::NAN,
        }
    }

    pub(crate) fn target(&self) -> usize {
        match self {
            PendingCorruption::Flip { target, .. } | PendingCorruption::Lost { target } => *target,
        }
    }
}

/// Walks a [`FaultPlan`] against the machine's operation counter.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    injected: usize,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            cursor: 0,
            injected: 0,
        }
    }

    /// Faults scheduled at or before `op` that have not fired yet.
    /// (`<=` rather than `==` so a plan survives workloads whose op
    /// counter skips past a scheduled index.)
    pub(crate) fn due(&mut self, op: usize) -> Vec<Fault> {
        let mut fired = Vec::new();
        while self.cursor < self.plan.faults.len() && self.plan.faults[self.cursor].op <= op {
            fired.push(self.plan.faults[self.cursor]);
            self.cursor += 1;
        }
        self.injected += fired.len();
        fired
    }

    pub(crate) fn injected(&self) -> usize {
        self.injected
    }

    /// Rewind to the start of the plan (used by `Machine::reset` so a
    /// reset machine replays the same schedule from scratch).
    pub(crate) fn rewind(&mut self) {
        self.cursor = 0;
        self.injected = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_sorted_by_op() {
        let p = FaultPlan::new()
            .with_crash(50, 1)
            .with_bit_flip(10, 0, 52, 3)
            .with_message_drop(30, 2);
        let ops: Vec<usize> = p.faults().iter().map(|f| f.op).collect();
        assert_eq!(ops, vec![10, 30, 50]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let rates = FaultRates::default();
        let a = FaultPlan::random(42, 8, 500, rates);
        let b = FaultPlan::random(42, 8, 500, rates);
        let c = FaultPlan::random(43, 8, 500, rates);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different plans");
        assert!(!a.is_empty(), "default rates over 500 ops should fire");
    }

    #[test]
    fn injector_fires_each_fault_once_in_order() {
        let p = FaultPlan::new()
            .with_bit_flip(2, 0, 52, 0)
            .with_message_drop(2, 1)
            .with_crash(5, 0);
        let mut inj = FaultInjector::new(p);
        assert!(inj.due(0).is_empty());
        assert!(inj.due(1).is_empty());
        let at2 = inj.due(2);
        assert_eq!(at2.len(), 2);
        assert!(inj.due(3).is_empty());
        // Op counter may skip past the scheduled index; the fault still
        // fires at the next consulted op.
        let late = inj.due(9);
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].kind, FaultKind::Crash);
        assert_eq!(inj.injected(), 3);
        assert!(inj.due(100).is_empty());
    }

    #[test]
    fn bit_flip_perturbs_value_and_lost_poisons() {
        let flip = PendingCorruption::Flip { bit: 52, target: 0 };
        let v = 1.0f64;
        let w = flip.apply_scalar(v);
        assert_ne!(v, w);
        assert!(w.is_finite());
        // Flipping the same bit twice restores the value.
        assert_eq!(flip.apply_scalar(w), v);

        let lost = PendingCorruption::Lost { target: 7 };
        assert!(lost.apply_scalar(3.25).is_nan());
        assert_eq!(lost.target(), 7);
    }

    #[test]
    fn transient_rates_exclude_crashes() {
        let r = FaultRates::transient(0.02);
        assert_eq!(r.crash, 0.0);
        let p = FaultPlan::random(7, 4, 300, r);
        assert!(p.faults().iter().all(|f| f.kind != FaultKind::Crash));
    }
}
