//! Real shared-memory execution helpers.
//!
//! The simulator charges *modeled* time, but local arithmetic is executed
//! for real. For large problem sizes it is worth running the
//! per-processor local phases on actual OS threads. Since the sanctioned
//! dependency set excludes a thread-pool crate, this module provides a
//! small fork-join layer over [`std::thread::scope`] — one of the
//! substrates this reproduction builds from scratch.

/// Run `f(p, chunk)` for every chunk of `data` split into `parts`
/// near-equal contiguous pieces, on `parts` scoped threads. Chunk `p`
/// covers the same index range as HPF `BLOCK` distribution of the slice
/// over `parts` processors.
///
/// Falls back to sequential execution when `parts <= 1` or the slice is
/// small enough that thread spawn overhead would dominate.
pub fn par_chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(data: &mut [T], parts: usize, f: F) {
    let n = data.len();
    if parts <= 1 || n < 4096 {
        for (p, chunk) in block_chunks_mut(data, parts.max(1)).into_iter().enumerate() {
            f(p, chunk);
        }
        return;
    }
    let chunks = block_chunks_mut(data, parts);
    std::thread::scope(|s| {
        for (p, chunk) in chunks.into_iter().enumerate() {
            let f = &f;
            s.spawn(move || f(p, chunk));
        }
    });
}

/// Run `f(p)` for `p in 0..parts` on scoped threads and collect results in
/// rank order. This is the shape of an SPMD "node program" launch.
pub fn par_ranks<R: Send, F: Fn(usize) -> R + Sync>(parts: usize, f: F) -> Vec<R> {
    assert!(parts > 0);
    if parts == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..parts)
            .map(|p| {
                let f = &f;
                s.spawn(move || f(p))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

/// Split `data` into `parts` contiguous chunks using HPF BLOCK semantics:
/// block size `ceil(n / parts)`, so trailing chunks may be empty.
pub fn block_chunks_mut<T>(data: &mut [T], parts: usize) -> Vec<&mut [T]> {
    assert!(parts > 0);
    let n = data.len();
    let bs = n.div_ceil(parts).max(1);
    let mut out = Vec::with_capacity(parts);
    let mut rest = data;
    for _ in 0..parts {
        let take = bs.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        out.push(head);
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_chunks_cover_everything_once() {
        let mut v: Vec<usize> = (0..10).collect();
        let chunks = block_chunks_mut(&mut v, 3);
        assert_eq!(chunks.len(), 3);
        // ceil(10/3) = 4 -> 4, 4, 2
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn block_chunks_trailing_empty() {
        let mut v = [1, 2];
        let chunks = block_chunks_mut(&mut v, 4);
        assert_eq!(
            chunks.iter().map(|c| c.len()).collect::<Vec<_>>(),
            vec![1, 1, 0, 0]
        );
    }

    #[test]
    fn par_chunks_mut_applies_function_everywhere() {
        let mut v = vec![1.0f64; 10_000];
        par_chunks_mut(&mut v, 4, |_p, chunk| {
            for x in chunk {
                *x *= 2.0;
            }
        });
        assert!(v.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn par_chunks_mut_passes_correct_rank() {
        let mut v = vec![0usize; 8192];
        par_chunks_mut(&mut v, 4, |p, chunk| {
            for x in chunk {
                *x = p;
            }
        });
        let bs = 8192usize.div_ceil(4);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / bs);
        }
    }

    #[test]
    fn par_ranks_collects_in_order() {
        let out = par_ranks(8, |p| p * p);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn par_ranks_single() {
        assert_eq!(par_ranks(1, |p| p + 7), vec![7]);
    }
}
