//! # hpf-machine — simulated distributed-memory multicomputer
//!
//! Substrate crate for the reproduction of *"High Performance Fortran and
//! Possible Extensions to support Conjugate Gradient Algorithms"*
//! (Dincer, Hawick, Choudhary, Fox; NPAC SCCS-703 / HPDC'96).
//!
//! The paper evaluates HPF data layouts analytically on distributed-memory
//! machines parameterised by a start-up latency `t_startup` and a per-word
//! transfer time `t_comm`, with hypercube-style collective algorithms.
//! This crate provides exactly that machine:
//!
//! * [`cost::CostModel`] — the `(t_startup, t_word, t_flop)` linear model;
//! * [`topology::Topology`] — hypercube / mesh / ring / fully-connected /
//!   bus networks with per-collective analytic timing;
//! * [`machine::Machine`] — `NP` virtual processors with per-processor
//!   clocks, traffic counters, and an event [`trace::Trace`];
//! * [`spmd`] — a *real* message-passing world (ranks as OS threads,
//!   crossbeam channels) used for the hand-coded SPMD baseline the paper
//!   compares HPF against;
//! * [`exec`] — scoped-thread fork-join helpers for running local phases
//!   of the simulation on real cores.

pub mod blackbox;
pub mod cost;
pub mod exec;
pub mod fault;
pub mod machine;
pub mod predict;
pub mod span;
pub mod spmd;
pub mod topology;
pub mod trace;

pub use blackbox::{BlackBox, BlackBoxRecord, BlackBoxTail};
pub use cost::CostModel;
pub use fault::{Fault, FaultKind, FaultPlan, FaultRates};
pub use machine::{EventSink, Machine, ProcStats, ProgressHook};
pub use predict::{cg_iteration_seconds, predicted_or_measured_total, predicted_time};
pub use span::{level_of, trace_of, ScopeGuard, Span};
pub use spmd::{Comm, SpmdRun, SpmdStats, SpmdWorld};
pub use topology::Topology;
pub use trace::{Event, EventKind, LabelSummary, Trace, TraceParseError};
