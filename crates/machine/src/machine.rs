//! The simulated multicomputer.
//!
//! A [`Machine`] models `NP` distributed-memory processors connected by a
//! [`Topology`], with per-processor clocks and an analytic [`CostModel`].
//! Higher layers (distributed arrays, HPF operations, solvers) perform
//! the *real* arithmetic on locally owned data and charge the machine for
//! the computation and communication that the HPF layout induces. The
//! machine in turn maintains:
//!
//! * a per-processor local clock (so load imbalance is visible),
//! * cumulative flop/word/message counters, and
//! * an event [`Trace`] usable by tests and benchmark reports.
//!
//! Collective operations synchronise the clocks (every participant waits
//! for the slowest), exactly as the merge/broadcast phases do in the
//! paper's Section 4 analysis.

use crate::cost::CostModel;
use crate::fault::{
    Fault, FaultInjector, FaultKind, FaultPlan, PendingCorruption, CRASH_RESTART_STARTUPS,
    DROP_RETRANSMIT_STARTUPS,
};
use crate::topology::Topology;
use crate::trace::{Event, EventKind, Trace};

/// Cumulative per-processor statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProcStats {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Elements sent into the network.
    pub words_sent: u64,
    /// Messages originated.
    pub messages: u64,
}

/// A simulated NP-processor distributed-memory machine.
///
/// ```
/// use hpf_machine::{Machine, EventKind};
///
/// let mut m = Machine::hypercube(8);
/// // An owner-computes phase followed by a scalar merge (a dot product).
/// m.compute_uniform(1_000, "dot-local");
/// m.allreduce(1, "dot-merge");
/// assert_eq!(m.trace().count(EventKind::AllReduce), 1);
/// assert!(m.elapsed() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    np: usize,
    topology: Topology,
    cost: CostModel,
    clocks: Vec<f64>,
    stats: Vec<ProcStats>,
    trace: Trace,
    tracing: bool,
    /// Global operation counter: advances once per public machine
    /// operation; fault plans key off it.
    op_index: usize,
    injector: Option<FaultInjector>,
    /// Armed value corruption, drained by the next `corrupt_*` call.
    pending: Option<PendingCorruption>,
    /// Per-processor straggler state (compute-time multiplier).
    skew: Vec<Skew>,
    /// Per-operation heartbeat/cancellation callback (see [`ProgressHook`]).
    hook: Option<ProgressHook>,
    /// Live event tap fired from the recording chokepoint (see
    /// [`EventSink`]); independent of `tracing`.
    sink: Option<EventSink>,
}

/// Callback fired once at the start of every public machine operation,
/// with the operation index about to execute.
///
/// This is the heartbeat source for worker supervision: a service worker
/// installs a hook that bumps an atomic counter (proving the solve is
/// making progress) and checks an abort flag (so a supervisor can cancel
/// a runaway job cooperatively — the hook panics with a typed payload the
/// worker catches). The hook runs on the hot path, so implementations
/// should be a couple of atomic ops at most.
#[derive(Clone)]
pub struct ProgressHook(pub std::sync::Arc<dyn Fn(usize) + Send + Sync>);

impl ProgressHook {
    pub fn new(f: impl Fn(usize) + Send + Sync + 'static) -> Self {
        ProgressHook(std::sync::Arc::new(f))
    }
}

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// Callback fired with every event the machine records, *as it happens*,
/// independent of whether the post-hoc [`Trace`] is enabled.
///
/// This is the live-telemetry tap: where [`ProgressHook`] is a heartbeat
/// (an opaque operation counter), the sink sees the full [`Event`] —
/// kind, span path, cost — so an external bus can stream sampled events
/// out mid-solve instead of waiting for the trace dump at completion.
/// The sink runs on the recording path; implementations should decide
/// quickly (a hash test and a ring-buffer push, no locks, no I/O).
///
/// A sink may additionally carry a *pre-filter* ([`EventSink::with_filter`]):
/// a `(trace_id, kind) -> keep?` predicate the machine consults *before*
/// building the [`Event`] (span-path join, label clone) whenever tracing
/// is off. That is what makes per-job head sampling cheap — a
/// sampled-out job's operations cost one thread-local scan and a hash,
/// not an allocation each.
#[derive(Clone)]
pub struct EventSink {
    emit: std::sync::Arc<dyn Fn(&Event) + Send + Sync>,
    filter: Option<std::sync::Arc<dyn Fn(u64, EventKind) -> bool + Send + Sync>>,
}

impl EventSink {
    pub fn new(f: impl Fn(&Event) + Send + Sync + 'static) -> Self {
        EventSink {
            emit: std::sync::Arc::new(f),
            filter: None,
        }
    }

    /// Attach the head-sampling pre-filter. Only consulted when tracing
    /// is off (with tracing on the event is built for the trace anyway,
    /// so the sink body must apply its own sampling — which a bus tap
    /// does on publish regardless).
    pub fn with_filter(
        mut self,
        f: impl Fn(u64, EventKind) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.filter = Some(std::sync::Arc::new(f));
        self
    }

    /// Offer a built event to the sink.
    pub fn emit(&self, event: &Event) {
        (self.emit)(event);
    }

    /// Combine several sinks into one. [`Machine::set_event_sink`] holds a
    /// single sink, so coexisting taps (a sampling bus *and* a black-box
    /// flight recorder) must be fanned out explicitly. Emission offers the
    /// event to every child; the combined pre-filter keeps an event if
    /// *any* child wants it, so each child's own emit body must stay
    /// prepared to drop events it did not ask for (the bus re-checks its
    /// sampling decision on publish, the black box keeps everything).
    pub fn fanout(sinks: Vec<EventSink>) -> Self {
        let emit_children = sinks.clone();
        let filter_children: Vec<EventSink> = sinks;
        EventSink {
            emit: std::sync::Arc::new(move |event: &Event| {
                for child in &emit_children {
                    child.emit(event);
                }
            }),
            filter: Some(std::sync::Arc::new(move |trace_id, kind| {
                let _ = trace_id;
                filter_children.iter().any(|c| c.wants(kind))
            })),
        }
    }

    /// Would the sink keep an event of `kind` for the calling thread's
    /// current trace id? No filter means yes.
    pub fn wants(&self, kind: EventKind) -> bool {
        match &self.filter {
            None => true,
            Some(f) => f(crate::span::current_trace().unwrap_or(0), kind),
        }
    }
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EventSink(..)")
    }
}

/// Straggler slowdown applied to one processor's compute phases.
#[derive(Debug, Clone, Copy)]
struct Skew {
    factor: f64,
    remaining: usize,
}

impl Skew {
    const NONE: Skew = Skew {
        factor: 1.0,
        remaining: 0,
    };
}

impl Machine {
    /// Create a machine of `np` processors (the paper's `N_P`, the
    /// `PROCESSORS PROCS(NP)` directive).
    pub fn new(np: usize, topology: Topology, cost: CostModel) -> Self {
        assert!(np > 0, "a machine needs at least one processor");
        Machine {
            np,
            topology,
            cost,
            clocks: vec![0.0; np],
            stats: vec![ProcStats::default(); np],
            trace: Trace::new(),
            tracing: true,
            op_index: 0,
            injector: None,
            pending: None,
            skew: vec![Skew::NONE; np],
            hook: None,
            sink: None,
        }
    }

    /// A hypercube machine with the default mid-90s MPP cost model.
    pub fn hypercube(np: usize) -> Self {
        Self::new(np, Topology::Hypercube, CostModel::default())
    }

    pub fn np(&self) -> usize {
        self.np
    }

    pub fn topology(&self) -> Topology {
        self.topology
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Disable event tracing (keeps counters and clocks).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The simulated elapsed wall-clock time: the slowest processor.
    pub fn elapsed(&self) -> f64 {
        self.clocks.iter().cloned().fold(0.0, f64::max)
    }

    /// Per-processor clocks (for imbalance inspection).
    pub fn clocks(&self) -> &[f64] {
        &self.clocks
    }

    /// Load imbalance factor of the processor clocks: `max / mean`
    /// (1.0 = perfectly balanced). Returns 1.0 on an idle machine.
    pub fn imbalance(&self) -> f64 {
        let max = self.elapsed();
        let mean = self.clocks.iter().sum::<f64>() / self.np as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    pub fn stats(&self, p: usize) -> &ProcStats {
        &self.stats[p]
    }

    pub fn total_flops(&self) -> u64 {
        self.stats.iter().map(|s| s.flops).sum()
    }

    pub fn total_words_sent(&self) -> u64 {
        self.stats.iter().map(|s| s.words_sent).sum()
    }

    pub fn total_messages(&self) -> u64 {
        self.stats.iter().map(|s| s.messages).sum()
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Reset clocks, counters, trace and fault state (the machine keeps
    /// its shape; an installed fault plan rewinds to its start, so a
    /// reset machine replays the identical fault schedule).
    pub fn reset(&mut self) {
        self.clocks.iter_mut().for_each(|c| *c = 0.0);
        self.stats
            .iter_mut()
            .for_each(|s| *s = ProcStats::default());
        self.trace.clear();
        self.op_index = 0;
        self.pending = None;
        self.skew.iter_mut().for_each(|s| *s = Skew::NONE);
        if let Some(inj) = &mut self.injector {
            inj.rewind();
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Install a deterministic fault plan. The plan's operation indices
    /// are relative to this moment: the operation counter restarts at 0.
    /// Replaces any previous plan and clears armed corruption/skew.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
        self.op_index = 0;
        self.pending = None;
        self.skew.iter_mut().for_each(|s| *s = Skew::NONE);
    }

    /// Remove the fault plan along with any armed corruption or
    /// straggler skew. Subsequent operations run fault-free.
    pub fn clear_fault_plan(&mut self) {
        self.injector = None;
        self.pending = None;
        self.skew.iter_mut().for_each(|s| *s = Skew::NONE);
    }

    /// Install a per-operation progress hook (heartbeat/cancellation
    /// point). Survives [`Machine::reset`]; replaced by the next call.
    pub fn set_progress_hook(&mut self, hook: ProgressHook) {
        self.hook = Some(hook);
    }

    /// Remove the progress hook.
    pub fn clear_progress_hook(&mut self) {
        self.hook = None;
    }

    /// Install a live event sink, fired with every recorded [`Event`]
    /// even when tracing is off. Survives [`Machine::reset`]; replaced
    /// by the next call.
    pub fn set_event_sink(&mut self, sink: EventSink) {
        self.sink = Some(sink);
    }

    /// Remove the event sink.
    pub fn clear_event_sink(&mut self) {
        self.sink = None;
    }

    /// Number of faults injected since the plan was installed (or the
    /// machine last reset).
    pub fn faults_injected(&self) -> usize {
        self.injector.as_ref().map_or(0, |i| i.injected())
    }

    /// The global operation counter (one tick per public machine
    /// operation; fault plans are keyed to it).
    pub fn op_index(&self) -> usize {
        self.op_index
    }

    /// Pass a freshly produced scalar (a reduction result, e.g. a dot
    /// product) through the fault layer: identity unless a value
    /// corruption is armed, in which case the corruption is consumed.
    pub fn corrupt_scalar(&mut self, v: f64) -> f64 {
        match self.pending.take() {
            Some(c) => c.apply_scalar(v),
            None => v,
        }
    }

    /// Pass a freshly produced bulk result (a matvec output) through the
    /// fault layer: corrupts at most one element, consuming the armed
    /// corruption.
    pub fn corrupt_slice(&mut self, values: &mut [f64]) {
        if let Some(c) = self.pending.take() {
            if values.is_empty() {
                // Nothing to corrupt here; stay armed for the next
                // value-producing operation.
                self.pending = Some(c);
                return;
            }
            let i = c.target() % values.len();
            values[i] = c.apply_scalar(values[i]);
        }
    }

    /// Advance the operation counter and fire any faults due at this
    /// operation. Near-zero cost when no plan is installed.
    fn begin_op(&mut self) {
        let op = self.op_index;
        self.op_index += 1;
        if let Some(h) = &self.hook {
            // May panic (cooperative cancellation) — the panic unwinds
            // out of the machine operation into the worker's catch site.
            (h.0)(op);
        }
        if self.injector.is_none() {
            return;
        }
        for s in &mut self.skew {
            if s.remaining > 0 {
                s.remaining -= 1;
            }
        }
        let due = self
            .injector
            .as_mut()
            .map(|i| i.due(op))
            .unwrap_or_default();
        for f in due {
            self.apply_fault(op, f);
        }
    }

    fn apply_fault(&mut self, op: usize, f: Fault) {
        let proc = f.proc % self.np;
        let start = self.elapsed();
        let (penalty, label) = match f.kind {
            FaultKind::BitFlip { bit, target } => {
                self.pending = Some(PendingCorruption::Flip { bit, target });
                (0.0, format!("fault:bitflip:p{proc}:op{op}:bit{bit}"))
            }
            FaultKind::MessageDrop => {
                // Timeout + retransmit: everyone in the collective waits.
                let t = DROP_RETRANSMIT_STARTUPS * self.cost.t_startup;
                self.clocks.iter_mut().for_each(|c| *c += t);
                (t, format!("fault:drop:p{proc}:op{op}"))
            }
            FaultKind::Straggler { factor, ops } => {
                self.skew[proc] = Skew {
                    factor,
                    remaining: ops,
                };
                (0.0, format!("fault:straggler:p{proc}:op{op}:x{factor}"))
            }
            FaultKind::Crash => {
                // Fail-stop with immediate restart: the in-flight
                // contribution is lost and the machine stalls while the
                // processor rejoins.
                self.pending = Some(PendingCorruption::Lost { target: proc });
                let t = CRASH_RESTART_STARTUPS * self.cost.t_startup;
                self.synchronise();
                self.clocks.iter_mut().for_each(|c| *c += t);
                (t, format!("fault:crash:p{proc}:op{op}"))
            }
            FaultKind::Stall { millis } => {
                // Wall-clock hang: the host thread freezes, the simulated
                // clocks stand still. This is what a supervisor sees as a
                // dead heartbeat.
                std::thread::sleep(std::time::Duration::from_millis(millis));
                (0.0, format!("fault:stall:p{proc}:op{op}:ms{millis}"))
            }
        };
        self.record_at(
            EventKind::Fault,
            self.np,
            0,
            0,
            0,
            0,
            penalty,
            start,
            &label,
            Vec::new(),
        );
    }

    fn skew_factor(&self, p: usize) -> f64 {
        if self.skew[p].remaining > 0 {
            self.skew[p].factor
        } else {
            1.0
        }
    }

    /// Append a traced event stamped with the thread's current span path
    /// (see [`crate::span`]) and a timeline `start`. `proc_times` carries
    /// per-processor durations for imbalanced phases (empty = uniform);
    /// `payload` is the formula argument `w` the operation was called
    /// with (see [`Event::payload_words`]) and `hops` the point-to-point
    /// distance (`Send` only).
    #[allow(clippy::too_many_arguments)]
    fn record_at(
        &mut self,
        kind: EventKind,
        participants: usize,
        words: usize,
        payload: usize,
        hops: usize,
        flops: usize,
        time: f64,
        start: f64,
        label: &str,
        proc_times: Vec<f64>,
    ) {
        if !self.tracing {
            // Sink-only recording: let the sink veto via its cheap
            // pre-filter before we pay for the span-path join below.
            match &self.sink {
                None => return,
                Some(sink) if !sink.wants(kind) => return,
                Some(_) => {}
            }
        }
        let event = Event {
            kind,
            participants,
            words,
            flops,
            time,
            start,
            span: crate::span::current_path(),
            label: label.to_string(),
            proc_times,
            payload_words: payload,
            hops,
        };
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
        if self.tracing {
            self.trace.record(event);
        }
    }

    /// Advance every clock to the global maximum (barrier semantics) and
    /// return that maximum.
    fn synchronise(&mut self) -> f64 {
        let max = self.elapsed();
        self.clocks.iter_mut().for_each(|c| *c = max);
        max
    }

    // ------------------------------------------------------------------
    // Computation
    // ------------------------------------------------------------------

    /// Charge `flops` of local computation to processor `p` (advances only
    /// that processor's clock; no trace event — use [`Machine::compute_all`]
    /// for traced bulk phases).
    pub fn compute(&mut self, p: usize, flops: usize) {
        self.begin_op();
        self.stats[p].flops += flops as u64;
        self.clocks[p] += self.cost.flops(flops) * self.skew_factor(p);
    }

    /// Charge a bulk owner-computes phase: `flops_per_proc[p]` flops on
    /// each processor simultaneously. The phase's simulated time is the
    /// *maximum* per-processor time — this is where load imbalance from a
    /// bad sparse distribution shows up (Section 5.2).
    pub fn compute_all(&mut self, flops_per_proc: &[usize], label: &str) -> f64 {
        assert_eq!(
            flops_per_proc.len(),
            self.np,
            "one flop count per processor"
        );
        self.begin_op();
        // The phase begins at the earliest participant's clock; together
        // with `proc_times` that places each processor's slice on the
        // reconstructed timeline.
        let start = self.clocks.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut max_t: f64 = 0.0;
        let mut total = 0usize;
        let mut per_proc = Vec::with_capacity(self.np);
        for (p, &f) in flops_per_proc.iter().enumerate() {
            self.stats[p].flops += f as u64;
            let t = self.cost.flops(f) * self.skew_factor(p);
            self.clocks[p] += t;
            max_t = max_t.max(t);
            total += f;
            per_proc.push(t);
        }
        self.record_at(
            EventKind::Compute,
            self.np,
            0,
            0,
            0,
            total,
            max_t,
            start,
            label,
            per_proc,
        );
        max_t
    }

    /// Charge a uniform compute phase of `flops_each` on every processor.
    pub fn compute_uniform(&mut self, flops_each: usize, label: &str) -> f64 {
        let v = vec![flops_each; self.np];
        self.compute_all(&v, label)
    }

    /// Charge a *serial* compute phase: the work cannot be parallelised
    /// (e.g. the paper's Scenario 2 CSC loop, whose inter-iteration
    /// dependency means "the matrix-vector operation can not be performed
    /// in parallel"). Every processor waits for the single serial thread:
    /// all clocks advance by the full `flops` time.
    pub fn compute_serial(&mut self, flops: usize, label: &str) -> f64 {
        self.begin_op();
        let t = self.cost.flops(flops) * self.skew_factor(0);
        self.stats[0].flops += flops as u64;
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += t);
        self.record_at(
            EventKind::Compute,
            self.np,
            0,
            0,
            0,
            flops,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }

    // ------------------------------------------------------------------
    // Communication
    // ------------------------------------------------------------------

    /// Point-to-point message of `words` elements from `from` to `to`.
    /// Receiver waits for the sender (message-passing semantics).
    pub fn send(&mut self, from: usize, to: usize, words: usize, label: &str) -> f64 {
        if from == to {
            return 0.0;
        }
        self.begin_op();
        let hops = self.topology.hops(from, to, self.np);
        let t = self.cost.message(words, hops);
        self.stats[from].words_sent += words as u64;
        self.stats[from].messages += 1;
        let start = self.clocks[from];
        let arrive = start + t;
        self.clocks[to] = self.clocks[to].max(arrive);
        self.clocks[from] = arrive; // blocking send
        self.record_at(
            EventKind::Send,
            self.np,
            words,
            words,
            hops,
            0,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }

    /// Barrier: synchronise all clocks plus a small allreduce-style cost.
    pub fn barrier(&mut self, label: &str) -> f64 {
        self.begin_op();
        let t = self.topology.allreduce_time(self.np, 0, &self.cost);
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += t);
        self.record_at(
            EventKind::Barrier,
            self.np,
            0,
            0,
            0,
            0,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }

    /// One-to-all broadcast of `words` elements from `root`.
    pub fn broadcast(&mut self, root: usize, words: usize, label: &str) -> f64 {
        assert!(root < self.np);
        self.begin_op();
        let t = self.topology.broadcast_time(self.np, words, &self.cost);
        self.stats[root].words_sent += words as u64;
        self.stats[root].messages += Topology::log2_ceil(self.np) as u64;
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += t);
        self.record_at(
            EventKind::Broadcast,
            self.np,
            words,
            words,
            0,
            0,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }

    /// All-to-all broadcast (allgather): every processor contributes
    /// `words_each` and ends holding all of them. This is the replication
    /// of the distributed vector `p` in Scenario 1 of the paper.
    pub fn allgather(&mut self, words_each: usize, label: &str) -> f64 {
        self.begin_op();
        let t = self
            .topology
            .allgather_time(self.np, words_each, &self.cost);
        // Recursive doubling forwards (NP-1)*words_each per processor in
        // total (data doubles each round) — the same volume a hand-coded
        // send-to-every-peer allgather moves.
        for s in &mut self.stats {
            s.words_sent += (words_each * self.np.saturating_sub(1)) as u64;
            s.messages += Topology::log2_ceil(self.np) as u64;
        }
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += t);
        self.record_at(
            EventKind::AllGather,
            self.np,
            words_each * self.np,
            words_each,
            0,
            0,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }

    /// Reduce `words` elements to `root` (combining with flops included in
    /// the topology cost).
    pub fn reduce(&mut self, root: usize, words: usize, label: &str) -> f64 {
        assert!(root < self.np);
        self.begin_op();
        let t = self.topology.reduce_time(self.np, words, &self.cost);
        for (p, s) in self.stats.iter_mut().enumerate() {
            if p != root {
                s.words_sent += words as u64;
                s.messages += 1;
            }
        }
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += t);
        self.record_at(
            EventKind::Reduce,
            self.np,
            words * (self.np - 1),
            words,
            0,
            0,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }

    /// All-reduce of `words` elements: the merge phase of `DOT_PRODUCT`
    /// followed by replication of the scalar — on a hypercube this is the
    /// paper's `t_startup * log N_P` term.
    pub fn allreduce(&mut self, words: usize, label: &str) -> f64 {
        self.begin_op();
        let t = self.topology.allreduce_time(self.np, words, &self.cost);
        // Butterfly: every processor exchanges `words` in each of the
        // log NP rounds.
        let rounds = Topology::log2_ceil(self.np) as u64;
        for s in &mut self.stats {
            s.words_sent += words as u64 * rounds;
            s.messages += rounds;
        }
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += t);
        self.record_at(
            EventKind::AllReduce,
            self.np,
            words * self.np.saturating_sub(1),
            words,
            0,
            0,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }

    /// Reduce-scatter: every processor contributes `np * words_each`
    /// elements; each ends with its own `words_each` block of the sum.
    /// The dual of [`Machine::allgather`] — together they form the
    /// communication-optimal allreduce, and the row phase of the 2-D
    /// `(BLOCK, BLOCK)` matvec.
    pub fn reduce_scatter(&mut self, words_each: usize, label: &str) -> f64 {
        self.begin_op();
        let t = self
            .topology
            .reduce_scatter_time(self.np, words_each, &self.cost);
        let rounds = Topology::log2_ceil(self.np) as u64;
        for s in &mut self.stats {
            s.words_sent += (words_each * self.np.saturating_sub(1)) as u64;
            s.messages += rounds;
        }
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += t);
        self.record_at(
            EventKind::Reduce,
            self.np,
            words_each * self.np * self.np.saturating_sub(1),
            words_each,
            0,
            0,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }

    /// Run a collective over a *subset* of processors (a row or column of
    /// a processor grid): costs are computed as if on a machine of
    /// `group_size` processors, and only the group members' clocks
    /// advance (after synchronising among themselves).
    pub fn group_collective(
        &mut self,
        members: &[usize],
        kind: EventKind,
        words_each: usize,
        label: &str,
    ) -> f64 {
        let g = members.len();
        if g <= 1 {
            return 0.0;
        }
        self.begin_op();
        let t = match kind {
            EventKind::AllGather => self.topology.allgather_time(g, words_each, &self.cost),
            EventKind::AllReduce => self.topology.allreduce_time(g, words_each, &self.cost),
            EventKind::Reduce => self.topology.reduce_scatter_time(g, words_each, &self.cost),
            EventKind::Broadcast => self.topology.broadcast_time(g, words_each, &self.cost),
            other => panic!("group_collective: unsupported kind {other:?}"),
        };
        let rounds = Topology::log2_ceil(g) as u64;
        // Group-internal barrier: members advance to the group max.
        let max = members
            .iter()
            .map(|&p| self.clocks[p])
            .fold(0.0f64, f64::max);
        for &p in members {
            self.clocks[p] = max + t;
            self.stats[p].words_sent += (words_each * (g - 1)) as u64;
            self.stats[p].messages += rounds;
        }
        // Stamped with the *group* size: the cost formulas above were
        // evaluated for `g` processors, and the oracle re-evaluates them
        // from `participants`.
        self.record_at(
            kind,
            g,
            words_each * g * (g - 1),
            words_each,
            0,
            0,
            t,
            max,
            label,
            Vec::new(),
        );
        t
    }

    /// Personalised all-to-all exchange of `words_each` per pair (used by
    /// REDISTRIBUTE).
    pub fn alltoall(&mut self, words_each: usize, label: &str) -> f64 {
        self.begin_op();
        let t = self.topology.alltoall_time(self.np, words_each, &self.cost);
        for s in &mut self.stats {
            s.words_sent += (words_each * (self.np - 1)) as u64;
            s.messages += (self.np - 1) as u64;
        }
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += t);
        self.record_at(
            EventKind::AllToAll,
            self.np,
            words_each * self.np * self.np.saturating_sub(1),
            words_each,
            0,
            0,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }

    /// Irregular many-to-many exchange: `matrix[s][d]` words from `s` to
    /// `d`. Cost: every processor pays a start-up per distinct partner
    /// plus bandwidth for the maximum of its send and receive volumes;
    /// phase time is the max over processors. Used for atom/balanced
    /// redistributions where traffic is data-dependent.
    pub fn exchange(&mut self, matrix: &[Vec<usize>], label: &str) -> f64 {
        assert_eq!(matrix.len(), self.np);
        self.begin_op();
        let mut max_t: f64 = 0.0;
        let mut total_words = 0usize;
        for p in 0..self.np {
            assert_eq!(matrix[p].len(), self.np);
            let sends: usize = (0..self.np).filter(|&d| d != p && matrix[p][d] > 0).count();
            let sent: usize = (0..self.np).filter(|&d| d != p).map(|d| matrix[p][d]).sum();
            let recvd: usize = (0..self.np).filter(|&s| s != p).map(|s| matrix[s][p]).sum();
            let recvs: usize = (0..self.np).filter(|&s| s != p && matrix[s][p] > 0).count();
            let t = (sends.max(recvs)) as f64 * self.cost.t_startup
                + self.cost.t_word * sent.max(recvd) as f64;
            self.stats[p].words_sent += sent as u64;
            self.stats[p].messages += sends as u64;
            total_words += sent;
            max_t = max_t.max(t);
        }
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += max_t);
        self.record_at(
            EventKind::Redistribute,
            self.np,
            total_words,
            0,
            0,
            0,
            max_t,
            start,
            label,
            Vec::new(),
        );
        max_t
    }

    /// Gather `words_each` elements from every processor to `root`.
    pub fn gather(&mut self, root: usize, words_each: usize, label: &str) -> f64 {
        let v = vec![words_each; self.np];
        self.gather_varying(root, &v, label)
    }

    /// Gather `words_per_proc[p]` elements from each processor `p` to
    /// `root` (multigrid coarse levels own unequal — often zero — block
    /// sizes). Binomial tree: log P start-ups, bandwidth for the total
    /// volume funnelled into the root. The event's `payload_words` is
    /// that *total*, stamped at this emitting site, so the cost oracle
    /// re-prices the transfer from what actually moved rather than
    /// assuming a uniform per-processor count.
    pub fn gather_varying(&mut self, root: usize, words_per_proc: &[usize], label: &str) -> f64 {
        assert!(root < self.np);
        assert_eq!(
            words_per_proc.len(),
            self.np,
            "one word count per processor"
        );
        self.begin_op();
        let total: usize = words_per_proc
            .iter()
            .enumerate()
            .filter(|&(p, _)| p != root)
            .map(|(_, &w)| w)
            .sum();
        let t = if self.np <= 1 {
            0.0
        } else {
            let rounds = Topology::log2_ceil(self.np) as f64;
            rounds * self.cost.t_startup + self.cost.t_word * total as f64
        };
        for (p, s) in self.stats.iter_mut().enumerate() {
            if p != root && words_per_proc[p] > 0 {
                s.words_sent += words_per_proc[p] as u64;
                s.messages += 1;
            }
        }
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += t);
        self.record_at(
            EventKind::Gather,
            self.np,
            total,
            total,
            0,
            0,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }

    /// Scatter `words_each` elements from `root` to every processor.
    pub fn scatter(&mut self, root: usize, words_each: usize, label: &str) -> f64 {
        let v = vec![words_each; self.np];
        self.scatter_varying(root, &v, label)
    }

    /// Scatter `words_per_proc[p]` elements from `root` to each
    /// processor `p` — the inverse of [`Machine::gather_varying`], with
    /// the same total-volume `payload_words` convention.
    pub fn scatter_varying(&mut self, root: usize, words_per_proc: &[usize], label: &str) -> f64 {
        assert!(root < self.np);
        assert_eq!(
            words_per_proc.len(),
            self.np,
            "one word count per processor"
        );
        self.begin_op();
        let total: usize = words_per_proc
            .iter()
            .enumerate()
            .filter(|&(p, _)| p != root)
            .map(|(_, &w)| w)
            .sum();
        let t = if self.np <= 1 {
            0.0
        } else {
            let rounds = Topology::log2_ceil(self.np) as f64;
            rounds * self.cost.t_startup + self.cost.t_word * total as f64
        };
        let receivers = (0..self.np)
            .filter(|&p| p != root && words_per_proc[p] > 0)
            .count();
        self.stats[root].words_sent += total as u64;
        self.stats[root].messages += receivers as u64;
        let start = self.synchronise();
        self.clocks.iter_mut().for_each(|c| *c += t);
        self.record_at(
            EventKind::Scatter,
            self.np,
            total,
            total,
            0,
            0,
            t,
            start,
            label,
            Vec::new(),
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cost() -> CostModel {
        CostModel {
            t_startup: 1.0,
            t_word: 0.0,
            t_flop: 1.0,
        }
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = Machine::new(0, Topology::Hypercube, CostModel::default());
    }

    #[test]
    fn compute_advances_only_one_clock() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        m.compute(2, 10);
        assert_eq!(m.clocks()[2], 10.0);
        assert_eq!(m.clocks()[0], 0.0);
        assert_eq!(m.elapsed(), 10.0);
        assert_eq!(m.total_flops(), 10);
    }

    #[test]
    fn compute_all_time_is_max_over_processors() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        let t = m.compute_all(&[10, 20, 5, 1], "phase");
        assert_eq!(t, 20.0);
        assert_eq!(m.elapsed(), 20.0);
        assert_eq!(m.total_flops(), 36);
        assert_eq!(m.trace().count(EventKind::Compute), 1);
    }

    #[test]
    fn imbalance_reflects_skew() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        m.compute_all(&[100, 0, 0, 0], "skewed");
        // max = 100, mean = 25 -> imbalance 4.
        assert!((m.imbalance() - 4.0).abs() < 1e-12);

        let mut b = Machine::new(4, Topology::Hypercube, unit_cost());
        b.compute_all(&[25, 25, 25, 25], "balanced");
        assert!((b.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn allreduce_synchronises_clocks() {
        let mut m = Machine::new(8, Topology::Hypercube, unit_cost());
        m.compute(3, 42);
        m.allreduce(1, "dot-merge");
        // log2(8) = 3 rounds of t_startup (+ t_flop per word per round).
        let expect = 42.0 + 3.0 * (1.0 + 1.0);
        for &c in m.clocks() {
            assert!((c - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_merge_cost_is_logarithmic() {
        let c = CostModel {
            t_startup: 1.0,
            t_word: 0.0,
            t_flop: 0.0,
        };
        let mut m4 = Machine::new(4, Topology::Hypercube, c);
        let mut m16 = Machine::new(16, Topology::Hypercube, c);
        assert_eq!(m4.allreduce(1, "d"), 2.0);
        assert_eq!(m16.allreduce(1, "d"), 4.0);
    }

    #[test]
    fn send_blocks_receiver() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        m.compute(0, 5);
        m.send(0, 1, 10, "msg");
        // proc1 waits until proc0's send arrives: 5 + 1 hop * t_startup.
        assert!(m.clocks()[1] >= 6.0 - 1e-12);
        assert_eq!(m.total_messages(), 1);
    }

    #[test]
    fn send_to_self_is_free() {
        let mut m = Machine::new(2, Topology::Hypercube, unit_cost());
        assert_eq!(m.send(1, 1, 100, "self"), 0.0);
        assert_eq!(m.total_messages(), 0);
    }

    #[test]
    fn exchange_costs_max_over_processors() {
        let mut m = Machine::new(2, Topology::Hypercube, unit_cost());
        // proc0 sends 100 words to proc1; nothing back.
        let mat = vec![vec![0, 100], vec![0, 0]];
        let t = m.exchange(&mat, "redist");
        assert_eq!(t, 1.0); // one start-up, zero t_word
        assert_eq!(m.total_words_sent(), 100);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Machine::hypercube(4);
        m.compute_uniform(100, "work");
        m.allgather(10, "ag");
        assert!(m.elapsed() > 0.0);
        m.reset();
        assert_eq!(m.elapsed(), 0.0);
        assert_eq!(m.total_flops(), 0);
        assert!(m.trace().is_empty());
    }

    #[test]
    fn tracing_can_be_disabled() {
        let mut m = Machine::hypercube(4);
        m.set_tracing(false);
        m.allgather(10, "ag");
        assert!(m.trace().is_empty());
        assert!(m.elapsed() > 0.0); // clocks still advance
    }

    #[test]
    fn single_proc_collectives_free() {
        let mut m = Machine::hypercube(1);
        assert_eq!(m.allgather(100, "x"), 0.0);
        assert_eq!(m.allreduce(100, "x"), 0.0);
        assert_eq!(m.broadcast(0, 100, "x"), 0.0);
        assert_eq!(m.reduce_scatter(100, "x"), 0.0);
    }

    #[test]
    fn reduce_scatter_is_dual_of_allgather() {
        // Same start-up count, same bandwidth term (plus combine flops).
        let c = CostModel {
            t_startup: 1.0,
            t_word: 0.5,
            t_flop: 0.0,
        };
        let mut m1 = Machine::new(8, Topology::Hypercube, c);
        let t_ag = m1.allgather(100, "ag");
        let mut m2 = Machine::new(8, Topology::Hypercube, c);
        let t_rs = m2.reduce_scatter(100, "rs");
        assert!((t_ag - t_rs).abs() < 1e-12);
    }

    #[test]
    fn group_collective_only_advances_members() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        m.group_collective(&[0, 2], EventKind::AllGather, 10, "row-ag");
        assert!(m.clocks()[0] > 0.0);
        assert!(m.clocks()[2] > 0.0);
        assert_eq!(m.clocks()[1], 0.0);
        assert_eq!(m.clocks()[3], 0.0);
    }

    #[test]
    fn group_collective_costs_group_size_not_machine_size() {
        let c = CostModel {
            t_startup: 1.0,
            t_word: 0.0,
            t_flop: 0.0,
        };
        let mut m = Machine::new(16, Topology::Hypercube, c);
        // A 4-member group pays log2(4) = 2 start-ups, not log2(16) = 4.
        let t = m.group_collective(&[0, 1, 2, 3], EventKind::AllGather, 1, "g");
        assert_eq!(t, 2.0);
        let mut whole = Machine::new(16, Topology::Hypercube, c);
        assert_eq!(whole.allgather(1, "w"), 4.0);
    }

    #[test]
    fn group_collective_single_member_free() {
        let mut m = Machine::hypercube(4);
        assert_eq!(m.group_collective(&[2], EventKind::AllReduce, 5, "g"), 0.0);
    }

    #[test]
    fn gather_and_scatter_costs_and_events() {
        let mut m = Machine::new(8, Topology::Hypercube, unit_cost());
        let tg = m.gather(0, 10, "gather-x");
        // log2(8) = 3 start-ups (t_word = 0 in unit_cost).
        assert_eq!(tg, 3.0);
        assert_eq!(m.trace().count(EventKind::Gather), 1);
        // Non-root processors each sent their block.
        assert_eq!(m.total_messages(), 7);

        let ts = m.scatter(0, 10, "scatter-x");
        assert_eq!(ts, 3.0);
        assert_eq!(m.trace().count(EventKind::Scatter), 1);
        // Root sent 7 * 10 words.
        assert_eq!(m.stats(0).words_sent, 70);
    }

    #[test]
    fn varying_gather_scatter_price_the_actual_volume() {
        let c = CostModel {
            t_startup: 1.0,
            t_word: 0.5,
            t_flop: 0.0,
        };
        let mut m = Machine::new(4, Topology::Hypercube, c);
        // Coarse level: only procs 0 and 1 own elements; 0 is root.
        let tg = m.gather_varying(0, &[6, 4, 0, 0], "mg-coarse-gather");
        // log2(4)=2 start-ups + 4 words (root's own 6 move nothing).
        assert_eq!(tg, 2.0 + 0.5 * 4.0);
        let ev = m.trace().events().last().unwrap();
        assert_eq!(ev.kind, EventKind::Gather);
        assert_eq!(ev.words, 4);
        assert_eq!(ev.payload_words, 4, "payload is the total transferred");
        assert_eq!(m.total_messages(), 1, "only proc 1 sent");

        let ts = m.scatter_varying(0, &[6, 4, 0, 0], "mg-coarse-scatter");
        assert_eq!(ts, 2.0 + 0.5 * 4.0);
        let ev = m.trace().events().last().unwrap();
        assert_eq!(ev.payload_words, 4);
        assert_eq!(m.stats(0).words_sent, 4);
    }

    #[test]
    fn uniform_gather_payload_is_total_volume() {
        let mut m = Machine::new(8, Topology::Hypercube, unit_cost());
        m.gather(0, 10, "g");
        let ev = m.trace().events().last().unwrap();
        assert_eq!(ev.payload_words, 70, "(np-1) * words_each");
        assert_eq!(ev.words, 70);
    }

    #[test]
    fn gather_scatter_free_on_single_proc() {
        let mut m = Machine::hypercube(1);
        assert_eq!(m.gather(0, 100, "g"), 0.0);
        assert_eq!(m.scatter(0, 100, "s"), 0.0);
    }

    #[test]
    fn bit_flip_arms_and_corrupts_next_scalar() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        m.set_fault_plan(FaultPlan::new().with_bit_flip(1, 0, 52, 0));
        m.compute_uniform(10, "w"); // op 0: nothing due
        assert_eq!(m.corrupt_scalar(1.0), 1.0);
        m.allreduce(1, "dot-merge"); // op 1: arms the corruption
        let v = m.corrupt_scalar(1.0);
        assert_ne!(v, 1.0);
        assert!(v.is_finite());
        // The corruption is consumed: the next drain is the identity.
        assert_eq!(m.corrupt_scalar(1.0), 1.0);
        assert_eq!(m.trace().count(EventKind::Fault), 1);
        assert_eq!(m.faults_injected(), 1);
    }

    #[test]
    fn corrupt_slice_perturbs_exactly_one_element() {
        let mut m = Machine::new(2, Topology::Hypercube, unit_cost());
        m.set_fault_plan(FaultPlan::new().with_bit_flip(0, 0, 50, 5));
        m.compute_uniform(1, "w"); // fires
        let mut v = vec![1.0; 4];
        m.corrupt_slice(&mut v);
        let changed = v.iter().filter(|&&x| x != 1.0).count();
        assert_eq!(changed, 1);
        assert_ne!(v[5 % 4], 1.0);
    }

    #[test]
    fn straggler_skews_compute_times() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        m.set_fault_plan(FaultPlan::new().with_straggler(0, 1, 4.0, 10));
        m.compute_uniform(10, "w");
        assert_eq!(m.clocks()[0], 10.0);
        assert_eq!(m.clocks()[1], 40.0);
        assert!(m.imbalance() > 1.0);
    }

    #[test]
    fn straggler_window_expires() {
        let mut m = Machine::new(2, Topology::Hypercube, unit_cost());
        m.set_fault_plan(FaultPlan::new().with_straggler(0, 0, 10.0, 2));
        m.compute_uniform(1, "a"); // op 0: skewed (10x)
        m.compute_uniform(1, "b"); // op 1: skewed
        let before = m.clocks()[0];
        m.compute_uniform(1, "c"); // op 2: window expired
        assert_eq!(m.clocks()[0] - before, 1.0);
    }

    #[test]
    fn message_drop_charges_retransmit_time() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        m.set_fault_plan(FaultPlan::new().with_message_drop(0, 2));
        let mut clean = Machine::new(4, Topology::Hypercube, unit_cost());
        m.allgather(1, "ag");
        clean.allgather(1, "ag");
        let penalty = crate::fault::DROP_RETRANSMIT_STARTUPS * 1.0;
        assert!((m.elapsed() - (clean.elapsed() + penalty)).abs() < 1e-12);
    }

    #[test]
    fn crash_poisons_value_and_stalls_machine() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        m.set_fault_plan(FaultPlan::new().with_crash(0, 3));
        m.allreduce(1, "dot-merge");
        assert!(m.elapsed() >= crate::fault::CRASH_RESTART_STARTUPS);
        assert!(m.corrupt_scalar(2.0).is_nan());
        assert_eq!(m.trace().count(EventKind::Fault), 1);
    }

    #[test]
    fn reset_rewinds_the_fault_plan() {
        let mut m = Machine::new(2, Topology::Hypercube, unit_cost());
        m.set_fault_plan(FaultPlan::new().with_bit_flip(0, 0, 52, 0));
        m.compute_uniform(1, "w");
        assert_eq!(m.faults_injected(), 1);
        m.reset();
        assert_eq!(m.faults_injected(), 0);
        m.compute_uniform(1, "w");
        assert_eq!(m.faults_injected(), 1, "reset replays the plan");
    }

    #[test]
    fn clear_fault_plan_disarms_everything() {
        let mut m = Machine::new(2, Topology::Hypercube, unit_cost());
        m.set_fault_plan(FaultPlan::new().with_bit_flip(0, 0, 52, 0).with_crash(1, 1));
        m.compute_uniform(1, "w"); // arms the bit flip
        m.clear_fault_plan();
        assert_eq!(m.corrupt_scalar(1.0), 1.0);
        m.compute_uniform(1, "w"); // crash no longer scheduled
        assert_eq!(m.trace().count(EventKind::Fault), 1);
    }

    #[test]
    fn identical_seed_and_plan_give_byte_identical_traces() {
        let run = || {
            let mut m = Machine::new(8, Topology::Hypercube, unit_cost());
            m.set_fault_plan(FaultPlan::random(
                9,
                8,
                64,
                crate::fault::FaultRates::transient(0.2),
            ));
            for i in 0..32 {
                m.compute_uniform(100 + i, "work");
                m.allreduce(1, "merge");
            }
            let _ = m.corrupt_scalar(1.0);
            m.trace().to_jsonl()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.contains("\"kind\":\"fault\""), "plan should have fired");
    }

    #[test]
    fn events_are_stamped_with_span_and_start() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        {
            let _solve = crate::span::enter("solve");
            let _iter = crate::span::enter("iter=0");
            m.compute_all(&[5, 10, 5, 5], "local-matvec");
            m.allreduce(1, "dot-merge");
        }
        m.barrier("outside");
        let evs = m.trace().events();
        assert_eq!(evs[0].span, "solve/iter=0");
        assert_eq!(evs[0].start, 0.0);
        assert_eq!(evs[0].proc_times, vec![5.0, 10.0, 5.0, 5.0]);
        assert_eq!(evs[1].span, "solve/iter=0");
        // The allreduce begins at the synchronisation point: the slowest
        // processor's clock after the compute phase.
        assert!((evs[1].start - 10.0).abs() < 1e-12);
        assert_eq!(evs[2].span, "", "span popped before the barrier");
        assert!(evs[2].start >= evs[1].start + evs[1].time - 1e-12);
    }

    #[test]
    fn send_start_is_sender_clock() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        m.compute(2, 7);
        m.send(2, 0, 3, "msg");
        let ev = &m.trace().events()[0];
        assert_eq!(ev.kind, EventKind::Send);
        assert!((ev.start - 7.0).abs() < 1e-12);
    }

    #[test]
    fn progress_hook_fires_once_per_operation_and_survives_reset() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let beats = Arc::new(AtomicUsize::new(0));
        let b = beats.clone();
        let mut m = Machine::hypercube(4);
        m.set_progress_hook(ProgressHook::new(move |_| {
            b.fetch_add(1, Ordering::Relaxed);
        }));
        m.compute_uniform(1, "a");
        m.allreduce(1, "b");
        m.allgather(1, "c");
        assert_eq!(beats.load(Ordering::Relaxed), 3);
        m.reset();
        m.barrier("d");
        assert_eq!(beats.load(Ordering::Relaxed), 4, "hook survives reset");
        m.clear_progress_hook();
        m.barrier("e");
        assert_eq!(beats.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn event_sink_streams_events_even_with_tracing_off() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<(EventKind, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let tap = seen.clone();
        let mut m = Machine::hypercube(4);
        m.set_tracing(false);
        m.set_event_sink(EventSink::new(move |e| {
            tap.lock().unwrap().push((e.kind, e.span.clone()));
        }));
        let _g = crate::span::enter("solve");
        m.compute_uniform(8, "local");
        m.allreduce(1, "merge");
        drop(_g);
        assert_eq!(m.trace().len(), 0, "tracing stays off");
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2, "sink sees every recorded event");
        assert!(seen.iter().all(|(_, span)| span == "solve"));
        assert_eq!(seen[1].0, EventKind::AllReduce);
    }

    #[test]
    fn event_sink_clears_and_coexists_with_tracing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let n = Arc::new(AtomicUsize::new(0));
        let tap = n.clone();
        let mut m = Machine::hypercube(2);
        m.set_event_sink(EventSink::new(move |_| {
            tap.fetch_add(1, Ordering::Relaxed);
        }));
        m.compute_uniform(1, "a");
        assert_eq!(n.load(Ordering::Relaxed), 1);
        assert_eq!(m.trace().len(), 1, "trace still records alongside sink");
        m.clear_event_sink();
        m.compute_uniform(1, "b");
        assert_eq!(n.load(Ordering::Relaxed), 1, "cleared sink stays silent");
        assert_eq!(m.trace().len(), 2);
    }

    #[test]
    fn progress_hook_panic_unwinds_out_of_machine_ops() {
        let mut m = Machine::hypercube(2);
        m.set_progress_hook(ProgressHook::new(|op| {
            if op >= 2 {
                panic!("cancelled");
            }
        }));
        m.compute_uniform(1, "a");
        m.compute_uniform(1, "b");
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.compute_uniform(1, "c")));
        assert!(r.is_err(), "hook panic cancels the operation");
    }

    #[test]
    fn stall_fault_freezes_wall_clock_not_simulated_time() {
        let mut m = Machine::new(2, Topology::Hypercube, unit_cost());
        m.set_fault_plan(FaultPlan::new().with_stall(0, 0, 30));
        let wall = std::time::Instant::now();
        m.compute_uniform(1, "w");
        assert!(wall.elapsed() >= std::time::Duration::from_millis(25));
        assert_eq!(m.elapsed(), 1.0, "stall charges no simulated time");
        assert_eq!(m.trace().count(EventKind::Fault), 1);
    }

    #[test]
    fn compute_serial_synchronises_all_clocks() {
        let mut m = Machine::new(4, Topology::Hypercube, unit_cost());
        m.compute(1, 5); // proc 1 ahead
        m.compute_serial(10, "serial-phase");
        // Everyone waits for the serial phase: clocks all at 5 + 10.
        for &c in m.clocks() {
            assert_eq!(c, 15.0);
        }
        // Flops counted once, not NP times.
        assert_eq!(m.total_flops(), 15);
    }
}
