//! Per-trace flight recorder: a bounded black-box ring of machine events.
//!
//! The live bus (`hpf-obs`) samples: most jobs stream nothing, so when a
//! *sampled-out* job dies there is no machine-level evidence to autopsy.
//! The black box closes that gap. It is an [`EventSink`] that keeps the
//! **last N events per trace id** in a bounded ring — cheap enough to run
//! on every job regardless of sampling — so a post-mortem can always
//! recover the final machine operations (the fault event, the collective
//! that stalled, the straggling processor) of any job that ends badly.
//!
//! Ownership of a ring is handed over exactly once: [`BlackBox::take`]
//! removes and returns the tail (the dump path), [`BlackBox::discard`]
//! drops it (the job-completed-fine path). A global trace cap bounds
//! memory even if a caller forgets to do either.

use crate::machine::EventSink;
use crate::span::trace_of;
use crate::trace::{Event, EventKind};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Trace ids are already well-mixed by the shard scramble; hashing them
/// again with SipHash would cost more than the map lookup itself on the
/// per-event record path. A finalizer-only hasher keeps the lookup flat.
#[derive(Default)]
pub struct TraceIdHasher(u64);

impl Hasher for TraceIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for non-u64 keys (unused in practice).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 32;
        self.0 = h;
    }
}

type TraceMap = HashMap<u64, TraceRing, BuildHasherDefault<TraceIdHasher>>;

/// Events retained per trace by default. Enough to cover the tail of a
/// solve iteration plus the fault/recovery events around it.
pub const DEFAULT_RING_CAPACITY: usize = 64;

/// Distinct traces tracked before the oldest ring is evicted (safety net
/// against callers that never `take`/`discard`).
pub const DEFAULT_MAX_TRACES: usize = 1024;

/// One machine event as retained by the black box. A compressed clone of
/// [`Event`]: the per-processor time vector is summarised into an
/// imbalance factor and the slowest processor index at record time, so a
/// retained event costs two string clones and a handful of scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackBoxRecord {
    pub kind: EventKind,
    pub participants: usize,
    pub words: usize,
    pub flops: usize,
    /// Simulated duration of the event (max over participants).
    pub time: f64,
    /// Simulated clock at which the event began.
    pub start: f64,
    pub span: String,
    pub label: String,
    /// `max(proc_times) / mean(proc_times)` — 1.0 when the machine did
    /// not report per-processor times for this event.
    pub imbalance: f64,
    /// Index of the slowest participant when per-processor times were
    /// reported (straggler attribution evidence).
    pub slowest_proc: Option<usize>,
}

impl BlackBoxRecord {
    pub fn from_event(e: &Event) -> Self {
        let (imbalance, slowest_proc) = summarise_proc_times(&e.proc_times);
        BlackBoxRecord {
            kind: e.kind,
            participants: e.participants,
            words: e.words,
            flops: e.flops,
            time: e.time,
            start: e.start,
            span: e.span.clone(),
            label: e.label.clone(),
            imbalance,
            slowest_proc,
        }
    }

    /// Refill this record in place from `e`, reusing the span/label
    /// string buffers. The ring recycles its evicted slot through this
    /// on every overwrite, so a warm ring records with no allocation.
    fn overwrite_from(&mut self, e: &Event) {
        let (imbalance, slowest_proc) = summarise_proc_times(&e.proc_times);
        self.kind = e.kind;
        self.participants = e.participants;
        self.words = e.words;
        self.flops = e.flops;
        self.time = e.time;
        self.start = e.start;
        self.span.clear();
        self.span.push_str(&e.span);
        self.label.clear();
        self.label.push_str(&e.label);
        self.imbalance = imbalance;
        self.slowest_proc = slowest_proc;
    }
}

/// One pass over the per-processor times: `(max/mean, argmax)`.
fn summarise_proc_times(proc_times: &[f64]) -> (f64, Option<usize>) {
    if proc_times.is_empty() {
        return (1.0, None);
    }
    let (mut max, mut sum, mut slowest) = (f64::MIN, 0.0, 0);
    for (i, &t) in proc_times.iter().enumerate() {
        sum += t;
        if t > max {
            max = t;
            slowest = i;
        }
    }
    let mean = sum / proc_times.len() as f64;
    (if mean > 0.0 { max / mean } else { 1.0 }, Some(slowest))
}

/// The recovered tail of one trace: what [`BlackBox::take`] hands the
/// post-mortem writer.
#[derive(Debug, Clone, Default)]
pub struct BlackBoxTail {
    pub trace_id: u64,
    /// Last events in record order (oldest first).
    pub events: Vec<BlackBoxRecord>,
    /// Events that were recorded for this trace but overwritten by the
    /// bounded ring before the dump.
    pub overwritten: u64,
}

/// A true in-place ring: `buf` holds up to `capacity` slots, `len`
/// counts the live ones, and once full the oldest slot (`head`) is
/// refilled where it sits. `buf` may carry more slots than `len` — a
/// ring recycled through a shard's pool keeps its old records' string
/// buffers around precisely so the next trace can refill them without
/// allocating. No record is ever moved on the hot path.
#[derive(Debug, Default)]
struct TraceRing {
    buf: Vec<BlackBoxRecord>,
    head: usize,
    len: usize,
    overwritten: u64,
}

impl TraceRing {
    fn push(&mut self, event: &Event, capacity: usize) {
        if self.len < capacity {
            if let Some(slot) = self.buf.get_mut(self.len) {
                slot.overwrite_from(event); // recycled slot: refill in place
            } else {
                self.buf.push(BlackBoxRecord::from_event(event));
            }
            self.len += 1;
        } else {
            self.buf[self.head].overwrite_from(event);
            self.head = (self.head + 1) % self.len;
            self.overwritten += 1;
        }
    }

    /// Hand the ring back for reuse by a future trace: the slots (and
    /// their string buffers) stay allocated, only the cursors reset.
    fn recycle(&mut self) {
        self.head = 0;
        self.len = 0;
        self.overwritten = 0;
    }

    /// Retained events, oldest first.
    fn ordered(&self) -> Vec<BlackBoxRecord> {
        let live = &self.buf[..self.len];
        let (newer, older) = live.split_at(self.head);
        older.iter().chain(newer).cloned().collect()
    }
}

/// One lock's worth of state, padded to its own cache line so two
/// workers on adjacent shards never false-share the lock words.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard {
    rings: TraceMap,
    /// Retired rings waiting to be reused by the next trace hashed to
    /// this shard (bounded by [`POOL_PER_SHARD`]).
    pool: Vec<TraceRing>,
}

/// Retired rings kept per shard for reuse.
const POOL_PER_SHARD: usize = 8;

/// Bounded, sharded, per-trace event retention. Shared via `Arc`; the
/// machine side writes through [`BlackBox::sink`], the observability side
/// reads through [`BlackBox::take`]/[`BlackBox::snapshot`].
/// A cache-line-padded counter cell (see [`BlackBox::recorded`]).
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

#[derive(Debug)]
pub struct BlackBox {
    shards: Vec<Mutex<Shard>>,
    ring_capacity: usize,
    max_traces_per_shard: usize,
    /// Events recorded since creation (all traces), for overhead audits.
    /// Striped across padded cache lines and bumped on the recording
    /// thread's own stripe: a single shared counter would ping-pong its
    /// cache line between worker cores on every event, costing more
    /// than the ring write itself.
    recorded: Vec<PaddedCounter>,
    /// Rings evicted by the trace cap (should stay 0 in a well-behaved
    /// service that takes or discards every trace).
    evicted: AtomicU64,
}

const SHARDS: usize = 16;

impl Default for BlackBox {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

impl BlackBox {
    pub fn new(ring_capacity: usize) -> Self {
        Self::with_limits(ring_capacity, DEFAULT_MAX_TRACES)
    }

    pub fn with_limits(ring_capacity: usize, max_traces: usize) -> Self {
        BlackBox {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            ring_capacity: ring_capacity.max(1),
            max_traces_per_shard: (max_traces / SHARDS).max(1),
            recorded: (0..SHARDS).map(|_| PaddedCounter::default()).collect(),
            evicted: AtomicU64::new(0),
        }
    }

    /// This thread's counter stripe, assigned once per thread.
    fn stripe(&self) -> &AtomicU64 {
        use std::sync::atomic::AtomicUsize;
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed);
        }
        &self.recorded[STRIPE.with(|s| *s) % SHARDS].0
    }

    fn shard(&self, trace_id: u64) -> &Mutex<Shard> {
        // splitmix-style scramble so sequential trace ids spread out.
        let mut h = trace_id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 32;
        &self.shards[(h as usize) % SHARDS]
    }

    /// Move a retired ring into the shard's bounded reuse pool.
    fn retire(shard: &mut Shard, mut ring: TraceRing) {
        if shard.pool.len() < POOL_PER_SHARD {
            ring.recycle();
            shard.pool.push(ring);
        }
    }

    /// Record one event under `trace_id`, overwriting the oldest retained
    /// event once the ring is full.
    pub fn record(&self, trace_id: u64, event: &Event) {
        if trace_id == 0 {
            return; // not attributable to a job
        }
        self.stripe().fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(trace_id).lock().unwrap();
        let shard = &mut *shard;
        if shard.rings.len() >= self.max_traces_per_shard && !shard.rings.contains_key(&trace_id) {
            // Safety net: evict an arbitrary ring rather than grow
            // without bound when traces are never taken or discarded.
            if let Some(victim) = shard.rings.keys().next().cloned() {
                let ring = shard.rings.remove(&victim).expect("victim present");
                Self::retire(shard, ring);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ring = shard
            .rings
            .entry(trace_id)
            .or_insert_with(|| shard.pool.pop().unwrap_or_default());
        ring.push(event, self.ring_capacity);
    }

    /// An [`EventSink`] that feeds this black box, reading the trace id
    /// out of each event's span path. No pre-filter: retention is
    /// deliberately sampling-independent.
    ///
    /// Consecutive events from one worker share a span prefix
    /// (`trace=<016x>/...`), so the parse is memoised per thread on the
    /// raw prefix bytes — the hex decode runs once per job, not once
    /// per event.
    pub fn sink(self: &Arc<Self>) -> EventSink {
        const PREFIX: usize = "trace=0000000000000000".len();
        thread_local! {
            static LAST: std::cell::Cell<([u8; PREFIX], u64)> =
                const { std::cell::Cell::new(([0; PREFIX], 0)) };
        }
        let bb = Arc::clone(self);
        EventSink::new(move |event| {
            let s = event.span.as_bytes();
            let id = if s.len() > PREFIX && s.starts_with(b"trace=") && s[PREFIX] == b'/' {
                LAST.with(|c| {
                    let (prefix, cached) = c.get();
                    if prefix[..] == s[..PREFIX] {
                        cached
                    } else {
                        let id = trace_of(&event.span).unwrap_or(0);
                        let mut p = [0u8; PREFIX];
                        p.copy_from_slice(&s[..PREFIX]);
                        c.set((p, id));
                        id
                    }
                })
            } else {
                trace_of(&event.span).unwrap_or(0)
            };
            bb.record(id, event);
        })
    }

    /// Copy of the retained tail without removing it.
    pub fn snapshot(&self, trace_id: u64) -> Option<BlackBoxTail> {
        let shard = self.shard(trace_id).lock().unwrap();
        shard.rings.get(&trace_id).map(|ring| BlackBoxTail {
            trace_id,
            events: ring.ordered(),
            overwritten: ring.overwritten,
        })
    }

    /// Remove and return the retained tail (the dump path).
    pub fn take(&self, trace_id: u64) -> Option<BlackBoxTail> {
        let mut shard = self.shard(trace_id).lock().unwrap();
        let shard = &mut *shard;
        shard.rings.remove(&trace_id).map(|ring| {
            let tail = BlackBoxTail {
                trace_id,
                events: ring.ordered(),
                overwritten: ring.overwritten,
            };
            Self::retire(shard, ring);
            tail
        })
    }

    /// Drop the retained tail (the job-finished-fine path).
    pub fn discard(&self, trace_id: u64) {
        let mut shard = self.shard(trace_id).lock().unwrap();
        let shard = &mut *shard;
        if let Some(ring) = shard.rings.remove(&trace_id) {
            Self::retire(shard, ring);
        }
    }

    /// Distinct traces currently retained.
    pub fn traces(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().rings.len())
            .sum()
    }

    /// Total events recorded since creation.
    pub fn recorded(&self) -> u64 {
        self.recorded
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Rings evicted by the trace-count safety net.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().rings.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(span: &str, label: &str, kind: EventKind) -> Event {
        Event {
            kind,
            participants: 4,
            words: 8,
            flops: 16,
            time: 0.5,
            start: 1.0,
            span: span.to_string(),
            label: label.to_string(),
            proc_times: Vec::new(),
            payload_words: 8,
            hops: 0,
        }
    }

    #[test]
    fn ring_keeps_only_the_last_n_events_and_counts_overwrites() {
        let bb = BlackBox::new(3);
        for i in 0..5 {
            bb.record(
                7,
                &event("trace=7/solve", &format!("op{i}"), EventKind::Compute),
            );
        }
        let tail = bb.take(7).expect("ring present");
        assert_eq!(tail.overwritten, 2);
        let labels: Vec<&str> = tail.events.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["op2", "op3", "op4"]);
        assert!(bb.take(7).is_none(), "take removes the ring");
    }

    #[test]
    fn sink_routes_events_by_span_trace_id_and_ignores_untraced() {
        let bb = Arc::new(BlackBox::new(8));
        let sink = bb.sink();
        sink.emit(&event(
            "trace=00000000000000ab/solve",
            "a",
            EventKind::Compute,
        ));
        sink.emit(&event(
            "trace=00000000000000cd/solve",
            "b",
            EventKind::AllReduce,
        ));
        sink.emit(&event("solve/untraced", "c", EventKind::Compute));
        assert_eq!(bb.traces(), 2);
        assert_eq!(bb.snapshot(0xab).unwrap().events[0].label, "a");
        assert_eq!(bb.snapshot(0xcd).unwrap().events[0].label, "b");
        assert_eq!(bb.recorded(), 2);
    }

    #[test]
    fn proc_times_are_summarised_into_imbalance_and_slowest() {
        let mut e = event("trace=1/solve", "skewed", EventKind::Compute);
        e.proc_times = vec![1.0, 1.0, 4.0, 2.0];
        let rec = BlackBoxRecord::from_event(&e);
        assert!((rec.imbalance - 2.0).abs() < 1e-12);
        assert_eq!(rec.slowest_proc, Some(2));
        let rec = BlackBoxRecord::from_event(&event("t", "flat", EventKind::Compute));
        assert_eq!(rec.imbalance, 1.0);
        assert_eq!(rec.slowest_proc, None);
    }

    #[test]
    fn trace_cap_evicts_rather_than_grows() {
        let bb = BlackBox::with_limits(4, SHARDS); // 1 trace per shard
        for t in 1..=64u64 {
            bb.record(t, &event("s", "x", EventKind::Compute));
        }
        assert!(bb.traces() <= SHARDS);
        assert!(bb.evicted() > 0);
    }

    #[test]
    #[ignore = "manual microbenchmark: cargo test -p hpf-machine --release -- --ignored bench_record"]
    fn bench_record_path() {
        let bb = Arc::new(BlackBox::new(DEFAULT_RING_CAPACITY));
        let sink = bb.sink();
        let mut e = event(
            "trace=0000000000e30001/job=1/solve/iter=12/matvec/s1-bcast-p",
            "",
            EventKind::AllReduce,
        );
        e.proc_times = vec![1.0, 1.1, 0.9, 1.05];
        let n = 1_000_000u64;
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            sink.emit(&e);
        }
        let per = t0.elapsed().as_nanos() as f64 / n as f64;
        println!("blackbox record path: {per:.1} ns/event");
    }

    #[test]
    #[ignore = "manual microbenchmark components"]
    fn bench_record_components() {
        let span = "trace=0000000000e30001/job=1/solve/iter=12/matvec/s1-bcast-p";
        let n = 1_000_000u64;
        let t0 = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..n {
            acc = acc.wrapping_add(trace_of(std::hint::black_box(span)).unwrap_or(0));
        }
        println!(
            "trace_of: {:.1} ns ({acc})",
            t0.elapsed().as_nanos() as f64 / n as f64
        );

        let bb = Arc::new(BlackBox::new(DEFAULT_RING_CAPACITY));
        let mut e = event(span, "", EventKind::AllReduce);
        e.proc_times = vec![1.0, 1.1, 0.9, 1.05];
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            bb.record(0xe30001, std::hint::black_box(&e));
        }
        println!(
            "record (parsed id): {:.1} ns",
            t0.elapsed().as_nanos() as f64 / n as f64
        );
    }

    #[test]
    fn discard_and_clear_release_rings() {
        let bb = BlackBox::new(4);
        bb.record(1, &event("s", "x", EventKind::Compute));
        bb.record(2, &event("s", "y", EventKind::Compute));
        bb.discard(1);
        assert!(bb.snapshot(1).is_none());
        assert_eq!(bb.traces(), 1);
        bb.clear();
        assert_eq!(bb.traces(), 0);
    }
}
