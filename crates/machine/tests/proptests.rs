//! Property tests on the simulated machine: cost-model monotonicity,
//! collective algebra, and conservation in exchanges.

use hpf_machine::{CostModel, Machine, Topology};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Hypercube),
        Just(Topology::Mesh2D),
        Just(Topology::Ring),
        Just(Topology::FullyConnected),
        Just(Topology::Bus),
    ]
}

fn arb_cost() -> impl Strategy<Value = CostModel> {
    (0.0f64..1e-3, 0.0f64..1e-5, 0.0f64..1e-6).prop_map(|(s, w, f)| CostModel {
        t_startup: s,
        t_word: w,
        t_flop: f,
    })
}

proptest! {
    /// Collective times are non-negative and monotone in message size.
    #[test]
    fn collective_times_monotone_in_words(
        topo in arb_topology(),
        cost in arb_cost(),
        p in 1usize..128,
        w1 in 0usize..10_000,
        extra in 0usize..10_000,
    ) {
        let w2 = w1 + extra;
        let pairs = [
            (topo.broadcast_time(p, w1, &cost), topo.broadcast_time(p, w2, &cost)),
            (topo.allgather_time(p, w1, &cost), topo.allgather_time(p, w2, &cost)),
            (topo.reduce_time(p, w1, &cost), topo.reduce_time(p, w2, &cost)),
            (topo.allreduce_time(p, w1, &cost), topo.allreduce_time(p, w2, &cost)),
            (topo.alltoall_time(p, w1, &cost), topo.alltoall_time(p, w2, &cost)),
            (topo.reduce_scatter_time(p, w1, &cost), topo.reduce_scatter_time(p, w2, &cost)),
        ];
        for (a, b) in pairs {
            prop_assert!(a >= 0.0 && b >= 0.0);
            prop_assert!(b >= a - 1e-15, "larger messages can't be cheaper: {a} vs {b}");
        }
    }

    /// Hop counts are bounded by the diameter and zero exactly on self.
    #[test]
    fn hops_bounded_by_diameter(
        topo in arb_topology(),
        p in 1usize..64,
        a in 0usize..64,
        b in 0usize..64,
    ) {
        let (a, b) = (a % p, b % p);
        let h = topo.hops(a, b, p);
        prop_assert_eq!(h == 0, a == b);
        prop_assert!(h <= topo.diameter(p).max(1), "hops {h} beyond diameter");
    }

    /// The machine's elapsed clock never decreases through any sequence
    /// of operations, and total flops equal the sum charged.
    #[test]
    fn machine_clock_monotone(
        ops in proptest::collection::vec((0usize..4, 0usize..500), 1..20),
        np in 1usize..9,
    ) {
        let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let mut last = 0.0f64;
        let mut flops_charged = 0u64;
        for (kind, amount) in ops {
            match kind {
                0 => {
                    m.compute(amount % np, amount);
                    flops_charged += amount as u64;
                }
                1 => {
                    m.allgather(amount, "ag");
                }
                2 => {
                    m.allreduce(amount % 64, "ar");
                }
                _ => {
                    m.broadcast(amount % np, amount, "bc");
                }
            }
            let now = m.elapsed();
            prop_assert!(now >= last - 1e-15, "clock went backwards");
            last = now;
        }
        prop_assert_eq!(m.total_flops(), flops_charged);
    }

    /// Exchange cost is zero iff the traffic matrix is all-zero
    /// (off-diagonal), and words-sent equals the matrix total.
    #[test]
    fn exchange_conserves_words(
        np in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mut matrix = vec![vec![0usize; np]; np];
        let mut total = 0usize;
        for s in 0..np {
            for d in 0..np {
                if s != d {
                    let w = ((seed >> ((s * np + d) % 48)) & 0xF) as usize;
                    matrix[s][d] = w;
                    total += w;
                }
            }
        }
        let mut m = Machine::new(np, Topology::Hypercube, CostModel::mpp_1995());
        let t = m.exchange(&matrix, "x");
        prop_assert_eq!(m.total_words_sent() as usize, total);
        prop_assert_eq!(t == 0.0, total == 0);
    }

    /// Hypercube collectives never cost more than ring collectives for
    /// the same operation (the paper's choice of network).
    #[test]
    fn hypercube_dominates_ring(
        cost in arb_cost(),
        p in 2usize..128,
        w in 0usize..4096,
    ) {
        let hc = Topology::Hypercube;
        let ring = Topology::Ring;
        prop_assert!(hc.broadcast_time(p, w, &cost) <= ring.broadcast_time(p, w, &cost) + 1e-15);
        prop_assert!(hc.allreduce_time(p, w, &cost) <= ring.allreduce_time(p, w, &cost) + 1e-15);
        prop_assert!(hc.allgather_time(p, w, &cost) <= ring.allgather_time(p, w, &cost) + 1e-15);
    }

    /// Reset really clears the machine.
    #[test]
    fn reset_is_complete(np in 1usize..10, w in 1usize..100) {
        let mut m = Machine::new(np, Topology::Mesh2D, CostModel::lan_cluster());
        m.allgather(w, "ag");
        m.compute_uniform(w, "c");
        m.reset();
        prop_assert_eq!(m.elapsed(), 0.0);
        prop_assert_eq!(m.total_flops(), 0);
        prop_assert_eq!(m.total_words_sent(), 0);
        prop_assert!(m.trace().is_empty());
    }
}
