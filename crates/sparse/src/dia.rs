//! Diagonal (DIA) storage — for banded structure.
//!
//! The second structure-exploiting scheme of the paper's Section 3
//! remark: matrices from regular grids and structural analysis
//! concentrate their nonzeros on a few diagonals, which DIA stores as
//! dense stripes indexed by offset. Perfectly regular access (ideal for
//! the paper's "uniform" Section 5.2.1 case), but useless for scattered
//! sparsity — [`DiaMatrix::fill_ratio`] quantifies when.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::SparseError;
use serde::{Deserialize, Serialize};

/// Diagonal-format sparse matrix: for each stored offset `d`
/// (column − row), a stripe of length `n_rows` (out-of-range slots 0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiaMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Stored diagonal offsets, ascending (offset = j - i).
    offsets: Vec<isize>,
    /// `offsets.len() * n_rows` stripe data, row-indexed within stripes:
    /// `data[s * n_rows + i] = A[i][i + offsets[s]]`.
    data: Vec<f64>,
    nnz: usize,
}

impl DiaMatrix {
    /// Build from CSR, storing every diagonal that has at least one
    /// nonzero.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let n_rows = a.n_rows();
        let n_cols = a.n_cols();
        let mut offsets: Vec<isize> = Vec::new();
        for i in 0..n_rows {
            for (j, _) in a.row(i) {
                let d = j as isize - i as isize;
                if let Err(pos) = offsets.binary_search(&d) {
                    offsets.insert(pos, d);
                }
            }
        }
        let mut data = vec![0.0; offsets.len() * n_rows];
        for i in 0..n_rows {
            for (j, v) in a.row(i) {
                let d = j as isize - i as isize;
                let s = offsets.binary_search(&d).expect("collected above");
                data[s * n_rows + i] = v;
            }
        }
        DiaMatrix {
            n_rows,
            n_cols,
            offsets,
            data,
            nnz: a.nnz(),
        }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of stored diagonals.
    pub fn n_diagonals(&self) -> usize {
        self.offsets.len()
    }

    pub fn offsets(&self) -> &[isize] {
        &self.offsets
    }

    /// Stored slots (diagonals × rows).
    pub fn stored_slots(&self) -> usize {
        self.offsets.len() * self.n_rows
    }

    /// nnz / stored slots: 1.0 means every stripe slot is a real
    /// nonzero (pure banded structure); low values mean DIA is wasting
    /// memory on scattered sparsity.
    pub fn fill_ratio(&self) -> f64 {
        if self.stored_slots() == 0 {
            return 1.0;
        }
        self.nnz as f64 / self.stored_slots() as f64
    }

    /// `q = A p` stripe by stripe (unit-stride inner loops).
    pub fn matvec(&self, p: &[f64]) -> Result<Vec<f64>, SparseError> {
        if p.len() != self.n_cols {
            return Err(SparseError::DimensionMismatch(format!(
                "matvec: x has {} entries, matrix has {} columns",
                p.len(),
                self.n_cols
            )));
        }
        let mut q = vec![0.0; self.n_rows];
        for (s, &d) in self.offsets.iter().enumerate() {
            let stripe = &self.data[s * self.n_rows..(s + 1) * self.n_rows];
            // Valid rows: 0 <= i < n_rows and 0 <= i + d < n_cols,
            // i.e. max(0, -d) <= i < min(n_rows, n_cols - d).
            let i_lo = if d < 0 { (-d) as usize } else { 0 };
            let i_hi = self.n_rows.min((self.n_cols as isize - d).max(0) as usize);
            for i in i_lo..i_hi {
                let j = (i as isize + d) as usize;
                q[i] += stripe[i] * p[j];
            }
        }
        Ok(q)
    }

    /// Convert back to CSR (zero stripe slots dropped).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.n_rows, self.n_cols);
        for (s, &d) in self.offsets.iter().enumerate() {
            for i in 0..self.n_rows {
                let j = i as isize + d;
                if j < 0 || j as usize >= self.n_cols {
                    continue;
                }
                let v = self.data[s * self.n_rows + i];
                if v != 0.0 {
                    coo.push(i, j as usize, v).expect("bounds checked above");
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Convert to dense.
    pub fn to_dense(&self) -> DenseMatrix {
        self.to_csr().to_dense()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn tridiagonal_is_three_stripes() {
        let a = gen::tridiagonal(10, 2.0, -1.0);
        let dia = DiaMatrix::from_csr(&a);
        assert_eq!(dia.n_diagonals(), 3);
        assert_eq!(dia.offsets(), &[-1, 0, 1]);
        // Near-perfect fill (ends of off-diagonals are the only waste).
        assert!(dia.fill_ratio() > 0.9);
        assert_eq!(dia.to_dense(), a.to_dense());
    }

    #[test]
    fn matvec_matches_csr() {
        let a = gen::poisson_2d(7, 5);
        let dia = DiaMatrix::from_csr(&a);
        assert_eq!(dia.n_diagonals(), 5); // -ny, -1, 0, 1, ny
        let x: Vec<f64> = (0..35).map(|i| (i % 9) as f64 / 3.0).collect();
        let want = a.matvec(&x).unwrap();
        let got = dia.matvec(&x).unwrap();
        for (u, v) in want.iter().zip(got.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn scattered_sparsity_fills_poorly() {
        let banded = DiaMatrix::from_csr(&gen::banded_spd(100, 3, 1));
        let random = DiaMatrix::from_csr(&gen::random_spd(100, 4, 1));
        assert!(banded.fill_ratio() > 0.8, "{}", banded.fill_ratio());
        assert!(random.fill_ratio() < 0.2, "{}", random.fill_ratio());
        assert!(random.n_diagonals() > 50);
    }

    #[test]
    fn rectangular_matrices_supported() {
        let coo =
            CooMatrix::from_triplets(3, 5, vec![(0, 0, 1.0), (1, 3, 2.0), (2, 4, 3.0)]).unwrap();
        let a = CsrMatrix::from_coo(&coo);
        let dia = DiaMatrix::from_csr(&a);
        assert_eq!(dia.to_dense(), a.to_dense());
        let q = dia.matvec(&[1.0; 5]).unwrap();
        assert_eq!(q, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_dimension_checked() {
        let dia = DiaMatrix::from_csr(&gen::tridiagonal(4, 1.0, 0.5));
        assert!(dia.matvec(&[1.0; 3]).is_err());
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(3, 3));
        let dia = DiaMatrix::from_csr(&a);
        assert_eq!(dia.n_diagonals(), 0);
        assert_eq!(dia.fill_ratio(), 1.0);
        assert_eq!(dia.matvec(&[1.0; 3]).unwrap(), vec![0.0; 3]);
    }
}
