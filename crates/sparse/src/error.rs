//! Error type for sparse-matrix construction and validation.

use std::fmt;

/// Errors raised while building, validating, or parsing matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A row/column index is outside the matrix extents.
    IndexOutOfBounds {
        what: &'static str,
        index: usize,
        bound: usize,
    },
    /// A compressed pointer array is not monotonically non-decreasing or
    /// has the wrong length / endpoints.
    MalformedPointer(String),
    /// Duplicate (row, col) coordinate in COO input where duplicates are
    /// not permitted.
    DuplicateEntry { row: usize, col: usize },
    /// Operand shapes do not match.
    DimensionMismatch(String),
    /// The operation requires a square matrix.
    NotSquare { rows: usize, cols: usize },
    /// The operation requires a symmetric matrix.
    NotSymmetric,
    /// The operation requires a (numerically) positive-definite matrix.
    NotPositiveDefinite,
    /// Parse error in matrix text format.
    Parse(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (< {bound} required)")
            }
            SparseError::MalformedPointer(msg) => write!(f, "malformed pointer array: {msg}"),
            SparseError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row}, {col})")
            }
            SparseError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            SparseError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            SparseError::NotSymmetric => write!(f, "matrix must be symmetric"),
            SparseError::NotPositiveDefinite => write!(f, "matrix must be positive definite"),
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            what: "row",
            index: 9,
            bound: 5,
        };
        assert!(e.to_string().contains("row index 9"));
        assert!(SparseError::NotSquare { rows: 2, cols: 3 }
            .to_string()
            .contains("2x3"));
        assert!(SparseError::DuplicateEntry { row: 1, col: 2 }
            .to_string()
            .contains("(1, 2)"));
    }
}
