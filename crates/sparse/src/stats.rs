//! Sparsity-structure statistics.
//!
//! The proposed extensions of the paper's Section 5.2 are justified by
//! structural properties: "the uniform or regular sparse block
//! distribution can be used in cases where each sparse matrix row (or
//! column) is known to have approximately the same number of elements"
//! versus irregular structures needing a load-balancing partitioner.
//! These metrics quantify that choice.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Summary statistics of a nonzero-count distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NnzStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// `max / mean` — 1.0 means perfectly uniform. This is the load
    /// imbalance a naive one-row-per-processor distribution would see.
    pub imbalance: f64,
}

impl NnzStats {
    pub fn from_counts(counts: &[usize]) -> Self {
        assert!(!counts.is_empty());
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let var = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / counts.len() as f64;
        NnzStats {
            min,
            max,
            mean,
            std_dev: var.sqrt(),
            imbalance: if mean == 0.0 { 1.0 } else { max as f64 / mean },
        }
    }

    /// Is the structure "approximately uniform" in the paper's Section
    /// 5.2.1 sense? (heuristic: max within `factor` of mean)
    pub fn is_uniform(&self, factor: f64) -> bool {
        self.imbalance <= factor
    }
}

/// Per-row nonzero counts of a CSR matrix.
pub fn row_nnz_counts(a: &CsrMatrix) -> Vec<usize> {
    (0..a.n_rows()).map(|i| a.row_nnz(i)).collect()
}

/// Per-column nonzero counts of a CSC matrix.
pub fn col_nnz_counts(a: &CscMatrix) -> Vec<usize> {
    (0..a.n_cols()).map(|j| a.col_nnz(j)).collect()
}

/// Row-count statistics of a CSR matrix.
pub fn row_stats(a: &CsrMatrix) -> NnzStats {
    NnzStats::from_counts(&row_nnz_counts(a))
}

/// Column-count statistics of a CSC matrix.
pub fn col_stats(a: &CscMatrix) -> NnzStats {
    NnzStats::from_counts(&col_nnz_counts(a))
}

/// Matrix bandwidth: max |i - j| over stored entries.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut bw = 0usize;
    for i in 0..a.n_rows() {
        for (j, _) in a.row(i) {
            bw = bw.max(i.abs_diff(j));
        }
    }
    bw
}

/// Density: nnz / (rows * cols).
pub fn density(a: &CsrMatrix) -> f64 {
    if a.n_rows() == 0 || a.n_cols() == 0 {
        return 0.0;
    }
    a.nnz() as f64 / (a.n_rows() as f64 * a.n_cols() as f64)
}

/// Histogram of row nnz with `buckets` equal-width bins over
/// `[0, max_nnz]`. Returns (bin upper bounds, counts).
pub fn row_nnz_histogram(a: &CsrMatrix, buckets: usize) -> (Vec<usize>, Vec<usize>) {
    assert!(buckets > 0);
    let counts = row_nnz_counts(a);
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let width = max.div_ceil(buckets);
    let mut hist = vec![0usize; buckets];
    for &c in &counts {
        let b = (c / width).min(buckets - 1);
        hist[b] += 1;
    }
    let bounds = (1..=buckets).map(|b| b * width).collect();
    (bounds, hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn uniform_matrix_has_low_imbalance() {
        let a = gen::poisson_2d(10, 10);
        let s = row_stats(&a);
        assert!(s.is_uniform(1.5), "poisson should be near-uniform: {s:?}");
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 3);
    }

    #[test]
    fn power_law_matrix_has_high_imbalance() {
        let a = gen::power_law_spd(300, 80, 1.0, 5);
        let s = row_stats(&a);
        assert!(!s.is_uniform(2.0), "power-law should be irregular: {s:?}");
        assert!(s.imbalance > 2.0);
    }

    #[test]
    fn stats_of_constant_counts() {
        let s = NnzStats::from_counts(&[4, 4, 4, 4]);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.imbalance, 1.0);
    }

    #[test]
    fn bandwidth_of_tridiagonal() {
        let a = gen::tridiagonal(10, 2.0, -1.0);
        assert_eq!(bandwidth(&a), 1);
        let p = gen::poisson_2d(4, 4);
        assert_eq!(bandwidth(&p), 4); // ny = 4 stride
    }

    #[test]
    fn density_of_identity() {
        let a = gen::tridiagonal(1, 1.0, 0.0);
        assert_eq!(density(&a), 1.0);
        let p = gen::poisson_2d(10, 10);
        assert!(density(&p) < 0.05);
    }

    #[test]
    fn histogram_buckets_cover_all_rows() {
        let a = gen::power_law_spd(100, 30, 0.8, 1);
        let (_bounds, hist) = row_nnz_histogram(&a, 8);
        assert_eq!(hist.iter().sum::<usize>(), 100);
    }

    #[test]
    fn col_stats_match_row_stats_for_symmetric() {
        let a = gen::random_spd(40, 3, 2);
        let csc = crate::csc::CscMatrix::from_csr(&a);
        let rs = row_stats(&a);
        let cs = col_stats(&csc);
        assert_eq!(rs.min, cs.min);
        assert_eq!(rs.max, cs.max);
        assert_eq!(rs.mean, cs.mean);
    }
}
