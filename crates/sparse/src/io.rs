//! Minimal Matrix Market coordinate reader/writer.
//!
//! Enough of the `%%MatrixMarket matrix coordinate <field> <symmetry>`
//! dialect to exchange the test matrices; 1-based indices as per the
//! format (and as in the paper's Fortran arrays). Accepted fields are
//! `real`, `double`, `integer` (values parsed as floats), and `pattern`
//! (no value column; every stored entry becomes `1.0`). Comment and
//! blank lines are allowed anywhere, including between data lines.

use crate::coo::CooMatrix;
use crate::error::SparseError;

/// Serialize a COO matrix to Matrix Market coordinate format.
pub fn write_matrix_market(m: &CooMatrix) -> String {
    let mut out = String::new();
    out.push_str("%%MatrixMarket matrix coordinate real general\n");
    out.push_str(&format!("{} {} {}\n", m.n_rows(), m.n_cols(), m.nnz()));
    for &(r, c, v) in m.entries() {
        out.push_str(&format!("{} {} {:e}\n", r + 1, c + 1, v));
    }
    out
}

/// Parse Matrix Market coordinate format (general or symmetric;
/// real/double/integer/pattern fields).
pub fn read_matrix_market(text: &str) -> Result<CooMatrix, SparseError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty input".into()))?;
    if !header.starts_with("%%MatrixMarket") {
        return Err(SparseError::Parse("missing %%MatrixMarket header".into()));
    }
    let lower = header.to_ascii_lowercase();
    if !lower.contains("coordinate") {
        return Err(SparseError::Parse(
            "only coordinate format supported".into(),
        ));
    }
    let pattern = lower.contains("pattern");
    if !(pattern || lower.contains("real") || lower.contains("double") || lower.contains("integer"))
    {
        return Err(SparseError::Parse(format!(
            "unsupported field in header (expected real/double/integer/pattern): {header}"
        )));
    }
    let symmetric = lower.contains("symmetric");
    if lower.contains("hermitian") || lower.contains("skew") {
        return Err(SparseError::Parse(
            "only general or symmetric symmetry supported".into(),
        ));
    }

    // Skip comments.
    let mut size_line = None;
    for line in lines.by_ref() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let mut parts = size_line.split_whitespace();
    let n_rows: usize = parse_field(parts.next(), "rows")?;
    let n_cols: usize = parse_field(parts.next(), "cols")?;
    let nnz: usize = parse_field(parts.next(), "nnz")?;

    let mut triplets = Vec::with_capacity(nnz);
    let mut seen = 0usize;
    for line in lines {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let r: usize = parse_field(parts.next(), "row index")?;
        let c: usize = parse_field(parts.next(), "col index")?;
        let v: f64 = if pattern {
            1.0
        } else {
            parts
                .next()
                .ok_or_else(|| SparseError::Parse("missing value".into()))?
                .parse()
                .map_err(|e| SparseError::Parse(format!("bad value: {e}")))?
        };
        if r == 0 || c == 0 {
            return Err(SparseError::Parse(
                "Matrix Market indices are 1-based".into(),
            ));
        }
        if r > n_rows {
            return Err(SparseError::IndexOutOfBounds {
                what: "row",
                index: r,
                bound: n_rows + 1,
            });
        }
        if c > n_cols {
            return Err(SparseError::IndexOutOfBounds {
                what: "col",
                index: c,
                bound: n_cols + 1,
            });
        }
        triplets.push((r - 1, c - 1, v));
        if symmetric && r != c {
            triplets.push((c - 1, r - 1, v));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!(
            "size line promised {nnz} entries, found {seen}"
        )));
    }
    CooMatrix::from_triplets_summing(n_rows, n_cols, triplets)
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T, SparseError>
where
    T::Err: std::fmt::Display,
{
    field
        .ok_or_else(|| SparseError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|e| SparseError::Parse(format!("bad {what}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = CooMatrix::from_triplets(3, 3, vec![(0, 0, 1.5), (2, 1, -2.0)]).unwrap();
        let text = write_matrix_market(&m);
        let back = read_matrix_market(&text).unwrap();
        assert_eq!(back.to_dense(), m.to_dense());
    }

    #[test]
    fn symmetric_expansion() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 2\n\
                    1 1 4.0\n\
                    3 1 -1.0\n";
        let m = read_matrix_market(text).unwrap();
        assert_eq!(m.to_dense()[(0, 2)], -1.0);
        assert_eq!(m.to_dense()[(2, 0)], -1.0);
        assert_eq!(m.to_dense()[(0, 0)], 4.0);
    }

    #[test]
    fn comments_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    \n\
                    2 2 1\n\
                    % another\n\
                    2 2 7.0\n";
        let m = read_matrix_market(text).unwrap();
        assert_eq!(m.to_dense()[(1, 1)], 7.0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("nonsense\n1 1 0\n").is_err());
        assert!(read_matrix_market("").is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n").is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_matrix_market(text).unwrap_err();
        assert!(matches!(err, SparseError::Parse(_)));
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(text).is_err());
    }

    #[test]
    fn integer_field_parses_as_floats() {
        let text = "%%MatrixMarket matrix coordinate integer general\n\
                    2 2 2\n\
                    1 1 3\n\
                    2 2 -7\n";
        let m = read_matrix_market(text).unwrap();
        assert_eq!(m.to_dense()[(0, 0)], 3.0);
        assert_eq!(m.to_dense()[(1, 1)], -7.0);
    }

    #[test]
    fn pattern_field_yields_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    1 1\n\
                    3 1\n";
        let m = read_matrix_market(text).unwrap();
        assert_eq!(m.to_dense()[(0, 0)], 1.0);
        assert_eq!(m.to_dense()[(0, 2)], 1.0);
        assert_eq!(m.to_dense()[(2, 0)], 1.0);
    }

    #[test]
    fn rejects_unsupported_field_and_symmetry() {
        let complex = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n";
        assert!(read_matrix_market(complex).is_err());
        let herm = "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1.0\n";
        assert!(read_matrix_market(herm).is_err());
    }

    #[test]
    fn out_of_range_index_is_a_typed_error_not_a_panic() {
        let row = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(
            read_matrix_market(row).unwrap_err(),
            SparseError::IndexOutOfBounds {
                what: "row",
                index: 3,
                ..
            }
        ));
        let col = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 9 1.0\n";
        assert!(matches!(
            read_matrix_market(col).unwrap_err(),
            SparseError::IndexOutOfBounds {
                what: "col",
                index: 9,
                ..
            }
        ));
    }

    #[test]
    fn interior_blank_and_comment_lines_between_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    3 3 3\n\
                    1 1 1.0\n\
                    \n\
                    %% mid-stream comment\n\
                    2 2 2.0\n\
                    \t \n\
                    3 3 3.0\n";
        let m = read_matrix_market(text).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.to_dense()[(2, 2)], 3.0);
    }
}
