//! Dense (full-storage) matrix.
//!
//! The paper's Section 3 motivation: "for some very large application
//! problems it would be simply impractical to store the matrix as a dense
//! array". The dense format is kept as the reference for correctness
//! checks and for the dense-layout matvec scenarios of Section 4.

use crate::error::SparseError;
use serde::{Deserialize, Serialize};

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        DenseMatrix {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    pub fn from_row_major(
        n_rows: usize,
        n_cols: usize,
        data: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if data.len() != n_rows * n_cols {
            return Err(SparseError::DimensionMismatch(format!(
                "need {} elements for {}x{}, got {}",
                n_rows * n_cols,
                n_rows,
                n_cols,
                data.len()
            )));
        }
        Ok(DenseMatrix {
            n_rows,
            n_cols,
            data,
        })
    }

    /// Build from nested row slices (rows of equal length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, SparseError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        for (i, r) in rows.iter().enumerate() {
            if r.len() != n_cols {
                return Err(SparseError::DimensionMismatch(format!(
                    "row {i} has {} columns, expected {n_cols}",
                    r.len()
                )));
            }
        }
        Ok(DenseMatrix {
            n_rows,
            n_cols,
            data: rows.concat(),
        })
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Number of structurally non-zero entries (exact zeros skipped).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Dense matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, SparseError> {
        if x.len() != self.n_cols {
            return Err(SparseError::DimensionMismatch(format!(
                "matvec: x has {} entries, matrix has {} columns",
                x.len(),
                self.n_cols
            )));
        }
        let mut y = vec![0.0; self.n_rows];
        for i in 0..self.n_rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, &xv) in row.iter().zip(x.iter()) {
                acc += a * xv;
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Transposed product `y = Aᵀ x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>, SparseError> {
        if x.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch(format!(
                "matvec_transpose: x has {} entries, matrix has {} rows",
                x.len(),
                self.n_rows
            )));
        }
        let mut y = vec![0.0; self.n_cols];
        for i in 0..self.n_rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (j, &a) in self.row(i).iter().enumerate() {
                y[j] += a * xi;
            }
        }
        Ok(y)
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.n_cols, self.n_rows);
        for i in 0..self.n_rows {
            for j in 0..self.n_cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Symmetry test within absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.n_rows {
            for j in (i + 1)..self.n_cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute element-wise difference against `other`.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.n_rows, other.n_rows);
        assert_eq!(self.n_cols, other.n_cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.n_rows && j < self.n_cols, "index out of bounds");
        &self.data[i * self.n_cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.n_rows && j < self.n_cols, "index out of bounds");
        &mut self.data[i * self.n_cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let m = DenseMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.matvec(&x).unwrap(), x);
    }

    #[test]
    fn from_rows_and_index() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, SparseError::DimensionMismatch(_)));
    }

    #[test]
    fn matvec_known_answer() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn matvec_dimension_check() {
        let m = DenseMatrix::zeros(2, 3);
        assert!(m.matvec(&[1.0, 2.0]).is_err());
        assert!(m.matvec(&[1.0, 2.0, 3.0]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_transpose_equals_transpose_matvec() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let x = vec![1.0, -1.0];
        assert_eq!(
            m.matvec_transpose(&x).unwrap(),
            m.transpose().matvec(&x).unwrap()
        );
    }

    #[test]
    fn symmetry_check() {
        let s = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        assert!(!DenseMatrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn nnz_skips_zeros() {
        let m = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.0]]).unwrap();
        assert_eq!(m.nnz(), 2);
    }
}
