//! Compressed Sparse Column (CSC) storage — the paper's Figure 1 scheme.
//!
//! "The Compressed Sparse Column (CSC) storage scheme ... uses the
//! following three arrays to store an n x n sparse matrix with nz
//! non-zero entries:
//!
//! * `a(nz)` containing the nonzero elements stored in the order of their
//!   columns from 1 to n.
//! * `row(nz)` that stores the row numbers of each nonzero element.
//! * `col(n+1)` whose jth entry points to the first entry of the j'th
//!   column in A and row."

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::SparseError;
use serde::{Deserialize, Serialize};

/// Compressed Sparse Column matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    n_rows: usize,
    n_cols: usize,
    /// `col` in the paper: `col_ptr[j]..col_ptr[j+1]` spans column `j`.
    col_ptr: Vec<usize>,
    /// `row` in the paper: the row of each stored value.
    row_idx: Vec<usize>,
    /// `a` in the paper: the stored values, column by column.
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build directly from raw arrays, validating the invariants.
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if col_ptr.len() != n_cols + 1 {
            return Err(SparseError::MalformedPointer(format!(
                "col_ptr has length {}, expected {}",
                col_ptr.len(),
                n_cols + 1
            )));
        }
        if col_ptr[0] != 0 {
            return Err(SparseError::MalformedPointer(
                "col_ptr[0] must be 0".to_string(),
            ));
        }
        if *col_ptr.last().unwrap() != values.len() {
            return Err(SparseError::MalformedPointer(format!(
                "col_ptr[n] = {} but there are {} values",
                col_ptr.last().unwrap(),
                values.len()
            )));
        }
        if row_idx.len() != values.len() {
            return Err(SparseError::DimensionMismatch(format!(
                "row_idx has {} entries, values has {}",
                row_idx.len(),
                values.len()
            )));
        }
        if col_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::MalformedPointer(
                "col_ptr must be non-decreasing".to_string(),
            ));
        }
        for &r in &row_idx {
            if r >= n_rows {
                return Err(SparseError::IndexOutOfBounds {
                    what: "row",
                    index: r,
                    bound: n_rows,
                });
            }
        }
        Ok(CscMatrix {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Build from COO, sorting column-major and summing duplicates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut entries = coo.entries().to_vec();
        entries.sort_unstable_by_key(|&(r, c, _)| (c, r));
        let n_cols = coo.n_cols();
        let mut col_ptr = vec![0usize; n_cols + 1];
        let mut row_idx = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        let mut prev: Option<(usize, usize)> = None;
        for (r, c, v) in entries {
            if prev == Some((c, r)) {
                *values.last_mut().unwrap() += v;
            } else {
                row_idx.push(r);
                values.push(v);
                col_ptr[c + 1] = row_idx.len();
                prev = Some((c, r));
            }
        }
        for j in 1..=n_cols {
            if col_ptr[j] < col_ptr[j - 1] {
                col_ptr[j] = col_ptr[j - 1];
            }
        }
        CscMatrix {
            n_rows: coo.n_rows(),
            n_cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Build from a dense matrix.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        Self::from_coo(&CooMatrix::from_dense(d))
    }

    /// Build from CSR (format conversion; O(nnz log nnz)).
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        Self::from_coo(&csr.to_coo())
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// The paper's `col(n+1)` pointer array.
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The paper's `row(nz)` index array.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// The paper's `a(nz)` value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// (row, value) pairs of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Number of stored entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Value at `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.col(j).find(|&(r, _)| r == i).map_or(0.0, |(_, v)| v)
    }

    /// Serial CSC matvec `q = A p` — the paper's Section 4 Scenario 2
    /// kernel, with its many-to-one accumulation into `q(row(k))`:
    ///
    /// ```fortran
    /// DO j = 1, n
    ///   pj = p(j)
    ///   DO k = col(j), col(j+1)-1
    ///     q(row(k)) = q(row(k)) + a(k)*pj
    /// ```
    pub fn matvec(&self, p: &[f64]) -> Result<Vec<f64>, SparseError> {
        if p.len() != self.n_cols {
            return Err(SparseError::DimensionMismatch(format!(
                "matvec: x has {} entries, matrix has {} columns",
                p.len(),
                self.n_cols
            )));
        }
        let mut q = vec![0.0; self.n_rows];
        for j in 0..self.n_cols {
            let pj = p[j];
            if pj == 0.0 {
                continue;
            }
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                q[self.row_idx[k]] += self.values[k] * pj;
            }
        }
        Ok(q)
    }

    /// `q = Aᵀ p`: in CSC this is a clean per-column gather (the dual of
    /// CSR's row kernel).
    pub fn matvec_transpose(&self, p: &[f64]) -> Result<Vec<f64>, SparseError> {
        if p.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch(format!(
                "matvec_transpose: x has {} entries, matrix has {} rows",
                p.len(),
                self.n_rows
            )));
        }
        let mut q = vec![0.0; self.n_cols];
        for j in 0..self.n_cols {
            let mut acc = 0.0;
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                acc += self.values[k] * p[self.row_idx[k]];
            }
            q[j] = acc;
        }
        Ok(q)
    }

    /// Convert to COO.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::new(self.n_rows, self.n_cols);
        for j in 0..self.n_cols {
            for (r, v) in self.col(j) {
                coo.push(r, j, v)
                    .expect("indices validated at construction");
            }
        }
        coo
    }

    /// Convert to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_coo(&self.to_coo())
    }

    /// Convert to dense.
    pub fn to_dense(&self) -> DenseMatrix {
        self.to_coo().to_dense()
    }

    /// Extract the main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.n_rows.min(self.n_cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact 6x6 matrix of the paper's Figure 1.
    fn figure1_matrix() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![11.0, 12.0, 0.0, 0.0, 15.0, 0.0],
            vec![21.0, 22.0, 0.0, 24.0, 0.0, 26.0],
            vec![31.0, 0.0, 33.0, 0.0, 0.0, 0.0],
            vec![0.0, 42.0, 0.0, 44.0, 0.0, 0.0],
            vec![51.0, 0.0, 0.0, 0.0, 55.0, 0.0],
            vec![0.0, 62.0, 0.0, 0.0, 0.0, 66.0],
        ])
        .unwrap()
    }

    #[test]
    fn figure1_csc_layout_matches_paper() {
        // Figure 1 lists a = (a11 a21 a31 a51 | a12 a22 a42 a62 | a33 |
        // a24 a44 | a15 a55 | a26 a66) in column order.
        let csc = CscMatrix::from_dense(&figure1_matrix());
        assert_eq!(csc.nnz(), 15);
        assert_eq!(
            csc.values(),
            &[
                11.0, 21.0, 31.0, 51.0, // col 1
                12.0, 22.0, 42.0, 62.0, // col 2
                33.0, // col 3
                24.0, 44.0, // col 4
                15.0, 55.0, // col 5
                26.0, 66.0 // col 6
            ][..]
        );
        assert_eq!(
            csc.row_idx(),
            &[0, 1, 2, 4, 0, 1, 3, 5, 2, 1, 3, 0, 4, 1, 5][..]
        );
        assert_eq!(csc.col_ptr(), &[0, 4, 8, 9, 11, 13, 15][..]);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = figure1_matrix();
        let csc = CscMatrix::from_dense(&d);
        let x: Vec<f64> = (1..=6).map(|i| i as f64).collect();
        let want = d.matvec(&x).unwrap();
        let got = csc.matvec(&x).unwrap();
        for (a, b) in want.iter().zip(got.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_transpose_matches_dense() {
        let d = figure1_matrix();
        let csc = CscMatrix::from_dense(&d);
        let x: Vec<f64> = (1..=6).map(|i| 1.0 / i as f64).collect();
        let want = d.matvec_transpose(&x).unwrap();
        let got = csc.matvec_transpose(&x).unwrap();
        for (a, b) in want.iter().zip(got.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn csr_csc_roundtrip() {
        let d = figure1_matrix();
        let csc = CscMatrix::from_dense(&d);
        let csr = csc.to_csr();
        assert_eq!(csr.to_dense(), d);
        let back = CscMatrix::from_csr(&csr);
        assert_eq!(back, csc);
    }

    #[test]
    fn from_raw_validation() {
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 2], vec![1.0, 2.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_columns_ok() {
        let coo = CooMatrix::from_triplets(3, 3, vec![(0, 0, 1.0), (2, 2, 2.0)]).unwrap();
        let csc = CscMatrix::from_coo(&coo);
        assert_eq!(csc.col_nnz(1), 0);
        assert_eq!(csc.matvec(&[1.0; 3]).unwrap(), vec![1.0, 0.0, 2.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let csc = CscMatrix::from_dense(&figure1_matrix());
        assert_eq!(csc.diagonal(), vec![11.0, 22.0, 33.0, 44.0, 55.0, 66.0]);
    }

    #[test]
    fn get_missing_is_zero() {
        let csc = CscMatrix::from_dense(&figure1_matrix());
        assert_eq!(csc.get(0, 2), 0.0);
        assert_eq!(csc.get(5, 1), 62.0);
    }
}
